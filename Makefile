# Convenience targets for the repro library.

.PHONY: install test faults faults-persist plan-smoke shim-strict obs-smoke procpool-smoke cache-smoke serve-smoke shard-smoke batch-smoke bench bench-small bench-gate docs examples all clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

test-verbose:
	pytest tests/ -v

# Fault-injection suite with NumPy warnings promoted to errors, proving
# NaN/Inf handling never leaks through silent RuntimeWarnings.
faults:
	python -W error::RuntimeWarning -m pytest tests/faults -q

# Durability suite: atomic snapshots, torn-write/bitflip injection,
# SIGKILL-and-resume, and the RNG-replay integrity audit.
faults-persist:
	python -W error::RuntimeWarning -m pytest tests/faults tests/persist -q

# Plan-layer smoke: compile a plan, print its reasoning, dump the JSON
# record, and execute it end-to-end on a tiny random matrix.
plan-smoke:
	python -m repro sketch --random 200 60 0.05 --explain
	python -m repro sketch --random 200 60 0.05 --plan-json /tmp/repro-plan-smoke.json
	python -c "from repro.plan import SketchPlan; \
	  p = SketchPlan.from_json('/tmp/repro-plan-smoke.json'); \
	  print(p.explain())"
	python -m pytest tests/plan -q

# Deprecation-shim leg: the old kwarg spellings must warn exactly where
# the shim tests expect, and nowhere else.
shim-strict:
	python -W error::DeprecationWarning -m pytest tests/plan/test_shims.py -q

# Observability smoke: run a sketch with every exporter enabled, validate
# the emitted Prometheus text and profile JSON against the schema, and
# run the reconciliation suite (exported metrics == KernelStats totals).
obs-smoke:
	python -m repro sketch --random 400 80 0.05 --threads 2 \
	  --metrics-out /tmp/repro-obs-smoke.prom \
	  --trace-out /tmp/repro-obs-smoke-trace.json \
	  --profile --profile-out /tmp/repro-obs-smoke-profile.json
	python -c "from repro.obs.schema import main; import sys; \
	  sys.exit(main(['--profile', '/tmp/repro-obs-smoke-profile.json', \
	                 '--metrics', '/tmp/repro-obs-smoke.prom']))"
	python -m pytest tests/obs -q

# Process-pool crash-tolerance leg: the supervised worker-pool suite
# (SIGKILL / hang / corrupt-tile recovery, bit-identical output) plus a
# CLI smoke run on the process driver.  Everything is wrapped in a hard
# wall-clock timeout so a supervisor deadlock fails the build instead of
# hanging it.
procpool-smoke:
	timeout 300 python -m pytest tests/parallel/test_procpool.py -q
	timeout 120 python -m repro sketch --random 200 60 0.05 \
	  --driver process --workers 2 --worker-heartbeat 10

# Artifact-cache leg: the cache test suite, then a warm-vs-cold gate run
# proving a second process pays zero autotune probes and zero blocked-CSR
# conversions, beats the cold run by the speedup floor, and returns a
# bit-identical sketch (compared against reports/BENCH_cache.json).
cache-smoke:
	python -m pytest tests/cache -q
	timeout 600 python benchmarks/bench_cache_warm.py

# Serving leg: the full serve suite (admission, breaker, protocol,
# service semantics, warm pools), then the real-daemon drills — SIGTERM
# graceful drain and the chaos acceptance scenario (start the daemon,
# serve concurrent plans, kill workers mid-request, hang another past
# its deadline, assert bit-identical responses + typed failures + clean
# drain).  Hard wall-clock timeouts so a wedged daemon fails the build
# instead of hanging it.
serve-smoke:
	timeout 300 python -m pytest tests/serve/test_admission.py \
	  tests/serve/test_breaker.py tests/serve/test_protocol.py \
	  tests/serve/test_service.py tests/parallel/test_procpool_warm.py -q
	timeout 300 python -m pytest tests/serve/test_daemon_drain.py \
	  tests/serve/test_chaos_acceptance.py -q

# Sharded-execution leg: the partition test suite (sharded output must
# be bit-identical to unsharded across serial/engine/process drivers and
# every strategy, including resume across a shard-count change), a CLI
# smoke run, then the simulator-validation gate — the scaling model's
# predicted sharded/unsharded ratio must land within tolerance of the
# measured process-pool ratio (compared against reports/BENCH_shard.json).
# Hard wall-clock timeouts so a wedged shard merge fails the build
# instead of hanging it.
shard-smoke:
	timeout 300 python -m pytest tests/plan/test_partition.py \
	  tests/persist/test_shard_resume.py -q
	timeout 120 python -m repro sketch --random 400 80 0.05 --b-n 16 \
	  --shards 3 --partition propagation
	timeout 600 python benchmarks/bench_shard_scaling.py

# Batched multi-sketch leg: the batched-tier test suite (bit-identity of
# k sketches per pass vs k independent runs, across drivers/backends and
# under injected worker faults, plus serve-side request coalescing),
# then the throughput gate — every cell that met the 1.5x acceptance bar
# in the committed benchmarks/reports/BENCH_batch.json must hold it.
batch-smoke:
	timeout 600 python -m pytest tests/kernels/test_batched.py \
	  tests/plan/test_batch_plan.py tests/serve/test_coalesce.py -q
	timeout 600 python benchmarks/bench_batch_matrix.py

bench:
	pytest benchmarks/ --benchmark-only
	python benchmarks/summarize_reports.py

bench-small:
	REPRO_SCALE=small pytest benchmarks/ --benchmark-only
	python benchmarks/summarize_reports.py

# Backend perf-regression gate: re-measure the backend matrix and fail if
# any cell dropped below the committed benchmarks/reports/BENCH_backend.json
# by more than its per-metric tolerance (see GATE_TOLERANCES in
# benchmarks/summarize_reports.py).
bench-gate:
	python benchmarks/bench_backend_matrix.py

docs:
	python docs/generate_api.py

examples:
	python examples/quickstart.py
	python examples/machine_model_tour.py
	python examples/least_squares.py
	python examples/abnormal_patterns.py
	python examples/ordering_and_structure.py
	python examples/low_rank_approximation.py
	python examples/streaming_sketch.py

all: install test bench docs

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
