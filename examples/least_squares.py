#!/usr/bin/env python
"""Sketch-and-precondition least squares vs the classical baselines.

Recreates the Section V-C pipeline on two surrogate problems:

* a rail-style set-cover LP (tall, ill-conditioned even after column
  scaling) where SAP-QR needs a fraction of LSQR-D's iterations and a
  fraction of the direct solver's memory;
* a numerically rank-deficient problem (cond ~ 1e16) where SAP-QR
  correctly refuses (singular sketch factor) and SAP-SVD's truncation
  rule handles it.

Run:  python examples/least_squares.py
"""

from __future__ import annotations

import numpy as np

from repro.core import SketchConfig
from repro.lsq import (
    CscOperator,
    solve_direct_qr,
    solve_lsqr_diag,
    solve_sap,
)
from repro.errors import SingularMatrixError
from repro.sparse import near_rank_deficient, rail_like_sparse


def paper_rhs(A, seed: int) -> np.ndarray:
    """The paper's right-hand side: a vector in range(A) plus N(0, I)."""
    rng = np.random.default_rng(seed)
    return (CscOperator(A).matvec(rng.standard_normal(A.shape[1]))
            + rng.standard_normal(A.shape[0]))


def show(solution) -> None:
    print(f"  {solution.method:10s}  time {solution.seconds:8.3f} s   "
          f"iterations {solution.iterations:5d}   "
          f"Error(x) {solution.error:.2e}   "
          f"workspace {solution.memory_mbytes:8.3f} MB")


def main() -> None:
    print("=== rail-style problem (tall, cond(AD) in the hundreds) ===")
    A = rail_like_sparse(20_000, 120, 150_000, seed=7, mix_spread=2.5)
    b = paper_rhs(A, 0)
    print(f"A: {A.shape[0]} x {A.shape[1]}, nnz = {A.nnz}")

    lsqrd = solve_lsqr_diag(A, b, max_iter=20_000)
    sap = solve_sap(A, b, gamma=2.0, method="qr",
                    config=SketchConfig(gamma=2.0, seed=1))
    direct = solve_direct_qr(A, b)
    show(lsqrd)
    show(sap)
    show(direct)
    print(f"  -> SAP used {lsqrd.iterations / max(sap.iterations, 1):.1f}x "
          f"fewer iterations than LSQR-D and "
          f"{direct.memory_bytes / max(sap.memory_bytes, 1):.0f}x less "
          "workspace than the direct factorization")
    agree = np.linalg.norm(sap.x - direct.x) / np.linalg.norm(direct.x)
    print(f"  -> solutions agree to {agree:.2e} (relative)")

    print("\n=== rank-deficient problem (cond ~ 1e16): QR fails, SVD works ===")
    B = near_rank_deficient(8_000, 80, 0.05, seed=9, perturb=1e-16)
    bb = paper_rhs(B, 2)
    try:
        solve_sap(B, bb, gamma=2.0, method="qr",
                  config=SketchConfig(gamma=2.0, seed=3))
        print("  unexpected: SAP-QR did not detect the singular sketch")
    except SingularMatrixError as exc:
        print(f"  SAP-QR raised SingularMatrixError, as designed:\n"
              f"    {exc}")
    svd = solve_sap(B, bb, gamma=2.0, method="svd",
                    config=SketchConfig(gamma=2.0, seed=3))
    show(svd)
    print(f"  -> SAP-SVD retained numerical rank "
          f"{svd.details['rank']} of {B.shape[1]} and still reached "
          f"Error(x) = {svd.error:.2e}")


if __name__ == "__main__":
    main()
