#!/usr/bin/env python
"""Quickstart: sketch a tall sparse matrix with on-the-fly generation.

Builds a 100k x 1k sparse matrix, forms the sketch ``Ahat = S A`` with
``d = 3n`` (the paper's SpMM setting), and shows what the library reports:
the kernel that was dispatched, the sample/compute time split
(Tables III/V style), and how many random numbers were generated versus
how many a stored sketch would have required.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.core import SketchConfig

def main() -> None:
    # A tall sparse matrix: 100,000 x 1,000 at density 5e-4 (~50 nnz/col).
    print("building input matrix ...")
    A = repro.random_sparse(100_000, 1_000, 5e-4, seed=0)
    print(f"  A: {A.shape[0]} x {A.shape[1]}, nnz = {A.nnz}, "
          f"density = {A.density:.2e}, storage = {A.memory_bytes / 2**20:.1f} MB")

    # One call: d = gamma * n rows of an implicit random S, never stored.
    config = SketchConfig(
        gamma=3.0,               # sketch size multiplier (paper: 3 for SpMM)
        distribution="uniform",  # entries iid uniform(-1, 1)
        rng_kind="xoshiro",      # the paper's production generator
        kernel="auto",           # dispatch Algorithm 3 vs 4 per machine
        seed=42,
    )
    result = repro.sketch(A, config=config)

    d, n = result.sketch.shape
    stats = result.stats
    print(f"\nsketch Ahat = S A computed: {d} x {n} dense "
          f"({result.sketch.nbytes / 2**20:.1f} MB)")
    print(f"  kernel dispatched : {result.kernel_used}")
    print(f"  total time        : {stats.total_seconds:.3f} s")
    print(f"  sample time (RNG) : {stats.sample_seconds:.3f} s "
          f"({stats.sample_fraction:.0%} of total)")
    print(f"  random numbers    : {stats.samples_generated:,} generated "
          "on the fly")
    print(f"  stored-S would be : {d * A.shape[0] * 8 / 2**30:.2f} GB "
          "of memory the on-the-fly kernel never allocates")

    # The implicit operator view: the same S applied to a vector.
    op = repro.SketchOperator(d, A.shape[0], config=config)
    x = np.random.default_rng(1).standard_normal(A.shape[1])
    lhs = result.sketch @ x          # (S A) x
    rhs = op.apply_dense(repro.lsq.CscOperator(A).matvec(x))  # S (A x)
    print(f"\nconsistency of the implicit operator: "
          f"||(SA)x - S(Ax)|| / ||(SA)x|| = "
          f"{np.linalg.norm(lhs - rhs) / np.linalg.norm(lhs):.2e}")


if __name__ == "__main__":
    import repro.lsq  # noqa: F401  (used above)

    main()
