#!/usr/bin/env python
"""Structure engineering: how orderings change both halves of the pipeline.

The paper's analysis (Section III-B) notes that Algorithm 4's RNG volume
depends on how nonzeros cluster into rows of each vertical block, and its
evaluation (Table XI) hinges on the direct solver's fill-in — both of
which are functions of *ordering*, not just pattern.  This example
demonstrates the two effects with the library's reverse Cuthill-McKee
implementation:

1. shuffling the rows of a banded matrix destroys Algorithm 4's reuse;
   RCM-style structure recovers it;
2. shuffling the columns of a band blows up Givens-QR fill; RCM restores
   it — narrowing (but not closing) the direct-vs-SAP memory gap.

Run:  python examples/ordering_and_structure.py
"""

from __future__ import annotations

import numpy as np

from repro.kernels import sketch_spmm
from repro.lsq import givens_qr_factorize
from repro.rng import PhiloxSketchRNG
from repro.sparse import (
    CSCMatrix,
    banded_sparse,
    pattern_bandwidth,
    permute,
    rcm_ordering,
)
from repro.utils import format_table


def algo4_reuse_demo() -> None:
    print("1) column ordering vs Algorithm 4's sample reuse")
    # Note a *row* permutation can never change the reuse (it bijects the
    # nonempty-row set of every block); what matters is which columns land
    # in the same vertical block — i.e. column ordering.
    A = banded_sparse(6000, 300, 0.01, bandwidth_frac=0.03, seed=0)
    rng_perm = np.random.default_rng(1)
    shuffled = permute(A, col_perm=rng_perm.permutation(300))
    d, b_n = 200, 30

    rows = []
    for label, M in (("banded (ordered)", A), ("columns shuffled", shuffled)):
        _, stats = sketch_spmm(M, d, PhiloxSketchRNG(0), kernel="algo4",
                               b_d=d, b_n=b_n)
        rows.append([label, M.nnz, stats.samples_generated,
                     stats.samples_generated / (d * M.nnz)])
    print(format_table(
        ["matrix", "nnz", "A4 samples generated", "vs d*nnz (A3)"],
        rows))
    print("   -> blocks whose columns share rows are where Algorithm 4's "
          "advantage lives; scattering related columns destroys it\n")


def qr_fill_demo() -> None:
    print("2) column ordering vs direct-QR fill-in")
    rng = np.random.default_rng(2)
    n = 120
    dense = np.zeros((500, n))
    for i in range(500):
        c = int(i * n / 500)
        for j in range(max(0, c - 2), min(n, c + 3)):
            dense[i, j] = rng.standard_normal()
    A = CSCMatrix.from_dense(dense)

    scrambled = permute(A, col_perm=rng.permutation(n))
    order = rcm_ordering(scrambled)
    restored = permute(scrambled, col_perm=order)

    rows = []
    for label, M in (("original band", A), ("columns shuffled", scrambled),
                     ("RCM reordered", restored)):
        R = givens_qr_factorize(M, np.zeros(500))
        gram_band = pattern_bandwidth_of_gram(M)
        rows.append([label, gram_band, R.nnz, 16 * R.nnz / 1024])
    print(format_table(
        ["matrix", "A^T A bandwidth", "nnz(R)", "R KiB"], rows))
    print("   -> fill tracks the column-graph bandwidth; ordering is the "
          "direct solver's lever in the Table XI memory contest")


def pattern_bandwidth_of_gram(M: CSCMatrix) -> int:
    from repro.sparse.arithmetic import gram

    return pattern_bandwidth(gram(M))


if __name__ == "__main__":
    algo4_reuse_demo()
    qr_fill_demo()
