#!/usr/bin/env python
"""Streaming: maintain a sketch (and a least-squares solution) over a
growing dataset in a single pass.

Because the sketch generators are coordinate-addressed (column ``j`` of
``S`` is a pure function of the global row index), the sketch of a growing
matrix updates incrementally: each arriving row batch costs one blocked-
kernel call and the old data is never touched again.  This example
streams a tall regression problem in ten batches, refreshing the
sketch-and-precondition solution after each batch, and verifies the final
state against a one-shot solve of the full data.

Run:  python examples/streaming_sketch.py
"""

from __future__ import annotations

import numpy as np

from repro.core.streaming import StreamingSketch
from repro.lsq import CscOperator, PreconditionedOperator, lsqr
from repro.lsq.preconditioners import TriangularPreconditioner
from repro.rng import PhiloxSketchRNG
from repro.sparse import CSCMatrix, random_sparse, vstack
from repro.utils import format_table


def main() -> None:
    n, d = 80, 160                      # gamma = 2
    batches, rows_per_batch = 10, 3000
    rng = np.random.default_rng(0)
    x_true = rng.standard_normal(n)

    st = StreamingSketch(d, n, PhiloxSketchRNG(7), b_d=80, b_n=16)
    seen_blocks: list[CSCMatrix] = []
    b_parts: list[np.ndarray] = []

    rows = []
    for t in range(batches):
        block = random_sparse(rows_per_batch, n, 4e-3, seed=100 + t)
        noise = 0.01 * rng.standard_normal(rows_per_batch)
        b_parts.append(CscOperator(block).matvec(x_true) + noise)
        seen_blocks.append(block)
        st.absorb(block)

        # Refresh the solution over everything seen so far.
        A_seen = vstack(seen_blocks)
        b_seen = np.concatenate(b_parts)
        precond = TriangularPreconditioner.from_sketch(st.sketch)
        B = PreconditionedOperator(CscOperator(A_seen), precond)
        run = lsqr(B, b_seen, atol=1e-12)
        x = precond.apply(run.z)
        err = np.linalg.norm(x - x_true) / np.linalg.norm(x_true)
        rows.append([t + 1, st.rows_seen, run.iterations, err])

    print(format_table(
        ["batch", "rows seen", "LSQR iterations", "rel err vs truth"],
        rows,
        title="streaming sketch-and-precondition (d = 2n, single pass "
              "over the data for the sketch)",
    ))

    # The streamed sketch is exactly the sketch of the stacked data.
    from repro.kernels import sketch_spmm

    A_all = vstack(seen_blocks)
    oneshot, _ = sketch_spmm(A_all, d, PhiloxSketchRNG(7), kernel="algo3",
                             b_d=80, b_n=16)
    diff = np.abs(st.sketch - oneshot).max()
    print(f"\nstreamed sketch vs one-shot sketch of the stacked data: "
          f"max abs diff = {diff:.2e}")


if __name__ == "__main__":
    main()
