#!/usr/bin/env python
"""Exotic sparsity patterns: when to prefer which kernel (Table VI).

Builds the paper's three "abnormal" matrices, runs both production
kernels on each, and shows the mechanism: Algorithm 4's generated-sample
count collapses when nonzeros cluster in rows (Abnormal_A) and gives no
saving when they cluster in columns (Abnormal_C), while Algorithm 3's
cost is the same for every pattern.  Ends with the dispatcher's verdicts.

Run:  python examples/abnormal_patterns.py
"""

from __future__ import annotations

from repro.kernels import choose_kernel, column_concentration, sketch_spmm
from repro.model import PERLMUTTER
from repro.rng import XoshiroSketchRNG
from repro.sparse import abnormal_a, abnormal_b, abnormal_c
from repro.utils import format_table


def main() -> None:
    m, n = 20_000, 2_000
    period = 100  # dense line every 100 rows/columns -> density 1e-2
    patterns = {
        "Abnormal_A (dense rows)": abnormal_a(m, n, period=period, seed=1),
        "Abnormal_B (hot middle block)": abnormal_b(m, n, density=1.0 / period,
                                                    seed=2),
        "Abnormal_C (dense columns)": abnormal_c(m, n, period=period, seed=3),
    }
    d = n // 2
    b_d, b_n = d, n // 10

    rows = []
    for name, A in patterns.items():
        _, s3 = sketch_spmm(A, d, XoshiroSketchRNG(0), kernel="algo3",
                            b_d=b_d, b_n=b_n)
        _, s4 = sketch_spmm(A, d, XoshiroSketchRNG(0), kernel="algo4",
                            b_d=b_d, b_n=b_n)
        rows.append([
            name, A.nnz,
            s3.total_seconds, s4.total_seconds + s4.conversion_seconds,
            s3.samples_generated, s4.samples_generated,
            s4.samples_generated / s3.samples_generated,
        ])
    print(format_table(
        ["pattern", "nnz", "A3 time", "A4 time(+conv)",
         "A3 samples", "A4 samples", "A4/A3"],
        rows,
        title="Table VI mechanism: sample reuse by pattern",
    ))

    print("\ndispatcher verdicts (Perlmutter, which otherwise favours "
          "Algorithm 4):")
    for name, A in patterns.items():
        choice = choose_kernel(PERLMUTTER, A)
        conc = column_concentration(A)
        print(f"  {name:32s} column-concentration {conc:4.2f} "
              f"-> {choice.kernel}")


if __name__ == "__main__":
    main()
