#!/usr/bin/env python
"""A tour of the Section III performance model.

Walks through the paper's analysis with the library's model tools:

1. estimate this machine's RNG cost ``h`` (generation vs bandwidth);
2. optimize the Equation (4) block sizes for several densities and show
   the closed-form regimes (n1 = 1 for sparse; sqrt(hM)/(2 sqrt(rho)) for
   dense);
3. evaluate the sqrt(M) advantage over the GEMM communication bound;
4. pick the right kernel (Algorithm 3 vs 4) for Frontera/Perlmutter and
   simulate Table VII-style strong scaling.

Run:  python examples/machine_model_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.kernels import choose_kernel
from repro.model import (
    FRONTERA,
    PERLMUTTER,
    advantage_over_gemm,
    asymptotic_advantage,
    optimal_n1_big_rho,
    optimize_blocks,
)
from repro.parallel import parallel_efficiency, simulate_strong_scaling
from repro.rng import estimate_h
from repro.sparse import random_sparse
from repro.utils import format_table


def main() -> None:
    print("1) measuring this host's h (RNG cost per entry / cost per word)")
    probe = estimate_h("xoshiro", "uniform")
    print(f"   {probe.describe()}")
    print(f"   h < 1 -> regenerating S beats reading it from memory: "
          f"{'yes' if probe.h < 1 else 'no'}\n")

    M = FRONTERA.cache_words
    h = 0.25
    print(f"2) Equation (4) block-size optimization (M = {M:.2e} words, "
          f"h = {h})")
    rows = []
    for rho in (1e-9, 1e-5, 1e-3, 0.1, 0.9):
        plan = optimize_blocks(rho, M, h)
        closed = (1 if rho < 1e-6
                  else optimal_n1_big_rho(M, h, rho) if rho > 0.5 else None)
        rows.append([rho, plan.n1, closed, plan.d1, plan.m1, plan.ci])
    print(format_table(
        ["density", "n1*", "closed form", "d1", "m1", "CI"], rows))
    print()

    print("3) advantage over the GEMM data-movement lower bound")
    for h_val in (1e-6, 0.1, 0.5, 2.0):
        adv = advantage_over_gemm(M, h_val)
        print(f"   h = {h_val:<6}: CI advantage = {adv:9.1f}x "
              f"(h->0 limit: {asymptotic_advantage(M):.0f}x ~ sqrt(M))")
    print()

    print("4) kernel dispatch and simulated strong scaling")
    A = random_sparse(5000, 400, 1e-3, seed=0)
    for machine in (FRONTERA, PERLMUTTER):
        choice = choose_kernel(machine, A)
        print(f"   {machine.name:11s}: choose {choice.kernel} — "
              f"{choice.reason}")
    d = 3 * A.shape[1]
    pts = simulate_strong_scaling(A, d, FRONTERA, kernel="algo3",
                                  b_d=d, b_n=16,
                                  threads_list=[1, 2, 4, 8, 16, 32])
    eff = parallel_efficiency(pts)
    print("\n   threads  time(model)   GFlops   efficiency")
    for p in pts:
        print(f"   {p.threads:7d}  {p.seconds:10.2e}  {p.gflops:8.1f}  "
              f"{eff[p.threads]:9.0%}  [{p.bound}-bound]")


if __name__ == "__main__":
    main()
