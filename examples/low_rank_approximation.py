#!/usr/bin/env python
"""Randomized SVD of a sparse matrix via the sketching kernels.

The paper's introduction lists low-rank approximation among the
randomized algorithms its sketching primitive accelerates; this example
runs the library's sketch-based randomized SVD on a sparse matrix with a
planted spectrum and compares against the exact (dense) SVD: singular
values, reconstruction error vs the optimal rank-k error, and the cost of
the sketching stage.

Run:  python examples/low_rank_approximation.py
"""

from __future__ import annotations

import numpy as np

from repro.core import SketchConfig, randomized_svd
from repro.sparse import CSCMatrix
from repro.utils import format_table


def planted_matrix(m=20_000, n=400, true_rank=25, seed=0) -> CSCMatrix:
    """Sparse matrix = product of sparse factors with decaying spectrum."""
    rng = np.random.default_rng(seed)
    U = rng.standard_normal((m, true_rank)) * (rng.random((m, true_rank)) < 0.03)
    V = rng.standard_normal((n, true_rank)) * (rng.random((n, true_rank)) < 0.3)
    s = np.logspace(0, -3, true_rank)
    return CSCMatrix.from_dense((U * s) @ V.T)


def main() -> None:
    A = planted_matrix()
    print(f"A: {A.shape[0]} x {A.shape[1]}, nnz = {A.nnz}, "
          f"density = {A.density:.3e}")

    k = 10
    res = randomized_svd(A, rank=k, oversample=8, power_iters=1,
                         config=SketchConfig(seed=1, rng_kind="xoshiro"))
    print(f"\nrandomized SVD: rank {k}, "
          f"sketch generated {res.sketch_stats.samples_generated:,} "
          f"numbers on the fly in {res.sketch_stats.total_seconds:.3f}s")

    s_true = np.linalg.svd(A.to_dense(), compute_uv=False)
    rows = [[i, s_true[i], res.s[i], abs(res.s[i] - s_true[i]) / s_true[i]]
            for i in range(k)]
    print(format_table(["i", "sigma (exact)", "sigma (randomized)",
                        "rel err"], rows))

    Ad = A.to_dense()
    err = np.linalg.norm(Ad - res.reconstruct(), 2)
    optimal = s_true[k]
    print(f"\nspectral reconstruction error : {err:.3e}")
    print(f"optimal rank-{k} error          : {optimal:.3e}")
    print(f"ratio (1.0 = optimal)          : "
          f"{err / optimal if optimal > 0 else float('inf'):.2f}")


if __name__ == "__main__":
    main()
