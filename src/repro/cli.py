"""Command-line interface: ``python -m repro <command>``.

Gives shell access to the library's main entry points so the kernels can
be exercised without writing Python:

* ``probe``  — measure this host's bandwidth and RNG throughput and report
  the paper's ``h`` parameter;
* ``sketch`` — sketch a MatrixMarket file (or a generated random matrix)
  and report the kernel's cost split;
* ``lsq``    — solve a least-squares problem with SAP / LSQR-D / direct QR
  and report time, iterations, error, and workspace;
* ``svd``    — randomized low-rank SVD via the sketching kernels;
* ``suite``  — list the paper's surrogate test suites at the active scale;
* ``cache``  — inspect, clear, or verify the content-addressed artifact
  cache used by repeated runs over the same matrix (``verify`` exits
  with code 2 when corrupt entries are found, so CI and the serving
  runbook can gate on cache health);
* ``serve``  — run the long-lived sketch service daemon
  (:mod:`repro.serve`): local HTTP, bounded admission queue, per-request
  deadlines, circuit breaker, graceful SIGTERM drain.

Every command prints a plain-text report to stdout; machine-readable
output (``--json``) covers scripting uses.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

import numpy as np

from .core import SketchConfig
from .lsq import CscOperator, solve_direct_qr, solve_lsqr_diag, solve_sap
from .rng import estimate_h, stream_copy_bandwidth
from .sparse import CSCMatrix, random_sparse, read_matrix_market
from .utils import format_table, render_kv_block

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for every subcommand (exposed for testing)."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="Sketching SpMM with on-the-fly RNG (IPPS 2024 reproduction)",
    )
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON instead of tables")
    sub = p.add_subparsers(dest="command", required=True)

    probe = sub.add_parser("probe", help="measure bandwidth / RNG cost h")
    probe.add_argument("--rng", default="xoshiro",
                       choices=["xoshiro", "philox", "threefry", "junk"])
    probe.add_argument("--dist", default="uniform")
    probe.add_argument("--calibrate", action="store_true",
                       help="measure a full MachineModel for this host")

    sk = sub.add_parser(
        "sketch", help="sketch a sparse matrix",
        description="Sketch a sparse matrix: compile a SketchPlan "
                    "(inspect it with --explain / --plan-json), then "
                    "execute it on the shared runtime.")

    g_problem = sk.add_argument_group(
        "problem", "what to sketch and how large the sketch is")
    src = g_problem.add_mutually_exclusive_group(required=True)
    src.add_argument("--matrix", help="MatrixMarket file to sketch")
    src.add_argument("--random", nargs=3, metavar=("M", "N", "DENSITY"),
                     help="generate a random input instead")
    g_problem.add_argument("--gamma", type=float, default=3.0,
                           help="sketch-size multiplier: d = ceil(gamma * n)")

    g_kernel = sk.add_argument_group(
        "kernel", "compute kernel and Algorithm 1 blocking")
    g_kernel.add_argument("--kernel", default="auto",
                          choices=["auto", "algo3", "algo4", "pregen"])
    g_kernel.add_argument("--b-d", type=int, default=None,
                          help="row-block size override (default: planned)")
    g_kernel.add_argument("--b-n", type=int, default=None,
                          help="column-block size override (default: planned)")
    g_kernel.add_argument("--rng", default="xoshiro",
                          choices=["xoshiro", "philox", "threefry", "junk"])
    g_kernel.add_argument("--dist", default="uniform")
    g_kernel.add_argument("--seed", type=int, default=0)

    g_backend = sk.add_argument_group(
        "backend", "kernel backend and parallel execution")
    g_backend.add_argument("--backend", default="auto",
                           choices=["auto", "numpy", "numba"],
                           help="kernel backend (auto = numba when "
                                "importable, else numpy; REPRO_BACKEND "
                                "overrides auto)")
    g_backend.add_argument("--threads", type=int, default=1,
                           help="worker threads for the execution engine")
    g_backend.add_argument("--driver", default="auto",
                           choices=["auto", "serial", "engine", "process"],
                           help="execution driver (auto = serial or engine "
                                "as the plan requires; process = the "
                                "crash-tolerant supervised worker pool)")
    g_backend.add_argument("--workers", type=int, default=None,
                           help="worker processes for --driver process "
                                "(default: 2)")
    g_backend.add_argument("--worker-heartbeat", type=float, default=None,
                           metavar="SECONDS",
                           help="heartbeat deadline for --driver process: "
                                "a worker silent this long with assigned "
                                "tasks is declared hung and replaced "
                                "(default: 30)")

    g_shard = sk.add_argument_group(
        "sharding", "partition the input into column shards that execute "
        "as independent sub-plans and merge in propagation-blocking order "
        "(bit-identical to the unsharded run)")
    g_shard.add_argument("--shards", type=int, default=None,
                         help="number of column shards (default: unsharded; "
                              "capped at the plan's column-block count)")
    g_shard.add_argument("--partition", default="even",
                         choices=["even", "nnz_balanced", "propagation"],
                         help="shard-boundary strategy for --shards "
                              "(default: even)")

    g_resil = sk.add_argument_group(
        "resilience", "fault handling (any flag enables the guarded path)")
    g_resil.add_argument("--max-retries", type=int, default=None,
                         help="per-task retry budget")
    g_resil.add_argument("--task-timeout", type=float, default=None,
                         help="per-task deadline in seconds; stragglers are "
                              "re-executed")
    g_resil.add_argument("--guardrail", default=None,
                         choices=["raise", "recompute", "mask"],
                         help="numerical guardrail policy for "
                              "NaN/Inf/outlier blocks (default: off)")

    g_persist = sk.add_argument_group(
        "persistence", "durable checkpoints and resume")
    g_persist.add_argument("--checkpoint-dir", default=None,
                           help="write atomic snapshots of the partial "
                                "sketch to this directory")
    g_persist.add_argument("--checkpoint-every", type=int, default=1,
                           help="snapshot cadence in completed row blocks "
                                "(default: every block)")
    g_persist.add_argument("--resume", action="store_true",
                           help="resume from the newest verified snapshot "
                                "in --checkpoint-dir instead of starting "
                                "over")
    g_persist.add_argument("--verify", action="store_true",
                           help="audit the newest snapshot in "
                                "--checkpoint-dir against the input matrix "
                                "(RNG replay of sampled tiles) instead of "
                                "sketching")
    g_persist.add_argument("--verify-exhaustive", action="store_true",
                           help="with --verify: replay every tile, not a "
                                "sample")

    g_cache = sk.add_argument_group(
        "cache", "content-addressed artifact cache for repeated runs "
        "over the same matrix (plans, autotune results, blocked-CSR "
        "conversion, JIT warm-up)")
    g_cache.add_argument("--cache-dir", default=None,
                         help="cache directory (default: $REPRO_CACHE_DIR "
                              "when set, else caching is off)")
    g_cache.add_argument("--no-cache", action="store_true",
                         help="disable the artifact cache even when "
                              "$REPRO_CACHE_DIR is set")

    g_plan = sk.add_argument_group(
        "plan", "inspect the compiled SketchPlan")
    g_plan.add_argument("--explain", action="store_true",
                        help="print plan.explain() and exit without running")
    g_plan.add_argument("--plan-json", metavar="PATH", default=None,
                        help="dump the compiled SketchPlan as JSON to PATH")

    g_obs = sk.add_argument_group(
        "observability", "metrics, traces and roofline profiles "
        "(observer-isolated: cannot fail or slow-path the sketch)")
    g_obs.add_argument("--metrics-out", metavar="PATH", default=None,
                       help="write run metrics in Prometheus text format "
                            "(.json suffix switches to the JSON exporter)")
    g_obs.add_argument("--trace-out", metavar="PATH", default=None,
                       help="write the span trace as JSON "
                            "(.chrome.json suffix emits the Chrome "
                            "trace-event format)")
    g_obs.add_argument("--profile", action="store_true",
                       help="append a roofline-model profile (attained vs "
                            "Eq. 4 predicted GFlop/s) to the report")
    g_obs.add_argument("--profile-out", metavar="PATH", default=None,
                       help="also write the profile as JSON to PATH "
                            "(implies --profile)")
    sk.add_argument("--output", help="write the dense sketch as .npy")

    lsq = sub.add_parser("lsq", help="solve a least-squares problem")
    lsrc = lsq.add_mutually_exclusive_group(required=True)
    lsrc.add_argument("--matrix", help="MatrixMarket file (tall)")
    lsrc.add_argument("--random", nargs=3, metavar=("M", "N", "DENSITY"))
    lsq.add_argument("--solver", default="sap-qr",
                     choices=["sap-qr", "sap-svd", "lsqr-d", "direct"])
    lsq.add_argument("--gamma", type=float, default=2.0)
    lsq.add_argument("--seed", type=int, default=0)

    svd = sub.add_parser("svd", help="randomized low-rank SVD of a sparse matrix")
    ssrc = svd.add_mutually_exclusive_group(required=True)
    ssrc.add_argument("--matrix", help="MatrixMarket file")
    ssrc.add_argument("--random", nargs=3, metavar=("M", "N", "DENSITY"))
    svd.add_argument("--rank", type=int, default=10)
    svd.add_argument("--oversample", type=int, default=8)
    svd.add_argument("--power-iters", type=int, default=1)
    svd.add_argument("--seed", type=int, default=0)

    cache = sub.add_parser(
        "cache", help="inspect or maintain the artifact cache")
    cache.add_argument("action", choices=["stats", "clear", "verify"],
                       help="stats: entry/byte counts per artifact class; "
                            "clear: delete every entry; verify: checksum "
                            "every entry, quarantining corrupt ones")
    cache.add_argument("--cache-dir", default=None,
                       help="cache directory (default: $REPRO_CACHE_DIR)")

    serve = sub.add_parser(
        "serve", help="run the sketch service daemon",
        description="Long-running local HTTP daemon executing SketchPlan "
                    "requests on warm worker pools, with bounded "
                    "admission, per-request deadlines, a circuit "
                    "breaker, and graceful SIGTERM drain "
                    "(see docs/serving.md).")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port; 0 picks an ephemeral port "
                            "(written to --ready-file)")
    serve.add_argument("--queue-capacity", type=int, default=16,
                       help="admission queue bound; beyond it requests "
                            "are shed with a retry hint")
    serve.add_argument("--executors", type=int, default=1,
                       help="executor threads consuming the queue")
    serve.add_argument("--default-deadline", type=float, default=30.0,
                       help="implicit per-request deadline in seconds "
                            "(0 disables)")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       help="graceful-drain budget on SIGTERM")
    serve.add_argument("--breaker-threshold", type=int, default=3,
                       help="consecutive degraded requests before the "
                            "circuit breaker opens")
    serve.add_argument("--breaker-recovery", type=float, default=5.0,
                       help="seconds the breaker stays open before a "
                            "half-open probe")
    serve.add_argument("--max-batch", type=int, default=1,
                       help="coalesce up to this many compatible queued "
                            "requests (same matrix/config, different "
                            "seeds) into one batched run; 1 disables")
    serve.add_argument("--warm-pools", type=int, default=2,
                       help="LRU bound on warm worker pools")
    serve.add_argument("--checkpoint-dir", default=None,
                       help="directory for drain-state persistence")
    serve.add_argument("--cache-dir", default=None,
                       help="artifact-cache directory (default: "
                            "$REPRO_CACHE_DIR)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the artifact cache")
    serve.add_argument("--allow-chaos", action="store_true",
                       help="accept fault-injection request fields "
                            "(testing only)")
    serve.add_argument("--ready-file", default=None,
                       help="write host:port here once listening")

    sub.add_parser("suite", help="list the surrogate experiment suites")
    return p


def _load_matrix(args) -> CSCMatrix:
    if args.matrix:
        return read_matrix_market(args.matrix)
    m, n, density = int(args.random[0]), int(args.random[1]), float(args.random[2])
    return random_sparse(m, n, density, seed=getattr(args, "seed", 0))


def _cmd_probe(args) -> dict:
    probe = estimate_h(args.rng, args.dist)
    bw = stream_copy_bandwidth()
    out = {
        "rng": args.rng,
        "distribution": args.dist,
        "samples_per_second": probe.samples_per_second,
        "copy_bandwidth_bytes_per_second": bw,
        "h": probe.h,
        "regeneration_beats_memory": probe.h < 1.0,
    }
    if args.calibrate:
        from .model import calibrate_machine

        m = calibrate_machine(rng_kind=args.rng, dist=args.dist)
        from .kernels import choose_kernel
        from .sparse import random_sparse

        choice = choose_kernel(m, random_sparse(500, 100, 0.02, seed=0))
        out.update({
            "peak_gflops": m.peak_gflops,
            "cache_bytes": m.cache_bytes,
            "random_access_penalty": m.random_access_penalty,
            "cores": m.cores,
            "favors_reuse": m.favors_reuse,
            "recommended_kernel": choice.kernel,
        })
    return out


def _cache_policy_from_args(args):
    """Resolve the artifact-cache policy for this invocation.

    Explicit ``--cache-dir`` wins; otherwise ``$REPRO_CACHE_DIR`` is
    consulted; ``--no-cache`` (or neither source) disables caching.
    Returns ``None`` when disabled so callers pay nothing.
    """
    if getattr(args, "no_cache", False):
        return None
    from .cache import CachePolicy

    if getattr(args, "cache_dir", None):
        return CachePolicy(cache_dir=args.cache_dir)
    policy = CachePolicy.from_env()
    return policy if policy.enabled else None


def _resilience_from_args(args):
    """Build a ResilienceConfig only when a resilience flag was passed.

    Leaving every flag at its default returns ``None``, which keeps the
    original fast execution path byte-for-byte.
    """
    if (args.max_retries is None and args.task_timeout is None
            and args.guardrail is None):
        return None
    from .parallel import ResilienceConfig

    return ResilienceConfig(
        max_retries=args.max_retries if args.max_retries is not None else 2,
        task_timeout=args.task_timeout,
        guardrail=args.guardrail,
    )


def _cmd_sketch(args) -> dict:
    A = _load_matrix(args)
    if args.verify:
        if not args.checkpoint_dir:
            from .errors import ConfigError

            raise ConfigError("--verify requires --checkpoint-dir")
        from .persist import verify_snapshot

        report = verify_snapshot(args.checkpoint_dir, A,
                                 exhaustive=args.verify_exhaustive,
                                 seed=args.seed)
        out = report.as_dict()
        out["input_shape"] = list(A.shape)
        out["input_nnz"] = A.nnz
        return out
    from .plan import PersistencePolicy, Planner, Runtime

    cfg = SketchConfig(gamma=args.gamma, distribution=args.dist,
                       rng_kind=args.rng, kernel=args.kernel, seed=args.seed,
                       backend=args.backend, threads=args.threads,
                       b_d=args.b_d, b_n=args.b_n,
                       resilience=_resilience_from_args(args))
    pol = PersistencePolicy(checkpoint_dir=args.checkpoint_dir,
                            every=args.checkpoint_every, resume=args.resume)
    pool = None
    if args.workers is not None or args.worker_heartbeat is not None:
        if args.driver != "process":
            from .errors import ConfigError

            raise ConfigError(
                "--workers / --worker-heartbeat require --driver process")
        from .parallel import WorkerPoolConfig

        pool = WorkerPoolConfig(
            workers=args.workers if args.workers is not None else 2,
            heartbeat_timeout=(args.worker_heartbeat
                               if args.worker_heartbeat is not None else 30.0),
        )
    want_profile = args.profile or args.profile_out is not None
    observer = None
    runtime = Runtime()
    if args.metrics_out or args.trace_out or want_profile:
        from .obs import RunObserver

        observer = RunObserver(trace=args.trace_out is not None)
        observer.attach(runtime.bus)
    cache = None
    cache_policy = _cache_policy_from_args(args)
    if cache_policy is not None:
        from .cache import ArtifactCache

        cache = ArtifactCache(cache_policy, bus=runtime.bus)
    partition = None
    if args.shards is not None:
        from .plan import PartitionSpec

        partition = PartitionSpec(shards=args.shards,
                                  strategy=args.partition)
    plan = Planner().compile(A, cfg, persistence=pol, driver=args.driver,
                             pool=pool, partition=partition, cache=cache)
    if args.plan_json:
        plan.to_json(args.plan_json)
    if args.explain:
        out = {
            "input_shape": list(A.shape),
            "input_nnz": A.nnz,
            "explain": plan.explain(),
            "plan": plan.to_dict(),
        }
        if args.plan_json:
            out["plan_json"] = args.plan_json
        return out
    result = runtime.run(plan, A, cache=cache)
    if args.output:
        np.save(args.output, result.sketch)
    st = result.stats
    out = {
        "input_shape": list(A.shape),
        "input_nnz": A.nnz,
        "sketch_shape": list(result.sketch.shape),
        "kernel": result.kernel_used,
        "backend": st.extra.get("backend", "numpy"),
        "total_seconds": st.total_seconds,
        "sample_seconds": st.sample_seconds,
        "samples_generated": st.samples_generated,
        "gflops": st.gflops_rate,
        "jit_compile_seconds": st.extra.get("jit_compile_seconds", 0.0),
        "output": args.output,
    }
    if st.extra.get("shards"):
        out["shards"] = st.extra["shards"]
        out["partition_strategy"] = st.extra.get("partition_strategy")
        out["merge_seconds"] = st.extra.get("merge_seconds", 0.0)
        resumed_shards = st.extra.get("shards_resumed", 0)
        if resumed_shards:
            out["shards_resumed"] = resumed_shards
    if args.checkpoint_dir:
        out["checkpoint_dir"] = args.checkpoint_dir
        out["snapshots_written"] = st.extra.get("snapshots_written", 0)
        resumed = st.extra.get("resumed_from")
        if resumed:
            out["resumed_from"] = str(resumed)
    if cache is not None:
        # Whole-invocation counters (compile-time autotune/kernel-choice
        # lookups happen before Runtime.run, so read the cache itself
        # rather than the per-run deltas in stats.extra).
        out["cache"] = {
            "dir": str(cache.root),
            "hits": cache.hit_total(),
            "misses": cache.miss_total(),
            "evictions": cache.eviction_total(),
        }
        source = st.extra.get("blocked_csr_source")
        if source is not None:
            out["cache"]["blocked_csr_source"] = source
    if st.health is not None:
        out["health"] = st.health.as_dict() if args.json else st.health.summary()
    dropped = runtime.bus.dropped_total()
    if dropped:
        # Observer handlers are isolated by design, but a silently broken
        # metrics/tracing pipeline should not go unnoticed in scripts.
        out["dropped_events"] = dropped
        print(f"warning: {dropped} observer event(s) dropped during this "
              f"run (a metrics/tracing handler raised); the sketch itself "
              f"is unaffected", file=sys.stderr)
    if observer is not None:
        if args.metrics_out:
            if str(args.metrics_out).endswith(".json"):
                observer._sync_dropped()
                observer.registry.write_json(args.metrics_out)
            else:
                observer.write_metrics(args.metrics_out)
            out["metrics_out"] = args.metrics_out
        if args.trace_out:
            if str(args.trace_out).endswith(".chrome.json"):
                from pathlib import Path

                Path(args.trace_out).write_text(
                    json.dumps(observer.tracer.to_chrome(), indent=2) + "\n",
                    encoding="utf-8")
            else:
                observer.tracer.to_json(args.trace_out)
            out["trace_out"] = args.trace_out
        if want_profile:
            profile = observer.profile(result)
            out["profile"] = profile.as_dict()
            if not args.json:
                out["profile_text"] = profile.render()
            if args.profile_out:
                from pathlib import Path

                Path(args.profile_out).write_text(
                    json.dumps(profile.as_dict(), indent=2, sort_keys=True)
                    + "\n", encoding="utf-8")
                out["profile_out"] = args.profile_out
        observer.detach()
    return out


def _cmd_lsq(args) -> dict:
    A = _load_matrix(args)
    rng = np.random.default_rng(args.seed)
    b = (CscOperator(A).matvec(rng.standard_normal(A.shape[1]))
         + rng.standard_normal(A.shape[0]))
    if args.solver == "lsqr-d":
        sol = solve_lsqr_diag(A, b, max_iter=40 * A.shape[1])
    elif args.solver == "direct":
        sol = solve_direct_qr(A, b)
    else:
        method = args.solver.split("-", 1)[1]
        sol = solve_sap(A, b, gamma=args.gamma, method=method,
                        config=SketchConfig(gamma=args.gamma, seed=args.seed))
    return {
        "solver": sol.method,
        "shape": list(A.shape),
        "nnz": A.nnz,
        "seconds": sol.seconds,
        "iterations": sol.iterations,
        "error": sol.error,
        "workspace_mbytes": sol.memory_mbytes,
        "converged": sol.converged,
    }


def _cmd_svd(args) -> dict:
    from .core import SketchConfig, randomized_svd

    A = _load_matrix(args)
    res = randomized_svd(A, rank=args.rank, oversample=args.oversample,
                         power_iters=args.power_iters,
                         config=SketchConfig(seed=args.seed))
    return {
        "shape": list(A.shape),
        "nnz": A.nnz,
        "rank": res.rank,
        "singular_values": [float(s) for s in res.s],
        "power_iterations": res.power_iterations,
        "sketch_samples_generated": res.sketch_stats.samples_generated,
    }


def _cmd_suite(args) -> dict:
    from .workloads import ABNORMAL_SUITE, LSQ_SUITE, SPMM_SUITE, current_scale, scale_dims

    out = {"scale": current_scale(), "suites": {}}
    for label, suite in (("spmm", SPMM_SUITE), ("lsq", LSQ_SUITE),
                         ("abnormal", ABNORMAL_SUITE)):
        rows = []
        for case in suite.values():
            m, n = scale_dims(case.m, case.n, out["scale"])
            rows.append({"name": case.name, "structure": case.structure,
                         "paper_m": case.m, "paper_n": case.n,
                         "paper_nnz": case.nnz, "scaled_m": m, "scaled_n": n})
        out["suites"][label] = rows
    return out


def _cmd_cache(args) -> dict:
    """``repro cache {stats,clear,verify}`` maintenance subcommand."""
    from .cache import ArtifactCache, CachePolicy

    if args.cache_dir:
        policy = CachePolicy(cache_dir=args.cache_dir)
    else:
        policy = CachePolicy.from_env()
        if not policy.enabled:
            from .errors import ConfigError

            raise ConfigError(
                "no cache directory: pass --cache-dir or set $REPRO_CACHE_DIR")
    cache = ArtifactCache(policy)
    if args.action == "stats":
        out = cache.stats()
        # Counters are per-process and this process did no lookups;
        # the on-disk inventory is the useful part here.
        for transient in ("hits", "misses", "evictions"):
            out.pop(transient, None)
        return {"action": "stats", **out}
    if args.action == "clear":
        removed = cache.clear()
        return {"action": "clear", "cache_dir": str(cache.root),
                "removed_entries": removed}
    report = cache.verify()
    return {"action": "verify", "cache_dir": str(cache.root), **report}


def _cmd_serve(args) -> int:
    """``repro serve`` — run the daemon until drained; returns its exit
    code directly (0 = clean drain, 1 = drain budget expired)."""
    from .serve import ServeConfig, ServeDaemon

    cache_dir = None
    if not args.no_cache:
        if args.cache_dir:
            cache_dir = args.cache_dir
        else:
            from .cache import CachePolicy

            policy = CachePolicy.from_env()
            cache_dir = policy.cache_dir if policy.enabled else None
    cfg = ServeConfig(
        host=args.host, port=args.port,
        queue_capacity=args.queue_capacity, executors=args.executors,
        default_deadline=(None if args.default_deadline <= 0
                          else args.default_deadline),
        drain_timeout=args.drain_timeout,
        breaker_threshold=args.breaker_threshold,
        breaker_recovery=args.breaker_recovery,
        max_batch=args.max_batch,
        warm_pools=args.warm_pools,
        checkpoint_dir=args.checkpoint_dir,
        cache_dir=cache_dir,
        allow_chaos=args.allow_chaos,
        ready_file=args.ready_file,
    )
    daemon = ServeDaemon(cfg).start()
    host, port = daemon.address
    print(f"repro serve listening on http://{host}:{port} "
          f"(queue={cfg.queue_capacity}, executors={cfg.executors})",
          file=sys.stderr)
    return daemon.run()


def _render(command: str, payload: dict) -> str:
    if command == "sketch" and "explain" in payload:
        lines = [payload["explain"]]
        if payload.get("plan_json"):
            lines.append(f"plan written to {payload['plan_json']}")
        return "\n".join(lines)
    if command == "sketch" and "profile_text" in payload:
        payload = dict(payload)
        profile_text = payload.pop("profile_text")
        payload.pop("profile", None)
        return render_kv_block(command, list(payload.items())) \
            + "\n\n" + profile_text
    if command == "suite":
        parts = [f"scale: {payload['scale']}"]
        for label, rows in payload["suites"].items():
            table_rows = [[r["name"], r["structure"], r["paper_m"],
                           r["paper_n"], r["paper_nnz"], r["scaled_m"],
                           r["scaled_n"]] for r in rows]
            parts.append(format_table(
                ["name", "structure", "m(p)", "n(p)", "nnz(p)", "m", "n"],
                table_rows, title=f"{label} suite"))
        return "\n\n".join(parts)
    return render_kv_block(command, list(payload.items()))


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "serve":
        # The daemon owns stdout/stderr and the process exit code; no
        # JSON payload to print.
        try:
            return _cmd_serve(args)
        except Exception as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    handlers = {
        "probe": _cmd_probe,
        "sketch": _cmd_sketch,
        "lsq": _cmd_lsq,
        "svd": _cmd_svd,
        "suite": _cmd_suite,
        "cache": _cmd_cache,
    }
    try:
        payload = handlers[args.command](args)
    except Exception as exc:  # surface library errors as exit-code failures
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(payload, indent=2, default=str))
    else:
        print(_render(args.command, payload))
    if args.command == "cache" and payload.get("action") == "verify" \
            and payload.get("corrupt"):
        # `repro cache verify` is a CI guard: corrupt entries must fail
        # the pipeline, not just print a report.
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
