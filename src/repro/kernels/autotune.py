"""Empirical block-size autotuning for the sketching SpMM.

Section V-B tunes ``(b_d, b_n)`` by hand per machine and workload; this
module automates the search the way production kernels do it: start from
the model recommendation (:func:`repro.model.recommend_block_sizes`),
evaluate a small grid of candidates on a *subsampled* problem (a column
slice, so a trial costs a fraction of the full product), and return the
measured winner.  The same harness optionally races Algorithm 3 against
Algorithm 4 — an empirical version of the Section II-B architecture
dispatch for hosts that don't match either machine preset.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from ..errors import ConfigError
from ..rng.base import SketchingRNG
from ..sparse.csc import CSCMatrix
from ..utils.canonical import canonical_json
from ..utils.validation import check_positive_int
from .backends import KernelBackend, KernelWorkspace, resolve_backend
from .blocking import sketch_spmm

if TYPE_CHECKING:  # pragma: no cover
    from ..cache.store import ArtifactCache

__all__ = ["TUNE_RESULT_VERSION", "TuneResult", "autotune_blocking",
           "autotune_kernel"]

TUNE_RESULT_VERSION = 1


@dataclass
class TuneResult:
    """Outcome of an autotuning run.

    ``backend`` names the kernel backend the trials actually timed; a
    cached result is only valid for that backend (fused JIT loops shift
    the (b_d, b_n) cost balance, so numpy-tuned blockings must not be
    applied to numba runs or vice versa).  ``tuning_seed`` is the RNG
    seed the tuning column slice was derived from, so a cached result
    names the exact subproblem it was measured on.
    """

    b_d: int
    b_n: int
    kernel: str
    seconds: float                       # winning trial time (subsampled)
    trials: list = field(default_factory=list)  # (kernel, b_d, b_n, seconds)
    backend: str = "numpy"
    tuning_seed: int = 0

    def describe(self) -> str:
        """One-line summary of the winner."""
        return (f"{self.kernel} [{self.backend}] with "
                f"(b_d={self.b_d}, b_n={self.b_n}): "
                f"{self.seconds:.4f}s on the tuning slice")

    # -- serialization (stable: the artifact cache stores this verbatim) ----

    def to_dict(self) -> dict:
        return {
            "version": TUNE_RESULT_VERSION,
            "b_d": int(self.b_d), "b_n": int(self.b_n),
            "kernel": self.kernel, "seconds": float(self.seconds),
            "trials": [[k, int(bd), int(bn), float(s)]
                       for k, bd, bn, s in self.trials],
            "backend": self.backend,
            "tuning_seed": int(self.tuning_seed),
        }

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, compact, stable float repr)."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, data: dict) -> "TuneResult":
        version = int(data.get("version", TUNE_RESULT_VERSION))
        if version > TUNE_RESULT_VERSION:
            raise ConfigError(
                f"TuneResult format version {version} is newer than this "
                f"library understands (max {TUNE_RESULT_VERSION})"
            )
        return cls(
            b_d=int(data["b_d"]), b_n=int(data["b_n"]),
            kernel=str(data["kernel"]), seconds=float(data["seconds"]),
            trials=[(str(k), int(bd), int(bn), float(s))
                    for k, bd, bn, s in data.get("trials", [])],
            backend=str(data.get("backend", "numpy")),
            tuning_seed=int(data.get("tuning_seed", 0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "TuneResult":
        return cls.from_dict(json.loads(text))


def _candidate_grid(d: int, n: int, base: tuple[int, int]) -> list[tuple[int, int]]:
    """A small geometric neighbourhood around the model recommendation."""
    b_d0, b_n0 = base
    cands = set()
    for fd in (0.5, 1.0, 2.0):
        for fn in (0.25, 1.0, 4.0):
            b_d = max(1, min(d, int(round(b_d0 * fd))))
            b_n = max(1, min(n, int(round(b_n0 * fn))))
            cands.add((b_d, b_n))
    cands.add((d, max(1, min(n, 16))))  # the "tall" parallel-friendly shape
    return sorted(cands)


def _tuning_slice(A: CSCMatrix, max_cols: int, seed: int = 0) -> CSCMatrix:
    """A contiguous column slice keeping trials cheap but representative.

    The window start is drawn from a seeded generator (not a fixed
    centre), so repeat tunings with the same *seed* measure the exact
    same subproblem — the property that makes cached
    :class:`TuneResult` records reproducible and auditable — while
    different seeds sample different regions of a structured pattern.
    """
    n = A.shape[1]
    if n <= max_cols:
        return A
    rng = np.random.default_rng(int(seed))
    start = int(rng.integers(0, n - max_cols + 1))
    return A.col_block(start, start + max_cols)


def autotune_blocking(
    A: CSCMatrix,
    d: int,
    rng_factory: Callable[[], SketchingRNG],
    *,
    kernel: str = "algo3",
    candidates: Sequence[tuple[int, int]] | None = None,
    max_tuning_cols: int = 256,
    repeats: int = 2,
    backend: "str | KernelBackend | None" = None,
    tuning_seed: int = 0,
    cache: "ArtifactCache | None" = None,
) -> TuneResult:
    """Measure a candidate grid of ``(b_d, b_n)`` and return the fastest.

    Parameters
    ----------
    rng_factory:
        Zero-argument factory producing fresh generators (one per trial so
        instrumentation counters don't leak between trials).
    candidates:
        Explicit grid; default is a geometric neighbourhood around the
        model recommendation for this problem's density.
    max_tuning_cols:
        Trials run on a seeded column slice of at most this width.
    backend:
        Kernel backend the trials time (name, instance, or
        ``None``/``"auto"`` for the environment default).  The backend is
        resolved once, warmed up *before* any trial (JIT compilation must
        not be charged to a candidate), and recorded on the result.
    tuning_seed:
        Seed for the column-slice placement; recorded on the result so a
        cached tuning names the exact subproblem it measured.
    cache:
        Optional :class:`~repro.cache.ArtifactCache`; a prior result for
        the same (pattern, machine, backend, tuning parameters) is
        returned without running a single trial, and fresh results are
        stored for the next caller.
    """
    d = check_positive_int(d, "d")
    repeats = check_positive_int(repeats, "repeats")
    if kernel not in ("algo3", "algo4"):
        raise ConfigError(f"kernel must be 'algo3' or 'algo4', got {kernel!r}")
    be = resolve_backend(backend)
    key = None
    if cache is not None:
        from ..cache.artifacts import fetch_tune_result, tune_key

        key = tune_key(A, kernel=kernel, d=d, backend=be.name,
                       max_tuning_cols=max_tuning_cols, repeats=repeats,
                       tuning_seed=tuning_seed, candidates=candidates)
        cached = fetch_tune_result(cache, key)
        if cached is not None:
            return cached
    be.warmup(rng_factory(), np.float64)
    workspace = KernelWorkspace()
    slice_A = _tuning_slice(A, max_tuning_cols, tuning_seed)
    n_slice = slice_A.shape[1]

    if candidates is None:
        from ..model import LAPTOP, recommend_block_sizes

        rho = max(A.density, 1e-9)
        base = recommend_block_sizes(LAPTOP, rho, d, n_slice)
        candidates = _candidate_grid(d, n_slice, base)
    if not candidates:
        raise ConfigError("candidate grid is empty")

    trials = []
    for b_d, b_n in candidates:
        best = float("inf")
        for _ in range(repeats):
            rng = rng_factory()
            t0 = time.perf_counter()
            sketch_spmm(slice_A, d, rng, kernel=kernel,
                        b_d=min(b_d, d), b_n=min(b_n, n_slice),
                        backend=be, workspace=workspace)
            best = min(best, time.perf_counter() - t0)
        trials.append((kernel, int(min(b_d, d)), int(min(b_n, n_slice)), best))

    kernel_name, b_d, b_n, secs = min(trials, key=lambda t: t[3])
    result = TuneResult(b_d=b_d, b_n=b_n, kernel=kernel_name, seconds=secs,
                        trials=trials, backend=be.name,
                        tuning_seed=int(tuning_seed))
    if cache is not None:
        from ..cache.artifacts import store_tune_result

        store_tune_result(cache, key, result)
    return result


def autotune_kernel(
    A: CSCMatrix,
    d: int,
    rng_factory: Callable[[], SketchingRNG],
    *,
    max_tuning_cols: int = 256,
    repeats: int = 2,
    backend: "str | KernelBackend | None" = None,
    tuning_seed: int = 0,
    cache: "ArtifactCache | None" = None,
) -> TuneResult:
    """Race Algorithm 3 vs Algorithm 4 (each at its tuned blocking).

    The empirical counterpart of :func:`repro.kernels.choose_kernel` for
    hosts whose cache/RNG behaviour doesn't match a preset; Algorithm 4's
    trials include its format-conversion cost, as Table IV would.  Both
    algorithms race on the same resolved *backend* (resolved once here so
    the comparison cannot straddle an environment change mid-race).

    With a *cache*, a prior race for the same inputs returns without any
    trials (the per-kernel legs cache their own entries too, so a race
    can also partially reuse a single-kernel tuning).
    """
    be = resolve_backend(backend)
    key = None
    if cache is not None:
        from ..cache.artifacts import fetch_tune_result, tune_key

        key = tune_key(A, kernel="race", d=d, backend=be.name,
                       max_tuning_cols=max_tuning_cols, repeats=repeats,
                       tuning_seed=tuning_seed, candidates=None)
        cached = fetch_tune_result(cache, key)
        if cached is not None:
            return cached
    results = [
        autotune_blocking(A, d, rng_factory, kernel=k, backend=be,
                          max_tuning_cols=max_tuning_cols, repeats=repeats,
                          tuning_seed=tuning_seed, cache=cache)
        for k in ("algo3", "algo4")
    ]
    best = min(results, key=lambda r: r.seconds)
    # Fresh record (never mutate `best`: the per-kernel legs may have
    # memoized that exact object in the cache).
    winner = TuneResult(
        b_d=best.b_d, b_n=best.b_n, kernel=best.kernel, seconds=best.seconds,
        trials=[t for r in results for t in r.trials],
        backend=best.backend, tuning_seed=best.tuning_seed,
    )
    if cache is not None:
        from ..cache.artifacts import store_tune_result

        store_tune_result(cache, key, winner)
    return winner
