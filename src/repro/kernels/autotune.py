"""Empirical block-size autotuning for the sketching SpMM.

Section V-B tunes ``(b_d, b_n)`` by hand per machine and workload; this
module automates the search the way production kernels do it: start from
the model recommendation (:func:`repro.model.recommend_block_sizes`),
evaluate a small grid of candidates on a *subsampled* problem (a column
slice, so a trial costs a fraction of the full product), and return the
measured winner.  The same harness optionally races Algorithm 3 against
Algorithm 4 — an empirical version of the Section II-B architecture
dispatch for hosts that don't match either machine preset.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigError
from ..rng.base import SketchingRNG
from ..sparse.csc import CSCMatrix
from ..utils.validation import check_positive_int
from .backends import KernelBackend, KernelWorkspace, resolve_backend
from .blocking import sketch_spmm

__all__ = ["TuneResult", "autotune_blocking", "autotune_kernel"]


@dataclass
class TuneResult:
    """Outcome of an autotuning run.

    ``backend`` names the kernel backend the trials actually timed; a
    cached result is only valid for that backend (fused JIT loops shift
    the (b_d, b_n) cost balance, so numpy-tuned blockings must not be
    applied to numba runs or vice versa).
    """

    b_d: int
    b_n: int
    kernel: str
    seconds: float                       # winning trial time (subsampled)
    trials: list = field(default_factory=list)  # (kernel, b_d, b_n, seconds)
    backend: str = "numpy"

    def describe(self) -> str:
        """One-line summary of the winner."""
        return (f"{self.kernel} [{self.backend}] with "
                f"(b_d={self.b_d}, b_n={self.b_n}): "
                f"{self.seconds:.4f}s on the tuning slice")


def _candidate_grid(d: int, n: int, base: tuple[int, int]) -> list[tuple[int, int]]:
    """A small geometric neighbourhood around the model recommendation."""
    b_d0, b_n0 = base
    cands = set()
    for fd in (0.5, 1.0, 2.0):
        for fn in (0.25, 1.0, 4.0):
            b_d = max(1, min(d, int(round(b_d0 * fd))))
            b_n = max(1, min(n, int(round(b_n0 * fn))))
            cands.add((b_d, b_n))
    cands.add((d, max(1, min(n, 16))))  # the "tall" parallel-friendly shape
    return sorted(cands)


def _tuning_slice(A: CSCMatrix, max_cols: int) -> CSCMatrix:
    """A contiguous column slice keeping trials cheap but representative."""
    n = A.shape[1]
    if n <= max_cols:
        return A
    start = (n - max_cols) // 2
    return A.col_block(start, start + max_cols)


def autotune_blocking(
    A: CSCMatrix,
    d: int,
    rng_factory: Callable[[], SketchingRNG],
    *,
    kernel: str = "algo3",
    candidates: Sequence[tuple[int, int]] | None = None,
    max_tuning_cols: int = 256,
    repeats: int = 2,
    backend: "str | KernelBackend | None" = None,
) -> TuneResult:
    """Measure a candidate grid of ``(b_d, b_n)`` and return the fastest.

    Parameters
    ----------
    rng_factory:
        Zero-argument factory producing fresh generators (one per trial so
        instrumentation counters don't leak between trials).
    candidates:
        Explicit grid; default is a geometric neighbourhood around the
        model recommendation for this problem's density.
    max_tuning_cols:
        Trials run on a centred column slice of at most this width.
    backend:
        Kernel backend the trials time (name, instance, or
        ``None``/``"auto"`` for the environment default).  The backend is
        resolved once, warmed up *before* any trial (JIT compilation must
        not be charged to a candidate), and recorded on the result.
    """
    d = check_positive_int(d, "d")
    repeats = check_positive_int(repeats, "repeats")
    if kernel not in ("algo3", "algo4"):
        raise ConfigError(f"kernel must be 'algo3' or 'algo4', got {kernel!r}")
    be = resolve_backend(backend)
    be.warmup(rng_factory(), np.float64)
    workspace = KernelWorkspace()
    slice_A = _tuning_slice(A, max_tuning_cols)
    n_slice = slice_A.shape[1]

    if candidates is None:
        from ..model import LAPTOP, recommend_block_sizes

        rho = max(A.density, 1e-9)
        base = recommend_block_sizes(LAPTOP, rho, d, n_slice)
        candidates = _candidate_grid(d, n_slice, base)
    if not candidates:
        raise ConfigError("candidate grid is empty")

    trials = []
    for b_d, b_n in candidates:
        best = float("inf")
        for _ in range(repeats):
            rng = rng_factory()
            t0 = time.perf_counter()
            sketch_spmm(slice_A, d, rng, kernel=kernel,
                        b_d=min(b_d, d), b_n=min(b_n, n_slice),
                        backend=be, workspace=workspace)
            best = min(best, time.perf_counter() - t0)
        trials.append((kernel, int(min(b_d, d)), int(min(b_n, n_slice)), best))

    kernel_name, b_d, b_n, secs = min(trials, key=lambda t: t[3])
    return TuneResult(b_d=b_d, b_n=b_n, kernel=kernel_name, seconds=secs,
                      trials=trials, backend=be.name)


def autotune_kernel(
    A: CSCMatrix,
    d: int,
    rng_factory: Callable[[], SketchingRNG],
    *,
    max_tuning_cols: int = 256,
    repeats: int = 2,
    backend: "str | KernelBackend | None" = None,
) -> TuneResult:
    """Race Algorithm 3 vs Algorithm 4 (each at its tuned blocking).

    The empirical counterpart of :func:`repro.kernels.choose_kernel` for
    hosts whose cache/RNG behaviour doesn't match a preset; Algorithm 4's
    trials include its format-conversion cost, as Table IV would.  Both
    algorithms race on the same resolved *backend* (resolved once here so
    the comparison cannot straddle an environment change mid-race).
    """
    be = resolve_backend(backend)
    results = [
        autotune_blocking(A, d, rng_factory, kernel=k, backend=be,
                          max_tuning_cols=max_tuning_cols, repeats=repeats)
        for k in ("algo3", "algo4")
    ]
    winner = min(results, key=lambda r: r.seconds)
    winner.trials = [t for r in results for t in r.trials]
    return winner
