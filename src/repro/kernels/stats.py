"""Instrumentation record shared by all sketching kernels.

Tables III and V of the paper split each kernel's runtime into "sample
time" (random number generation) and total time, and Tables IV and VI
report the blocked-CSR "conversion time" separately.  Every kernel in this
package therefore returns a :class:`KernelStats` alongside the product,
with those buckets filled from a :class:`repro.utils.Stopwatch`, plus the
RNG-volume counters (Section III-B: Algorithm 3 always generates
``d * nnz(A)`` numbers; Algorithm 4 cuts this to roughly
``d * m * ceil(n / b_n)`` minus empty rows) that let tests assert the
paper's accounting exactly.

Parallel runs need two time axes: ``total_seconds`` stays the historical
per-invocation bucket (wall time for a single kernel call, summed across
calls by :meth:`KernelStats.merge`), while ``cpu_seconds`` /
``wall_seconds`` record the engine path's busy-time and wall-clock
explicitly so derived rates never over- or under-count when the sum of
per-worker totals exceeds the wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from numbers import Number
from typing import TYPE_CHECKING

from ..errors import ConfigError
from ..utils.flops import gflops

if TYPE_CHECKING:  # pragma: no cover
    from ..parallel.resilience import RunHealth

__all__ = ["KernelStats"]


@dataclass
class KernelStats:
    """Costs of one sketching-SpMM invocation.

    Attributes
    ----------
    kernel:
        Kernel identifier (``"algo3"``, ``"algo4"``, ``"pregen"``, …).
    sample_seconds:
        Wall time spent generating sketch entries (Tables III/V "sample time").
    compute_seconds:
        Wall time in the arithmetic updates.
    conversion_seconds:
        Wall time building the blocked-CSR structure (0 for Algorithm 3,
        which "only requires standard CSC" assumed given for free).
    total_seconds:
        Full kernel wall time (sample + compute + driver overhead; the
        paper notes totals run slightly above the sum because "the timer
        creates additional overhead").
    cpu_seconds:
        Summed per-worker busy seconds on the engine path (exceeds
        ``wall_seconds`` once more than one thread does useful work);
        0 means "not recorded" and derived rates fall back to
        ``total_seconds``.
    wall_seconds:
        Wall-clock duration of the invocation on the engine path; under
        :meth:`merge` the *maximum* is kept (merged parallel pieces
        overlap in time), unlike ``total_seconds`` which sums.
    samples_generated:
        Number of sketch entries produced by the RNG.
    flops:
        ``2 * d * nnz(A)`` useful flops of the product.
    blocks_processed:
        Outer-loop block count (Algorithm 1 iterations).
    d, b_d, b_n:
        Sketch size and blocking parameters used.
    extra:
        Free-form auxiliary metrics (e.g. conversion op counts).
    health:
        :class:`repro.parallel.resilience.RunHealth` report when the
        invocation ran through the resilient executor (attempts, retries,
        repaired blocks, degradation decisions); ``None`` otherwise.
    """

    kernel: str
    sample_seconds: float = 0.0
    compute_seconds: float = 0.0
    conversion_seconds: float = 0.0
    total_seconds: float = 0.0
    cpu_seconds: float = 0.0
    wall_seconds: float = 0.0
    samples_generated: int = 0
    flops: int = 0
    blocks_processed: int = 0
    d: int = 0
    b_d: int = 0
    b_n: int = 0
    extra: dict = field(default_factory=dict)
    health: "RunHealth | None" = None

    @property
    def gflops_rate(self) -> float:
        """Useful GFlop/s over the wall time (Table VII's metric).

        Uses ``wall_seconds`` when the engine recorded it (parallel
        runs sum per-worker busy time into ``cpu_seconds``, so dividing
        by that would under-report), else ``total_seconds``.
        """
        seconds = self.wall_seconds if self.wall_seconds > 0 \
            else self.total_seconds
        if seconds <= 0:
            return 0.0
        return gflops(self.flops, seconds)

    @property
    def sample_fraction(self) -> float:
        """Share of busy time spent generating random numbers.

        The denominator is ``cpu_seconds`` when recorded (per-worker
        busy time is the axis ``sample_seconds`` accumulates on), else
        ``total_seconds``; the result is clamped to ``[0, 1]`` so timer
        overhead (``sample_seconds`` slightly above a tiny total) can
        never report an impossible fraction.
        """
        base = self.cpu_seconds if self.cpu_seconds > 0 else self.total_seconds
        if base <= 0:
            return 0.0
        return min(1.0, self.sample_seconds / base)

    def merge(self, other: "KernelStats") -> None:
        """Accumulate another invocation's costs into this record.

        Time buckets, RNG/flop counters, and numeric ``extra`` entries
        add; ``wall_seconds`` keeps the maximum (merged parallel pieces
        overlap in time); blocking parameters (``d``/``b_d``/``b_n``)
        are adopted when unset here and must agree when both records
        carry them (:class:`~repro.errors.ConfigError` otherwise — a
        merge across different grids would mis-attribute every derived
        rate); ``health`` reports are folded via
        :meth:`repro.parallel.resilience.RunHealth.merge`.

        Merging a record into itself is rejected: aggregation layers
        must build their aggregate as a *fresh* record (never alias a
        constituent), otherwise the constituent silently becomes the
        aggregate and any later sum-of-parts reconciliation — or a
        second-level merge, e.g. a sharded run folded into a service
        total — double-counts its buckets and ``extra`` counters.
        """
        if other is self:
            raise ConfigError(
                "cannot merge a KernelStats record into itself; build "
                "aggregates as a fresh record instead of aliasing a "
                "constituent")
        for name in ("d", "b_d", "b_n"):
            mine, theirs = getattr(self, name), getattr(other, name)
            if mine and theirs and mine != theirs:
                raise ConfigError(
                    f"cannot merge KernelStats with different {name}: "
                    f"{mine} != {theirs}"
                )
            if not mine:
                setattr(self, name, theirs)
        self.sample_seconds += other.sample_seconds
        self.compute_seconds += other.compute_seconds
        self.conversion_seconds += other.conversion_seconds
        self.total_seconds += other.total_seconds
        self.cpu_seconds += other.cpu_seconds
        self.wall_seconds = max(self.wall_seconds, other.wall_seconds)
        self.samples_generated += other.samples_generated
        self.flops += other.flops
        self.blocks_processed += other.blocks_processed
        for key, value in other.extra.items():
            if key not in self.extra:
                self.extra[key] = value
            elif (isinstance(value, Number)
                  and not isinstance(value, bool)
                  and isinstance(self.extra[key], Number)
                  and not isinstance(self.extra[key], bool)):
                self.extra[key] = self.extra[key] + value
            # conflicting non-numeric values: first writer wins (backend
            # attribution etc. must not be silently overwritten)
        if other.health is not None:
            if self.health is None:
                self.health = other.health
            else:
                self.health.merge(other.health)
