"""Instrumentation record shared by all sketching kernels.

Tables III and V of the paper split each kernel's runtime into "sample
time" (random number generation) and total time, and Tables IV and VI
report the blocked-CSR "conversion time" separately.  Every kernel in this
package therefore returns a :class:`KernelStats` alongside the product,
with those buckets filled from a :class:`repro.utils.Stopwatch`, plus the
RNG-volume counters (Section III-B: Algorithm 3 always generates
``d * nnz(A)`` numbers; Algorithm 4 cuts this to roughly
``d * m * ceil(n / b_n)`` minus empty rows) that let tests assert the
paper's accounting exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..utils.flops import gflops

if TYPE_CHECKING:  # pragma: no cover
    from ..parallel.resilience import RunHealth

__all__ = ["KernelStats"]


@dataclass
class KernelStats:
    """Costs of one sketching-SpMM invocation.

    Attributes
    ----------
    kernel:
        Kernel identifier (``"algo3"``, ``"algo4"``, ``"pregen"``, …).
    sample_seconds:
        Wall time spent generating sketch entries (Tables III/V "sample time").
    compute_seconds:
        Wall time in the arithmetic updates.
    conversion_seconds:
        Wall time building the blocked-CSR structure (0 for Algorithm 3,
        which "only requires standard CSC" assumed given for free).
    total_seconds:
        Full kernel wall time (sample + compute + driver overhead; the
        paper notes totals run slightly above the sum because "the timer
        creates additional overhead").
    samples_generated:
        Number of sketch entries produced by the RNG.
    flops:
        ``2 * d * nnz(A)`` useful flops of the product.
    blocks_processed:
        Outer-loop block count (Algorithm 1 iterations).
    d, b_d, b_n:
        Sketch size and blocking parameters used.
    extra:
        Free-form auxiliary metrics (e.g. conversion op counts).
    health:
        :class:`repro.parallel.resilience.RunHealth` report when the
        invocation ran through the resilient executor (attempts, retries,
        repaired blocks, degradation decisions); ``None`` otherwise.
    """

    kernel: str
    sample_seconds: float = 0.0
    compute_seconds: float = 0.0
    conversion_seconds: float = 0.0
    total_seconds: float = 0.0
    samples_generated: int = 0
    flops: int = 0
    blocks_processed: int = 0
    d: int = 0
    b_d: int = 0
    b_n: int = 0
    extra: dict = field(default_factory=dict)
    health: "RunHealth | None" = None

    @property
    def gflops_rate(self) -> float:
        """Useful GFlop/s over the total time (Table VII's metric)."""
        if self.total_seconds <= 0:
            return 0.0
        return gflops(self.flops, self.total_seconds)

    @property
    def sample_fraction(self) -> float:
        """Share of total time spent generating random numbers."""
        if self.total_seconds <= 0:
            return 0.0
        return self.sample_seconds / self.total_seconds

    def merge(self, other: "KernelStats") -> None:
        """Accumulate another invocation's costs into this record."""
        self.sample_seconds += other.sample_seconds
        self.compute_seconds += other.compute_seconds
        self.conversion_seconds += other.conversion_seconds
        self.total_seconds += other.total_seconds
        self.samples_generated += other.samples_generated
        self.flops += other.flops
        self.blocks_processed += other.blocks_processed
