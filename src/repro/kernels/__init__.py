"""Sketching SpMM kernels — the paper's primary contribution.

The six loop orderings of the toy kernel (Section II-B), the two
production kernels with on-the-fly random number generation — Algorithm 3
(*kji*, CSC) and Algorithm 4 (*jki*, blocked CSR) — the pre-generated-S
baselines, the Algorithm 1 outer blocking driver, and the architecture/
pattern-sensitive dispatcher.
"""

from .algo3 import algo3_block, algo3_block_reference
from .autotune import TuneResult, autotune_blocking, autotune_kernel
from .algo4 import algo4_block, algo4_block_reference
from .backends import (
    KernelBackend,
    KernelWorkspace,
    available_backends,
    get_backend,
    numba_available,
    registered_backends,
    resolve_backend,
)
from .batched import algo3_block_batched, algo4_block_batched
from .blocking import (default_block_sizes, iter_block_tasks, sketch_spmm,
                       sketch_spmm_batched)
from .dispatch import KernelChoice, choose_kernel, column_concentration
from .loop_orders import (
    LOOP_ORDER_KERNELS,
    RULED_OUT,
    kernel_ijk,
    kernel_ikj,
    kernel_jik,
    kernel_jki,
    kernel_kij,
    kernel_kji,
)
from .pregen import pregen_csr_transposed, pregen_full, pregen_rowblocks
from .stats import KernelStats

__all__ = [
    "TuneResult",
    "autotune_blocking",
    "autotune_kernel",
    "algo3_block",
    "algo3_block_reference",
    "algo4_block",
    "algo4_block_reference",
    "algo3_block_batched",
    "algo4_block_batched",
    "KernelBackend",
    "KernelWorkspace",
    "available_backends",
    "get_backend",
    "numba_available",
    "registered_backends",
    "resolve_backend",
    "default_block_sizes",
    "iter_block_tasks",
    "sketch_spmm",
    "sketch_spmm_batched",
    "KernelChoice",
    "choose_kernel",
    "column_concentration",
    "LOOP_ORDER_KERNELS",
    "RULED_OUT",
    "kernel_ijk",
    "kernel_ikj",
    "kernel_jik",
    "kernel_jki",
    "kernel_kij",
    "kernel_kji",
    "pregen_csr_transposed",
    "pregen_full",
    "pregen_rowblocks",
    "KernelStats",
]
