"""Batched block kernels — Algorithms 3 and 4 for *k* sketches in one pass.

The serving workload (fixed ``A``, many sketches — arXiv 2310.15419) pays
the full counter→sample RNG pipeline *per request* even though the sparse
traversal, the block bookkeeping, and (for Algorithm 4) the gathered
column/value/owner index structures are identical across requests.  These
kernels hoist all of that shared work out of the per-sketch loop:

* **one** stacked RNG call per panel produces the ``(k, d1, g)`` bits for
  every sketch of the batch (counter construction and the vectorized
  Philox/Threefry rounds amortize; see
  :class:`~repro.rng.batched.BatchedSketchRNG`);
* the CSC group boundaries (Algorithm 3) and the concatenated
  cols/vals/owner gather pattern (Algorithm 4) are computed once and
  reused for all ``k`` accumulations.

Bit-identity contract: for every sketch ``t`` the floating-point update
sequence applied to ``Ahat_stack[t]`` is exactly the sequence
:func:`~repro.kernels.algo3.algo3_block` /
:func:`~repro.kernels.algo4.algo4_block` applies — same panels, same
group boundaries, same ufunc forms — so the batched output equals ``k``
independent single-sketch runs bit for bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import ShapeError
from ..rng.batched import BatchedSketchRNG
from ..sparse.csc import CSCMatrix
from ..sparse.csr import CSRMatrix
from ..utils.timing import Stopwatch

if TYPE_CHECKING:  # pragma: no cover
    from .backends import KernelWorkspace

__all__ = ["algo3_block_batched", "algo4_block_batched"]


def _check_stack(Ahat_stack, brng: BatchedSketchRNG, n1: int) -> tuple[int, int]:
    k = brng.batch
    if len(Ahat_stack) != k:
        raise ShapeError(
            f"Ahat_stack holds {len(Ahat_stack)} sketches but the batched "
            f"RNG has {k} members")
    d1 = Ahat_stack[0].shape[0]
    for t in range(k):
        blk = Ahat_stack[t]
        if blk.ndim != 2 or blk.shape[0] != d1 or blk.shape[1] != n1:
            raise ShapeError(
                f"Ahat_stack[{t}] has shape {blk.shape}, expected "
                f"({d1}, {n1})")
    return k, d1


def algo3_block_batched(Ahat_stack, A_sub: CSCMatrix, r: int,
                        brng: BatchedSketchRNG,
                        watch: Stopwatch | None = None,
                        panel_nnz: int = 8192,
                        workspace: "KernelWorkspace | None" = None) -> None:
    """Vectorized Algorithm 3 over a sketch batch.

    One stacked RNG call per column group generates the ``(k, d1, g)``
    sketch panel; the group's segment boundaries are computed once and the
    per-sketch accumulation replays :func:`algo3_block`'s exact ufunc
    sequence on each ``(d1, g)`` slice.
    """
    n1 = A_sub.shape[1]
    k, d1 = _check_stack(Ahat_stack, brng, n1)
    if panel_nnz < 1:
        raise ShapeError(f"panel_nnz must be positive, got {panel_nnz}")
    sw = watch if watch is not None else Stopwatch()

    c = 0
    indptr = A_sub.indptr
    while c < n1:
        c_end = c + 1
        while c_end < n1 and indptr[c_end + 1] - indptr[c] <= panel_nnz:
            c_end += 1
        lo, hi = int(indptr[c]), int(indptr[c_end])
        js = A_sub.indices[lo:hi]
        vals = A_sub.data[lo:hi]
        if js.size:
            with sw.bucket("sample"):
                V_stack = brng.column_block_stack(r, d1, js)
            with sw.bucket("compute"):
                if c_end - c == 1:
                    for t in range(k):
                        Ahat_stack[t][:, c] += V_stack[t] @ vals
                else:
                    # Shared group bookkeeping, computed once per group.
                    seg_starts = (indptr[c:c_end] - lo).astype(np.int64)
                    widths = np.diff(indptr[c:c_end + 1])
                    nonempty = widths > 0
                    starts = seg_starts[nonempty]
                    targets = np.arange(c, c_end)[nonempty]
                    for t in range(k):
                        V = V_stack[t]
                        if workspace is None:
                            scaled = V * vals
                            sums = np.add.reduceat(scaled, starts, axis=1)
                        else:
                            scaled = workspace.get("algo3.scaled", V.shape)
                            np.multiply(V, vals, out=scaled)
                            sums = workspace.get("algo3.sums",
                                                 (d1, starts.size))
                            np.add.reduceat(scaled, starts, axis=1, out=sums)
                        Ahat_stack[t][:, targets] += sums
        c = c_end


def algo4_block_batched(Ahat_stack, A_blk: CSRMatrix, r: int,
                        brng: BatchedSketchRNG,
                        watch: Stopwatch | None = None,
                        row_chunk: int = 64,
                        workspace: "KernelWorkspace | None" = None) -> None:
    """Vectorized Algorithm 4 over a sketch batch.

    The per-block panel is generated once for all sketches (``(k, d1,
    #non-empty rows)`` — the quantity Section III-B bounds, times ``k``)
    and the scatter index structures (cols/vals/owner) are built once per
    row chunk and reused across the batch.
    """
    n1 = A_blk.shape[1]
    k, d1 = _check_stack(Ahat_stack, brng, n1)
    if row_chunk < 1:
        raise ShapeError(f"row_chunk must be positive, got {row_chunk}")
    sw = watch if watch is not None else Stopwatch()

    js = A_blk.nonempty_rows()
    if js.size == 0:
        return
    with sw.bucket("sample"):
        V_stack = brng.column_block_stack(r, d1, js)
    row_nnz = np.diff(A_blk.indptr)[js]
    avg_row_nnz = float(row_nnz.mean())
    with sw.bucket("compute"):
        if avg_row_nnz >= 8.0:
            # Long rows: the cols/vals slices are shared; each sketch
            # replays the same vectorized scaled-column add per row.
            for t_row in range(js.size):
                j = int(js[t_row])
                lo, hi = A_blk.indptr[j], A_blk.indptr[j + 1]
                cols = A_blk.indices[lo:hi]
                vals = A_blk.data[lo:hi]
                for t in range(k):
                    if workspace is None:
                        Ahat_stack[t][:, cols] += \
                            V_stack[t][:, t_row:t_row + 1] * vals
                    else:
                        scaled = workspace.get("algo4.scaled", (d1, hi - lo))
                        np.multiply(V_stack[t][:, t_row:t_row + 1], vals,
                                    out=scaled)
                        Ahat_stack[t][:, cols] += scaled
        else:
            # Short rows: one concatenated gather per chunk, shared by
            # the whole batch, then one scatter-add per sketch.
            indptr = A_blk.indptr
            for t0 in range(0, js.size, row_chunk):
                t1 = min(t0 + row_chunk, js.size)
                chunk_js = js[t0:t1]
                spans = [slice(int(indptr[j]), int(indptr[j + 1]))
                         for j in chunk_js]
                chunk_nnz = int(row_nnz[t0:t1].sum())
                if workspace is None:
                    cols = np.concatenate([A_blk.indices[s] for s in spans])
                    vals = np.concatenate([A_blk.data[s] for s in spans])
                    owner = np.repeat(np.arange(t0, t1), row_nnz[t0:t1])
                    for t in range(k):
                        scaled = V_stack[t][:, owner] * vals
                        np.add.at(Ahat_stack[t].T, cols, scaled.T)
                else:
                    cols = workspace.get("algo4.cols", (chunk_nnz,), np.int64)
                    np.concatenate([A_blk.indices[s] for s in spans],
                                   out=cols)
                    vals = workspace.get("algo4.vals", (chunk_nnz,))
                    np.concatenate([A_blk.data[s] for s in spans], out=vals)
                    owner = workspace.get("algo4.owner", (chunk_nnz,),
                                          np.int64)
                    pos = 0
                    for tt in range(t0, t1):
                        width = int(row_nnz[tt])
                        owner[pos:pos + width] = tt
                        pos += width
                    for t in range(k):
                        taken = workspace.get("algo4.taken", (d1, chunk_nnz))
                        np.take(V_stack[t], owner, axis=1, out=taken)
                        scaled = workspace.get("algo4.scaled", (d1, chunk_nnz))
                        np.multiply(taken, vals, out=scaled)
                        np.add.at(Ahat_stack[t].T, cols, scaled.T)
