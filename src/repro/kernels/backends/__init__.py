"""Kernel backend registry: interchangeable implementations of the hot loops.

The blocking driver (:func:`repro.kernels.sketch_spmm`), the parallel
executor, and the autotuner all consume Algorithms 3 and 4 through a
:class:`KernelBackend` instead of calling the module-level functions
directly.  Two implementations ship:

* ``numpy`` — the vectorized kernels of :mod:`repro.kernels.algo3` /
  :mod:`repro.kernels.algo4` (always available; the reference production
  path);
* ``numba`` — fused ``@njit(cache=True, nogil=True)`` loops that generate
  each sketch entry register-to-register inside the SpMM inner loop
  (:mod:`repro.kernels.backends.numba_backend`); available only when
  Numba is installed, otherwise requests fall back to ``numpy`` with a
  single informational log line.

Selection precedence: an explicit ``backend=`` argument (any entry point)
beats the :data:`REPRO_BACKEND <BACKEND_ENV_VAR>` environment variable,
which beats the automatic choice (``numba`` when importable, ``numpy``
otherwise).

Bit-identity contract: every backend produces the exact same
counter→sample mapping (see :mod:`repro.rng.jit`), and the ``numba``
backend reproduces the *reference* kernels' accumulation order exactly,
so its output is bit-identical to :func:`algo3_block_reference` /
:func:`algo4_block_reference`.  The vectorized ``numpy`` kernels reorder
floating-point accumulation (matmul/segment sums), so across backends the
accumulated entries agree to a few ulps while the generated samples agree
bit-for-bit; ``docs/performance.md`` spells out the guarantee.
"""

from __future__ import annotations

import abc
import logging
import os
from typing import TYPE_CHECKING

import numpy as np

from ...errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from ...rng.base import SketchingRNG
    from ...sparse.csc import CSCMatrix
    from ...sparse.csr import CSRMatrix
    from ...utils.timing import Stopwatch

__all__ = [
    "BACKEND_ENV_VAR",
    "KernelWorkspace",
    "KernelBackend",
    "register_backend",
    "available_backends",
    "registered_backends",
    "numba_available",
    "get_backend",
    "resolve_backend",
]

#: Environment variable consulted when no explicit backend is requested.
BACKEND_ENV_VAR = "REPRO_BACKEND"

_LOG = logging.getLogger("repro.kernels.backends")


class KernelWorkspace:
    """Named, lazily grown scratch buffers reused across kernel calls.

    The blocked drivers invoke the kernels once per (row-block,
    column-block) pair; without reuse every call churns the allocator for
    the same panel-sized temporaries.  A workspace hands out buffers by
    name, growing each underlying allocation monotonically and returning
    exact-shape views, so steady-state block iteration performs zero
    scratch allocations.  Not thread-safe by design: the executor keeps
    one workspace per worker thread.
    """

    def __init__(self) -> None:
        self._buffers: dict[tuple[str, np.dtype], np.ndarray] = {}
        self._shapes: dict[tuple[str, np.dtype], tuple[int, ...]] = {}

    def get(self, name: str, shape: tuple[int, ...],
            dtype=np.float64) -> np.ndarray:
        """A ``shape``-shaped view of the buffer registered under *name*.

        Contents are uninitialized (like ``np.empty``); callers must fully
        overwrite the view before reading it.  When the requested shape
        differs from the previous request under the same name, the view
        is *re-derived* from the backing allocation — never a stale-shaped
        alias — so interleaving runs with different ``r``/``b_d``/``b_n``
        (or batch sizes) through one long-lived workspace is safe as long
        as callers honor the overwrite contract.
        """
        dt = np.dtype(dtype)
        size = 1
        for extent in shape:
            extent = int(extent)
            if extent < 0:
                raise ConfigError(
                    f"workspace buffer {name!r} requested with negative "
                    f"extent in shape {tuple(shape)}")
            size *= extent
        key = (name, dt)
        buf = self._buffers.get(key)
        if buf is None or buf.size < size:
            buf = np.empty(max(size, 1), dtype=dt)
            self._buffers[key] = buf
        self._shapes[key] = tuple(int(e) for e in shape)
        return buf[:size].reshape(shape)

    def last_shape(self, name: str, dtype=np.float64) -> tuple[int, ...] | None:
        """The shape most recently requested under *name* (None if never)."""
        return self._shapes.get((name, np.dtype(dtype)))

    def reset(self) -> None:
        """Drop every buffer (and its shape history).

        Long-lived workspaces — one per process-pool worker, surviving
        plan reloads — call this when the plan geometry changes so the
        next run reallocates exact-fit scratch instead of slicing
        oversized stale allocations from a previous geometry.
        """
        self._buffers.clear()
        self._shapes.clear()

    @property
    def nbytes(self) -> int:
        """Total bytes currently held across all named buffers."""
        return sum(b.nbytes for b in self._buffers.values())


class KernelBackend(abc.ABC):
    """One implementation of the Algorithm 3 / Algorithm 4 block kernels.

    Subclasses are registered by name via :func:`register_backend`; the
    signatures mirror the module-level kernels plus a *workspace* for
    scratch reuse.  All implementations must realize the same
    counter→sample mapping (bit-identical generated entries) for the
    shared RNG types.
    """

    #: Registry key; subclasses override.
    name: str = "abstract"

    def __init__(self) -> None:
        #: Cumulative seconds this instance spent JIT-compiling (0.0 for
        #: interpreted backends); reported via ``KernelStats.extra`` so
        #: benchmarks can separate compile time from steady state.
        self.jit_compile_seconds: float = 0.0

    @classmethod
    def is_available(cls) -> bool:
        """Whether this backend can run in the current environment."""
        return True

    @abc.abstractmethod
    def algo3_block(self, Ahat_sub: np.ndarray, A_sub: "CSCMatrix", r: int,
                    rng: "SketchingRNG", watch: "Stopwatch | None" = None,
                    panel_nnz: int = 8192,
                    workspace: KernelWorkspace | None = None) -> None:
        """Algorithm 3 (kji, CSC) on one block; in-place into ``Ahat_sub``."""

    @abc.abstractmethod
    def algo4_block(self, Ahat_sub: np.ndarray, A_blk: "CSRMatrix", r: int,
                    rng: "SketchingRNG", watch: "Stopwatch | None" = None,
                    row_chunk: int = 64,
                    workspace: KernelWorkspace | None = None) -> None:
        """Algorithm 4 (jki, blocked CSR) on one block; in-place update."""

    def algo3_block_batched(self, Ahat_stack, A_sub: "CSCMatrix", r: int,
                            brng, watch: "Stopwatch | None" = None,
                            panel_nnz: int = 8192,
                            workspace: KernelWorkspace | None = None) -> None:
        """Algorithm 3 on one block for a whole sketch batch.

        ``Ahat_stack[t]`` is sketch *t*'s ``(d1, n1)`` output block and
        *brng* a :class:`~repro.rng.batched.BatchedSketchRNG`.  The
        default runs the scalar kernel once per member — always correct,
        no amortization; backends override with fused implementations
        that share the RNG pipeline and block bookkeeping across the
        batch.  Every implementation must be bit-identical to the
        member-by-member loop.
        """
        for t, member in enumerate(brng.members):
            self.algo3_block(Ahat_stack[t], A_sub, r, member, watch=watch,
                             panel_nnz=panel_nnz, workspace=workspace)

    def algo4_block_batched(self, Ahat_stack, A_blk: "CSRMatrix", r: int,
                            brng, watch: "Stopwatch | None" = None,
                            row_chunk: int = 64,
                            workspace: KernelWorkspace | None = None) -> None:
        """Algorithm 4 on one block for a whole sketch batch.

        Same contract as :meth:`algo3_block_batched`: the default loops
        the scalar kernel over ``brng.members``; overrides must stay
        bit-identical to that loop.
        """
        for t, member in enumerate(brng.members):
            self.algo4_block(Ahat_stack[t], A_blk, r, member, watch=watch,
                             row_chunk=row_chunk, workspace=workspace)

    def warmup(self, rng: "SketchingRNG",
               dtype=np.float64) -> float:
        """Pre-compile/prime the kernels for *rng*'s family and *dtype*.

        Returns the seconds spent (0.0 when nothing needed compiling).
        Drivers call this *outside* their timed region so measured kernel
        seconds reflect steady state, and surface the returned value as
        ``jit_compile_seconds``.
        """
        return 0.0


_REGISTRY: dict[str, type[KernelBackend]] = {}
_INSTANCES: dict[str, KernelBackend] = {}
_FALLBACK_LOGGED: set[str] = set()


def register_backend(cls: type[KernelBackend]) -> type[KernelBackend]:
    """Class decorator adding a backend to the registry under ``cls.name``."""
    _REGISTRY[cls.name] = cls
    return cls


def registered_backends() -> list[str]:
    """All registered backend names, available or not."""
    return sorted(_REGISTRY)


def available_backends() -> list[str]:
    """Names of the backends that can run in this environment."""
    return sorted(name for name, cls in _REGISTRY.items()
                  if cls.is_available())


def numba_available() -> bool:
    """Whether the JIT backend's dependency is importable."""
    from ...rng.jit import NUMBA_AVAILABLE

    return NUMBA_AVAILABLE


def get_backend(name: str) -> KernelBackend:
    """The (per-process singleton) backend instance registered as *name*."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown kernel backend {name!r}; registered: "
            f"{registered_backends()}"
        ) from None
    inst = _INSTANCES.get(name)
    if inst is None:
        inst = cls()
        _INSTANCES[name] = inst
    return inst


def resolve_backend(name: "str | KernelBackend | None" = None) -> KernelBackend:
    """Resolve a backend request to a runnable instance.

    ``None``/``"auto"`` consults :data:`BACKEND_ENV_VAR`, then picks
    ``numba`` when available and ``numpy`` otherwise.  An explicit request
    for a registered-but-unavailable backend degrades to ``numpy`` and
    logs one informational line per process (never a warning), so
    numba-less environments run every entry point unchanged.
    """
    if isinstance(name, KernelBackend):
        return name
    requested = name
    if requested is None or requested == "auto":
        env = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
        requested = env if env else "auto"
    if requested == "auto":
        for candidate in ("numba", "numpy"):
            cls = _REGISTRY.get(candidate)
            if cls is not None and cls.is_available():
                return get_backend(candidate)
        raise ConfigError("no kernel backend is available")  # pragma: no cover
    if requested not in _REGISTRY:
        raise ConfigError(
            f"unknown kernel backend {requested!r}; registered: "
            f"{registered_backends()}"
        )
    if not _REGISTRY[requested].is_available():
        if requested not in _FALLBACK_LOGGED:
            _FALLBACK_LOGGED.add(requested)
            _LOG.info(
                "kernel backend %r is not available in this environment "
                "(numba not importable); falling back to the numpy backend",
                requested,
            )
        return get_backend("numpy")
    return get_backend(requested)


# Import for registration side effects (must follow the registry
# definitions above).
from . import numpy_backend as _numpy_backend  # noqa: E402,F401
from . import numba_backend as _numba_backend  # noqa: E402,F401
