"""The always-available backend: the vectorized NumPy block kernels.

A thin adapter putting :func:`repro.kernels.algo3.algo3_block` and
:func:`repro.kernels.algo4.algo4_block` behind the
:class:`~repro.kernels.backends.KernelBackend` interface, including the
workspace pass-through for allocation-free steady state.  This is the
fallback every other backend degrades to, so it has no optional
dependencies and no warmup cost.
"""

from __future__ import annotations

import numpy as np

from ..algo3 import algo3_block
from ..algo4 import algo4_block
from ..batched import algo3_block_batched, algo4_block_batched
from . import KernelBackend, KernelWorkspace, register_backend

__all__ = ["NumpyBackend"]


@register_backend
class NumpyBackend(KernelBackend):
    """Vectorized NumPy kernels (batched RNG panels + BLAS/ufunc updates)."""

    name = "numpy"

    def algo3_block(self, Ahat_sub, A_sub, r, rng, watch=None,
                    panel_nnz: int = 8192,
                    workspace: KernelWorkspace | None = None) -> None:
        algo3_block(Ahat_sub, A_sub, r, rng, watch=watch,
                    panel_nnz=panel_nnz, workspace=workspace)

    def algo4_block(self, Ahat_sub, A_blk, r, rng, watch=None,
                    row_chunk: int = 64,
                    workspace: KernelWorkspace | None = None) -> None:
        algo4_block(Ahat_sub, A_blk, r, rng, watch=watch,
                    row_chunk=row_chunk, workspace=workspace)

    def algo3_block_batched(self, Ahat_stack, A_sub, r, brng, watch=None,
                            panel_nnz: int = 8192,
                            workspace: KernelWorkspace | None = None) -> None:
        algo3_block_batched(Ahat_stack, A_sub, r, brng, watch=watch,
                            panel_nnz=panel_nnz, workspace=workspace)

    def algo4_block_batched(self, Ahat_stack, A_blk, r, brng, watch=None,
                            row_chunk: int = 64,
                            workspace: KernelWorkspace | None = None) -> None:
        algo4_block_batched(Ahat_stack, A_blk, r, brng, watch=watch,
                            row_chunk=row_chunk, workspace=workspace)

    def warmup(self, rng, dtype=np.float64) -> float:
        return 0.0
