"""JIT backend: fused RNG+SpMM inner loops compiled with Numba.

The NumPy kernels pay Python dispatch and temporary-array traffic per
column group / row chunk; at realistic sizes that overhead, not the
roofline of DESIGN.md §3, dominates.  This backend compiles Algorithms 3
and 4 as ``@njit(cache=True, nogil=True)`` loops that *inline* the
counter→bits→sample pipeline (:mod:`repro.rng.jit`): each sketch entry is
generated in registers and immediately consumed by the accumulation, with
zero per-nonzero Python overhead and zero temporaries (the xoshiro family
needs one reusable ``d1``-length bit buffer per block call, served from
the :class:`~repro.kernels.backends.KernelWorkspace`).

Bit-identity: the fused loops replicate the *reference* kernels'
accumulation order exactly — per nonzero, ``Ahat[i, k] += a_jk * v[i]``
in ascending ``i`` — so the output is bit-identical to
:func:`~repro.kernels.algo3.algo3_block_reference` /
:func:`~repro.kernels.algo4.algo4_block_reference` for every supported
generator (Philox, Threefry, xoshiro) and distribution (uniform, the
scaling trick, ±1, Gaussian).  The scalar RNG helpers are verified
bit-for-bit against the vectorized generators in ``tests/rng/test_jit.py``.

``nogil=True`` releases the GIL for the whole fused loop, so the thread
pool in :mod:`repro.parallel.executor` gets genuine multi-core scaling —
block tasks overlap end-to-end instead of only inside NumPy's internals.

Unsupported configurations (JunkRNG, custom distributions, subclassed
generators) transparently delegate to the ``numpy`` backend — correctness
first, speed where the contract is provable.
"""

from __future__ import annotations

import time

import numpy as np

from ...errors import ShapeError
from ...rng import jit as rj
from ...rng.base import (
    PhiloxSketchRNG,
    SketchingRNG,
    ThreefrySketchRNG,
    XoshiroSketchRNG,
)
from ...rng.distributions import DISTRIBUTIONS
from ...utils.timing import Stopwatch
from ..algo3 import _check_block as _check_block3
from ..algo4 import _check_block as _check_block4
from . import KernelBackend, KernelWorkspace, register_backend
from .numpy_backend import NumpyBackend

__all__ = ["NumbaBackend"]

_COUNTER = "counter"
_XOSHIRO = "xoshiro"

if rj.NUMBA_AVAILABLE:
    from numba import njit

    @njit(cache=True, nogil=True)
    def _algo3_counter(Ahat, indptr, indices, data, r, k0, k1, rounds,
                       rng_code, dist_code):
        """Fused Algorithm 3 for counter-based RNGs (Philox/Threefry).

        Mirrors ``algo3_block_reference``: per nonzero ``(j, k)`` the
        ``d1`` samples of sketch column ``j`` are generated and applied
        as ``Ahat[i, k] += a_jk * s`` in ascending ``i`` — but here the
        sample never leaves registers.
        """
        d1 = Ahat.shape[0]
        n1 = indptr.shape[0] - 1
        r_u = np.uint64(r)
        for k in range(n1):
            for t in range(indptr[k], indptr[k + 1]):
                j_u = np.uint64(indices[t])
                a = data[t]
                for i in range(d1):
                    row = r_u + np.uint64(i)
                    if rng_code == 0:
                        bits = rj.philox_u64(row, j_u, k0, k1, rounds)
                    else:
                        bits = rj.threefry_u64(row, j_u, k0, k1, rounds)
                    Ahat[i, k] += a * rj.u64_to_value(bits, dist_code)

    @njit(cache=True, nogil=True)
    def _algo3_xoshiro(Ahat, indptr, indices, data, r, seed_u, n_lanes,
                       dist_code, state, bits):
        """Fused Algorithm 3 for checkpointed xoshiro256**.

        Each nonzero re-seeds the lane states from ``(seed, r, j)`` and
        streams ``d1`` interleaved outputs into the reusable *bits*
        buffer — exactly the reference's per-nonzero ``set_state`` /
        ``get_samples`` pair.
        """
        d1 = Ahat.shape[0]
        n1 = indptr.shape[0] - 1
        r_u = np.uint64(r)
        for k in range(n1):
            for t in range(indptr[k], indptr[k + 1]):
                j_u = np.uint64(indices[t])
                a = data[t]
                rj.xoshiro_fill(seed_u, r_u, j_u, n_lanes, state, bits)
                for i in range(d1):
                    Ahat[i, k] += a * rj.u64_to_value(bits[i], dist_code)

    @njit(cache=True, nogil=True)
    def _algo4_counter(Ahat, indptr, indices, data, r, k0, k1, rounds,
                       rng_code, dist_code, v):
        """Fused Algorithm 4 for counter-based RNGs.

        One sketch column per non-empty row, generated once into the
        reusable *v* buffer and reused across the whole row's rank-1
        updates; returns the non-empty-row count for sample accounting.
        """
        d1 = Ahat.shape[0]
        m = indptr.shape[0] - 1
        r_u = np.uint64(r)
        nonempty = 0
        for j in range(m):
            lo = indptr[j]
            hi = indptr[j + 1]
            if lo == hi:
                continue
            nonempty += 1
            j_u = np.uint64(j)
            for i in range(d1):
                row = r_u + np.uint64(i)
                if rng_code == 0:
                    bits = rj.philox_u64(row, j_u, k0, k1, rounds)
                else:
                    bits = rj.threefry_u64(row, j_u, k0, k1, rounds)
                v[i] = rj.u64_to_value(bits, dist_code)
            for t in range(lo, hi):
                k = indices[t]
                a = data[t]
                for i in range(d1):
                    Ahat[i, k] += a * v[i]
        return nonempty

    @njit(cache=True, nogil=True)
    def _algo3_counter_batched(Ahat, indptr, indices, data, r, k0s, k1s,
                               rounds, rng_code, dist_code):
        """Fused batched Algorithm 3 for counter-based RNGs.

        ``Ahat`` is the ``(batch, d1, n1)`` stacked output and
        ``k0s``/``k1s`` the per-member key words.  One traversal of the
        block's CSC structure serves every member: per nonzero the
        ``(j, a)`` pair stays in registers while the member loop replays
        the scalar kernel's sample/accumulate sequence into slice ``s``.
        Slices never interact, so each is bit-identical to the scalar
        kernel run with that member's key.
        """
        batch = Ahat.shape[0]
        d1 = Ahat.shape[1]
        n1 = indptr.shape[0] - 1
        r_u = np.uint64(r)
        for k in range(n1):
            for t in range(indptr[k], indptr[k + 1]):
                j_u = np.uint64(indices[t])
                a = data[t]
                for s in range(batch):
                    k0 = k0s[s]
                    k1 = k1s[s]
                    for i in range(d1):
                        row = r_u + np.uint64(i)
                        if rng_code == 0:
                            bits = rj.philox_u64(row, j_u, k0, k1, rounds)
                        else:
                            bits = rj.threefry_u64(row, j_u, k0, k1, rounds)
                        Ahat[s, i, k] += a * rj.u64_to_value(bits, dist_code)

    @njit(cache=True, nogil=True)
    def _algo3_xoshiro_batched(Ahat, indptr, indices, data, r, seeds,
                               n_lanes, dist_code, state, bits):
        """Fused batched Algorithm 3 for checkpointed xoshiro256**."""
        batch = Ahat.shape[0]
        d1 = Ahat.shape[1]
        n1 = indptr.shape[0] - 1
        r_u = np.uint64(r)
        for k in range(n1):
            for t in range(indptr[k], indptr[k + 1]):
                j_u = np.uint64(indices[t])
                a = data[t]
                for s in range(batch):
                    rj.xoshiro_fill(seeds[s], r_u, j_u, n_lanes, state, bits)
                    for i in range(d1):
                        Ahat[s, i, k] += a * rj.u64_to_value(bits[i],
                                                             dist_code)

    @njit(cache=True, nogil=True)
    def _algo4_counter_batched(Ahat, indptr, indices, data, r, k0s, k1s,
                               rounds, rng_code, dist_code, v):
        """Fused batched Algorithm 4 for counter-based RNGs.

        ``v`` is a reusable ``(batch, d1)`` panel: per non-empty sparse
        row every member's sketch column is generated once, then the
        row's rank-1 updates stream A's nonzeros a single time for the
        whole batch.
        """
        batch = Ahat.shape[0]
        d1 = Ahat.shape[1]
        m = indptr.shape[0] - 1
        r_u = np.uint64(r)
        nonempty = 0
        for j in range(m):
            lo = indptr[j]
            hi = indptr[j + 1]
            if lo == hi:
                continue
            nonempty += 1
            j_u = np.uint64(j)
            for s in range(batch):
                k0 = k0s[s]
                k1 = k1s[s]
                for i in range(d1):
                    row = r_u + np.uint64(i)
                    if rng_code == 0:
                        bits = rj.philox_u64(row, j_u, k0, k1, rounds)
                    else:
                        bits = rj.threefry_u64(row, j_u, k0, k1, rounds)
                    v[s, i] = rj.u64_to_value(bits, dist_code)
            for t in range(lo, hi):
                k = indices[t]
                a = data[t]
                for s in range(batch):
                    for i in range(d1):
                        Ahat[s, i, k] += a * v[s, i]
        return nonempty

    @njit(cache=True, nogil=True)
    def _algo4_xoshiro_batched(Ahat, indptr, indices, data, r, seeds,
                               n_lanes, dist_code, state, bits, v):
        """Fused batched Algorithm 4 for checkpointed xoshiro256**."""
        batch = Ahat.shape[0]
        d1 = Ahat.shape[1]
        m = indptr.shape[0] - 1
        r_u = np.uint64(r)
        nonempty = 0
        for j in range(m):
            lo = indptr[j]
            hi = indptr[j + 1]
            if lo == hi:
                continue
            nonempty += 1
            j_u = np.uint64(j)
            for s in range(batch):
                rj.xoshiro_fill(seeds[s], r_u, j_u, n_lanes, state, bits)
                for i in range(d1):
                    v[s, i] = rj.u64_to_value(bits[i], dist_code)
            for t in range(lo, hi):
                k = indices[t]
                a = data[t]
                for s in range(batch):
                    for i in range(d1):
                        Ahat[s, i, k] += a * v[s, i]
        return nonempty

    @njit(cache=True, nogil=True)
    def _algo4_xoshiro(Ahat, indptr, indices, data, r, seed_u, n_lanes,
                       dist_code, state, bits, v):
        """Fused Algorithm 4 for checkpointed xoshiro256**."""
        d1 = Ahat.shape[0]
        m = indptr.shape[0] - 1
        r_u = np.uint64(r)
        nonempty = 0
        for j in range(m):
            lo = indptr[j]
            hi = indptr[j + 1]
            if lo == hi:
                continue
            nonempty += 1
            rj.xoshiro_fill(seed_u, r_u, np.uint64(j), n_lanes, state, bits)
            for i in range(d1):
                v[i] = rj.u64_to_value(bits[i], dist_code)
            for t in range(lo, hi):
                k = indices[t]
                a = data[t]
                for i in range(d1):
                    Ahat[i, k] += a * v[i]
        return nonempty


@register_backend
class NumbaBackend(KernelBackend):
    """Fused JIT kernels; delegates unsupported RNG/dist combos to numpy.

    ``panel_nnz`` / ``row_chunk`` are NumPy-path tuning knobs and are
    ignored here (the fused loops have no panel or chunk granularity);
    they remain in the signature so backends are drop-in interchangeable.
    """

    name = "numba"

    def __init__(self) -> None:
        super().__init__()
        self._numpy = NumpyBackend()
        self._warmed: set[tuple[str, np.dtype]] = set()

    @classmethod
    def is_available(cls) -> bool:
        return rj.NUMBA_AVAILABLE

    # -- plan extraction ---------------------------------------------------

    @staticmethod
    def _plan(rng: SketchingRNG):
        """Fused-kernel parameters for *rng*, or ``None`` to delegate.

        Exact-type checks (not ``isinstance``) and identity checks against
        the stock distribution registry keep the fused path provably
        equivalent: a subclass or custom transform silently falls back to
        the numpy backend rather than risking a different sample stream.
        """
        if not rj.NUMBA_AVAILABLE:
            # Instance fetched directly despite being unavailable (e.g.
            # via get_backend): behave as a pure delegator.
            return None
        dist = getattr(rng, "dist", None)
        if dist is None or DISTRIBUTIONS.get(dist.name) is not dist:
            return None
        dist_code = rj.DIST_CODES.get(dist.name)
        if dist_code is None:
            return None
        kind = type(rng)
        if kind is PhiloxSketchRNG or kind is ThreefrySketchRNG:
            k0, k1 = rng._key
            rng_code = (rj.RNG_CODES["philox"] if kind is PhiloxSketchRNG
                        else rj.RNG_CODES["threefry"])
            return (_COUNTER, rng_code, np.uint64(int(k0)), np.uint64(int(k1)),
                    int(rng.rounds), dist_code, 0)
        if kind is XoshiroSketchRNG:
            seed_u = np.uint64(rng.seed & 0xFFFFFFFFFFFFFFFF)
            return (_XOSHIRO, rj.RNG_CODES["xoshiro"], seed_u, np.uint64(0),
                    0, dist_code, int(rng.n_lanes))
        return None

    def _plan_batched(self, brng):
        """Fused-batched parameters for *brng*, or ``None`` to delegate.

        Every member must individually qualify for the fused path and
        all members must share the family/rounds/distribution/lane
        shape (the :class:`~repro.rng.batched.BatchedSketchRNG`
        constructor already guarantees family and distribution; the
        rest is checked defensively).  Returns ``(family, rng_code,
        keys0, keys1_or_seeds, rounds, dist_code, n_lanes)`` with the
        per-member key words stacked into uint64 arrays.
        """
        members = getattr(brng, "members", None)
        if not members:
            return None
        plans = [self._plan(member) for member in members]
        first = plans[0]
        if first is None:
            return None
        for plan in plans[1:]:
            if plan is None or plan[0] != first[0] or plan[1] != first[1] \
                    or plan[4] != first[4] or plan[5] != first[5] \
                    or plan[6] != first[6]:
                return None
        family, rng_code, _k0, _k1, rounds, dist_code, n_lanes = first
        keys0 = np.array([p[2] for p in plans], dtype=np.uint64)
        keys1 = np.array([p[3] for p in plans], dtype=np.uint64)
        return (family, rng_code, keys0, keys1, rounds, dist_code, n_lanes)

    def _xoshiro_scratch(self, d1: int, n_lanes: int,
                         workspace: KernelWorkspace | None):
        if workspace is not None:
            state = workspace.get("numba.xoshiro.state", (4, n_lanes),
                                  np.uint64)
            bits = workspace.get("numba.xoshiro.bits", (d1,), np.uint64)
        else:
            state = np.empty((4, n_lanes), dtype=np.uint64)
            bits = np.empty(d1, dtype=np.uint64)
        return state, bits

    # -- kernel entry points -----------------------------------------------

    def algo3_block(self, Ahat_sub, A_sub, r, rng, watch=None,
                    panel_nnz: int = 8192,
                    workspace: KernelWorkspace | None = None) -> None:
        plan = self._plan(rng)
        if plan is None:
            self._numpy.algo3_block(Ahat_sub, A_sub, r, rng, watch=watch,
                                    panel_nnz=panel_nnz, workspace=workspace)
            return
        d1, _n1 = _check_block3(Ahat_sub, A_sub)
        if panel_nnz < 1:
            raise ShapeError(f"panel_nnz must be positive, got {panel_nnz}")
        sw = watch if watch is not None else Stopwatch()
        family, rng_code, k0, k1, rounds, dist_code, n_lanes = plan
        with sw.bucket("compute"):
            if family == _COUNTER:
                _algo3_counter(Ahat_sub, A_sub.indptr, A_sub.indices,
                               A_sub.data, r, k0, k1, rounds, rng_code,
                               dist_code)
            else:
                state, bits = self._xoshiro_scratch(d1, n_lanes, workspace)
                _algo3_xoshiro(Ahat_sub, A_sub.indptr, A_sub.indices,
                               A_sub.data, r, k0, n_lanes, dist_code,
                               state, bits)
        rng.samples_generated += d1 * A_sub.nnz

    def algo4_block(self, Ahat_sub, A_blk, r, rng, watch=None,
                    row_chunk: int = 64,
                    workspace: KernelWorkspace | None = None) -> None:
        plan = self._plan(rng)
        if plan is None:
            self._numpy.algo4_block(Ahat_sub, A_blk, r, rng, watch=watch,
                                    row_chunk=row_chunk, workspace=workspace)
            return
        d1, _n1 = _check_block4(Ahat_sub, A_blk)
        if row_chunk < 1:
            raise ShapeError(f"row_chunk must be positive, got {row_chunk}")
        sw = watch if watch is not None else Stopwatch()
        family, rng_code, k0, k1, rounds, dist_code, n_lanes = plan
        if workspace is not None:
            v = workspace.get("numba.algo4.v", (d1,))
        else:
            v = np.empty(d1, dtype=np.float64)
        with sw.bucket("compute"):
            if family == _COUNTER:
                nonempty = _algo4_counter(Ahat_sub, A_blk.indptr,
                                          A_blk.indices, A_blk.data, r,
                                          k0, k1, rounds, rng_code,
                                          dist_code, v)
            else:
                state, bits = self._xoshiro_scratch(d1, n_lanes, workspace)
                nonempty = _algo4_xoshiro(Ahat_sub, A_blk.indptr,
                                          A_blk.indices, A_blk.data, r,
                                          k0, n_lanes, dist_code, state,
                                          bits, v)
        rng.samples_generated += d1 * int(nonempty)

    # -- batched kernel entry points ---------------------------------------

    def algo3_block_batched(self, Ahat_stack, A_sub, r, brng, watch=None,
                            panel_nnz: int = 8192,
                            workspace: KernelWorkspace | None = None) -> None:
        plan = self._plan_batched(brng)
        if plan is None:
            super().algo3_block_batched(Ahat_stack, A_sub, r, brng,
                                        watch=watch, panel_nnz=panel_nnz,
                                        workspace=workspace)
            return
        d1, _n1 = _check_block3(Ahat_stack[0], A_sub)
        sw = watch if watch is not None else Stopwatch()
        family, rng_code, keys0, keys1, rounds, dist_code, n_lanes = plan
        with sw.bucket("compute"):
            if family == _COUNTER:
                _algo3_counter_batched(Ahat_stack, A_sub.indptr,
                                       A_sub.indices, A_sub.data, r,
                                       keys0, keys1, rounds, rng_code,
                                       dist_code)
            else:
                state, bits = self._xoshiro_scratch(d1, n_lanes, workspace)
                _algo3_xoshiro_batched(Ahat_stack, A_sub.indptr,
                                       A_sub.indices, A_sub.data, r,
                                       keys0, n_lanes, dist_code,
                                       state, bits)
        for member in brng.members:
            member.samples_generated += d1 * A_sub.nnz

    def algo4_block_batched(self, Ahat_stack, A_blk, r, brng, watch=None,
                            row_chunk: int = 64,
                            workspace: KernelWorkspace | None = None) -> None:
        plan = self._plan_batched(brng)
        if plan is None:
            super().algo4_block_batched(Ahat_stack, A_blk, r, brng,
                                        watch=watch, row_chunk=row_chunk,
                                        workspace=workspace)
            return
        d1, _n1 = _check_block4(Ahat_stack[0], A_blk)
        sw = watch if watch is not None else Stopwatch()
        family, rng_code, keys0, keys1, rounds, dist_code, n_lanes = plan
        batch = Ahat_stack.shape[0]
        if workspace is not None:
            v = workspace.get("numba.algo4.v_batched", (batch, d1))
        else:
            v = np.empty((batch, d1), dtype=np.float64)
        with sw.bucket("compute"):
            if family == _COUNTER:
                nonempty = _algo4_counter_batched(
                    Ahat_stack, A_blk.indptr, A_blk.indices, A_blk.data,
                    r, keys0, keys1, rounds, rng_code, dist_code, v)
            else:
                state, bits = self._xoshiro_scratch(d1, n_lanes, workspace)
                nonempty = _algo4_xoshiro_batched(
                    Ahat_stack, A_blk.indptr, A_blk.indices, A_blk.data,
                    r, keys0, n_lanes, dist_code, state, bits, v)
        for member in brng.members:
            member.samples_generated += d1 * int(nonempty)

    # -- compilation warmup ------------------------------------------------

    def warmup(self, rng: SketchingRNG, dtype=np.float64) -> float:
        """Compile the fused kernels for *rng*'s family and *dtype*.

        Exercises C-contiguous, F-contiguous, and strided output layouts
        (all three occur across the serial and parallel drivers) so no
        lazy compilation fires inside a timed region.  Synthetic inputs
        use zero data values, and the jitted functions are invoked
        directly, so neither *rng*'s counters nor any caller-visible
        state is touched.  Returns the seconds spent; 0.0 once this
        (family, dtype) signature is already warm.
        """
        if not rj.NUMBA_AVAILABLE:
            return 0.0
        plan = self._plan(rng)
        if plan is None:
            return 0.0
        family, rng_code, k0, k1, rounds, dist_code, n_lanes = plan
        key = (family, np.dtype(dtype))
        if key in self._warmed:
            return 0.0
        start = time.perf_counter()
        indptr = np.array([0, 1, 2], dtype=np.int64)
        indices = np.array([0, 1], dtype=np.int64)
        data = np.zeros(2, dtype=np.float64)
        outs = [
            np.zeros((2, 2), dtype=dtype),                    # C layout
            np.zeros((2, 2), dtype=dtype, order="F"),         # F layout
            np.zeros((4, 4), dtype=dtype)[1:3, 1:3],          # strided
        ]
        lanes = max(n_lanes, 1)
        state = np.empty((4, lanes), dtype=np.uint64)
        bits = np.empty(2, dtype=np.uint64)
        v = np.empty(2, dtype=np.float64)
        for out in outs:
            if family == _COUNTER:
                _algo3_counter(out, indptr, indices, data, 0, k0, k1,
                               rounds, rng_code, dist_code)
                _algo4_counter(out, indptr, indices, data, 0, k0, k1,
                               rounds, rng_code, dist_code, v)
            else:
                _algo3_xoshiro(out, indptr, indices, data, 0, k0, lanes,
                               dist_code, state, bits)
                _algo4_xoshiro(out, indptr, indices, data, 0, k0, lanes,
                               dist_code, state, bits, v)
        # The batched tier shares the per-entry pipeline but is a
        # distinct compiled signature; warm it too so a first batched
        # run pays no lazy compilation inside a timed region.
        out_b = np.zeros((2, 2, 2), dtype=dtype)
        keys0 = np.array([k0, k0], dtype=np.uint64)
        keys1 = np.array([k1, k1], dtype=np.uint64)
        v_b = np.empty((2, 2), dtype=np.float64)
        if family == _COUNTER:
            _algo3_counter_batched(out_b, indptr, indices, data, 0,
                                   keys0, keys1, rounds, rng_code,
                                   dist_code)
            _algo4_counter_batched(out_b, indptr, indices, data, 0,
                                   keys0, keys1, rounds, rng_code,
                                   dist_code, v_b)
        else:
            _algo3_xoshiro_batched(out_b, indptr, indices, data, 0,
                                   keys0, lanes, dist_code, state, bits)
            _algo4_xoshiro_batched(out_b, indptr, indices, data, 0,
                                   keys0, lanes, dist_code, state, bits,
                                   v_b)
        self._warmed.add(key)
        elapsed = time.perf_counter() - start
        self.jit_compile_seconds += elapsed
        return elapsed
