"""Algorithm 3 — variant *kji* with on-the-fly RNG (the CSC kernel).

The paper's preferred kernel on architectures that penalize random access
(Frontera): for each column ``k`` of the sparse block and each nonzero
``A[j, k]``, the ``d1`` sketch entries ``S[r:r+d1, j]`` are (re)generated
into a scratch vector ``v`` and accumulated with an axpy
``Ahat[:, k] += A[j, k] * v``.  All three operands are accessed with unit
stride; the price is regenerating a full column of the sketch per nonzero,
for a total of ``d * nnz(A)`` generated numbers (Section III-B) — which is
why the kernel's speed "is highly dependent on having a fast RNG".

Two implementations:

* :func:`algo3_block_reference` — the pseudocode verbatim (scalar loops,
  one ``set_state``/``get_samples`` per nonzero); the correctness anchor.
* :func:`algo3_block` — the production path: per column, one *batched*
  RNG call produces the ``d1 x nnz_k`` sketch panel and one matvec applies
  it.  Bit-identical to the reference because the batched RNG is defined
  to agree column-by-column with the scalar calls.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import ShapeError
from ..rng.base import SketchingRNG
from ..sparse.csc import CSCMatrix
from ..utils.timing import Stopwatch

if TYPE_CHECKING:  # pragma: no cover
    from .backends import KernelWorkspace

__all__ = ["algo3_block_reference", "algo3_block"]


def _check_block(Ahat_sub: np.ndarray, A_sub: CSCMatrix) -> tuple[int, int]:
    if Ahat_sub.ndim != 2:
        raise ShapeError("Ahat_sub must be 2-D")
    d1 = Ahat_sub.shape[0]
    n1 = A_sub.shape[1]
    if Ahat_sub.shape[1] != n1:
        raise ShapeError(
            f"Ahat_sub has {Ahat_sub.shape[1]} columns but A_sub has {n1}"
        )
    return d1, n1


def algo3_block_reference(Ahat_sub: np.ndarray, A_sub: CSCMatrix, r: int,
                          rng: SketchingRNG) -> None:
    """Algorithm 3 verbatim: scalar loops, in-place update of ``Ahat_sub``.

    Parameters mirror the paper's pseudocode: ``Ahat_sub`` is the dense
    ``d1 x n1`` output block, ``A_sub`` the (full-height) sparse column
    block in CSC, and ``r`` the row offset of the output block within
    ``Ahat`` (the RNG checkpoint coordinate).
    """
    d1, n1 = _check_block(Ahat_sub, A_sub)
    for k in range(n1):
        rows, vals = A_sub.col(k)
        for t in range(rows.size):
            j = int(rows[t])
            a_jk = vals[t]
            v = rng.column_block(r, d1, j)  # set_state(r, j); get_samples(v)
            for i in range(d1):
                Ahat_sub[i, k] += a_jk * v[i]


def algo3_block(Ahat_sub: np.ndarray, A_sub: CSCMatrix, r: int,
                rng: SketchingRNG, watch: Stopwatch | None = None,
                panel_nnz: int = 8192,
                workspace: "KernelWorkspace | None" = None) -> None:
    """Vectorized Algorithm 3: batched sketch panels + column matvecs.

    For each column ``k`` with nonzero rows ``J_k`` the update is
    ``Ahat_sub[:, k] += S[r:r+d1, J_k] @ vals_k``.  Columns are processed
    in groups whose combined nonzero count stays below *panel_nnz* so the
    generated panel remains cache-sized scratch (the role of the reusable
    vector ``v`` in the pseudocode).  When *watch* is given, RNG time is
    charged to the ``"sample"`` bucket and arithmetic to ``"compute"``.
    A *workspace* routes the scaled-panel and segment-sum temporaries
    through reused buffers (identical results — the out= forms of the
    same ufuncs — with zero steady-state allocation across block calls).
    """
    d1, n1 = _check_block(Ahat_sub, A_sub)
    if panel_nnz < 1:
        raise ShapeError(f"panel_nnz must be positive, got {panel_nnz}")
    sw = watch if watch is not None else Stopwatch()

    k = 0
    indptr = A_sub.indptr
    while k < n1:
        # Grow the column group until the panel budget is hit.
        k_end = k + 1
        while k_end < n1 and indptr[k_end + 1] - indptr[k] <= panel_nnz:
            k_end += 1
        lo, hi = int(indptr[k]), int(indptr[k_end])
        js = A_sub.indices[lo:hi]
        vals = A_sub.data[lo:hi]
        if js.size:
            with sw.bucket("sample"):
                # One panel: columns of S for every nonzero in the group,
                # duplicates regenerated per occurrence exactly as the
                # pseudocode's per-nonzero get_samples does.
                V = rng.column_block_batch(r, d1, js)
            with sw.bucket("compute"):
                if k_end - k == 1:
                    Ahat_sub[:, k] += V @ vals
                else:
                    if workspace is None:
                        scaled = V * vals  # broadcast over rows
                    else:
                        scaled = workspace.get("algo3.scaled", V.shape)
                        np.multiply(V, vals, out=scaled)
                    # Segment-sum the scaled panel into the group's columns;
                    # empty columns are skipped (they receive no update).
                    seg_starts = (indptr[k:k_end] - lo).astype(np.int64)
                    widths = np.diff(indptr[k:k_end + 1])
                    nonempty = widths > 0
                    starts = seg_starts[nonempty]
                    if workspace is None:
                        sums = np.add.reduceat(scaled, starts, axis=1)
                    else:
                        sums = workspace.get("algo3.sums", (d1, starts.size))
                        np.add.reduceat(scaled, starts, axis=1, out=sums)
                    Ahat_sub[:, np.arange(k, k_end)[nonempty]] += sums
        k = k_end
