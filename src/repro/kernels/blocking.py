"""Algorithm 1 — the outer blocking driver for the sketching SpMM.

Implements the ``(ceil(d/b_d), 1, ceil(n/b_n))`` blocking of Equation (3):
the outermost loop walks column blocks of ``A`` ("to encourage caching of
the sparse matrix data and Ahat"), the inner loop walks row blocks of
``Ahat``/``S``, and the inner dimension is never blocked (CSC gives few
cache-behaviour opportunities there and it is harder to parallelize over).
Each (row-block, column-block) pair is handed to the selected compute
kernel — Algorithm 3 (CSC, :mod:`repro.kernels.algo3`) or Algorithm 4
(blocked CSR, :mod:`repro.kernels.algo4`).

The driver also exposes the task decomposition (:func:`iter_block_tasks`)
the thread-pool executor parallelizes over: every task writes a disjoint
block of ``Ahat``, so parallel execution is race-free by construction
(Section II-C: "a simple and effective approach is to parallelize either
of the two loops in Algorithm 1").
"""

from __future__ import annotations

from typing import Callable, Iterator, Literal

import numpy as np

from ..errors import ConfigError
from ..rng.base import SketchingRNG
from ..rng.batched import BatchedSketchRNG
from ..sparse.blocked_csr import BlockedCSR
from ..sparse.convert import csc_to_blocked_csr
from ..sparse.csc import CSCMatrix
from ..utils.flops import spmm_flops
from ..utils.timing import Stopwatch, Timer
from ..utils.validation import check_positive_int
from .algo3 import algo3_block_reference
from .algo4 import algo4_block_reference
from .backends import KernelBackend, KernelWorkspace, resolve_backend
from .stats import KernelStats

__all__ = ["sketch_spmm", "sketch_spmm_batched", "iter_block_tasks",
           "default_block_sizes"]

KernelName = Literal["algo3", "algo4"]


def default_block_sizes(d: int, n: int, *, cache_bytes: int = 32 * 1024 * 1024,
                        parallel: bool = False) -> tuple[int, int]:
    """Heuristic ``(b_d, b_n)`` in the spirit of Section V-B.

    The output block ``b_d x b_n`` (float64) is sized to half the cache.
    Sequentially the paper uses squat-ish blocks (3000 x 500..1200); for
    parallel runs it recommends *larger* ``b_d`` and *smaller* ``b_n``
    ("this highly rectangular blocking structure offloads more data-access
    cost to ... S", whose entries are regenerated rather than moved).
    """
    d = check_positive_int(d, "d")
    n = check_positive_int(n, "n")
    budget = cache_bytes // (2 * 8)  # elements of Ahat_sub
    if parallel:
        b_d = min(d, max(1, budget // 128))
        b_n = max(1, min(n, budget // b_d, 128))
    else:
        b_d = min(d, 3000)
        b_n = max(1, min(n, budget // b_d))
    return b_d, b_n


def iter_block_tasks(d: int, n: int, b_d: int, b_n: int) -> Iterator[tuple[int, int, int, int]]:
    """Yield Algorithm 1's block tasks as ``(i, d1, j, n1)`` tuples.

    ``i``/``j`` are the row/column offsets of the ``Ahat`` block and
    ``d1``/``n1`` its extent — the loop nest of Algorithm 1 lines 2-6,
    column blocks outermost.
    """
    for j in range(0, n, b_n):
        n1 = min(b_n, n - j)
        for i in range(0, d, b_d):
            d1 = min(b_d, d - i)
            yield i, d1, j, n1


def sketch_spmm(
    A: CSCMatrix,
    d: int,
    rng: SketchingRNG,
    *,
    kernel: KernelName = "algo3",
    b_d: int | None = None,
    b_n: int | None = None,
    reference: bool = False,
    blocked: BlockedCSR | None = None,
    out: np.ndarray | None = None,
    out_order: str = "F",
    backend: str | KernelBackend | None = None,
    workspace: KernelWorkspace | None = None,
    on_block: Callable[[str, int, int, int, int], None] | None = None,
) -> tuple[np.ndarray, KernelStats]:
    """Compute the sketch ``Ahat = S @ A`` with on-the-fly generation of ``S``.

    Parameters
    ----------
    A:
        Sparse ``m x n`` input in CSC (the format "we assume is given for
        free").
    d:
        Sketch size (rows of ``S``); typically ``gamma * n`` for a small
        constant ``gamma`` (the paper uses 3 for SpMM benchmarks, 2 for
        least squares).
    rng:
        Entry generator for ``S`` (see :mod:`repro.rng`); its distribution's
        ``post_scale`` is applied to the finished product (scaling trick).
    kernel:
        ``"algo3"`` (kji, CSC-driven) or ``"algo4"`` (jki, blocked-CSR).
    b_d, b_n:
        Blocking parameters; defaults from :func:`default_block_sizes`.
    reference:
        Use the scalar pseudocode-verbatim kernels (slow; testing oracle).
    blocked:
        Pre-built blocked CSR for Algorithm 4 (skips conversion, e.g. when
        amortized across repetitions); must have been built with the same
        ``b_n``.
    out:
        Optional preallocated ``(d, n)`` output (zeroed by the driver).
    out_order:
        Memory layout for a driver-allocated output: ``"F"`` (default)
        matches Julia's column-major arrays — the layout the paper's
        kernels stream — and measures ~20-25% faster for the column-wise
        updates of both kernels; pass ``"C"`` for row-major consumers.
    backend:
        Kernel backend name (``"numpy"``/``"numba"``), instance, or
        ``None``/``"auto"`` for the environment default (see
        :func:`repro.kernels.backends.resolve_backend`).  Ignored on the
        ``reference`` path, which always runs the scalar oracle.  Any JIT
        compilation happens *before* the timed region and is reported as
        ``stats.extra["jit_compile_seconds"]``.
    workspace:
        Optional :class:`~repro.kernels.backends.KernelWorkspace` for
        scratch reuse across calls; one is created internally per
        invocation otherwise, so repeated block calls never churn the
        allocator either way.
    on_block:
        Optional observer called as ``on_block(phase, i, d1, j, n1)``
        with ``phase`` in ``("block_start", "block_done")`` around every
        kernel invocation — how the plan runtime's serial driver feeds
        lifecycle events to its bus without this module knowing about
        event buses.  ``None`` (the default) costs nothing.

    Returns
    -------
    (Ahat, stats):
        The ``d x n`` dense sketch and the cost record, including the
        sample/compute split and, for Algorithm 4, conversion time.
    """
    d = check_positive_int(d, "d")
    if not isinstance(A, CSCMatrix):
        raise ConfigError(
            f"A must be a CSCMatrix (got {type(A).__name__}); CSR inputs "
            "would be silently misread — convert with .to_csc() first"
        )
    m, n = A.shape
    if n == 0:
        raise ConfigError("cannot sketch a matrix with zero columns")
    if kernel not in ("algo3", "algo4"):
        raise ConfigError(f"kernel must be 'algo3' or 'algo4', got {kernel!r}")
    bd_default, bn_default = default_block_sizes(d, n)
    b_d = bd_default if b_d is None else check_positive_int(b_d, "b_d")
    b_n = bn_default if b_n is None else check_positive_int(b_n, "b_n")

    if out_order not in ("C", "F"):
        raise ConfigError(f"out_order must be 'C' or 'F', got {out_order!r}")
    if out is None:
        Ahat = np.zeros((d, n), dtype=np.float64, order=out_order)
    else:
        if out.shape != (d, n):
            raise ConfigError(f"out must have shape {(d, n)}, got {out.shape}")
        out[:] = 0.0
        Ahat = out

    be = resolve_backend(backend)
    ws = workspace if workspace is not None else KernelWorkspace()
    jit_seconds = 0.0 if reference else be.warmup(rng, Ahat.dtype)

    sw = Stopwatch()
    samples_before = rng.samples_generated
    conversion_seconds = 0.0
    conversion_extra: dict = {}
    blocks = 0

    with Timer() as total:
        if kernel == "algo4":
            if blocked is None:
                blocked, conv = csc_to_blocked_csr(A, b_n)
                conversion_seconds = conv.seconds
                conversion_extra = {
                    "conversion_ops": conv.op_count,
                    "conversion_workspace_bytes": conv.workspace_bytes,
                }
            elif blocked.shape != (m, n):
                raise ConfigError(
                    f"blocked CSR shape {blocked.shape} does not match A {A.shape}"
                )
            for j0, blk in blocked.iter_blocks():
                width = blk.shape[1]
                for i in range(0, d, b_d):
                    d1 = min(b_d, d - i)
                    if on_block is not None:
                        on_block("block_start", i, d1, j0, width)
                    view = Ahat[i:i + d1, j0:j0 + width]
                    if reference:
                        algo4_block_reference(view, blk, i, rng)
                    else:
                        be.algo4_block(view, blk, i, rng, watch=sw,
                                       workspace=ws)
                    blocks += 1
                    if on_block is not None:
                        on_block("block_done", i, d1, j0, width)
        else:
            for i, d1, j, n1 in iter_block_tasks(d, n, b_d, b_n):
                if on_block is not None:
                    on_block("block_start", i, d1, j, n1)
                view = Ahat[i:i + d1, j:j + n1]
                A_sub = A.col_block(j, j + n1)
                if reference:
                    algo3_block_reference(view, A_sub, i, rng)
                else:
                    be.algo3_block(view, A_sub, i, rng, watch=sw,
                                   workspace=ws)
                blocks += 1
                if on_block is not None:
                    on_block("block_done", i, d1, j, n1)
        if rng.post_scale != 1.0:
            Ahat *= rng.post_scale

    stats = KernelStats(
        kernel=kernel,
        sample_seconds=sw.total("sample"),
        compute_seconds=sw.total("compute"),
        conversion_seconds=conversion_seconds,
        total_seconds=total.elapsed,
        samples_generated=rng.samples_generated - samples_before,
        flops=spmm_flops(d, A.nnz),
        blocks_processed=blocks,
        d=d, b_d=b_d, b_n=b_n,
        extra={**conversion_extra,
               "backend": "reference" if reference else be.name,
               "jit_compile_seconds": jit_seconds},
    )
    return Ahat, stats


def sketch_spmm_batched(
    A: CSCMatrix,
    d: int,
    rng: "BatchedSketchRNG | list[SketchingRNG] | tuple[SketchingRNG, ...]",
    *,
    kernel: KernelName = "algo3",
    b_d: int | None = None,
    b_n: int | None = None,
    blocked: BlockedCSR | None = None,
    out: np.ndarray | None = None,
    backend: str | KernelBackend | None = None,
    workspace: KernelWorkspace | None = None,
    on_block: Callable[[str, int, int, int, int], None] | None = None,
) -> tuple[np.ndarray, KernelStats]:
    """Compute ``k`` sketches of the same ``A`` in one blocked pass.

    The batched tier for the fixed-``A``, many-sketches workload: one
    traversal of the sparse structure serves every sketch of the batch,
    with the counter→sample RNG pipeline, blocked-CSR conversion, and
    per-block bookkeeping amortized across the ``k`` seeds (see
    :mod:`repro.kernels.batched`).

    Parameters mirror :func:`sketch_spmm` except *rng*, which is a
    :class:`~repro.rng.batched.BatchedSketchRNG` (or a sequence of
    per-sketch generators, which is wrapped), and *out*, which when given
    must be a ``(k, d, n)`` array.  There is no ``out_order`` knob: the
    stack is C-ordered so each sketch's ``(d, n)`` slice is contiguous
    (output layout does not affect the accumulated values — every kernel
    update is elementwise in the output operand).

    Returns
    -------
    (Ahat, stats):
        ``Ahat[t]`` is bit-identical to the sketch a single
        :func:`sketch_spmm` call with member ``t``'s generator produces.
        ``stats.extra["batch"]`` records ``k``; ``flops`` and
        ``samples_generated`` count all ``k`` sketches.
    """
    d = check_positive_int(d, "d")
    if not isinstance(rng, BatchedSketchRNG):
        rng = BatchedSketchRNG(rng)
    k = rng.batch
    if not isinstance(A, CSCMatrix):
        raise ConfigError(
            f"A must be a CSCMatrix (got {type(A).__name__}); CSR inputs "
            "would be silently misread — convert with .to_csc() first"
        )
    m, n = A.shape
    if n == 0:
        raise ConfigError("cannot sketch a matrix with zero columns")
    if kernel not in ("algo3", "algo4"):
        raise ConfigError(f"kernel must be 'algo3' or 'algo4', got {kernel!r}")
    bd_default, bn_default = default_block_sizes(d, n)
    b_d = bd_default if b_d is None else check_positive_int(b_d, "b_d")
    b_n = bn_default if b_n is None else check_positive_int(b_n, "b_n")

    if out is None:
        Ahat = np.zeros((k, d, n), dtype=np.float64)
    else:
        if out.shape != (k, d, n):
            raise ConfigError(
                f"out must have shape {(k, d, n)}, got {out.shape}")
        out[:] = 0.0
        Ahat = out

    be = resolve_backend(backend)
    ws = workspace if workspace is not None else KernelWorkspace()
    jit_seconds = be.warmup(rng.members[0], Ahat.dtype)

    sw = Stopwatch()
    samples_before = rng.samples_generated
    conversion_seconds = 0.0
    conversion_extra: dict = {}
    blocks = 0

    with Timer() as total:
        if kernel == "algo4":
            if blocked is None:
                blocked, conv = csc_to_blocked_csr(A, b_n)
                conversion_seconds = conv.seconds
                conversion_extra = {
                    "conversion_ops": conv.op_count,
                    "conversion_workspace_bytes": conv.workspace_bytes,
                }
            elif blocked.shape != (m, n):
                raise ConfigError(
                    f"blocked CSR shape {blocked.shape} does not match A "
                    f"{A.shape}"
                )
            for j0, blk in blocked.iter_blocks():
                width = blk.shape[1]
                for i in range(0, d, b_d):
                    d1 = min(b_d, d - i)
                    if on_block is not None:
                        on_block("block_start", i, d1, j0, width)
                    stack = Ahat[:, i:i + d1, j0:j0 + width]
                    be.algo4_block_batched(stack, blk, i, rng, watch=sw,
                                           workspace=ws)
                    blocks += 1
                    if on_block is not None:
                        on_block("block_done", i, d1, j0, width)
        else:
            for i, d1, j, n1 in iter_block_tasks(d, n, b_d, b_n):
                if on_block is not None:
                    on_block("block_start", i, d1, j, n1)
                stack = Ahat[:, i:i + d1, j:j + n1]
                A_sub = A.col_block(j, j + n1)
                be.algo3_block_batched(stack, A_sub, i, rng, watch=sw,
                                       workspace=ws)
                blocks += 1
                if on_block is not None:
                    on_block("block_done", i, d1, j, n1)
        if rng.post_scale != 1.0:
            Ahat *= rng.post_scale

    stats = KernelStats(
        kernel=kernel,
        sample_seconds=sw.total("sample"),
        compute_seconds=sw.total("compute"),
        conversion_seconds=conversion_seconds,
        total_seconds=total.elapsed,
        samples_generated=rng.samples_generated - samples_before,
        flops=k * spmm_flops(d, A.nnz),
        blocks_processed=blocks,
        d=d, b_d=b_d, b_n=b_n,
        extra={**conversion_extra,
               "backend": be.name,
               "batch": k,
               "jit_compile_seconds": jit_seconds},
    )
    return Ahat, stats
