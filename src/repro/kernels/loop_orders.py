"""The six loop orderings of the toy compute kernel (Algorithm 2).

Section II-B enumerates all orderings of the three loops ``i`` (rows of the
dense left operand ``L``), ``j`` (the contraction dimension), and ``k``
(columns of the sparse right operand ``R``), then rules most of them out:

* ``ikj`` / ``kij`` — dot-product forms; need *noncontiguous* random number
  generation (only the positions matching nonzeros of a column of ``R``),
  which defeats vectorization. Ruled out.
* ``ijk`` — sums scaled sparse rows of ``R`` into dense rows of ``G``;
  "summing together rows of R would be inefficient regardless of the
  sparse matrix format". Ruled out.
* ``jik`` — rank-1 updates applied row-wise to ``G``; row slices of a
  sparse row are noncontiguous. Ruled out on random-access-sensitive
  architectures.
* ``kji`` — **Algorithm 3's order**: each column of ``G`` is a linear
  combination of columns of ``L``; all three operands are accessed with
  stride, at the price of regenerating a column of ``L`` per nonzero.
* ``jki`` — **Algorithm 4's order**: one column of ``L`` is reused across
  an entire sparse row of ``R`` (fewer regenerations), at the price of
  scattered column updates to ``G``.

All six are implemented here as plain, obviously-correct loops over a
*materialized* dense ``L`` and a sparse ``R``.  They are the pedagogical
reference and the oracle the production kernels are tested against; the
on-the-fly-RNG versions of ``kji`` and ``jki`` live in
:mod:`repro.kernels.algo3` and :mod:`repro.kernels.algo4`.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..errors import ShapeError
from ..sparse.csc import CSCMatrix
from ..sparse.csr import CSRMatrix
from ..utils.validation import check_dense_matrix

__all__ = [
    "kernel_ijk",
    "kernel_ikj",
    "kernel_jik",
    "kernel_jki",
    "kernel_kij",
    "kernel_kji",
    "LOOP_ORDER_KERNELS",
    "RULED_OUT",
]


def _check(L: np.ndarray, R_shape: tuple[int, int]) -> tuple[int, int, int]:
    check_dense_matrix(L, "L")
    d1, m1 = L.shape
    if m1 != R_shape[0]:
        raise ShapeError(f"L has {m1} columns but R has {R_shape[0]} rows")
    return d1, m1, R_shape[1]


def kernel_ijk(L: np.ndarray, R: CSRMatrix) -> np.ndarray:
    """Variant ijk: each row of ``G`` is a combination of sparse rows of ``R``."""
    d1, m1, n1 = _check(L, R.shape)
    G = np.zeros((d1, n1), dtype=np.float64)
    for i in range(d1):
        for j in range(m1):
            cols, vals = R.row(j)
            for t in range(cols.size):
                G[i, cols[t]] += L[i, j] * vals[t]
    return G


def kernel_ikj(L: np.ndarray, R: CSCMatrix) -> np.ndarray:
    """Variant ikj: dot products ``G[i, k] = L[i, :] . R[:, k]``, row-major G."""
    d1, m1, n1 = _check(L, R.shape)
    G = np.zeros((d1, n1), dtype=np.float64)
    for i in range(d1):
        for k in range(n1):
            rows, vals = R.col(k)
            acc = 0.0
            for t in range(rows.size):
                acc += L[i, rows[t]] * vals[t]
            G[i, k] = acc
    return G


def kernel_kij(L: np.ndarray, R: CSCMatrix) -> np.ndarray:
    """Variant kij: dot products streamed column-major through ``G``."""
    d1, m1, n1 = _check(L, R.shape)
    G = np.zeros((d1, n1), dtype=np.float64)
    for k in range(n1):
        rows, vals = R.col(k)
        for i in range(d1):
            acc = 0.0
            for t in range(rows.size):
                acc += L[i, rows[t]] * vals[t]
            G[i, k] = acc
    return G


def kernel_jik(L: np.ndarray, R: CSRMatrix) -> np.ndarray:
    """Variant jik: rank-1 updates ``l_j r_j^T`` applied row-wise to ``G``."""
    d1, m1, n1 = _check(L, R.shape)
    G = np.zeros((d1, n1), dtype=np.float64)
    for j in range(m1):
        cols, vals = R.row(j)
        for i in range(d1):
            lij = L[i, j]
            for t in range(cols.size):
                G[i, cols[t]] += lij * vals[t]
    return G


def kernel_jki(L: np.ndarray, R: CSRMatrix) -> np.ndarray:
    """Variant jki: rank-1 updates applied column-wise — Algorithm 4's order."""
    d1, m1, n1 = _check(L, R.shape)
    G = np.zeros((d1, n1), dtype=np.float64)
    for j in range(m1):
        cols, vals = R.row(j)
        for t in range(cols.size):
            v = vals[t]
            k = cols[t]
            for i in range(d1):
                G[i, k] += L[i, j] * v
    return G


def kernel_kji(L: np.ndarray, R: CSCMatrix) -> np.ndarray:
    """Variant kji: columns of ``G`` from columns of ``L`` — Algorithm 3's order."""
    d1, m1, n1 = _check(L, R.shape)
    G = np.zeros((d1, n1), dtype=np.float64)
    for k in range(n1):
        rows, vals = R.col(k)
        for t in range(rows.size):
            j = rows[t]
            v = vals[t]
            for i in range(d1):
                G[i, k] += L[i, j] * v
    return G


#: All six variants, keyed by loop order. Values are ``(kernel, format)``
#: where *format* names the sparse layout the variant naturally consumes.
LOOP_ORDER_KERNELS: Dict[str, tuple[Callable, str]] = {
    "ijk": (kernel_ijk, "csr"),
    "ikj": (kernel_ikj, "csc"),
    "jik": (kernel_jik, "csr"),
    "jki": (kernel_jki, "csr"),
    "kij": (kernel_kij, "csc"),
    "kji": (kernel_kji, "csc"),
}

#: Variants the paper removes from contention, with the reason.
RULED_OUT: Dict[str, str] = {
    "ikj": "requires noncontiguous random number generation (defeats SIMD)",
    "kij": "requires noncontiguous random number generation (defeats SIMD)",
    "ijk": "sums sparse rows of R into dense rows; inefficient in any format",
    "jik": "row-wise scattered updates to G on random-access-sensitive machines",
}
