"""Algorithm 4 — variant *jki* with on-the-fly RNG (the blocked-CSR kernel).

The paper's preferred kernel when random access is cheap or random numbers
are expensive (Perlmutter): for each non-empty row ``j`` of the vertical
sparse block, the sketch column ``S[r:r+d1, j]`` is generated **once** and
reused across the whole row via rank-1 updates
``Ahat_sub[:, k] += A[j, k] * v`` (Figure 3).  Relative to Algorithm 3
this cuts the generated-number count from ``d * nnz(A)`` to at most
``d * m * ceil(n / b_n)`` — and below that when rows of a block are empty,
which is why ``b_n`` is a tuning knob for exotic sparsity patterns
(Section III-B).  The cost is scattered updates into ``Ahat_sub`` driven by
the row's column pattern, and the auxiliary blocked-CSR structure.

* :func:`algo4_block_reference` — the pseudocode verbatim.
* :func:`algo4_block` — production path: one batched RNG call generates the
  panel for every non-empty row of the block (that is the entire RNG cost,
  demonstrating the reuse), then rows are applied in chunks of scattered
  outer-product updates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import ShapeError
from ..rng.base import SketchingRNG
from ..sparse.csr import CSRMatrix
from ..utils.timing import Stopwatch

if TYPE_CHECKING:  # pragma: no cover
    from .backends import KernelWorkspace

__all__ = ["algo4_block_reference", "algo4_block"]


def _check_block(Ahat_sub: np.ndarray, A_blk: CSRMatrix) -> tuple[int, int]:
    if Ahat_sub.ndim != 2:
        raise ShapeError("Ahat_sub must be 2-D")
    d1 = Ahat_sub.shape[0]
    n1 = A_blk.shape[1]
    if Ahat_sub.shape[1] != n1:
        raise ShapeError(
            f"Ahat_sub has {Ahat_sub.shape[1]} columns but the block has {n1}"
        )
    return d1, n1


def algo4_block_reference(Ahat_sub: np.ndarray, A_blk: CSRMatrix, r: int,
                          rng: SketchingRNG) -> None:
    """Algorithm 4 verbatim: per-row generation, scalar rank-1 updates.

    ``A_blk`` is one vertical block of ``A`` stored in CSR with local
    column indices; ``r`` is the output block's row offset within ``Ahat``
    (the RNG checkpoint coordinate, as in Algorithm 3).
    """
    d1, _ = _check_block(Ahat_sub, A_blk)
    m = A_blk.shape[0]
    for j in range(m):
        cols, vals = A_blk.row(j)
        if cols.size == 0:
            continue  # "if A_sub[j, :] = 0 then continue"
        v = rng.column_block(r, d1, j)  # generated once for the whole row
        for t in range(cols.size):
            k = int(cols[t])
            a_jk = vals[t]
            for i in range(d1):
                Ahat_sub[i, k] += a_jk * v[i]


def algo4_block(Ahat_sub: np.ndarray, A_blk: CSRMatrix, r: int,
                rng: SketchingRNG, watch: Stopwatch | None = None,
                row_chunk: int = 64,
                workspace: "KernelWorkspace | None" = None) -> None:
    """Vectorized Algorithm 4: one panel per block, chunked scatter updates.

    The RNG is called once with every non-empty row of the block —
    ``samples_generated`` therefore counts exactly
    ``d1 * (#non-empty rows)``, the quantity Section III-B's analysis
    bounds.  Long rows are applied as vectorized scaled-column adds; short
    rows are grouped *row_chunk* at a time into a single scatter-add.
    Both paths produce identical results (column indices within a row are
    unique; cross-row duplicates go through unbuffered accumulation).
    A *workspace* reuses the gather/concatenation/scaled temporaries
    across calls (same values via the out= ufunc forms, no steady-state
    allocation).
    """
    d1, _ = _check_block(Ahat_sub, A_blk)
    if row_chunk < 1:
        raise ShapeError(f"row_chunk must be positive, got {row_chunk}")
    sw = watch if watch is not None else Stopwatch()

    js = A_blk.nonempty_rows()
    if js.size == 0:
        return
    with sw.bucket("sample"):
        V = rng.column_block_batch(r, d1, js)  # d1 x (#non-empty rows)
    row_nnz = np.diff(A_blk.indptr)[js]
    avg_row_nnz = float(row_nnz.mean())
    with sw.bucket("compute"):
        if avg_row_nnz >= 8.0:
            # Long rows: one vectorized scaled-column add per row.  Column
            # indices within one CSR row are unique, so fancy-index
            # accumulation is race-free.
            for t in range(js.size):
                j = int(js[t])
                lo, hi = A_blk.indptr[j], A_blk.indptr[j + 1]
                cols = A_blk.indices[lo:hi]
                vals = A_blk.data[lo:hi]
                if workspace is None:
                    Ahat_sub[:, cols] += V[:, t:t + 1] * vals
                else:
                    scaled = workspace.get("algo4.scaled", (d1, hi - lo))
                    np.multiply(V[:, t:t + 1], vals, out=scaled)
                    Ahat_sub[:, cols] += scaled
        else:
            # Many short rows: process *row_chunk* rows per scatter so the
            # Python-level loop count drops by that factor.  Duplicate
            # columns across different rows are handled by the unbuffered
            # ufunc.at accumulation.
            indptr = A_blk.indptr
            for t0 in range(0, js.size, row_chunk):
                t1 = min(t0 + row_chunk, js.size)
                chunk_js = js[t0:t1]
                spans = [slice(int(indptr[j]), int(indptr[j + 1])) for j in chunk_js]
                chunk_nnz = int(row_nnz[t0:t1].sum())
                if workspace is None:
                    cols = np.concatenate([A_blk.indices[s] for s in spans])
                    vals = np.concatenate([A_blk.data[s] for s in spans])
                    owner = np.repeat(np.arange(t0, t1), row_nnz[t0:t1])
                    scaled = V[:, owner] * vals
                else:
                    cols = workspace.get("algo4.cols", (chunk_nnz,), np.int64)
                    np.concatenate([A_blk.indices[s] for s in spans], out=cols)
                    vals = workspace.get("algo4.vals", (chunk_nnz,))
                    np.concatenate([A_blk.data[s] for s in spans], out=vals)
                    owner = workspace.get("algo4.owner", (chunk_nnz,), np.int64)
                    pos = 0
                    for tt in range(t0, t1):
                        width = int(row_nnz[tt])
                        owner[pos:pos + width] = tt
                        pos += width
                    taken = workspace.get("algo4.taken", (d1, chunk_nnz))
                    np.take(V, owner, axis=1, out=taken)
                    scaled = workspace.get("algo4.scaled", (d1, chunk_nnz))
                    np.multiply(taken, vals, out=scaled)
                np.add.at(Ahat_sub.T, cols, scaled.T)
