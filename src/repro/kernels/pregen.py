"""Pre-generated-sketch baselines ("the naive approach").

Section II-A: "The naive approach is to generate ``S`` beforehand and then
call library routines such as Intel MKL to perform SpMM.  This approach is
not practical for large inputs because ``S`` may not even fit into RAM."
These baselines play the role of MKL/Eigen/Julia in Tables II and IV and
of the "pre-generating S in memory" series of Figure 4.

Three flavours:

* :func:`pregen_full` — materialize all of ``S`` (``d x m`` dense), then a
  library-style dense-times-CSC product.  Honest about the O(d*m) memory.
* :func:`pregen_rowblocks` — materialize one ``b_d x m`` row panel of ``S``
  at a time (the (1, m, 1)-blocking memory compromise).
* :func:`pregen_csr_transposed` — the MKL emulation of Section V-A: MKL
  only supports sparse-times-dense, so the operation is computed
  transposed, ``(A^T S^T)^T`` with ``A^T`` in CSR and ``S^T`` row-major.

Timing convention follows Figure 4's caption: "For the case of
pre-generating S in memory, we don't include generation time" — so each
function reports generation under ``sample_seconds`` and callers decide
whether to charge it.
"""

from __future__ import annotations

import numpy as np

from ..rng.base import SketchingRNG
from ..sparse.csc import CSCMatrix
from ..utils.flops import spmm_flops
from ..utils.timing import Stopwatch, Timer
from ..utils.validation import check_positive_int
from .stats import KernelStats

__all__ = ["pregen_full", "pregen_rowblocks", "pregen_csr_transposed"]


def pregen_full(A: CSCMatrix, d: int, rng: SketchingRNG) -> tuple[np.ndarray, KernelStats]:
    """Materialize ``S`` fully, then multiply with the library SpMM.

    Returns ``(Ahat, stats)``; ``stats.extra['sketch_bytes']`` records the
    O(d*m) footprint that makes this approach infeasible at scale.
    """
    d = check_positive_int(d, "d")
    m, n = A.shape
    sw = Stopwatch()
    with Timer() as total:
        with sw.bucket("sample"):
            S = rng.materialize(d, m)
        with sw.bucket("compute"):
            from ..sparse.ops import dense_times_csc

            Ahat = dense_times_csc(S, A)
            if rng.post_scale != 1.0:
                Ahat *= rng.post_scale
    stats = KernelStats(
        kernel="pregen_full",
        sample_seconds=sw.total("sample"),
        compute_seconds=sw.total("compute"),
        total_seconds=total.elapsed,
        samples_generated=d * m,
        flops=spmm_flops(d, A.nnz),
        blocks_processed=1,
        d=d, b_d=d, b_n=n,
        extra={"sketch_bytes": int(S.nbytes)},
    )
    return Ahat, stats


def pregen_rowblocks(A: CSCMatrix, d: int, rng: SketchingRNG,
                     b_d: int) -> tuple[np.ndarray, KernelStats]:
    """Materialize ``S`` one ``b_d``-row panel at a time, multiply per panel.

    Memory drops to O(b_d * m); the sparse matrix is streamed once per
    panel, which is the extra data movement the on-the-fly kernels avoid.
    """
    d = check_positive_int(d, "d")
    b_d = check_positive_int(b_d, "b_d")
    m, n = A.shape
    sw = Stopwatch()
    Ahat = np.zeros((d, n), dtype=np.float64)
    peak_panel = 0
    blocks = 0
    with Timer() as total:
        from ..sparse.ops import dense_times_csc

        for r in range(0, d, b_d):
            d1 = min(b_d, d - r)
            with sw.bucket("sample"):
                panel = rng.column_block_batch(r, d1, np.arange(m, dtype=np.int64))
            peak_panel = max(peak_panel, int(panel.nbytes))
            with sw.bucket("compute"):
                Ahat[r:r + d1, :] = dense_times_csc(panel, A)
            blocks += 1
        if rng.post_scale != 1.0:
            Ahat *= rng.post_scale
    stats = KernelStats(
        kernel="pregen_rowblocks",
        sample_seconds=sw.total("sample"),
        compute_seconds=sw.total("compute"),
        total_seconds=total.elapsed,
        samples_generated=d * m,
        flops=spmm_flops(d, A.nnz),
        blocks_processed=blocks,
        d=d, b_d=b_d, b_n=n,
        extra={"sketch_bytes": peak_panel},
    )
    return Ahat, stats


def pregen_csr_transposed(A: CSCMatrix, d: int, rng: SketchingRNG) -> tuple[np.ndarray, KernelStats]:
    """The MKL-style baseline: compute ``(A^T @ S^T)^T`` with ``A^T`` in CSR.

    Section V-A: "MKL timings use CSR for A and row major storage for S
    since MKL only supports sparse-times-dense.  (Hence, the operation and
    storage are transposed.)"  The CSC->CSR conversion of ``A`` (free in
    exact arithmetic: ``A^T`` in CSR shares CSC's buffers) is *not*
    charged, matching MKL's inspector-executor setup being excluded.
    """
    d = check_positive_int(d, "d")
    m, n = A.shape
    sw = Stopwatch()
    with Timer() as total:
        # A^T in CSR is literally A's CSC buffers reinterpreted.
        from ..sparse.csr import CSRMatrix

        At_csr = CSRMatrix((n, m), A.indptr, A.indices, A.data, check=False)
        with sw.bucket("sample"):
            S = rng.materialize(d, m)
            St = np.ascontiguousarray(S.T)  # row-major S^T
        with sw.bucket("compute"):
            from ..sparse.ops import csr_times_dense

            out_t = csr_times_dense(At_csr, St)  # (n x d)
            Ahat = np.ascontiguousarray(out_t.T)
            if rng.post_scale != 1.0:
                Ahat *= rng.post_scale
    stats = KernelStats(
        kernel="pregen_csr_transposed",
        sample_seconds=sw.total("sample"),
        compute_seconds=sw.total("compute"),
        total_seconds=total.elapsed,
        samples_generated=d * m,
        flops=spmm_flops(d, A.nnz),
        blocks_processed=1,
        d=d, b_d=d, b_n=n,
        extra={"sketch_bytes": int(S.nbytes) + int(St.nbytes)},
    )
    return Ahat, stats
