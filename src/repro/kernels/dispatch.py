"""Architecture- and pattern-sensitive kernel selection.

Section II-B divides target machines into two cases: those "sensitive to
random access" (Frontera — prefetch-friendly strided loops win, choose
Algorithm 3) and those that "don't heavily penalize random access" or have
expensive RNG relative to bandwidth (Perlmutter — reuse wins, choose
Algorithm 4).  Section V-A's Table VI adds a pattern caveat: Algorithm 4
collapses when nonzeros concentrate in few dense *columns* (Abnormal_C),
while Algorithm 3 is pattern-oblivious.

:func:`choose_kernel` encodes both rules: prefer Algorithm 4 only when the
machine model says random access is cheap relative to RNG **and** the
sparsity pattern does not have Abnormal_C-style column concentration.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ConfigError
from ..sparse.csc import CSCMatrix
from ..utils.canonical import canonical_json

if TYPE_CHECKING:  # pragma: no cover
    from ..model.machine import MachineModel

__all__ = ["KERNEL_CHOICE_VERSION", "KernelChoice", "column_concentration",
           "choose_kernel"]

KERNEL_CHOICE_VERSION = 1


@dataclass(frozen=True)
class KernelChoice:
    """A kernel decision and the reasons behind it.

    ``backend`` records which kernel backend the decision was resolved
    for; autotune results and cached choices must not migrate across
    backends (the cost balance between the algorithms shifts when the
    RNG is fused into compiled loops).
    """

    kernel: str
    reason: str
    column_concentration: float
    machine_favors_reuse: bool
    backend: str = "numpy"

    # -- serialization (stable: the artifact cache stores this verbatim) ----

    def to_dict(self) -> dict:
        return {
            "version": KERNEL_CHOICE_VERSION,
            "kernel": self.kernel,
            "reason": self.reason,
            "column_concentration": float(self.column_concentration),
            "machine_favors_reuse": bool(self.machine_favors_reuse),
            "backend": self.backend,
        }

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, compact, stable float repr)."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, data: dict) -> "KernelChoice":
        version = int(data.get("version", KERNEL_CHOICE_VERSION))
        if version > KERNEL_CHOICE_VERSION:
            raise ConfigError(
                f"KernelChoice format version {version} is newer than this "
                f"library understands (max {KERNEL_CHOICE_VERSION})"
            )
        return cls(
            kernel=str(data["kernel"]),
            reason=str(data.get("reason", "")),
            column_concentration=float(data["column_concentration"]),
            machine_favors_reuse=bool(data["machine_favors_reuse"]),
            backend=str(data.get("backend", "numpy")),
        )

    @classmethod
    def from_json(cls, text: str) -> "KernelChoice":
        return cls.from_dict(json.loads(text))


def column_concentration(A: CSCMatrix, top_fraction: float = 0.01) -> float:
    """Fraction of nonzeros held by the densest ``top_fraction`` of columns.

    Abnormal_C (every 1000th column dense) scores ~1.0; a uniform pattern
    scores ~``top_fraction``.  This is the cheap signature the dispatcher
    uses to detect the pattern that doubles Algorithm 4's runtime in
    Table VI (outer products degenerate when "the sparse matrix has most
    of its elements stored contiguously in columns").
    """
    if not (0.0 < top_fraction <= 1.0):
        raise ValueError(f"top_fraction must be in (0, 1], got {top_fraction}")
    counts = A.col_nnz()
    nnz = counts.sum()
    if nnz == 0:
        return 0.0
    k = max(1, int(round(top_fraction * counts.size)))
    top = np.sort(counts)[-k:]
    return float(top.sum() / nnz)


def choose_kernel(machine: "MachineModel", A: CSCMatrix,
                  concentration_threshold: float = 0.5,
                  backend: str | None = None) -> KernelChoice:
    """Pick Algorithm 3 or 4 for *machine* and the pattern of *A*.

    The machine-level signal is
    :attr:`repro.model.MachineModel.favors_reuse` (random-access penalty
    low relative to RNG cost).  Even on a reuse-favouring machine,
    column-concentrated patterns (score above *concentration_threshold*)
    fall back to the pattern-oblivious Algorithm 3.

    Inputs are validated up front: an empty matrix (zero rows, columns,
    or nonzeros) or non-finite machine parameters raise
    :class:`~repro.errors.ConfigError` instead of propagating raw NumPy
    warnings through the concentration heuristic.

    *backend* (name, ``None``, or ``"auto"``) resolves through
    :func:`repro.kernels.backends.resolve_backend` and is recorded on the
    returned choice so it can be kept backend-consistent downstream.
    """
    from .backends import resolve_backend

    backend_name = resolve_backend(backend).name
    m, n = A.shape
    if m == 0 or n == 0:
        raise ConfigError(
            f"choose_kernel needs a non-empty matrix, got shape {A.shape}"
        )
    if A.nnz == 0:
        raise ConfigError(
            "choose_kernel needs at least one nonzero: an all-zero matrix "
            "has no sparsity pattern to dispatch on"
        )
    A.validate(require_finite=True)
    for attr in ("h_base", "random_access_penalty", "peak_gflops",
                 "bandwidth_gbs"):
        value = float(getattr(machine, attr))
        if not np.isfinite(value):
            raise ConfigError(
                f"machine parameter {attr} must be finite, got {value}"
            )
    if not np.isfinite(concentration_threshold) or concentration_threshold <= 0:
        raise ConfigError(
            f"concentration_threshold must be positive and finite, got "
            f"{concentration_threshold}"
        )
    conc = column_concentration(A)
    if not machine.favors_reuse:
        return KernelChoice(
            kernel="algo3",
            reason=(
                "machine penalizes random access relative to RNG cost; "
                "Algorithm 3's fully strided accesses win (Frontera case)"
            ),
            column_concentration=conc,
            machine_favors_reuse=False,
            backend=backend_name,
        )
    if conc >= concentration_threshold:
        return KernelChoice(
            kernel="algo3",
            reason=(
                f"nonzeros concentrated in few columns (score {conc:.2f}); "
                "Algorithm 4's outer products degenerate on this pattern "
                "(Table VI, Abnormal_C)"
            ),
            column_concentration=conc,
            machine_favors_reuse=True,
            backend=backend_name,
        )
    return KernelChoice(
        kernel="algo4",
        reason=(
            "machine tolerates random access / RNG is relatively expensive; "
            "Algorithm 4's sample reuse wins (Perlmutter case)"
        ),
        column_concentration=conc,
        machine_favors_reuse=True,
        backend=backend_name,
    )
