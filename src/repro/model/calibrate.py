"""Calibrate a :class:`MachineModel` for the current host.

The Frontera/Perlmutter presets encode the paper's testbeds; for any
other machine the model parameters can be *measured*, the same way the
paper characterized its nodes (Section V-A):

* bandwidth — STREAM-style copy;
* peak flops — a dense-GEMM burst (NumPy's BLAS, the realistic ceiling
  for this library's arithmetic);
* ``h`` — short-vector generation rate against the bandwidth;
* random-access penalty — gather-reduction time over contiguous-reduction
  time at a cache-busting working set (the prefetcher-sensitivity probe
  behind the Section II-B architecture split).

The calibrated model plugs into everything downstream: kernel dispatch
(:func:`repro.kernels.choose_kernel`), block-size recommendation, and the
scaling simulator.
"""

from __future__ import annotations

import os
import time

import numpy as np

from ..rng.base import make_rng
from ..rng.benchmark import rng_sample_rate, stream_copy_bandwidth
from ..utils.validation import check_positive_int
from .machine import MachineModel

__all__ = ["measure_peak_gflops", "measure_random_access_penalty",
           "calibrate_machine"]


def measure_peak_gflops(size: int = 384, repeats: int = 3) -> float:
    """Dense-GEMM burst rate in GFlop/s (the attainable compute ceiling)."""
    check_positive_int(size, "size")
    check_positive_int(repeats, "repeats")
    rng = np.random.default_rng(0)
    a = rng.random((size, size))
    b = rng.random((size, size))
    a @ b  # warm the BLAS path
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        a @ b
        best = min(best, time.perf_counter() - t0)
    return 2.0 * size**3 / best / 1e9


def measure_random_access_penalty(n_elements: int = 4_000_000,
                                  repeats: int = 3) -> float:
    """Scattered-vs-streamed access cost ratio (>= 1).

    Sums a vector twice: once in order, once through a random permutation
    of indices.  The working set exceeds typical LLCs, so the gather pays
    real memory-system penalties — the signal that separates the paper's
    two architecture classes.
    """
    check_positive_int(n_elements, "n_elements")
    check_positive_int(repeats, "repeats")
    rng = np.random.default_rng(1)
    data = rng.random(n_elements)
    perm = rng.permutation(n_elements)
    seq_idx = np.arange(n_elements)
    data[seq_idx].sum()  # warm

    def best_of(idx):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            data[idx].sum()
            best = min(best, time.perf_counter() - t0)
        return best

    t_seq = best_of(seq_idx)
    t_rand = best_of(perm)
    return max(1.0, t_rand / t_seq)


def calibrate_machine(name: str = "host", *, cache_bytes: int | None = None,
                      rng_kind: str = "xoshiro",
                      dist: str = "uniform") -> MachineModel:
    """Measure this host and return a :class:`MachineModel` for it.

    ``cache_bytes`` defaults to a conservative 16 MB when it cannot be
    read from the OS; the bandwidth-saturation knee is estimated as half
    the core count (unmeasurable without a thread sweep, which a 1-core
    CI box cannot perform).
    """
    if cache_bytes is None:
        cache_bytes = _detect_cache_bytes()
    bw_bytes = stream_copy_bandwidth()
    rate = rng_sample_rate(make_rng(rng_kind, 0, dist),
                           vector_length=10_000, batch_columns=16, repeats=3)
    h_base = bw_bytes / (8.0 * rate)
    cores = os.cpu_count() or 1
    return MachineModel(
        name=name,
        cache_bytes=cache_bytes,
        peak_gflops=measure_peak_gflops(),
        bandwidth_gbs=bw_bytes / 1e9,
        h_base=h_base,
        random_access_penalty=measure_random_access_penalty(),
        cores=cores,
        bandwidth_saturation_threads=max(1, cores // 2),
    )


def _detect_cache_bytes(default: int = 16 * 1024 * 1024) -> int:
    """Best-effort LLC size from sysfs; *default* when unreadable."""
    path = "/sys/devices/system/cpu/cpu0/cache"
    try:
        best = 0
        for entry in sorted(os.listdir(path)):
            if not entry.startswith("index"):
                continue
            size_file = os.path.join(path, entry, "size")
            with open(size_file) as fh:
                text = fh.read().strip()
            if text.endswith("K"):
                size = int(text[:-1]) * 1024
            elif text.endswith("M"):
                size = int(text[:-1]) * 1024 * 1024
            else:
                size = int(text)
            best = max(best, size)
        return best or default
    except OSError:
        return default
