"""Analytic data-movement accounting for the sketching algorithms.

Complements the roofline model with per-algorithm traffic formulas at the
granularity Algorithm 1 actually schedules (two-parameter blocking), used
by the scaling simulator (Table VII) and validated against the exact LRU
cache simulator on small instances.

Conventions: one "word" is an 8-byte element; CSC stores ``2 nnz + n + 1``
words (values + row indices + column pointers); the dense output ``Ahat``
is charged a read+write streaming pass (write-allocate); on-the-fly
generated sketch entries cost ``h`` word-equivalents each (Section III-A's
accounting), and scattered accesses are multiplied by the machine's
random-access penalty where the algorithm's access pattern is non-strided.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

import numpy as np

from ..errors import ConfigError
from ..sparse.csc import CSCMatrix

__all__ = ["TrafficEstimate", "algo3_traffic", "algo4_traffic", "pregen_traffic",
           "count_nonempty_rows_per_block"]


@dataclass(frozen=True)
class TrafficEstimate:
    """Traffic decomposition of one full sketching SpMM.

    ``effective_words`` is the roofline-comparable total: streamed words
    plus penalty-weighted scattered words plus ``h``-weighted generated
    entries.  ``flops`` rides along so callers can form CI directly.
    """

    algorithm: str
    words_sparse: float          # sparse-operand streaming traffic
    words_output: float          # Ahat streaming traffic
    words_output_scattered: float  # portion of output traffic that is scattered
    words_sketch: float          # stored-S traffic (pregen only)
    rng_entries: float           # generated sketch entries
    flops: float

    def effective_words(self, h: float, random_access_penalty: float = 1.0) -> float:
        """Penalty- and h-weighted total word movement."""
        if h < 0 or random_access_penalty < 1.0:
            raise ConfigError("need h >= 0 and random_access_penalty >= 1")
        strided_output = self.words_output - self.words_output_scattered
        return (
            self.words_sparse
            + strided_output
            + self.words_output_scattered * random_access_penalty
            + self.words_sketch
            + h * self.rng_entries
        )

    def intensity(self, h: float, random_access_penalty: float = 1.0) -> float:
        """Flops per effective word — the schedule's achieved CI."""
        return self.flops / self.effective_words(h, random_access_penalty)


def _csc_words(nnz: int, n: int) -> float:
    """Words of one streaming pass over a CSC matrix."""
    return 2.0 * nnz + (n + 1.0)


def count_nonempty_rows_per_block(A: CSCMatrix, b_n: int) -> np.ndarray:
    """Exact count of non-empty rows in each width-``b_n`` vertical block.

    This is the realized value of the model's ``E[Y]`` per block and
    determines Algorithm 4's exact RNG volume for a concrete matrix
    (Section III-B: zero rows of a block skip generation entirely).
    """
    if b_n < 1:
        raise ConfigError(f"b_n must be positive, got {b_n}")
    m, n = A.shape
    counts = []
    for j0 in range(0, n, b_n):
        j1 = min(j0 + b_n, n)
        lo, hi = int(A.indptr[j0]), int(A.indptr[j1])
        counts.append(np.unique(A.indices[lo:hi]).size)
    return np.asarray(counts, dtype=np.int64)


def algo3_traffic(A: CSCMatrix, d: int, b_d: int, b_n: int) -> TrafficEstimate:
    """Traffic of Algorithm 3 under Algorithm 1's ``(b_d, b_n)`` blocking.

    * The sparse operand is re-streamed once per row block of ``Ahat``
      (``ceil(d / b_d)`` passes) — the cost the paper's heuristic drives
      down by growing ``b_d``.
    * ``Ahat`` is streamed once (blocks stay cache-resident while active):
      one write-allocate read plus one write per word.
    * RNG volume is exactly ``d * nnz`` (Section III-B), and every access
      is strided (no scattered component).
    """
    if d < 1 or b_d < 1 or b_n < 1:
        raise ConfigError("d, b_d, b_n must be positive")
    m, n = A.shape
    passes = ceil(d / b_d)
    return TrafficEstimate(
        algorithm="algo3",
        words_sparse=passes * _csc_words(A.nnz, n),
        words_output=2.0 * d * n,
        words_output_scattered=0.0,
        words_sketch=0.0,
        rng_entries=float(d) * A.nnz,
        flops=2.0 * d * A.nnz,
    )


def algo4_traffic(A: CSCMatrix, d: int, b_d: int, b_n: int) -> TrafficEstimate:
    """Traffic of Algorithm 4 under the same blocking.

    * The blocked-CSR operand is re-streamed once per row block; its
      pointer overhead is ``m + 1`` words *per vertical block* (the O(m)
      row-pointer arrays that make the structure memory-hungry to build).
    * ``Ahat`` streaming volume is the same as Algorithm 3's, but the
      updates follow each sparse row's column pattern — all of it is
      charged as scattered.
    * RNG volume is ``d * sum_b nonempty_rows(b)`` — the reuse saving.
    """
    if d < 1 or b_d < 1 or b_n < 1:
        raise ConfigError("d, b_d, b_n must be positive")
    m, n = A.shape
    passes = ceil(d / b_d)
    n_blocks = ceil(n / b_n) if n else 0
    nonempty = count_nonempty_rows_per_block(A, b_n)
    words_blocked_csr = 2.0 * A.nnz + n_blocks * (m + 1.0)
    return TrafficEstimate(
        algorithm="algo4",
        words_sparse=passes * words_blocked_csr,
        words_output=2.0 * d * n,
        words_output_scattered=2.0 * d * n,
        words_sketch=0.0,
        rng_entries=float(d) * float(nonempty.sum()),
        flops=2.0 * d * A.nnz,
    )


def pregen_traffic(A: CSCMatrix, d: int, b_d: int, b_n: int,
                   cache_words: int) -> TrafficEstimate:
    """Traffic of the pre-generated-``S`` baseline.

    The stored sketch adds ``d * m`` words per pass; when it exceeds the
    cache it must be re-read once per vertical block of ``A`` — the
    movement the on-the-fly kernels convert into computation.  RNG volume
    is ``d * m`` (each entry generated exactly once) but, following
    Figure 4's convention, generation happens ahead of time and the
    caller typically excludes it from the reported cost.
    """
    if d < 1 or b_d < 1 or b_n < 1 or cache_words < 1:
        raise ConfigError("d, b_d, b_n, cache_words must be positive")
    m, n = A.shape
    sketch_words = float(d) * m
    n_blocks = ceil(n / b_n) if n else 0
    sketch_passes = 1 if sketch_words <= cache_words else max(1, n_blocks)
    return TrafficEstimate(
        algorithm="pregen",
        words_sparse=_csc_words(A.nnz, n),
        words_output=2.0 * d * n,
        words_output_scattered=0.0,
        words_sketch=sketch_passes * sketch_words,
        rng_entries=float(d) * m,
        flops=2.0 * d * A.nnz,
    )
