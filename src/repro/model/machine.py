"""Machine models for the roofline analysis and the scaling simulator.

Section III-A's analysis has three machine parameters: the cache size
``M`` (words), the machine balance ``B`` (peak flops over bandwidth), and
the RNG cost ``h`` (cost of generating one random number relative to one
memory access).  Section V adds two qualitative properties that decide the
Algorithm 3 vs Algorithm 4 contest: how strongly the memory system
penalizes random access (prefetchers), and how fast *short-vector* RNG is
relative to bandwidth.  :class:`MachineModel` packages all of these.

Presets
-------
``FRONTERA`` and ``PERLMUTTER`` encode the paper's two testbeds.  Peak
flops/bandwidth use the published hardware specs; ``h_base`` and
``random_access_penalty`` encode the paper's *measured, qualitative*
findings: "Frontera is faster at generating short random vectors", and
Algorithm 3 (strided) wins there, while "Perlmutter's cache behavior,
prefetching mechanism, and data movement rate is likely superior", so
Algorithm 4's random access is tolerated and its RNG savings win.  These
two presets are the substitution for the physical testbeds (see
DESIGN.md): all Table III/V/VII shape claims are derived from them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigError
from ..rng.distributions import Distribution, get_distribution

__all__ = ["MachineModel", "FRONTERA", "PERLMUTTER", "LAPTOP"]


@dataclass(frozen=True)
class MachineModel:
    """Parameters of the one-level-cache roofline machine.

    Attributes
    ----------
    name:
        Human-readable identifier.
    cache_bytes:
        Size of the modelled (last-level, per-socket) cache.
    peak_gflops:
        Peak double-precision rate of the full node, GFlop/s.
    bandwidth_gbs:
        Sustainable memory bandwidth of the full node, GB/s (STREAM-like).
    h_base:
        The paper's ``h`` for the *baseline* uniform transform: cost of
        generating one random number over the cost of moving one word.
        Per-distribution ``h`` is ``h_base * dist.h_factor``.
    random_access_penalty:
        Effective slowdown multiplier for scattered (non-strided) access
        relative to streaming access; >= 1.
    cores:
        Physical cores (bounds the thread sweep).
    bandwidth_saturation_threads:
        Thread count at which the shared memory bus saturates; the
        saturating-bandwidth curve in :mod:`repro.parallel.bandwidth`
        plateaus here.
    """

    name: str
    cache_bytes: int
    peak_gflops: float
    bandwidth_gbs: float
    h_base: float
    random_access_penalty: float
    cores: int
    bandwidth_saturation_threads: int

    def __post_init__(self) -> None:
        if self.cache_bytes <= 0:
            raise ConfigError("cache_bytes must be positive")
        if self.peak_gflops <= 0 or self.bandwidth_gbs <= 0:
            raise ConfigError("peak_gflops and bandwidth_gbs must be positive")
        if self.h_base <= 0:
            raise ConfigError("h_base must be positive")
        if self.random_access_penalty < 1.0:
            raise ConfigError("random_access_penalty must be >= 1")
        if self.cores < 1 or self.bandwidth_saturation_threads < 1:
            raise ConfigError("cores and saturation threads must be >= 1")

    # -- derived quantities -------------------------------------------------

    @property
    def cache_words(self) -> int:
        """The paper's ``M``: cache capacity in 8-byte words."""
        return self.cache_bytes // 8

    @property
    def machine_balance(self) -> float:
        """The paper's ``B``: peak flops per word of memory traffic.

        Defined against 8-byte words so it is directly comparable to the
        computational intensity produced by the Section III-A model (which
        counts word movements).
        """
        words_per_sec = self.bandwidth_gbs * 1e9 / 8.0
        return self.peak_gflops * 1e9 / words_per_sec

    def h(self, dist: str | Distribution = "uniform") -> float:
        """Effective ``h`` for a given entry distribution."""
        return self.h_base * get_distribution(dist).h_factor

    @property
    def favors_reuse(self) -> bool:
        """Does this machine prefer Algorithm 4 (reuse) over Algorithm 3?

        Section V-A's diagnosis: Algorithm 4 wins when the random-access
        penalty is small relative to the RNG saving it buys.  We compare the
        penalty against the RNG-cost ratio between the algorithms: when
        generating numbers costs more than the scatter penalty, reuse wins.
        """
        return self.h_base >= (self.random_access_penalty - 1.0)

    def with_threads(self, cores: int) -> "MachineModel":
        """A copy of this machine with a different core count."""
        return replace(self, cores=cores)


#: Intel Xeon Platinum 8280 node (Cascade Lake, 28 cores @ 2.7 GHz, ~38.5 MB
#: L3).  Fast short-vector RNG (small h) and strong prefetch sensitivity:
#: the Algorithm-3 machine of Tables II/III/VII.
FRONTERA = MachineModel(
    name="frontera",
    cache_bytes=38_500_000,
    peak_gflops=2419.0,  # 28 cores * 2.7 GHz * 32 flops/cycle (AVX-512 FMA)
    bandwidth_gbs=140.0,
    h_base=0.25,
    random_access_penalty=2.0,
    cores=28,
    bandwidth_saturation_threads=12,
)

#: Dual AMD EPYC 7763 node (Milan, 128 cores @ 2.45 GHz, 256 MB L3 x 2).
#: Higher bandwidth, tolerant of scattered access, but slower short-vector
#: RNG relative to its bandwidth: the Algorithm-4 machine of Tables IV/V.
PERLMUTTER = MachineModel(
    name="perlmutter",
    cache_bytes=512_000_000,
    peak_gflops=5017.0,  # 128 cores * 2.45 GHz * 16 flops/cycle
    bandwidth_gbs=400.0,
    h_base=0.6,
    random_access_penalty=1.2,
    cores=64,
    bandwidth_saturation_threads=24,
)

#: A deliberately small single-socket model for examples and quick tests.
LAPTOP = MachineModel(
    name="laptop",
    cache_bytes=8_000_000,
    peak_gflops=100.0,
    bandwidth_gbs=20.0,
    h_base=0.4,
    random_access_penalty=1.5,
    cores=4,
    bandwidth_saturation_threads=3,
)
