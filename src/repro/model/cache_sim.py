"""Exact one-level LRU cache simulator over kernel access traces.

The paper's theory (Section III-A) lives in "a simple one layer cache
model in which matrix entries have to be moved from the main memory into
cache before computation".  This module *executes* that model: it replays
the element-level address trace of a blocked kernel through a
fully-associative LRU cache and counts the words actually transferred.
Tests cross-validate the counts against the closed-form traffic estimates
in :mod:`repro.model.traffic` on small instances, closing the loop between
the analysis and the implementation.

Address space: the operands live in disjoint 8-byte-word regions (sparse
values, sparse indices, output, optional stored sketch).  On-the-fly
generated sketch entries never enter the address trace — that is precisely
the point of the technique ("S doesn't occupy valuable cache space") — and
are tallied separately as ``rng_entries``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..errors import ConfigError
from ..sparse.csc import CSCMatrix

__all__ = ["LRUCache", "MultiLevelCache", "TraceResult", "simulate_algo3",
           "simulate_pregen", "replay_algo3"]


class LRUCache:
    """Fully-associative LRU cache over fixed-size lines.

    Addresses are word indices (8-byte granularity); *line_words* words
    share a line.  ``access`` returns the number of misses incurred.
    """

    def __init__(self, capacity_words: int, line_words: int = 1) -> None:
        if capacity_words < 1 or line_words < 1:
            raise ConfigError("capacity_words and line_words must be positive")
        if line_words > capacity_words:
            raise ConfigError("line_words cannot exceed capacity_words")
        self.capacity_lines = capacity_words // line_words
        self.line_words = line_words
        self._lines: OrderedDict[int, None] = OrderedDict()
        self.misses = 0
        self.hits = 0

    def access(self, addresses: Iterable[int] | np.ndarray) -> int:
        """Touch each word address in order; return misses for this batch."""
        before = self.misses
        lines = self._lines
        cap = self.capacity_lines
        lw = self.line_words
        for addr in np.asarray(addresses, dtype=np.int64).ravel():
            line = int(addr) // lw
            if line in lines:
                lines.move_to_end(line)
                self.hits += 1
            else:
                self.misses += 1
                lines[line] = None
                if len(lines) > cap:
                    lines.popitem(last=False)
        return self.misses - before

    @property
    def words_moved(self) -> int:
        """Words transferred from memory (misses x line width)."""
        return self.misses * self.line_words


class MultiLevelCache:
    """An inclusive multi-level LRU hierarchy (e.g. L1 -> L2 -> memory).

    Extends the paper's one-level model: an access missing level ``k``
    falls through to level ``k+1``; only misses at the *last* level reach
    memory, so :attr:`words_moved` counts last-level traffic while the
    per-level hit/miss split (:meth:`level_stats`) shows where locality
    lives.  Level 0 is the smallest/fastest.
    """

    def __init__(self, levels: list[tuple[int, int]]) -> None:
        if not levels:
            raise ConfigError("need at least one cache level")
        caps = [c for c, _ in levels]
        if any(a > b for a, b in zip(caps, caps[1:])):
            raise ConfigError("levels must be ordered small to large")
        self.levels = [LRUCache(cap, line) for cap, line in levels]

    def access(self, addresses) -> int:
        """Touch each word address; return misses at the last level."""
        last_before = self.levels[-1].misses
        for addr in np.asarray(addresses, dtype=np.int64).ravel():
            a = [int(addr)]
            for level in self.levels:
                if level.access(a) == 0:
                    break  # hit at this level; inner levels already filled
        return self.levels[-1].misses - last_before

    @property
    def misses(self) -> int:
        """Misses at the last level (memory transfers)."""
        return self.levels[-1].misses

    @property
    def hits(self) -> int:
        """Hits summed over all levels."""
        return sum(level.hits for level in self.levels)

    @property
    def words_moved(self) -> int:
        """Words transferred from memory (last-level misses x line width)."""
        return self.levels[-1].words_moved

    def level_stats(self) -> list[tuple[int, int]]:
        """Per-level ``(hits, misses)`` from fastest to slowest."""
        return [(level.hits, level.misses) for level in self.levels]


@dataclass(frozen=True)
class TraceResult:
    """Outcome of replaying one kernel trace through the LRU cache."""

    algorithm: str
    words_moved: int
    misses: int
    hits: int
    rng_entries: int
    flops: int

    def effective_words(self, h: float) -> float:
        """Measured movement plus h-weighted generation (model's cost unit)."""
        if h < 0:
            raise ConfigError(f"h must be non-negative, got {h}")
        return self.words_moved + h * self.rng_entries


def _regions(A: CSCMatrix, d: int, with_sketch: bool) -> dict[str, int]:
    """Disjoint word-address bases for each operand."""
    m, n = A.shape
    bases = {"a_val": 0}
    bases["a_idx"] = A.nnz
    bases["ahat"] = 2 * A.nnz
    if with_sketch:
        bases["sketch"] = 2 * A.nnz + d * n
    return bases


def replay_algo3(A: CSCMatrix, d: int, b_d: int, b_n: int,
                 cache: "LRUCache | MultiLevelCache") -> TraceResult:
    """Replay Algorithm 3's element trace through an arbitrary cache.

    Per Algorithm 1 ordering (column blocks outer, row blocks inner); per
    nonzero ``(j, k)``: read the entry's value and row index, then
    read-modify-write the output column slice ``Ahat[i:i+d1, k]``.  Sketch
    entries are generated, not loaded.
    """
    if d < 1 or b_d < 1 or b_n < 1:
        raise ConfigError("d, b_d, b_n must be positive")
    m, n = A.shape
    bases = _regions(A, d, with_sketch=False)
    rng_entries = 0
    for j0 in range(0, n, b_n):
        j1 = min(j0 + b_n, n)
        for i in range(0, d, b_d):
            d1 = min(b_d, d - i)
            out_rows = np.arange(i, i + d1, dtype=np.int64)
            for k in range(j0, j1):
                lo, hi = int(A.indptr[k]), int(A.indptr[k + 1])
                col_addrs = bases["ahat"] + out_rows * n + k
                for t in range(lo, hi):
                    cache.access([bases["a_val"] + t, bases["a_idx"] + t])
                    rng_entries += d1
                    cache.access(col_addrs)  # read-modify-write of the column
    return TraceResult(
        algorithm="algo3",
        words_moved=cache.words_moved,
        misses=cache.misses,
        hits=cache.hits,
        rng_entries=rng_entries,
        flops=2 * d * A.nnz,
    )


def simulate_algo3(A: CSCMatrix, d: int, b_d: int, b_n: int,
                   cache_words: int, line_words: int = 1) -> TraceResult:
    """One-level wrapper of :func:`replay_algo3` (the paper's cache model)."""
    return replay_algo3(A, d, b_d, b_n, LRUCache(cache_words, line_words))


def simulate_pregen(A: CSCMatrix, d: int, b_d: int, b_n: int,
                    cache_words: int, line_words: int = 1) -> TraceResult:
    """Replay the same schedule with a *stored* sketch.

    Identical to :func:`simulate_algo3` except each needed sketch column
    slice is **loaded** (addresses in the sketch region) instead of
    generated, so the cache now also holds ``S`` — the contention the
    on-the-fly approach removes.
    """
    if d < 1 or b_d < 1 or b_n < 1:
        raise ConfigError("d, b_d, b_n must be positive")
    m, n = A.shape
    cache = LRUCache(cache_words, line_words)
    bases = _regions(A, d, with_sketch=True)
    for j0 in range(0, n, b_n):
        j1 = min(j0 + b_n, n)
        for i in range(0, d, b_d):
            d1 = min(b_d, d - i)
            out_rows = np.arange(i, i + d1, dtype=np.int64)
            for k in range(j0, j1):
                lo, hi = int(A.indptr[k]), int(A.indptr[k + 1])
                col_addrs = bases["ahat"] + out_rows * n + k
                for t in range(lo, hi):
                    j = int(A.indices[t])
                    cache.access([bases["a_val"] + t, bases["a_idx"] + t])
                    sketch_addrs = bases["sketch"] + out_rows * m + j
                    cache.access(sketch_addrs)
                    cache.access(col_addrs)
    return TraceResult(
        algorithm="pregen",
        words_moved=cache.words_moved,
        misses=cache.misses,
        hits=cache.hits,
        rng_entries=0,
        flops=2 * d * A.nnz,
    )
