"""Pattern-aware ``b_n`` tuning for Algorithm 4.

Section III-B, verbatim: "depending on the sparsity pattern of A, one
could tune ``b_n`` to minimize the number of random variables generated."
This module does exactly that, with the *exact* per-block non-empty-row
counts of the concrete matrix (not the uniform-density expectation):

* :func:`rng_volume_curve` — Algorithm 4's generated-entry count as a
  function of ``b_n`` (wider blocks always generate fewer, but cost cache
  pressure and blocked-CSR pointer overhead);
* :func:`tune_bn` — minimize the *model-effective cost* (h-weighted RNG
  volume + pointer/streaming traffic + penalty-weighted output scatter)
  over a candidate grid, subject to the output block fitting in cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigError
from ..sparse.csc import CSCMatrix
from .machine import MachineModel
from .traffic import algo4_traffic

__all__ = ["BnChoice", "rng_volume_curve", "tune_bn"]


@dataclass(frozen=True)
class BnChoice:
    """Outcome of a pattern-aware ``b_n`` search."""

    b_n: int
    rng_entries: float
    effective_words: float
    curve: list  # (b_n, rng_entries, effective_words) per candidate

    def describe(self) -> str:
        """One-line summary."""
        return (f"b_n = {self.b_n}: {self.rng_entries:.3g} generated "
                f"entries, {self.effective_words:.3g} effective words")


def rng_volume_curve(A: CSCMatrix, d: int,
                     bn_values: Sequence[int]) -> list[tuple[int, float]]:
    """Exact Algorithm 4 RNG volume for each candidate ``b_n``.

    Monotone non-increasing in ``b_n`` for every matrix (wider blocks can
    only merge rows' occurrences); the *shape* of the decay is the
    pattern signature — flat for Abnormal_C, cliff-like for Abnormal_A.
    """
    if d < 1:
        raise ConfigError(f"d must be positive, got {d}")
    from .traffic import count_nonempty_rows_per_block

    out = []
    for b_n in bn_values:
        if b_n < 1:
            raise ConfigError(f"b_n candidates must be positive, got {b_n}")
        counts = count_nonempty_rows_per_block(A, int(b_n))
        out.append((int(b_n), float(d) * float(counts.sum())))
    return out


def tune_bn(A: CSCMatrix, d: int, machine: MachineModel, *,
            b_d: int | None = None,
            bn_values: Sequence[int] | None = None,
            dist: str = "uniform") -> BnChoice:
    """Pick ``b_n`` minimizing Algorithm 4's model-effective cost on *A*.

    Candidates default to a geometric grid from 1 to ``n``, filtered by
    the cache constraint (the ``b_d x b_n`` output block must fit in half
    the cache).  The cost combines the *exact* RNG volume with the
    blocked-CSR streaming and scattered-output traffic, all in the
    machine's word-movement units.
    """
    m, n = A.shape
    if d < 1:
        raise ConfigError(f"d must be positive, got {d}")
    b_d = d if b_d is None else int(b_d)
    if bn_values is None:
        grid = np.unique(np.geomspace(1, max(n, 1), num=12).astype(int))
        bn_values = [int(b) for b in grid]
    if not bn_values:
        raise ConfigError("bn_values must be non-empty")

    h = machine.h(dist)
    half_cache = machine.cache_words // 2
    curve = []
    feasible = []
    for b_n in bn_values:
        traffic = algo4_traffic(A, d, b_d, int(b_n))
        eff = traffic.effective_words(h, machine.random_access_penalty)
        curve.append((int(b_n), traffic.rng_entries, eff))
        if min(b_d, d) * int(b_n) <= half_cache:
            feasible.append((eff, int(b_n), traffic.rng_entries))
    if not feasible:
        # Every candidate busts the cache; fall back to the smallest b_n.
        eff, b_n, rng_entries = min(
            (c[2], c[0], c[1]) for c in curve
        )
    else:
        eff, b_n, rng_entries = min(feasible)
    return BnChoice(b_n=b_n, rng_entries=rng_entries,
                    effective_words=eff, curve=curve)
