"""ASCII roofline diagrams — Section III-A's picture, in a terminal.

The roofline model [14] is a plot: performance (GFlop/s, log scale)
against computational intensity (flops/word, log scale), capped by the
bandwidth slope on the left and the flat compute peak on the right.  The
paper reasons entirely in this picture; this module renders it as text so
every bench and example can *show* where an algorithm sits, not just
state a number.

:func:`render_roofline` places labelled points (algorithm, CI) on a
machine's roofline; :func:`roofline_points` computes the standard points
for a problem (Algorithms 3/4 at their traffic estimates, the
pre-generated baseline, and the GEMM reference).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from .machine import MachineModel
from .roofline import gemm_ci

__all__ = ["render_roofline", "roofline_points"]


def _attainable(machine: MachineModel, ci: float) -> float:
    """Roofline-attainable GFlop/s at intensity *ci* (flops per word)."""
    words_per_sec = machine.bandwidth_gbs * 1e9 / 8.0
    return min(machine.peak_gflops, ci * words_per_sec / 1e9)


def render_roofline(machine: MachineModel,
                    points: dict[str, float],
                    width: int = 68, height: int = 16) -> str:
    """Render *points* (label -> CI) on the machine's roofline.

    Both axes are log-scaled; the ridge (machine balance) is marked with
    ``^``.  Each point is drawn at its attainable performance with the
    first letter of its label; a legend follows.
    """
    if width < 20 or height < 6:
        raise ConfigError("diagram needs width >= 20 and height >= 6")
    if not points:
        raise ConfigError("need at least one point to draw")
    for label, ci in points.items():
        if ci <= 0:
            raise ConfigError(f"CI for {label!r} must be positive")

    cis = list(points.values()) + [machine.machine_balance]
    lo = min(cis) / 4.0
    hi = max(cis) * 4.0
    x_lo, x_hi = np.log10(lo), np.log10(hi)
    y_hi = np.log10(machine.peak_gflops)
    y_lo = np.log10(max(_attainable(machine, lo), 1e-3))

    def col_of(ci: float) -> int:
        return int(round((np.log10(ci) - x_lo) / (x_hi - x_lo) * (width - 1)))

    def row_of(gf: float) -> int:
        frac = (np.log10(max(gf, 1e-3)) - y_lo) / max(y_hi - y_lo, 1e-9)
        return (height - 1) - int(round(frac * (height - 1)))

    grid = [[" "] * width for _ in range(height)]
    # Draw the roof.
    for c in range(width):
        ci = 10 ** (x_lo + (x_hi - x_lo) * c / (width - 1))
        r = row_of(_attainable(machine, ci))
        if 0 <= r < height:
            grid[r][c] = "-" if _attainable(machine, ci) >= machine.peak_gflops * 0.999 else "/"
    # Ridge marker.
    ridge_c = col_of(machine.machine_balance)
    if 0 <= ridge_c < width:
        grid[height - 1][ridge_c] = "^"
    # Points.
    legend = []
    for label, ci in points.items():
        c = min(max(col_of(ci), 0), width - 1)
        r = min(max(row_of(_attainable(machine, ci)), 0), height - 1)
        mark = label[0].upper()
        grid[r][c] = mark
        legend.append(
            f"  {mark} = {label}: CI {ci:.3g} flops/word -> "
            f"{_attainable(machine, ci):.1f} GF/s "
            f"({_attainable(machine, ci) / machine.peak_gflops:.0%} of peak)"
        )
    lines = [
        f"roofline: {machine.name} "
        f"(peak {machine.peak_gflops:.0f} GF/s, "
        f"BW {machine.bandwidth_gbs:.0f} GB/s, balance "
        f"B = {machine.machine_balance:.1f} flops/word)",
        f"{machine.peak_gflops:9.0f} GF/s".rjust(12),
    ]
    for row in grid:
        lines.append("  |" + "".join(row))
    lines.append("  +" + "-" * width)
    lines.append(f"   CI: {lo:.2g} ... {hi:.2g} flops/word (log), "
                 "^ = machine balance")
    lines.extend(legend)
    return "\n".join(lines)


def roofline_points(A, d: int, machine: MachineModel, *, b_d: int,
                    b_n: int, dist: str = "uniform") -> dict[str, float]:
    """Standard roofline points for one problem on one machine.

    Returns intensities (flops per effective word) for Algorithm 3,
    Algorithm 4, the pre-generated baseline, and the square-blocked GEMM
    reference — the cast of the paper's analysis.
    """
    from .traffic import algo3_traffic, algo4_traffic, pregen_traffic

    h = machine.h(dist)
    pen = machine.random_access_penalty
    return {
        "algo3 (on-the-fly, strided)":
            algo3_traffic(A, d, b_d, b_n).intensity(h, 1.0),
        "reuse: algo4 (on-the-fly)":
            algo4_traffic(A, d, b_d, b_n).intensity(h, pen),
        "pregen (stored S)":
            pregen_traffic(A, d, b_d, b_n,
                           machine.cache_words).intensity(0.0, 1.0),
        "gemm reference":
            gemm_ci(machine.cache_words),
    }
