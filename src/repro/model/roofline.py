"""The Section III-A roofline model: computational intensity and peaks.

The model: a one-level cache of ``M`` words; each cache fill enables
``2 rho d1 m1 n1`` flops on a block triple ``(d1, m1, n1)``; the sketch
``S`` is regenerated on the fly at cost ``h`` per entry (in units of one
word of memory movement), so a block's total cost is
``M + h * d1 * m1 * (1 - (1 - rho)**n1)`` — the second term being the
expected number of sketch columns that must be generated, since a column
of ``S_sub`` is needed exactly when the corresponding row of ``A_sub`` has
at least one nonzero (``E[Y] = m1 (1 - (1-rho)^{n1})``).

Equation (4) minimizes the reciprocal of computational intensity subject
to the cache constraint ``d1 n1 + m1 n1 rho <= M``; this module implements
the objective, the closed forms for the sparse (Eq. 5-6) and dense (Eq. 7)
regimes, and the fraction-of-peak estimates against the machine balance
``B``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from .machine import MachineModel

__all__ = [
    "expected_nonempty_rows",
    "block_generation_cost",
    "computational_intensity",
    "reciprocal_ci_objective",
    "ci_small_rho",
    "ci_big_rho",
    "optimal_n1_big_rho",
    "fraction_of_peak",
    "peak_fraction_small_rho",
    "peak_fraction_big_rho",
    "gemm_ci",
]


def _check_rho(rho: float) -> float:
    if not (0.0 <= rho <= 1.0):
        raise ConfigError(f"density rho must be in [0, 1], got {rho}")
    return float(rho)


def expected_nonempty_rows(m1: int, n1: int, rho: float) -> float:
    """``E[Y] = m1 * (1 - (1 - rho)^{n1})``: rows of the block with a nonzero.

    Each such row forces generation of one length-``d1`` sketch column, so
    this expectation is the block's RNG volume divided by ``d1``.
    """
    rho = _check_rho(rho)
    if m1 < 0 or n1 < 0:
        raise ConfigError("block dimensions must be non-negative")
    return m1 * (1.0 - (1.0 - rho) ** n1)


def block_generation_cost(d1: int, m1: int, n1: int, rho: float, h: float) -> float:
    """Expected RNG cost of one block, in word-movement units:
    ``h * d1 * m1 * (1 - (1-rho)^{n1})``."""
    if h < 0:
        raise ConfigError(f"h must be non-negative, got {h}")
    return h * d1 * expected_nonempty_rows(m1, n1, rho)


def computational_intensity(d1: int, m1: int, n1: int, rho: float,
                            M: int, h: float) -> float:
    """CI of a block schedule: flops per unit of (movement + generation).

    ``CI = 2 rho d1 m1 n1 / (M + h d1 m1 (1 - (1-rho)^{n1}))`` — the
    quantity Equation (4) maximizes (via its reciprocal).
    """
    if M <= 0:
        raise ConfigError(f"cache size M must be positive, got {M}")
    rho = _check_rho(rho)
    flops = 2.0 * rho * d1 * m1 * n1
    cost = M + block_generation_cost(d1, m1, n1, rho, h)
    return flops / cost


def reciprocal_ci_objective(d1: int, m1: int, n1: int, rho: float,
                            M: int, h: float) -> float:
    """Equation (4)'s objective per unit of ``d m n``:
    ``(M + h d1 m1 (1 - (1-rho)^{n1})) / (d1 m1 n1)`` (the ``rho`` and the
    factor 2 in the flop count are constants w.r.t. the block sizes and are
    dropped, exactly as in the paper's derivation)."""
    if min(d1, m1, n1) <= 0:
        raise ConfigError("block dimensions must be positive")
    if M <= 0:
        raise ConfigError(f"cache size M must be positive, got {M}")
    rho = _check_rho(rho)
    return (M + block_generation_cost(d1, m1, n1, rho, h)) / (d1 * m1 * n1)


def ci_small_rho(M: int, h: float) -> float:
    """Equation (5): CI at the sparse-regime optimum ``n1 = 1``:
    ``2M / (4 + M h)``.

    This value also applies to *arbitrary* sparsity patterns (the paper
    notes the ``n1 = 1`` analysis does not use the uniform-density
    assumption).
    """
    if M <= 0 or h < 0:
        raise ConfigError("need M > 0 and h >= 0")
    return 2.0 * M / (4.0 + M * h)


def optimal_n1_big_rho(M: int, h: float, rho: float) -> float:
    """Dense-regime minimizer ``n1 = sqrt(h M) / (2 sqrt(rho))`` (Sec. III-A2)."""
    rho = _check_rho(rho)
    if rho == 0.0:
        raise ConfigError("big-rho formula needs rho > 0")
    if M <= 0 or h <= 0:
        raise ConfigError("need M > 0 and h > 0")
    return float(np.sqrt(h * M) / (2.0 * np.sqrt(rho)))


def ci_big_rho(M: int, h: float, rho: float) -> float:
    """Dense-regime CI ``sqrt(M rho) / (2 sqrt(h))`` implied by Eq. (7)."""
    rho = _check_rho(rho)
    if M <= 0 or h <= 0:
        raise ConfigError("need M > 0 and h > 0")
    return float(np.sqrt(M * rho) / (2.0 * np.sqrt(h)))


def fraction_of_peak(ci: float, machine: MachineModel) -> float:
    """Roofline fraction of peak: ``min(1, CI / B)``.

    "In order to achieve peak performance, the CI has to be greater than
    machine balance."
    """
    if ci < 0:
        raise ConfigError(f"CI must be non-negative, got {ci}")
    return min(1.0, ci / machine.machine_balance)


def peak_fraction_small_rho(machine: MachineModel, h: float | None = None) -> float:
    """Equation (6) evaluated on a machine: fraction of peak in the sparse
    regime.  With ``M h >> 4`` this is ~``2/(h B)``; with small ``h`` it is
    ~``M / (2 B)`` — a factor ``sqrt(M)`` better than GEMM's
    ``O(sqrt(M) / B)``."""
    h_eff = machine.h_base if h is None else h
    return fraction_of_peak(ci_small_rho(machine.cache_words, h_eff), machine)


def peak_fraction_big_rho(machine: MachineModel, rho: float,
                          h: float | None = None) -> float:
    """Equation (7) evaluated on a machine:
    ``sqrt(M rho) / (2 B sqrt(h))`` capped at 1."""
    h_eff = machine.h_base if h is None else h
    return fraction_of_peak(ci_big_rho(machine.cache_words, h_eff, rho), machine)


def gemm_ci(M: int) -> float:
    """Classical blocked-GEMM computational intensity, ``O(sqrt(M))``.

    With square blocking ``b = sqrt(M/3)`` each cache fill performs
    ``2 b^3`` flops for ``3 b^2`` words moved, giving
    ``CI = (2/3) b = (2/3) sqrt(M/3)``.  The paper quotes the fraction of
    peak as ``O(sqrt(M)/B)``; the constant here makes the comparison in
    :mod:`repro.model.lower_bounds` concrete.
    """
    if M <= 0:
        raise ConfigError(f"cache size M must be positive, got {M}")
    return (2.0 / 3.0) * float(np.sqrt(M / 3.0))
