"""Extension: Section III analysis for non-uniform sparsity patterns.

The paper's conclusion names this as future work: "extend our theoretical
analysis to sparse matrices with non-uniform sparsity patterns ... there
are certainly other well-behaved patterns that can be analyzed."  This
module carries the Section III-A quantities — the expected number of
non-empty rows per vertical block, hence Algorithm 4's RNG volume and the
achievable computational intensity — to the structured patterns this
repository generates:

* ``uniform(rho)`` — the paper's model (baseline);
* ``dense_rows(period)`` — Abnormal_A: every ``period``-th row dense.
  A width-``b_n`` block has exactly ``m / period`` non-empty rows
  *regardless of* ``b_n``: Algorithm 4's reuse is maximal and its RNG
  volume is ``d * m * ceil(n/b_n) / period`` — a factor ``~ b_n`` below
  Algorithm 3 once ``b_n`` exceeds 1.
* ``dense_cols(period)`` — Abnormal_C: every ``period``-th column dense.
  Every column is either empty or full; a block containing ``k`` dense
  columns has min(1, k) * m non-empty rows, and each dense column demands
  all ``m`` sketch columns anyway, so Algorithm 4's volume equals
  Algorithm 3's whenever every block holds at least one dense column
  (``b_n >= period``): reuse vanishes, exactly the Table VI collapse.
* ``banded(bandwidth_rows, per_col)`` — FEM band: a width-``b_n`` block
  touches a contiguous row window of about
  ``bandwidth_rows + b_n * m / n`` rows.

Each analysis returns the same :class:`PatternCosts` record so the
roofline machinery applies unchanged; tests validate every formula
against exact counts on generated matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from ..errors import ConfigError
from .roofline import expected_nonempty_rows

__all__ = ["PatternCosts", "uniform_costs", "dense_rows_costs",
           "dense_cols_costs", "banded_costs", "algo4_rng_volume"]


@dataclass(frozen=True)
class PatternCosts:
    """Per-pattern RNG accounting for one full Algorithm 4 sweep.

    ``nonempty_rows_per_block`` is the (expected) count for one width-
    ``b_n`` vertical block; ``rng_entries`` is the full-sweep volume
    ``d * n_blocks * nonempty_rows_per_block``; ``algo3_rng_entries`` is
    the pattern-oblivious ``d * nnz`` for comparison, and ``reuse_factor``
    their ratio (< 1 means Algorithm 4 saves generation work).
    """

    pattern: str
    m: int
    n: int
    b_n: int
    nnz: float
    nonempty_rows_per_block: float
    rng_entries: float
    algo3_rng_entries: float

    @property
    def reuse_factor(self) -> float:
        """Algorithm 4's RNG volume relative to Algorithm 3's."""
        if self.algo3_rng_entries == 0:
            return 1.0
        return self.rng_entries / self.algo3_rng_entries


def _check(m: int, n: int, d: int, b_n: int) -> None:
    if min(m, n, d, b_n) < 1:
        raise ConfigError("m, n, d, b_n must all be positive")


def _package(pattern: str, m: int, n: int, d: int, b_n: int, nnz: float,
             per_block: float) -> PatternCosts:
    n_blocks = ceil(n / b_n)
    return PatternCosts(
        pattern=pattern, m=m, n=n, b_n=b_n, nnz=nnz,
        nonempty_rows_per_block=per_block,
        rng_entries=float(d) * n_blocks * per_block,
        algo3_rng_entries=float(d) * nnz,
    )


def uniform_costs(m: int, n: int, d: int, b_n: int, rho: float) -> PatternCosts:
    """The paper's baseline: iid pattern with density ``rho``."""
    _check(m, n, d, b_n)
    if not (0.0 <= rho <= 1.0):
        raise ConfigError(f"rho must be in [0, 1], got {rho}")
    per_block = expected_nonempty_rows(m, min(b_n, n), rho)
    return _package("uniform", m, n, d, b_n, rho * m * n, per_block)


def dense_rows_costs(m: int, n: int, d: int, b_n: int,
                     period: int) -> PatternCosts:
    """Abnormal_A: every ``period``-th row dense, all others empty.

    Non-empty rows per block = number of dense rows = ceil(m / period),
    independent of ``b_n`` — the best case for Algorithm 4.
    """
    _check(m, n, d, b_n)
    if period < 1:
        raise ConfigError(f"period must be positive, got {period}")
    dense_rows = ceil(m / period)
    return _package("dense_rows", m, n, d, b_n,
                    float(dense_rows) * n, float(dense_rows))


def dense_cols_costs(m: int, n: int, d: int, b_n: int,
                     period: int) -> PatternCosts:
    """Abnormal_C: every ``period``-th column dense, all others empty.

    A width-``b_n`` block is non-trivial iff it contains a dense column,
    in which case *all* ``m`` rows are non-empty.  The expected fraction
    of non-trivial blocks is ``min(1, b_n / period)`` (blocks tile the
    columns; a dense column lands in a block with that probability), so

        per-block expectation = m * min(1, b_n / period).

    For ``b_n >= period`` every block is full: Algorithm 4's volume equals
    ``d * m * n_blocks`` while the nnz is ``m * n / period`` — the reuse
    factor rises to ``min(1, b_n/period) * period / b_n``-free form below,
    collapsing to ~1 exactly as Table VI observes.
    """
    _check(m, n, d, b_n)
    if period < 1:
        raise ConfigError(f"period must be positive, got {period}")
    dense_cols = ceil(n / period)
    frac_nontrivial = min(1.0, b_n / period)
    per_block = m * frac_nontrivial
    return _package("dense_cols", m, n, d, b_n,
                    float(dense_cols) * m, per_block)


def banded_costs(m: int, n: int, d: int, b_n: int,
                 bandwidth_rows: int, per_col: int) -> PatternCosts:
    """FEM band: column ``j``'s entries live within ``bandwidth_rows`` of
    the stretched diagonal row ``j * m / n``.

    A width-``b_n`` block touches a row window of about
    ``bandwidth_rows + b_n * m / n`` rows (band height plus diagonal
    drift across the block), capped by ``m`` and by the block's actual
    entry count.
    """
    _check(m, n, d, b_n)
    if bandwidth_rows < 1 or per_col < 1:
        raise ConfigError("bandwidth_rows and per_col must be positive")
    window = min(float(m), bandwidth_rows + b_n * m / n)
    nnz = float(per_col) * n
    per_block = min(window, float(per_col) * min(b_n, n))
    return _package("banded", m, n, d, b_n, nnz, per_block)


def algo4_rng_volume(costs: PatternCosts) -> float:
    """Convenience: the full-sweep Algorithm 4 RNG entry count."""
    return costs.rng_entries
