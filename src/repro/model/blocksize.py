"""Block-size optimization for the Section III-A model.

The paper reduces Equation (4) to a one-dimensional problem: for fixed
``n1``, the cache constraint ``d1 n1 + m1 n1 rho <= M`` is tight at
``d1 = M / (2 n1)`` and ``m1 = M / (2 n1 rho)``, leaving

    g(n1) = 4 n1 rho / M  +  h (1 - (1 - rho)^{n1}) / n1

to minimize (per unit ``d m n``).  There is no closed form, so
:func:`optimize_blocks` scans integer ``n1`` (the function is unimodal in
practice); the closed-form limits — ``n1 = 1`` for small ``rho``,
``n1 = sqrt(hM)/(2 sqrt(rho))`` for ``rho -> 1`` — are exposed for
comparison and tested against the numeric optimum.

:func:`recommend_block_sizes` maps the model's ``(d1, m1, n1)`` (a
three-way blocking) onto Algorithm 1's practical two-parameter blocking
``(b_d, b_n)``, which never blocks the inner dimension: ``b_d = d1``,
``b_n = n1``, clipped to the actual problem dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .machine import MachineModel
from .roofline import computational_intensity, reciprocal_ci_objective

__all__ = ["BlockPlan", "scan_objective", "optimize_blocks", "recommend_block_sizes"]


@dataclass(frozen=True)
class BlockPlan:
    """An optimized block triple and its model scores."""

    d1: int
    m1: int
    n1: int
    ci: float
    objective: float
    cache_words: int
    h: float
    rho: float

    def satisfies_cache(self) -> bool:
        """Check the Equation (4) constraint ``d1 n1 + m1 n1 rho <= M``."""
        return self.d1 * self.n1 + self.m1 * self.n1 * self.rho <= self.cache_words + 1e-9


def _tight_d1_m1(n1: int, M: int, rho: float) -> tuple[int, int]:
    """The constraint-saturating split ``d1 = M/(2 n1)``, ``m1 = M/(2 n1 rho)``.

    After integer clamping (``d1 >= 1``) the remaining budget is given to
    ``m1`` so the cache constraint ``d1 n1 + m1 n1 rho <= M`` always holds
    (relevant when ``n1`` approaches ``M`` and the even split would round
    past the budget).
    """
    d1 = max(1, int(M / (2 * n1)))
    if rho > 0:
        budget = max(0.0, M - d1 * n1)
        m1 = max(1, int(budget / (n1 * rho)))
    else:
        m1 = max(1, int(M / (2 * n1)))
    return d1, m1


def scan_objective(rho: float, M: int, h: float,
                   n1_max: int | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate the reduced objective ``g(n1)`` on ``n1 = 1 .. n1_max``.

    Returns ``(n1_values, g_values)``; benches use this to plot the
    tradeoff curve, tests to verify unimodality around the optimum.
    """
    if not (0.0 < rho <= 1.0):
        raise ConfigError(f"rho must be in (0, 1], got {rho}")
    if M <= 0 or h < 0:
        raise ConfigError("need M > 0 and h >= 0")
    if n1_max is None:
        # The dense-regime optimum is sqrt(hM)/(2 sqrt(rho)); scan past
        # twice that (capped to keep the grid bounded for extreme rho).
        guess = 2.0 * np.sqrt(max(h, 1e-9) * M / max(rho, 1e-12))
        n1_max = int(min(max(64.0, guess), 4e6))
    # A block column must fit in cache even at d1 = m1 = 1.
    n1_max = max(1, min(n1_max, M // 2))
    if n1_max <= 4096:
        n1 = np.arange(1, n1_max + 1, dtype=np.float64)
    else:
        # Dense low range + geometric tail, then integer refinement around
        # the coarse optimum in optimize_blocks.
        low = np.arange(1, 2049, dtype=np.float64)
        tail = np.unique(np.geomspace(2048, n1_max, 4096).astype(np.int64))
        n1 = np.concatenate([low, tail.astype(np.float64)])
    g = 4.0 * n1 * rho / M + h * (1.0 - (1.0 - rho) ** n1) / n1
    return n1.astype(np.int64), g


def optimize_blocks(rho: float, M: int, h: float,
                    n1_max: int | None = None) -> BlockPlan:
    """Numerically minimize Equation (4) over the tight-constraint family.

    Scans integer ``n1``, sets ``(d1, m1)`` to the constraint-saturating
    values, and returns the best plan with its CI.
    """
    n1_vals, g = scan_objective(rho, M, h, n1_max=n1_max)
    best = int(n1_vals[np.argmin(g)])

    # Integer refinement: the coarse grid may skip the exact argmin, so
    # walk downhill among immediate neighbours until locally optimal.
    def g_at(n1: int) -> float:
        return 4.0 * n1 * rho / M + h * (1.0 - (1.0 - rho) ** n1) / n1

    n1_cap = max(1, M // 2)
    while best > 1 and g_at(best - 1) < g_at(best):
        best -= 1
    while best < n1_cap and g_at(best + 1) < g_at(best):
        best += 1
    d1, m1 = _tight_d1_m1(best, M, rho)
    return BlockPlan(
        d1=d1,
        m1=m1,
        n1=best,
        ci=computational_intensity(d1, m1, best, rho, M, h),
        objective=reciprocal_ci_objective(d1, m1, best, rho, M, h),
        cache_words=M,
        h=h,
        rho=rho,
    )


def recommend_block_sizes(machine: MachineModel, rho: float, d: int, n: int,
                          dist: str = "uniform") -> tuple[int, int]:
    """Practical ``(b_d, b_n)`` for Algorithm 1 from the model optimum.

    Clips the model's ``(d1, n1)`` to the problem dimensions and rounds
    ``b_n`` up to a floor of 1.  Note Algorithm 1 does not block the inner
    (``m``) dimension, so the model's ``m1`` is advisory only.
    """
    if d <= 0 or n <= 0:
        raise ConfigError("d and n must be positive")
    plan = optimize_blocks(rho, machine.cache_words, machine.h(dist))
    b_d = max(1, min(d, plan.d1))
    b_n = max(1, min(n, plan.n1))
    return b_d, b_n
