"""Performance-model substrate: Section III made executable.

Machine models (Frontera/Perlmutter presets), the roofline analysis of
Equation (4) with its closed-form regimes (Eqs. 5-7), numeric block-size
optimization, analytic per-algorithm traffic accounting, an exact LRU
cache simulator that validates the analysis, and the sqrt(M) lower-bound
comparison against GEMM.
"""

from .blocksize import BlockPlan, optimize_blocks, recommend_block_sizes, scan_objective
from .bn_tuner import BnChoice, rng_volume_curve, tune_bn
from .calibrate import (
    calibrate_machine,
    measure_peak_gflops,
    measure_random_access_penalty,
)
from .cache_sim import (
    LRUCache,
    MultiLevelCache,
    TraceResult,
    replay_algo3,
    simulate_algo3,
    simulate_pregen,
)
from .lower_bounds import (
    advantage_over_gemm,
    asymptotic_advantage,
    gemm_words_lower_bound,
    sketch_effective_words,
)
from .machine import FRONTERA, LAPTOP, PERLMUTTER, MachineModel
from .patterns import (
    PatternCosts,
    algo4_rng_volume,
    banded_costs,
    dense_cols_costs,
    dense_rows_costs,
    uniform_costs,
)
from .report import render_roofline, roofline_points
from .roofline import (
    block_generation_cost,
    ci_big_rho,
    ci_small_rho,
    computational_intensity,
    expected_nonempty_rows,
    fraction_of_peak,
    gemm_ci,
    optimal_n1_big_rho,
    peak_fraction_big_rho,
    peak_fraction_small_rho,
    reciprocal_ci_objective,
)
from .traffic import (
    TrafficEstimate,
    algo3_traffic,
    algo4_traffic,
    count_nonempty_rows_per_block,
    pregen_traffic,
)

__all__ = [
    "BlockPlan",
    "optimize_blocks",
    "recommend_block_sizes",
    "scan_objective",
    "BnChoice",
    "rng_volume_curve",
    "tune_bn",
    "calibrate_machine",
    "measure_peak_gflops",
    "measure_random_access_penalty",
    "LRUCache",
    "MultiLevelCache",
    "replay_algo3",
    "TraceResult",
    "simulate_algo3",
    "simulate_pregen",
    "advantage_over_gemm",
    "asymptotic_advantage",
    "gemm_words_lower_bound",
    "sketch_effective_words",
    "FRONTERA",
    "LAPTOP",
    "PERLMUTTER",
    "MachineModel",
    "PatternCosts",
    "algo4_rng_volume",
    "banded_costs",
    "dense_cols_costs",
    "dense_rows_costs",
    "uniform_costs",
    "block_generation_cost",
    "ci_big_rho",
    "ci_small_rho",
    "computational_intensity",
    "expected_nonempty_rows",
    "fraction_of_peak",
    "gemm_ci",
    "optimal_n1_big_rho",
    "peak_fraction_big_rho",
    "peak_fraction_small_rho",
    "reciprocal_ci_objective",
    "render_roofline",
    "roofline_points",
    "TrafficEstimate",
    "algo3_traffic",
    "algo4_traffic",
    "count_nonempty_rows_per_block",
    "pregen_traffic",
]
