"""Data-movement lower bounds: beating GEMM's bound by ``sqrt(M)``.

The headline theory claim (abstract; Section III-A1): under the one-level
cache model with cheap on-the-fly generation (``h`` small), the sketching
kernel's fraction of peak is ``O(M / B)`` (Equation 6) versus GEMM's
``O(sqrt(M) / B)`` — "a factor of sqrt(M) better".  Equivalently, the
*effective data movement per flop* is a factor ``~sqrt(M)`` lower than the
Hong–Kung GEMM communication lower bound allows.

This module makes the comparison concrete: the classical GEMM word lower
bound, the sketching kernel's model-optimal effective movement, and the
resulting advantage factor as a function of ``(M, h)``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from .roofline import ci_small_rho, gemm_ci

__all__ = [
    "gemm_words_lower_bound",
    "sketch_effective_words",
    "advantage_over_gemm",
    "asymptotic_advantage",
]


def gemm_words_lower_bound(d: int, m: int, n: int, M: int) -> float:
    """Hong–Kung style lower bound on GEMM word movement:
    ``d m n / (2 sqrt(2 M))`` words for a ``(d x m) @ (m x n)`` product.

    (Constant per Irony–Toledo–Tiskin; any fixed constant works for the
    factor-``sqrt(M)`` comparison.)
    """
    if min(d, m, n) < 1 or M < 1:
        raise ConfigError("dimensions and M must be positive")
    return d * m * n / (2.0 * np.sqrt(2.0 * M))


def sketch_effective_words(d: int, m: int, n: int, rho: float, M: int,
                           h: float) -> float:
    """Model-optimal effective movement of the sketching kernel.

    At the sparse-regime optimum the CI is ``2M / (4 + Mh)`` (Eq. 5), so
    moving ``flops / CI`` effective words:
    ``2 d m n rho * (4 + M h) / (2 M)``.
    """
    if not (0.0 <= rho <= 1.0):
        raise ConfigError(f"rho must be in [0, 1], got {rho}")
    if min(d, m, n) < 1:
        raise ConfigError("dimensions must be positive")
    flops = 2.0 * d * m * n * rho
    return flops / ci_small_rho(M, h)


def advantage_over_gemm(M: int, h: float) -> float:
    """CI ratio of the sketching optimum to blocked GEMM:
    ``ci_small_rho(M, h) / gemm_ci(M)``.

    For ``h -> 0`` this grows like ``(sqrt(27)/4) * sqrt(M)`` — the paper's
    factor-``sqrt(M)`` claim with constants attached; for ``M h >> 4`` it
    degrades to ``~ 3 sqrt(3) / (h sqrt(M))``, the regime where a slow RNG
    erases the advantage.
    """
    return ci_small_rho(M, h) / gemm_ci(M)


def asymptotic_advantage(M: int) -> float:
    """The ``h -> 0`` limit of :func:`advantage_over_gemm`:
    ``(M/2) / ((2/3) sqrt(M/3)) = (3 sqrt(3) / 4) sqrt(M)``."""
    if M < 1:
        raise ConfigError(f"M must be positive, got {M}")
    return (3.0 * np.sqrt(3.0) / 4.0) * np.sqrt(M)
