"""The public sketching API: ``sketch()`` and :class:`SketchOperator`.

This is the library's front door for Equation (1): given a tall sparse
``A`` (CSC) and a sketch size ``d`` only modestly larger than ``n``,
produce ``Ahat = S A`` where ``S`` is an implicit ``d x m`` random matrix
whose entries are regenerated on the fly inside a blocked kernel.

The operator view matters because ``S`` is never stored: a
:class:`SketchOperator` is a *recipe* (seed, distribution, generator
family, blocking) that can be applied to a sparse matrix, applied to a
dense matrix or vector (needed to sketch right-hand sides consistently),
or — for testing and small problems — materialized.

Since the plan/compile/execute refactor this module is a thin shim:
:meth:`SketchOperator.apply` compiles a
:class:`~repro.plan.SketchPlan` with the :class:`~repro.plan.Planner`
and hands it to :class:`~repro.plan.Runtime` — the same engine behind
:class:`~repro.core.StreamingSketch` and
:class:`~repro.parallel.ResilientExecutor`.  Outputs are bit-identical
to the pre-plan paths; callers that want the plan itself (to inspect,
serialize, or re-run) find it on ``SketchResult.plan``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import ConfigError, ShapeError
from ..kernels.blocking import default_block_sizes
from ..model.machine import LAPTOP, MachineModel
from ..plan.policy import PersistencePolicy, warn_deprecated_kwargs
from ..plan.runtime import SketchResult
from ..rng.base import SketchingRNG
from ..sparse.csc import CSCMatrix
from ..utils.validation import check_positive_int
from .config import SketchConfig

__all__ = ["SketchResult", "SketchOperator", "sketch"]


def _persistence_from_kwargs(entry: str,
                             persistence: PersistencePolicy | None,
                             checkpoint_dir, checkpoint_every: int,
                             resume: bool) -> PersistencePolicy:
    """Fold the deprecated checkpoint kwargs into a policy (warning once)."""
    legacy = (checkpoint_dir is not None or checkpoint_every != 1 or resume)
    if persistence is not None:
        if legacy:
            raise ConfigError(
                "pass either persistence= or the legacy checkpoint kwargs, "
                "not both"
            )
        return persistence
    if not legacy:
        return PersistencePolicy()
    warn_deprecated_kwargs(entry, "checkpoint_dir/checkpoint_every/resume",
                           "persistence=PersistencePolicy(...)")
    if resume and checkpoint_dir is None:
        raise ConfigError("resume=True requires checkpoint_dir")
    return PersistencePolicy(checkpoint_dir=checkpoint_dir,
                             every=checkpoint_every, resume=resume)


class SketchOperator:
    """An implicit ``d x m`` random sketching matrix.

    Parameters
    ----------
    d, m:
        Logical dimensions of ``S``.
    config:
        Sketching options (distribution, generator, blocking, threads).
    machine:
        Machine model used by ``kernel="auto"`` dispatch and block-size
        recommendations (defaults to the conservative ``LAPTOP`` preset).
    """

    def __init__(self, d: int, m: int, config: SketchConfig | None = None,
                 machine: MachineModel | None = None) -> None:
        self.d = check_positive_int(d, "d")
        self.m = check_positive_int(m, "m")
        self.config = config if config is not None else SketchConfig()
        self.machine = machine if machine is not None else LAPTOP
        if self.d <= 0:
            raise ConfigError("sketch size d must be positive")

    @property
    def shape(self) -> tuple[int, int]:
        """``(d, m)`` — the dimensions of the implicit ``S``."""
        return (self.d, self.m)

    def _rng(self) -> SketchingRNG:
        return self.config.build_rng()

    def scale(self) -> float:
        """Normalization factor (``1/sqrt(d * var)`` if configured, else 1)."""
        if not self.config.normalize:
            return 1.0
        dist = self._rng().dist
        return dist.normalization(self.d)

    def _blocking(self, n: int) -> tuple[int, int]:
        b_d, b_n = default_block_sizes(
            self.d, n,
            cache_bytes=self.machine.cache_bytes,
            parallel=self.config.threads > 1,
        )
        if self.config.b_d is not None:
            b_d = self.config.b_d
        if self.config.b_n is not None:
            b_n = self.config.b_n
        return b_d, b_n

    def plan(self, A: CSCMatrix, *,
             persistence: PersistencePolicy | None = None,
             cache=None):
        """Compile the :class:`~repro.plan.SketchPlan` :meth:`apply` runs.

        Exposed so callers can inspect ``plan.explain()``, serialize the
        plan, or hand it to a :class:`~repro.plan.Runtime` themselves.
        *cache* (an :class:`~repro.cache.ArtifactCache` or
        :class:`~repro.cache.CachePolicy`) memoizes the planner's
        pattern scan and autotune trials.
        """
        from ..plan.planner import Planner

        return Planner(self.machine).compile(
            A, self.config, d=self.d, persistence=persistence, cache=cache)

    def apply(self, A: CSCMatrix, *,
              persistence: PersistencePolicy | None = None,
              cache=None,
              checkpoint_dir=None,
              checkpoint_every: int = 1,
              resume: bool = False) -> SketchResult:
        """Compute ``S @ A`` through the configured kernel path.

        Compiles a plan and executes it on the shared
        :class:`~repro.plan.Runtime`; the plan is attached to the
        returned result.

        With a *persistence* policy, the run writes durable snapshots of
        completed row blocks and can restore the newest verified-good
        one before computing the rest (see :mod:`repro.persist` and
        :class:`~repro.plan.PersistencePolicy`).  Checkpointing routes
        through the execution engine (any thread count) and is
        unavailable for the ``pregen`` kernel, which has no row-block
        barriers.  The ``checkpoint_dir``/``checkpoint_every``/
        ``resume`` kwargs are the deprecated spelling of the same
        policy.

        With a *cache* (:class:`~repro.cache.ArtifactCache` or
        :class:`~repro.cache.CachePolicy`), planning decisions, the
        Algorithm 4 blocked-CSR conversion, and JIT warm-up costs are
        reused across runs over the same ``A`` — the "fixed A, many
        sketches" hot path.  Outputs are bit-identical with or without
        the cache.
        """
        from ..plan.runtime import Runtime

        if A.shape[0] != self.m:
            raise ShapeError(
                f"operator expects {self.m} rows, matrix has {A.shape[0]}"
            )
        A.validate(require_finite=True)
        pol = _persistence_from_kwargs(
            "SketchOperator.apply", persistence, checkpoint_dir,
            checkpoint_every, resume)
        if cache is not None:
            from ..cache.store import ArtifactCache

            # One shared instance across plan + run, so hit/miss
            # accounting and the in-memory memo accumulate in one place.
            cache = ArtifactCache.ensure(cache)
        plan = self.plan(A, persistence=pol, cache=cache)
        return Runtime().run(plan, A, cache=cache)

    def apply_dense(self, X: np.ndarray) -> np.ndarray:
        """Compute ``S @ X`` for dense ``X`` (vector or matrix).

        Sketch-and-precondition needs ``S b`` formed with the *same*
        realized ``S`` as ``S A``; this path generates ``S`` in row blocks
        using the same checkpoints the sparse kernel uses (block offsets
        from the operator's blocking), so the two applications are
        mutually consistent.
        """
        X2 = X[:, None] if X.ndim == 1 else X
        if X2.shape[0] != self.m:
            raise ShapeError(f"X has {X2.shape[0]} rows, expected {self.m}")
        b_d, _ = self._blocking(max(1, X2.shape[1]))
        rng = self._rng()
        out = np.empty((self.d, X2.shape[1]), dtype=np.float64)
        js = np.arange(self.m, dtype=np.int64)
        for r in range(0, self.d, b_d):
            d1 = min(b_d, self.d - r)
            panel = rng.column_block_batch(r, d1, js)
            out[r:r + d1, :] = panel @ X2
        out *= rng.post_scale * self.scale()
        return out[:, 0] if X.ndim == 1 else out

    def materialize(self) -> np.ndarray:
        """Realize ``S`` densely (testing / small problems only).

        Uses the operator's own blocking for checkpoint consistency and
        applies post-scaling and normalization, so
        ``op.materialize() @ A.to_dense()`` matches ``op.apply(A).sketch``.
        """
        b_d, _ = self._blocking(1)
        rng = self._rng()
        S = rng.materialize(self.d, self.m, b_d=b_d)
        return S * (rng.post_scale * self.scale())


def sketch(A: CSCMatrix, gamma: float | None = None, d: int | None = None,
           config: SketchConfig | None = None,
           machine: MachineModel | None = None,
           backend: str | None = None,
           quality_check: bool = False,
           quality_threshold: float | None = None,
           max_resketch: int = 1,
           persistence: PersistencePolicy | None = None,
           cache=None,
           checkpoint_dir=None,
           checkpoint_every: int = 1,
           resume: bool = False) -> SketchResult:
    """One-call sketching: ``Ahat = S A`` with ``d ~ gamma * n``.

    Exactly one of *gamma* / *d* may override the config's sizing.  This is
    the quickstart entry point::

        from repro import sketch, random_sparse
        A = random_sparse(100_000, 1_000, 5e-4, seed=0)
        result = sketch(A, gamma=3.0)
        Ahat = result.sketch          # 3000 x 1000 dense
        print(result.plan.explain())  # why each choice was made

    Parameters
    ----------
    backend:
        Kernel backend override (``"numpy"``/``"numba"``/``"auto"``);
        ``None`` keeps the config's setting.  See
        :attr:`repro.core.SketchConfig.backend`.
    quality_check:
        Run the end-of-run distortion spot-check: measure the realized
        sketch's effective distortion for ``range(A)`` (a dense
        diagnostic — test/diagnostic scales only) and, on
        subspace-embedding failure, automatically re-sketch at larger
        ``d`` (1.5x per round, up to *max_resketch* rounds) before
        raising :class:`~repro.errors.SketchQualityError`.
    quality_threshold:
        Distortion ceiling; default is the midpoint between the
        idealized Gaussian limit ``1/sqrt(gamma)`` and the
        embedding-failure boundary 1.0, which healthy sketches clear
        comfortably.
    max_resketch:
        Automatic re-sketch rounds allowed after a failed check.

    The accepted result's ``stats.extra`` records ``distortion``,
    ``distortion_threshold``, and ``resketches``.

    persistence:
        Durable crash recovery as a
        :class:`~repro.plan.PersistencePolicy`: write atomic snapshots
        of completed row blocks and, with ``resume=True``, restore the
        newest verified-good one before computing the rest (see
        :mod:`repro.persist` and :meth:`SketchOperator.apply`).
        Incompatible with *quality_check*, whose automatic re-sketching
        changes ``d`` mid-run and would orphan the snapshots.
    cache:
        An :class:`~repro.cache.ArtifactCache` or
        :class:`~repro.cache.CachePolicy`: reuse planning decisions,
        autotune results, the blocked-CSR conversion, and JIT warm-up
        across repeated sketches of the same matrix.  Bit-identical
        outputs either way.
    checkpoint_dir, checkpoint_every, resume:
        Deprecated spelling of *persistence* (one
        ``DeprecationWarning`` per call; behaviour unchanged).
    """
    cfg = config if config is not None else SketchConfig()
    if backend is not None:
        cfg = dataclasses.replace(cfg, backend=backend)
    pol = _persistence_from_kwargs("sketch", persistence, checkpoint_dir,
                                   checkpoint_every, resume)
    if pol.enabled and quality_check:
        raise ConfigError(
            "checkpoint_dir is incompatible with quality_check: automatic "
            "re-sketching changes d mid-run, orphaning the snapshots"
        )
    if gamma is not None and d is not None:
        raise ConfigError("pass at most one of gamma / d")
    if gamma is not None:
        if gamma <= 1.0:
            raise ConfigError(f"gamma must exceed 1, got {gamma}")
        d_eff = int(np.ceil(gamma * A.shape[1]))
    elif d is not None:
        d_eff = check_positive_int(d, "d")
        if d_eff <= A.shape[1]:
            raise ConfigError(
                f"sketch size d={d_eff} must exceed n={A.shape[1]}"
            )
    else:
        d_eff = cfg.sketch_size(A.shape[1])
    if not quality_check:
        op = SketchOperator(d_eff, A.shape[0], config=cfg, machine=machine)
        return op.apply(A, persistence=pol, cache=cache)

    from ..errors import SketchQualityError
    from .distortion import sketch_distortion  # local: avoids module cycle

    max_resketch = int(max_resketch)
    if max_resketch < 0:
        raise ConfigError(f"max_resketch must be >= 0, got {max_resketch}")
    n = A.shape[1]
    delta = threshold = float("nan")
    for round_no in range(max_resketch + 1):
        op = SketchOperator(d_eff, A.shape[0], config=cfg, machine=machine)
        result = op.apply(A, cache=cache)
        gamma_eff = d_eff / n
        if quality_threshold is not None:
            threshold = float(quality_threshold)
        elif gamma_eff > 1.0:
            threshold = 0.5 * (1.0 + 1.0 / float(np.sqrt(gamma_eff)))
        else:
            threshold = 0.99
        delta = sketch_distortion(op, A)
        result.stats.extra.update({
            "distortion": delta,
            "distortion_threshold": threshold,
            "resketches": round_no,
        })
        if delta <= threshold:
            return result
        last_d = d_eff
        d_eff = int(np.ceil(1.5 * d_eff))
    raise SketchQualityError(
        f"sketch distortion {delta:.3f} exceeds threshold {threshold:.3f} "
        f"after {max_resketch} automatic re-sketch round(s) (last d={last_d})"
    )
