"""Randomized low-rank approximation built on the sketching kernels.

The paper's introduction motivates fast sketching as the computational
primitive behind "randomized algorithms for linear regression, low-rank
approximation, matrix decomposition, eigenvalue computation, and many
more"; Section V-C builds out the regression pipeline.  This module
builds out the second application: a sketch-based randomized SVD for
tall sparse matrices, with every dense-times-sparse product going through
the on-the-fly kernels.

Method (row-space sketching, the natural orientation for ``S A``):

1. ``Ahat = S A`` with ``d = rank + oversample`` rows — one call into the
   blocked kernels; ``Ahat``'s rows span (approximately) ``A``'s row space.
2. ``V = orth(Ahat^T)`` (economy QR of an ``n x d`` matrix).
3. optional power iterations ``V <- orth((A^T) (A V))`` sharpen the basis
   when the spectrum decays slowly (Halko-Martinsson-Tropp).
4. ``B = A V`` (sparse times thin dense), small SVD of ``B``, rotate back.

Returns factors ``(U, s, Vt)`` with ``U`` ``m x k``, matching
``numpy.linalg.svd``'s convention truncated to rank ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError, ShapeError
from ..sparse.csc import CSCMatrix
from ..sparse.ops import csr_times_dense
from ..utils.validation import check_nonnegative_int, check_positive_int
from .config import SketchConfig
from .sketch import SketchOperator

__all__ = ["LowRankResult", "randomized_svd", "randomized_range_finder"]


@dataclass
class LowRankResult:
    """Truncated SVD factors plus diagnostics."""

    U: np.ndarray
    s: np.ndarray
    Vt: np.ndarray
    sketch_stats: object
    power_iterations: int

    @property
    def rank(self) -> int:
        """The truncation rank ``k``."""
        return int(self.s.size)

    def reconstruct(self) -> np.ndarray:
        """Dense ``U diag(s) Vt`` (testing aid for small problems)."""
        return (self.U * self.s) @ self.Vt


def randomized_range_finder(A: CSCMatrix, size: int,
                            config: SketchConfig | None = None,
                            power_iters: int = 0):
    """Orthonormal ``n x size`` basis approximating ``A``'s row space.

    The sketch ``S A`` is produced by the on-the-fly kernels; power
    iterations alternate ``A``/``A^T`` products through the sparse
    operators.  Returns ``(V, sketch_stats)``.
    """
    size = check_positive_int(size, "size")
    power_iters = check_nonnegative_int(power_iters, "power_iters")
    m, n = A.shape
    if size > n:
        raise ConfigError(f"basis size {size} exceeds n = {n}")
    cfg = config if config is not None else SketchConfig()
    # The operator is d x m with d = size (gamma is irrelevant here: the
    # caller fixes the sketch size directly).
    op = SketchOperator(size, m, config=cfg)
    result = op.apply(A)
    V = np.linalg.qr(result.sketch.T)[0]  # n x size

    if power_iters:
        A_csr = A.to_csr()
        At_csr = A.transpose().to_csr()
        for _ in range(power_iters):
            AV = csr_times_dense(A_csr, V)          # m x size
            W = csr_times_dense(At_csr, AV)          # n x size
            V = np.linalg.qr(W)[0]
    return V, result.stats


def randomized_svd(A: CSCMatrix, rank: int, *, oversample: int = 8,
                   power_iters: int = 1,
                   config: SketchConfig | None = None) -> LowRankResult:
    """Rank-``rank`` randomized SVD of a sparse matrix.

    Parameters
    ----------
    A:
        The ``m x n`` sparse matrix (CSC).
    rank:
        Target truncation rank ``k``.
    oversample:
        Extra sketch rows beyond ``rank`` (Halko et al. recommend 5-10).
    power_iters:
        Power iterations sharpening the basis; 1-2 suffice for most
        spectra, 0 is fastest.
    config:
        Sketching options (generator family, distribution, blocking).

    Notes
    -----
    Accuracy follows the standard randomized-SVD guarantees: with
    oversampling ``p``, the expected spectral error is within
    ``(1 + sqrt(k/(p-1)))`` of optimal, improving geometrically with each
    power iteration.
    """
    rank = check_positive_int(rank, "rank")
    oversample = check_nonnegative_int(oversample, "oversample")
    m, n = A.shape
    size = min(rank + oversample, n)
    if rank > min(m, n):
        raise ShapeError(f"rank {rank} exceeds min(m, n) = {min(m, n)}")
    V, stats = randomized_range_finder(A, size, config=config,
                                       power_iters=power_iters)
    B = csr_times_dense(A.to_csr(), V)  # m x size
    U_small, s, Wt = np.linalg.svd(B, full_matrices=False)
    U = U_small[:, :rank]
    Vt = (V @ Wt.T).T[:rank, :]
    return LowRankResult(U=U, s=s[:rank], Vt=Vt, sketch_stats=stats,
                         power_iterations=power_iters)
