"""Public sketching API: configs, the implicit sketch operator, one-call
``sketch()``, and sketch-quality (effective distortion) diagnostics."""

from .config import SketchConfig
from .lowrank import LowRankResult, randomized_range_finder, randomized_svd
from .distortion import (
    effective_distortion,
    preconditioned_condition,
    predicted_condition_bound,
    predicted_distortion,
    sketch_distortion,
)
from .sketch import SketchOperator, SketchResult, sketch
from .sparse_sketch import SparseSignSketch, SparseSketchResult
from .streaming import StreamingSketch

__all__ = [
    "SketchConfig",
    "LowRankResult",
    "randomized_range_finder",
    "randomized_svd",
    "effective_distortion",
    "preconditioned_condition",
    "predicted_condition_bound",
    "predicted_distortion",
    "sketch_distortion",
    "SketchOperator",
    "SketchResult",
    "sketch",
    "SparseSignSketch",
    "SparseSketchResult",
    "StreamingSketch",
]
