"""Streaming sketch maintenance: absorb new rows of ``A`` incrementally.

A payoff of coordinate-addressed generation the paper's design enables
but does not spell out: because column ``j`` of ``S`` is a pure function
of the *global* row index ``j`` (counter-based families) or of the
checkpoint ``(r, j)`` (xoshiro), the sketch of a growing matrix can be
maintained incrementally —

    Ahat = S[:, :m1] A1 + S[:, m1:m1+m2] A2 + ...

— one blocked-kernel call per arriving row batch, without revisiting old
data.  That is the streaming regime much of the RandNLA literature
targets (single pass over data too large to store), and it falls out of
the paper's RNG contract for free: :meth:`StreamingSketch.absorb` passes
each batch through :func:`repro.kernels.sketch_spmm` with the generator's
column indices offset by the rows seen so far.

Determinism: for the counter-based families the final sketch is
*identical* to the one-shot sketch of the stacked matrix, for any chunking
(tested); for checkpointed xoshiro it is identical whenever the same
``b_d`` grid is used.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import ConfigError, FormatError, ShapeError
from ..kernels.backends import resolve_backend
from ..kernels.blocking import default_block_sizes
from ..plan.events import CHECKPOINT_WRITTEN, EventBus
from ..plan.policy import PersistencePolicy, warn_deprecated_kwargs
from ..plan.spec import ProblemSpec, RngSpec, SketchPlan
from ..rng.base import SketchingRNG
from ..sparse.csc import CSCMatrix
from ..utils.timing import Timer
from ..utils.validation import check_positive_int

if TYPE_CHECKING:  # pragma: no cover
    from ..persist.snapshot import CheckpointManager

__all__ = ["StreamingSketch"]


class _OffsetRNG(SketchingRNG):
    """View of a generator with its column (sparse-row) indices shifted.

    Wrapping rather than copying keeps the underlying family's counters
    and checkpoint semantics; ``column_block_batch(r, d1, js)`` delegates
    with ``js + offset`` so batch ``t``'s local row ``j`` addresses the
    global column ``offset + j`` of ``S``.
    """

    def __init__(self, inner: SketchingRNG, offset: int) -> None:
        # Deliberately skip SketchingRNG.__init__: state lives in `inner`.
        self._inner = inner
        self._offset = int(offset)

    def _bits_block(self, r, d1, js):  # pragma: no cover - not reached
        raise NotImplementedError

    def column_block_batch(self, r: int, d1: int, js: np.ndarray) -> np.ndarray:
        js = np.asarray(js, dtype=np.int64)
        return self._inner.column_block_batch(r, d1, js + self._offset)

    @property
    def blocking_independent(self) -> bool:
        return self._inner.blocking_independent

    @property
    def dist(self):
        return self._inner.dist

    @property
    def post_scale(self) -> float:
        return self._inner.post_scale

    @property
    def samples_generated(self) -> int:
        return self._inner.samples_generated

    @samples_generated.setter
    def samples_generated(self, value: int) -> None:
        self._inner.samples_generated = value

    @property
    def family(self) -> str:
        return self._inner.family

    @property
    def seed(self) -> int:
        return self._inner.seed

    @seed.setter
    def seed(self, value: int) -> None:
        self._inner.seed = value


class StreamingSketch:
    """Maintains ``Ahat = S A`` while rows of ``A`` arrive in batches.

    Parameters
    ----------
    d:
        Sketch size (rows of the implicit ``S``).
    n:
        Column count of the stream (fixed across batches).
    rng:
        The sketch generator; its state object is shared across batches so
        instrumentation (``samples_generated``) accumulates.
    kernel, b_d, b_n:
        Kernel options forwarded to :func:`repro.kernels.sketch_spmm`;
        block sizes are resolved eagerly (via
        :func:`repro.kernels.default_block_sizes`) so every batch uses the
        same grid and checkpoints can fingerprint it.
    backend:
        Kernel backend name/instance (resolved eagerly; recorded in
        checkpoint fingerprints because accumulation order — and thus bit
        patterns — is backend-specific).
    persistence:
        Durable crash recovery as a
        :class:`~repro.plan.PersistencePolicy` (see
        :mod:`repro.persist`): a verified-restorable snapshot of the
        partial sketch is written atomically every ``every`` newly
        absorbed rows.  Restore with
        :func:`repro.persist.resume_streaming`.
    checkpoint, checkpoint_dir, checkpoint_every, checkpoint_keep:
        Deprecated spelling of *persistence* (one ``DeprecationWarning``
        per construction; behaviour unchanged): pass either a ready
        :class:`~repro.persist.CheckpointManager` (*checkpoint*) or a
        directory (*checkpoint_dir*); ``checkpoint_every=None`` disables
        the automatic cadence (snapshots only via
        :meth:`save_checkpoint`).
    bus:
        An :class:`~repro.plan.EventBus` for observability: each
        absorbed batch's per-batch runtime emits its lifecycle events
        here (so a :class:`~repro.obs.RunObserver` sees every batch),
        and :meth:`save_checkpoint` emits ``checkpoint_written`` with
        the measured write latency.  Omitted: no events, no overhead.

    Example
    -------
    >>> st = StreamingSketch(60, 20, PhiloxSketchRNG(0))   # doctest: +SKIP
    >>> for batch in stream_of_csc_blocks:                 # doctest: +SKIP
    ...     st.absorb(batch)
    >>> Ahat = st.sketch                                   # doctest: +SKIP
    """

    def __init__(self, d: int, n: int, rng: SketchingRNG, *,
                 kernel: str = "algo3", b_d: int | None = None,
                 b_n: int | None = None, backend=None,
                 checkpoint: "CheckpointManager | None" = None,
                 checkpoint_dir=None, checkpoint_every: int | None = None,
                 checkpoint_keep: int = 2,
                 persistence: PersistencePolicy | None = None,
                 bus: "EventBus | None" = None) -> None:
        self.d = check_positive_int(d, "d")
        self.n = check_positive_int(n, "n")
        self.rng = rng
        if kernel not in ("algo3", "algo4"):
            raise ConfigError(
                f"kernel must be 'algo3' or 'algo4', got {kernel!r}")
        self.kernel = kernel
        bd_default, bn_default = default_block_sizes(d, n)
        self.b_d = bd_default if b_d is None else check_positive_int(b_d, "b_d")
        self.b_n = bn_default if b_n is None else check_positive_int(b_n, "b_n")
        self.backend = resolve_backend(backend)
        self.rows_seen = 0
        self.batches_absorbed = 0
        #: Row batches absorbed through :meth:`absorb` as ``(offset, rows)``
        #: pairs — the replay log checkpoint verification audits against.
        self.batch_log: list[tuple[int, int]] = []
        #: Chunks absorbed through :meth:`absorb_entries` (not replayable
        #: from ``(offset, rows)`` coordinates; counted for resume-skip).
        self.entry_chunks_absorbed = 0
        self._sketch = np.zeros((d, n), dtype=np.float64, order="F")
        if rng.post_scale != 1.0:
            # The scaling trick folds a constant into the *finished*
            # product; an incrementally updated sketch would need the
            # factor tracked per batch.  Keep the contract simple.
            raise ConfigError(
                "StreamingSketch requires post_scale == 1 distributions; "
                "use 'uniform' or 'rademacher'"
            )
        if persistence is not None:
            if (checkpoint is not None or checkpoint_dir is not None
                    or checkpoint_every is not None or checkpoint_keep != 2):
                raise ConfigError(
                    "pass either persistence= or the legacy checkpoint "
                    "kwargs, not both"
                )
            pol = persistence
            self.checkpoint_every = pol.every if pol.enabled else None
        else:
            if checkpoint is not None or checkpoint_dir is not None:
                warn_deprecated_kwargs(
                    "StreamingSketch",
                    "checkpoint/checkpoint_dir/checkpoint_every/"
                    "checkpoint_keep",
                    "persistence=PersistencePolicy(...)")
            if checkpoint_every is not None:
                check_positive_int(checkpoint_every, "checkpoint_every")
            self.checkpoint_every = checkpoint_every
            pol = PersistencePolicy.from_legacy(
                checkpoint=checkpoint, checkpoint_dir=checkpoint_dir,
                checkpoint_every=(1 if checkpoint_every is None
                                  else checkpoint_every),
                checkpoint_keep=checkpoint_keep)
        self.persistence = pol
        self.checkpoint = pol.build_manager()
        self._rows_at_last_snapshot = 0
        self.bus = bus

    def _batch_plan(self, batch: CSCMatrix) -> SketchPlan:
        """The per-batch plan :meth:`absorb` hands to the runtime.

        Streaming runs each batch on the serial driver with persistence
        disabled — streaming snapshots capture the *accumulated* sketch
        plus the batch replay log (``mode="streaming"``), which the
        engine's per-row-block checkpoints cannot express.
        """
        return SketchPlan(
            problem=ProblemSpec(m=batch.shape[0], n=self.n, d=self.d,
                                nnz=batch.nnz),
            kernel=self.kernel, b_d=self.b_d, b_n=self.b_n,
            backend=self.backend.name,
            rng=RngSpec(kind=self.rng.family, seed=self.rng.seed,
                        distribution=self.rng.dist.name),
            driver="serial",
        )

    @property
    def sketch(self) -> np.ndarray:
        """The current ``d x n`` sketch of all rows absorbed so far."""
        return self._sketch

    # -- durable checkpoints ------------------------------------------------

    def fingerprint(self) -> dict:
        """Immutable run identity for checkpoint compatibility checks."""
        from ..persist.snapshot import run_fingerprint

        return run_fingerprint(
            mode="streaming", d=self.d, n=self.n, b_d=self.b_d,
            b_n=self.b_n, kernel=self.kernel, backend=self.backend.name,
            rng_kind=self.rng.family, seed=self.rng.seed,
            distribution=self.rng.dist.name,
        )

    def save_checkpoint(self) -> "object | None":
        """Write a snapshot of the current partial sketch now.

        Returns the snapshot path, or ``None`` when no checkpoint manager
        is configured.  Called automatically from :meth:`absorb` every
        ``checkpoint_every`` rows; call it directly for externally paced
        checkpoints (e.g. per input-file chunk).
        """
        if self.checkpoint is None:
            return None
        blocks = [(r, self._sketch[r:r + min(self.b_d, self.d - r), :])
                  for r in range(0, self.d, self.b_d)]
        state = {
            "rows_seen": int(self.rows_seen),
            "batches_absorbed": int(self.batches_absorbed),
            "batches": [[int(off), int(cnt)] for off, cnt in self.batch_log],
            "entry_chunks": int(self.entry_chunks_absorbed),
            "samples_generated": int(self.rng.samples_generated),
        }
        with Timer() as write:
            path = self.checkpoint.save(blocks, self.fingerprint(), state)
        self._rows_at_last_snapshot = self.rows_seen
        if self.bus is not None:
            self.bus.emit(CHECKPOINT_WRITTEN, path=path,
                          rows=(0, self.rows_seen),
                          snapshots_written=self.checkpoint.snapshots_written,
                          seconds=write.elapsed)
        return path

    def _maybe_checkpoint(self) -> None:
        if self.checkpoint is None or self.checkpoint_every is None:
            return
        if self.rows_seen - self._rows_at_last_snapshot >= self.checkpoint_every:
            self.save_checkpoint()

    # -- absorption ---------------------------------------------------------

    def absorb(self, batch: CSCMatrix) -> int:
        """Fold a batch of new rows into the sketch.

        *batch* holds the next ``k`` rows of the stream as a ``k x n`` CSC
        matrix; returns the global row offset the batch was placed at.
        """
        if batch.shape[1] != self.n:
            raise ShapeError(
                f"batch has {batch.shape[1]} columns, stream has {self.n}"
            )
        if batch.nnz and not np.isfinite(batch.data).all():
            raise FormatError(
                "batch contains NaN/Inf values; refusing to absorb them "
                "into the sketch"
            )
        offset = self.rows_seen
        shifted = _OffsetRNG(self.rng, offset)
        from ..plan.runtime import Runtime

        result = Runtime(bus=self.bus).run(self._batch_plan(batch), batch,
                                           rng_factory=lambda w: shifted)
        self._sketch += result.sketch
        self.rows_seen += batch.shape[0]
        self.batches_absorbed += 1
        self.batch_log.append((offset, batch.shape[0]))
        self._maybe_checkpoint()
        return offset

    def absorb_entries(self, rows: np.ndarray, cols: np.ndarray,
                       vals: np.ndarray) -> None:
        """Fold raw COO entries with *global* row indices into the sketch.

        The fully out-of-core path: entries may arrive in any order, from
        any source (e.g. :func:`repro.sparse.iter_matrix_market_entries`),
        and ``A`` is never materialized — each entry ``(i, j, v)``
        contributes ``v * S[:, i]`` to output column ``j``.  Unlike
        :meth:`absorb`, row indices here are absolute (no offset is
        applied) and :attr:`rows_seen` is not advanced; do not mix the two
        entry points on one instance unless the coordinates agree.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if not (rows.shape == cols.shape == vals.shape) or rows.ndim != 1:
            raise ShapeError("rows, cols, vals must be equal-length vectors")
        if rows.size == 0:
            return
        if cols.min() < 0 or cols.max() >= self.n:
            raise ShapeError(f"column indices out of range [0, {self.n})")
        if rows.min() < 0:
            raise ShapeError("row indices must be non-negative")
        # Batched generation per row block of S (honouring the same b_d
        # checkpoint grid the kernels use, so checkpointed generators agree
        # with the matrix path); S columns are addressed by the absolute
        # row indices, so duplicates and arbitrary entry order are fine.
        if not np.isfinite(vals).all():
            raise FormatError(
                "entry values contain NaN/Inf; refusing to absorb them "
                "into the sketch"
            )
        b_d = self.b_d if self.b_d is not None else self.d
        for r in range(0, self.d, b_d):
            d1 = min(b_d, self.d - r)
            V = self.rng.column_block_batch(r, d1, rows)  # d1 x batch
            contrib = V * vals
            np.add.at(self._sketch[r:r + d1].T, cols, contrib.T)
        self.batches_absorbed += 1
        self.entry_chunks_absorbed += 1

    @classmethod
    def from_matrix_market(cls, source, d: int, rng: SketchingRNG, *,
                           chunk: int = 65536, kernel: str = "algo3",
                           b_d: int | None = None, checkpoint_dir=None,
                           checkpoint_every_chunks: int | None = None,
                           resume: bool = False) -> "StreamingSketch":
        """Sketch a MatrixMarket file without ever materializing it.

        Streams the file's entries in *chunk*-sized batches through
        :meth:`absorb_entries`; peak memory is the ``d x n`` sketch plus
        one chunk.  Requires a ``general`` coordinate file.

        With *checkpoint_dir* set, a durable snapshot is written every
        *checkpoint_every_chunks* chunks (default: every chunk), and
        ``resume=True`` restores the newest verified-good snapshot and
        skips the already-absorbed chunks — a multi-hour out-of-core
        sketch killed at 99% replays only the input scan, not the
        arithmetic.  Chunk iteration is deterministic for a given file
        and *chunk*, which is what makes skip-ahead exact; the chunk size
        is part of the resume contract (it is checked via the absorbed
        chunk count and the file's entry total).
        """
        from ..sparse.io_mm import iter_matrix_market_entries

        st: "StreamingSketch | None" = None
        skip = 0
        if resume:
            if checkpoint_dir is None:
                raise ConfigError("resume=True requires checkpoint_dir")
            from ..persist.resume import try_resume_streaming

            expect = {"mode": "streaming", "d": int(d),
                      "kernel": str(kernel), "rng_kind": rng.family,
                      "seed": rng.seed, "distribution": rng.dist.name}
            if b_d is not None:
                expect["b_d"] = int(b_d)
            st = try_resume_streaming(checkpoint_dir, expect=expect)
            if st is not None:
                skip = st.entry_chunks_absorbed
        every = (1 if checkpoint_every_chunks is None
                 else check_positive_int(checkpoint_every_chunks,
                                         "checkpoint_every_chunks"))
        done = 0
        for (m, n, _nnz), rows, cols, vals in iter_matrix_market_entries(
                source, chunk=chunk):
            if st is None:
                pol = (PersistencePolicy(checkpoint_dir=str(checkpoint_dir))
                       if checkpoint_dir is not None else None)
                st = cls(d, n, rng, kernel=kernel, b_d=b_d, persistence=pol)
                st.checkpoint_every = None  # externally paced (per chunk)
                st.rows_seen = m  # absolute coordinates; fixed stream height
            done += 1
            if done <= skip:
                continue
            st.absorb_entries(rows, cols, vals)
            if checkpoint_dir is not None and \
                    st.entry_chunks_absorbed % every == 0:
                st.save_checkpoint()
        if st is None:
            raise ShapeError("matrix file contained no entries")
        return st
