"""Streaming sketch maintenance: absorb new rows of ``A`` incrementally.

A payoff of coordinate-addressed generation the paper's design enables
but does not spell out: because column ``j`` of ``S`` is a pure function
of the *global* row index ``j`` (counter-based families) or of the
checkpoint ``(r, j)`` (xoshiro), the sketch of a growing matrix can be
maintained incrementally —

    Ahat = S[:, :m1] A1 + S[:, m1:m1+m2] A2 + ...

— one blocked-kernel call per arriving row batch, without revisiting old
data.  That is the streaming regime much of the RandNLA literature
targets (single pass over data too large to store), and it falls out of
the paper's RNG contract for free: :meth:`StreamingSketch.absorb` passes
each batch through :func:`repro.kernels.sketch_spmm` with the generator's
column indices offset by the rows seen so far.

Determinism: for the counter-based families the final sketch is
*identical* to the one-shot sketch of the stacked matrix, for any chunking
(tested); for checkpointed xoshiro it is identical whenever the same
``b_d`` grid is used.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError, ShapeError
from ..kernels.blocking import sketch_spmm
from ..rng.base import SketchingRNG
from ..sparse.csc import CSCMatrix
from ..utils.validation import check_positive_int

__all__ = ["StreamingSketch"]


class _OffsetRNG(SketchingRNG):
    """View of a generator with its column (sparse-row) indices shifted.

    Wrapping rather than copying keeps the underlying family's counters
    and checkpoint semantics; ``column_block_batch(r, d1, js)`` delegates
    with ``js + offset`` so batch ``t``'s local row ``j`` addresses the
    global column ``offset + j`` of ``S``.
    """

    def __init__(self, inner: SketchingRNG, offset: int) -> None:
        # Deliberately skip SketchingRNG.__init__: state lives in `inner`.
        self._inner = inner
        self._offset = int(offset)

    def _bits_block(self, r, d1, js):  # pragma: no cover - not reached
        raise NotImplementedError

    def column_block_batch(self, r: int, d1: int, js: np.ndarray) -> np.ndarray:
        js = np.asarray(js, dtype=np.int64)
        return self._inner.column_block_batch(r, d1, js + self._offset)

    @property
    def blocking_independent(self) -> bool:
        return self._inner.blocking_independent

    @property
    def dist(self):
        return self._inner.dist

    @property
    def post_scale(self) -> float:
        return self._inner.post_scale

    @property
    def samples_generated(self) -> int:
        return self._inner.samples_generated

    @samples_generated.setter
    def samples_generated(self, value: int) -> None:
        self._inner.samples_generated = value


class StreamingSketch:
    """Maintains ``Ahat = S A`` while rows of ``A`` arrive in batches.

    Parameters
    ----------
    d:
        Sketch size (rows of the implicit ``S``).
    n:
        Column count of the stream (fixed across batches).
    rng:
        The sketch generator; its state object is shared across batches so
        instrumentation (``samples_generated``) accumulates.
    kernel, b_d, b_n:
        Kernel options forwarded to :func:`repro.kernels.sketch_spmm`.

    Example
    -------
    >>> st = StreamingSketch(60, 20, PhiloxSketchRNG(0))   # doctest: +SKIP
    >>> for batch in stream_of_csc_blocks:                 # doctest: +SKIP
    ...     st.absorb(batch)
    >>> Ahat = st.sketch                                   # doctest: +SKIP
    """

    def __init__(self, d: int, n: int, rng: SketchingRNG, *,
                 kernel: str = "algo3", b_d: int | None = None,
                 b_n: int | None = None) -> None:
        self.d = check_positive_int(d, "d")
        self.n = check_positive_int(n, "n")
        self.rng = rng
        self.kernel = kernel
        self.b_d = b_d
        self.b_n = b_n
        self.rows_seen = 0
        self.batches_absorbed = 0
        self._sketch = np.zeros((d, n), dtype=np.float64, order="F")
        if rng.post_scale != 1.0:
            # The scaling trick folds a constant into the *finished*
            # product; an incrementally updated sketch would need the
            # factor tracked per batch.  Keep the contract simple.
            raise ConfigError(
                "StreamingSketch requires post_scale == 1 distributions; "
                "use 'uniform' or 'rademacher'"
            )

    @property
    def sketch(self) -> np.ndarray:
        """The current ``d x n`` sketch of all rows absorbed so far."""
        return self._sketch

    def absorb(self, batch: CSCMatrix) -> int:
        """Fold a batch of new rows into the sketch.

        *batch* holds the next ``k`` rows of the stream as a ``k x n`` CSC
        matrix; returns the global row offset the batch was placed at.
        """
        if batch.shape[1] != self.n:
            raise ShapeError(
                f"batch has {batch.shape[1]} columns, stream has {self.n}"
            )
        offset = self.rows_seen
        shifted = _OffsetRNG(self.rng, offset)
        update, _ = sketch_spmm(
            batch, self.d, shifted, kernel=self.kernel,
            b_d=self.b_d, b_n=self.b_n,
        )
        self._sketch += update
        self.rows_seen += batch.shape[0]
        self.batches_absorbed += 1
        return offset

    def absorb_entries(self, rows: np.ndarray, cols: np.ndarray,
                       vals: np.ndarray) -> None:
        """Fold raw COO entries with *global* row indices into the sketch.

        The fully out-of-core path: entries may arrive in any order, from
        any source (e.g. :func:`repro.sparse.iter_matrix_market_entries`),
        and ``A`` is never materialized — each entry ``(i, j, v)``
        contributes ``v * S[:, i]`` to output column ``j``.  Unlike
        :meth:`absorb`, row indices here are absolute (no offset is
        applied) and :attr:`rows_seen` is not advanced; do not mix the two
        entry points on one instance unless the coordinates agree.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if not (rows.shape == cols.shape == vals.shape) or rows.ndim != 1:
            raise ShapeError("rows, cols, vals must be equal-length vectors")
        if rows.size == 0:
            return
        if cols.min() < 0 or cols.max() >= self.n:
            raise ShapeError(f"column indices out of range [0, {self.n})")
        if rows.min() < 0:
            raise ShapeError("row indices must be non-negative")
        # Batched generation per row block of S (honouring the same b_d
        # checkpoint grid the kernels use, so checkpointed generators agree
        # with the matrix path); S columns are addressed by the absolute
        # row indices, so duplicates and arbitrary entry order are fine.
        b_d = self.b_d if self.b_d is not None else self.d
        for r in range(0, self.d, b_d):
            d1 = min(b_d, self.d - r)
            V = self.rng.column_block_batch(r, d1, rows)  # d1 x batch
            contrib = V * vals
            np.add.at(self._sketch[r:r + d1].T, cols, contrib.T)
        self.batches_absorbed += 1

    @classmethod
    def from_matrix_market(cls, source, d: int, rng: SketchingRNG, *,
                           chunk: int = 65536, kernel: str = "algo3",
                           b_d: int | None = None) -> "StreamingSketch":
        """Sketch a MatrixMarket file without ever materializing it.

        Streams the file's entries in *chunk*-sized batches through
        :meth:`absorb_entries`; peak memory is the ``d x n`` sketch plus
        one chunk.  Requires a ``general`` coordinate file.
        """
        from ..sparse.io_mm import iter_matrix_market_entries

        st: "StreamingSketch | None" = None
        for (m, n, _nnz), rows, cols, vals in iter_matrix_market_entries(
                source, chunk=chunk):
            if st is None:
                st = cls(d, n, rng, kernel=kernel, b_d=b_d)
                st.rows_seen = m  # absolute coordinates; fixed stream height
            st.absorb_entries(rows, cols, vals)
        if st is None:
            raise ShapeError("matrix file contained no entries")
        return st
