"""Sparse-sign sketching — the comparison operator from the related work.

The paper's dense-``S`` kernels compete against an alternative line of
work the related-work section cites (pylspack [13]; RandBLAS also supports
it): *sparse* sketching operators, where each column of ``S`` holds only
``s`` nonzeros valued ``+-1/sqrt(s)``.  Applying one costs
``O(s * nnz(A))`` instead of ``O(d * nnz(A))`` flops — but the operator
must either be stored or regenerated with awkward without-replacement
sampling, loses the dense kernels' strided access, and needs larger ``s``
for the same distortion on adversarial inputs.

This implementation keeps the library's contracts: coordinate-addressed
Philox bits make the operator a deterministic function of ``(seed, j)``
(thread- and blocking-independent), and the class mirrors
:class:`repro.core.SketchOperator`'s surface (``apply`` / ``apply_dense``
/ ``materialize``) so it can be dropped into the SAP pipeline for
head-to-head comparisons.

Row positions are drawn *with* replacement (collisions merge by sign
addition), the standard cheap construction; for ``s << d`` collisions are
rare and the distortion penalty is negligible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError, ShapeError
from ..rng.philox import key_from_seed, philox_uint64
from ..sparse.csc import CSCMatrix
from ..utils.timing import Timer
from ..utils.validation import check_positive_int

__all__ = ["SparseSignSketch", "SparseSketchResult"]


@dataclass
class SparseSketchResult:
    """Outcome of a sparse-sign sketch application."""

    sketch: np.ndarray
    seconds: float
    flops: int
    operator_nnz: int


class SparseSignSketch:
    """An implicit ``d x m`` sparse-sign sketching operator.

    Parameters
    ----------
    d, m:
        Operator dimensions.
    s:
        Nonzeros per column (the sparsity parameter); entries are
        ``+-1/sqrt(s)`` so columns have unit norm in expectation.
    seed:
        Determines the (coordinate-addressed) positions and signs.
    """

    def __init__(self, d: int, m: int, s: int = 8, seed: int = 0) -> None:
        self.d = check_positive_int(d, "d")
        self.m = check_positive_int(m, "m")
        self.s = check_positive_int(s, "s")
        if self.s > self.d:
            raise ConfigError(f"s={s} nonzeros per column exceed d={d}")
        self.seed = int(seed)
        self._key = key_from_seed(self.seed)

    @property
    def shape(self) -> tuple[int, int]:
        """``(d, m)``."""
        return (self.d, self.m)

    @property
    def operator_nnz(self) -> int:
        """Stored entries a materialized operator would hold (``s * m``)."""
        return self.s * self.m

    # -- entry addressing ---------------------------------------------------

    def column_entries(self, js: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Rows and signed values of columns ``js``.

        Returns ``(rows, vals)`` of shape ``(s, len(js))``: for column
        ``j``, slot ``t`` holds row ``philox(t, j) % d`` with value
        ``+-1/sqrt(s)`` from the next bit — a pure function of
        ``(seed, t, j)``.
        """
        js = np.asarray(js, dtype=np.int64)
        slots = np.arange(self.s, dtype=np.uint64)[:, None]
        bits = philox_uint64(slots, js.astype(np.uint64)[None, :], self._key)
        rows = (bits % np.uint64(self.d)).astype(np.int64)
        signs = (((bits >> np.uint64(40)) & np.uint64(1)).astype(np.float64)
                 * 2.0 - 1.0)
        return rows, signs / np.sqrt(self.s)

    # -- applications ---------------------------------------------------------

    def apply(self, A: CSCMatrix) -> SparseSketchResult:
        """Compute ``S @ A`` (dense ``d x n`` result).

        Cost: ``2 s nnz(A)`` flops — the sparse operator's selling point —
        realized as one scatter-add over the expanded entries.
        """
        if A.shape[0] != self.m:
            raise ShapeError(
                f"operator expects {self.m} rows, matrix has {A.shape[0]}"
            )
        n = A.shape[1]
        out = np.zeros((self.d, n), dtype=np.float64)
        with Timer() as t:
            coo = A.to_coo()
            if coo.nnz:
                rows, vals = self.column_entries(coo.rows)  # (s, nnz)
                contrib = vals * coo.vals[None, :]
                cols = np.broadcast_to(coo.cols[None, :], rows.shape)
                np.add.at(out, (rows.ravel(), cols.ravel()), contrib.ravel())
        return SparseSketchResult(
            sketch=out,
            seconds=t.elapsed,
            flops=2 * self.s * A.nnz,
            operator_nnz=self.operator_nnz,
        )

    def apply_dense(self, X: np.ndarray) -> np.ndarray:
        """``S @ X`` for dense ``X`` (vector or matrix)."""
        X2 = X[:, None] if X.ndim == 1 else X
        if X2.shape[0] != self.m:
            raise ShapeError(f"X has {X2.shape[0]} rows, expected {self.m}")
        out = np.zeros((self.d, X2.shape[1]), dtype=np.float64)
        rows, vals = self.column_entries(np.arange(self.m, dtype=np.int64))
        for t in range(self.s):
            np.add.at(out, rows[t], vals[t][:, None] * X2)
        return out[:, 0] if X.ndim == 1 else out

    def materialize(self) -> np.ndarray:
        """Realize ``S`` densely (testing aid)."""
        S = np.zeros((self.d, self.m), dtype=np.float64)
        rows, vals = self.column_entries(np.arange(self.m, dtype=np.int64))
        cols = np.broadcast_to(np.arange(self.m)[None, :], rows.shape)
        np.add.at(S, (rows.ravel(), cols.ravel()), vals.ravel())
        return S
