"""Configuration for the high-level sketching API.

Bundles every knob the paper's design space exposes — sketch size (via
``gamma``), entry distribution, generator family, kernel variant, blocking
— with validated defaults matching the paper's choices (``gamma = 3`` for
SpMM benchmarks, ``gamma = 2`` for least squares; xoshiro + uniform(-1,1);
automatic kernel dispatch).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from ..parallel.resilience import ResilienceConfig
from ..rng.base import SketchingRNG, make_rng
from ..rng.distributions import get_distribution
from ..utils.validation import check_choice, check_positive_int

__all__ = ["SketchConfig"]

_KERNELS = ("auto", "algo3", "algo4", "pregen")
_RNG_KINDS = ("philox", "threefry", "xoshiro", "junk")


@dataclass
class SketchConfig:
    """Options controlling how a sketch ``S A`` is formed.

    Attributes
    ----------
    gamma:
        Sketch-size multiplier: ``d = ceil(gamma * n)``.  The idealized
        Gaussian analysis gives effective distortion ``1/sqrt(gamma)`` and
        preconditioned condition number ``(sqrt(gamma)+1)/(sqrt(gamma)-1)``
        (Section V preamble).
    distribution:
        Entry distribution name (see :mod:`repro.rng.distributions`).
    rng_kind:
        ``"xoshiro"`` (fast, blocking-dependent), ``"philox"`` or
        ``"threefry"`` (counter-based, fully reproducible), or ``"junk"``
        (upper-bound probe).
    kernel:
        ``"auto"`` dispatches via :func:`repro.kernels.choose_kernel` on
        the configured machine model; otherwise forces a kernel.
    backend:
        Kernel backend: ``"auto"`` (environment default — ``numba`` when
        importable, else ``numpy``, overridable via the
        ``REPRO_BACKEND`` environment variable) or an explicit registered
        backend name (``"numpy"``, ``"numba"``).  An explicitly named
        backend that is unavailable on this host falls back to ``numpy``
        with a single informational log line.
    b_d, b_n:
        Blocking overrides; ``None`` uses heuristics/model recommendations.
    seed:
        Generator seed.
    normalize:
        Scale the sketch by ``1/sqrt(d * var)`` so it is an approximate
        isometry (needed when comparing distortions across distributions;
        irrelevant for preconditioning, where the factor is absorbed).
    threads:
        Worker count for the parallel executor (1 = sequential driver).
    resilience:
        Fault-handling policy (:class:`repro.parallel.ResilienceConfig`):
        per-task retries, deadlines, and numerical guardrails.  ``None``
        (default) keeps the original fast execution path.  When set, the
        sketch runs through the resilient executor even with
        ``threads=1`` (so guardrails apply to sequential runs too); the
        ``pregen`` kernel ignores it.
    """

    gamma: float = 3.0
    distribution: str = "uniform"
    rng_kind: str = "xoshiro"
    kernel: str = "auto"
    backend: str = "auto"
    b_d: int | None = None
    b_n: int | None = None
    seed: int = 0
    normalize: bool = False
    threads: int = 1
    resilience: ResilienceConfig | None = None
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.gamma <= 1.0:
            raise ConfigError(
                f"gamma must exceed 1 (d must exceed n), got {self.gamma}"
            )
        get_distribution(self.distribution)  # validates the name
        check_choice(self.rng_kind, "rng_kind", _RNG_KINDS)
        check_choice(self.kernel, "kernel", _KERNELS)
        from ..kernels.backends import registered_backends  # local: late reg.

        check_choice(self.backend, "backend",
                     ("auto", *registered_backends()))
        if self.b_d is not None:
            check_positive_int(self.b_d, "b_d")
        if self.b_n is not None:
            check_positive_int(self.b_n, "b_n")
        check_positive_int(self.threads, "threads")
        if self.resilience is not None and \
                not isinstance(self.resilience, ResilienceConfig):
            raise ConfigError(
                f"resilience must be a ResilienceConfig or None, got "
                f"{type(self.resilience).__name__}"
            )

    def sketch_size(self, n: int) -> int:
        """``d = ceil(gamma * n)`` for an ``n``-column input."""
        n = check_positive_int(n, "n")
        return int(-(-self.gamma * n // 1))

    def build_rng(self, worker: int = 0) -> SketchingRNG:
        """Instantiate the configured generator (fresh counters per call)."""
        return make_rng(self.rng_kind, self.seed, self.distribution)
