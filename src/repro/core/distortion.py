"""Sketch-quality metrics: effective distortion and its predictions.

Section IV-B justifies the checkpointed xoshiro generator by checking
that "the quality of the sketches are fine in the context of least
squares solver (as measured by effective distortion)".  The effective
distortion of ``S`` for ``range(A)`` is the smallest ``delta`` such that

    (1 - delta) ||x|| <= ||S x|| <= (1 + delta) ||x||   for all x in range(A)

after optimal rescaling of ``S``; the paper's Section V preamble quotes
the idealized Gaussian limits: for ``d = gamma n`` the distortion
converges to ``1/sqrt(gamma)`` and the resulting preconditioned condition
number is bounded by ``(sqrt(gamma)+1)/(sqrt(gamma)-1)``.

These metrics require dense factorizations and are intended for test- and
diagnostic-scale matrices.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError, ShapeError
from ..sparse.csc import CSCMatrix
from .sketch import SketchOperator

__all__ = [
    "effective_distortion",
    "sketch_distortion",
    "predicted_distortion",
    "predicted_condition_bound",
    "preconditioned_condition",
]


def _orthonormal_range(A_dense: np.ndarray) -> np.ndarray:
    """Orthonormal basis of ``range(A)`` via thin SVD (rank-revealing)."""
    u, s, _ = np.linalg.svd(A_dense, full_matrices=False)
    tol = s.max() * max(A_dense.shape) * np.finfo(np.float64).eps if s.size else 0.0
    rank = int(np.sum(s > tol))
    if rank == 0:
        raise ConfigError("matrix has empty range")
    return u[:, :rank]


def effective_distortion(SU: np.ndarray) -> float:
    """Effective distortion from the sketched orthonormal basis ``S @ U``.

    With ``sigma_max >= ... >= sigma_min`` the singular values of ``SU``,
    the optimal rescaling centres them at ``2 / (sigma_max + sigma_min)``
    and the distortion is
    ``(sigma_max - sigma_min) / (sigma_max + sigma_min)`` ([1, section 2]).
    """
    if SU.ndim != 2:
        raise ShapeError("SU must be 2-D")
    s = np.linalg.svd(SU, compute_uv=False)
    smax, smin = float(s.max()), float(s.min())
    if smax == 0.0:
        return 1.0
    return (smax - smin) / (smax + smin)


def sketch_distortion(op: SketchOperator, A: CSCMatrix) -> float:
    """Effective distortion of *op*'s realized sketch for ``range(A)``."""
    if A.shape[0] != op.m:
        raise ShapeError(f"A has {A.shape[0]} rows, operator expects {op.m}")
    U = _orthonormal_range(A.to_dense())
    S = op.materialize()
    return effective_distortion(S @ U)


def predicted_distortion(gamma: float) -> float:
    """Idealized Gaussian limit ``1 / sqrt(gamma)`` for ``d = gamma n``."""
    if gamma <= 1.0:
        raise ConfigError(f"gamma must exceed 1, got {gamma}")
    return 1.0 / float(np.sqrt(gamma))


def predicted_condition_bound(gamma: float) -> float:
    """Preconditioned condition bound ``(sqrt(gamma)+1)/(sqrt(gamma)-1)``."""
    if gamma <= 1.0:
        raise ConfigError(f"gamma must exceed 1, got {gamma}")
    sg = float(np.sqrt(gamma))
    return (sg + 1.0) / (sg - 1.0)


def preconditioned_condition(A: CSCMatrix, R: np.ndarray) -> float:
    """Condition number of ``A R^{-1}`` (diagnostic; dense path).

    This is what sketch-and-precondition controls: with ``R`` from a QR of
    ``S A``, ``cond(A R^{-1})`` should be near the
    :func:`predicted_condition_bound` regardless of ``cond(A)``.
    """
    if R.ndim != 2 or R.shape[0] != R.shape[1]:
        raise ShapeError("R must be square")
    if R.shape[0] != A.shape[1]:
        raise ShapeError(
            f"R is {R.shape[0]}x{R.shape[0]} but A has {A.shape[1]} columns"
        )
    from scipy.linalg import solve_triangular

    AR = solve_triangular(R, A.to_dense().T, trans="T", lower=False).T
    s = np.linalg.svd(AR, compute_uv=False)
    smin = s.min()
    return float("inf") if smin == 0.0 else float(s.max() / smin)
