"""Hand-rolled validation of observability exporter output.

``make obs-smoke`` (and the CI leg behind it) runs a tiny sketch with
``--metrics-out``/``--profile-out`` and then validates the files with
this module — no ``jsonschema`` dependency, just explicit structural
checks:

* :func:`validate_profile` checks a profile-JSON payload against
  :data:`PROFILE_SCHEMA` (a JSON-Schema-shaped dict kept for
  documentation and for the declared-vs-checked fields to stay in one
  place);
* :func:`validate_prometheus_text` checks Prometheus text exposition
  output line-by-line (HELP/TYPE ordering, metric-name and label
  syntax, parseable sample values, histogram ``_bucket``/``_sum``/
  ``_count`` completeness).

Both raise :class:`SchemaError` with a path-qualified message on the
first violation.  Run as a module to validate files from the shell::

    python -m repro.obs.schema --profile profile.json --metrics m.prom
"""

from __future__ import annotations

import json
import math
import re
import sys
from pathlib import Path

__all__ = [
    "SchemaError",
    "PROFILE_SCHEMA",
    "validate_profile",
    "validate_prometheus_text",
    "main",
]


class SchemaError(ValueError):
    """Exporter output does not match its declared schema."""


#: Declarative shape of a profile-JSON payload (JSON-Schema subset:
#: ``type``, ``required``, ``properties``; number accepts int).  Kept in
#: data form so docs and the validator cannot drift apart.
PROFILE_SCHEMA = {
    "type": "object",
    "required": ["version", "kernel", "backend", "driver", "machine",
                 "problem", "measured", "roofline", "events"],
    "properties": {
        "version": {"type": "integer"},
        "kernel": {"type": "string"},
        "backend": {"type": "string"},
        "driver": {"type": "string"},
        "machine": {"type": "string"},
        "problem": {
            "type": "object",
            "required": ["m", "n", "d"],
            "properties": {
                "m": {"type": "integer"},
                "n": {"type": "integer"},
                "d": {"type": "integer"},
                "nnz": {"type": ["integer", "null"]},
                "rho": {"type": ["number", "null"]},
            },
        },
        "measured": {
            "type": "object",
            "required": ["total_seconds", "sample_seconds",
                         "compute_seconds", "conversion_seconds",
                         "cpu_seconds", "wall_seconds", "sample_fraction",
                         "attained_gflops", "samples_generated", "flops",
                         "blocks_processed", "rng_samples_per_second"],
            "properties": {
                "total_seconds": {"type": "number", "minimum": 0},
                "sample_seconds": {"type": "number", "minimum": 0},
                "compute_seconds": {"type": "number", "minimum": 0},
                "conversion_seconds": {"type": "number", "minimum": 0},
                "cpu_seconds": {"type": "number", "minimum": 0},
                "wall_seconds": {"type": "number", "minimum": 0},
                "sample_fraction": {"type": "number",
                                    "minimum": 0, "maximum": 1},
                "attained_gflops": {"type": "number", "minimum": 0},
                "samples_generated": {"type": "integer", "minimum": 0},
                "flops": {"type": "integer", "minimum": 0},
                "blocks_processed": {"type": "integer", "minimum": 0},
                "rng_samples_per_second": {"type": "number", "minimum": 0},
            },
        },
        "roofline": {
            "type": "object",
            "required": ["machine_balance", "peak_gflops",
                         "attained_fraction_of_peak", "gemm_ci"],
            "properties": {
                "model_ci": {"type": ["number", "null"]},
                "machine_balance": {"type": "number", "minimum": 0},
                "peak_gflops": {"type": "number", "minimum": 0},
                "predicted_fraction_of_peak": {"type": ["number", "null"]},
                "predicted_gflops": {"type": ["number", "null"]},
                "attained_fraction_of_peak": {"type": "number",
                                              "minimum": 0},
                "model_ratio": {"type": ["number", "null"]},
                "gemm_ci": {"type": "number", "minimum": 0},
            },
        },
        "events": {
            "type": "object",
            "required": ["checkpoints_written", "checkpoint_seconds",
                         "retries", "degraded", "dropped_events"],
            "properties": {
                "checkpoints_written": {"type": "integer", "minimum": 0},
                "checkpoint_seconds": {"type": "number", "minimum": 0},
                "checkpoint_max_seconds": {"type": "number", "minimum": 0},
                "retries": {"type": "integer", "minimum": 0},
                "degraded": {"type": "integer", "minimum": 0},
                "dropped_events": {"type": "integer", "minimum": 0},
            },
        },
        "extra": {"type": "object"},
    },
}

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "null": lambda v: v is None,
    "array": lambda v: isinstance(v, list),
    "boolean": lambda v: isinstance(v, bool),
}


def _check(value, schema: dict, path: str) -> None:
    types = schema.get("type")
    if types is not None:
        if isinstance(types, str):
            types = [types]
        if not any(_TYPE_CHECKS[t](value) for t in types):
            raise SchemaError(
                f"{path}: expected {'/'.join(types)}, "
                f"got {type(value).__name__}")
    if value is None:
        return
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if math.isnan(value):
            raise SchemaError(f"{path}: NaN is not a valid metric value")
        minimum = schema.get("minimum")
        if minimum is not None and value < minimum:
            raise SchemaError(f"{path}: {value} < minimum {minimum}")
        maximum = schema.get("maximum")
        if maximum is not None and value > maximum:
            raise SchemaError(f"{path}: {value} > maximum {maximum}")
    if isinstance(value, dict):
        for name in schema.get("required", ()):
            if name not in value:
                raise SchemaError(f"{path}: missing required key {name!r}")
        for name, sub in schema.get("properties", {}).items():
            if name in value:
                _check(value[name], sub, f"{path}.{name}")


def validate_profile(payload) -> dict:
    """Validate a profile payload (dict or JSON text); returns the dict."""
    if isinstance(payload, (str, bytes)):
        try:
            payload = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"profile is not valid JSON: {exc}") from exc
    _check(payload, PROFILE_SCHEMA, "profile")
    version = payload["version"]
    if version != 1:
        raise SchemaError(f"profile.version: unsupported version {version}")
    return payload


_HELP_RE = re.compile(r"^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.*)$")
_TYPE_RE = re.compile(
    r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) "
    r"(counter|gauge|histogram|summary|untyped)$")
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"          # metric name
    r"(?:\{(.*)\})?"                          # optional label block
    r" ([^ ]+)(?: [0-9]+)?$")                 # value, optional timestamp
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_sample_value(text: str, lineno: int) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError:
        raise SchemaError(
            f"line {lineno}: unparseable sample value {text!r}") from None


def validate_prometheus_text(text: str) -> dict[str, str]:
    """Validate Prometheus text exposition output.

    Checks comment structure, name/label syntax, value parseability and
    histogram series completeness.  Returns ``{metric_name: type}`` for
    every family seen.
    """
    types: dict[str, str] = {}
    helped: set[str] = set()
    histogram_parts: dict[str, set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if m := _HELP_RE.match(line):
                if m.group(1) in helped:
                    raise SchemaError(
                        f"line {lineno}: duplicate HELP for {m.group(1)}")
                helped.add(m.group(1))
                continue
            if m := _TYPE_RE.match(line):
                name = m.group(1)
                if name in types:
                    raise SchemaError(
                        f"line {lineno}: duplicate TYPE for {name}")
                types[name] = m.group(2)
                continue
            raise SchemaError(f"line {lineno}: malformed comment {line!r}")
        m = _SAMPLE_RE.match(line)
        if not m:
            raise SchemaError(f"line {lineno}: malformed sample {line!r}")
        name, labels, value = m.group(1), m.group(2), m.group(3)
        _parse_sample_value(value, lineno)
        if labels:
            consumed = _LABEL_PAIR_RE.sub("", labels).strip(", ")
            if consumed:
                raise SchemaError(
                    f"line {lineno}: malformed label block {{{labels}}}")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            stripped = name[: -len(suffix)] if name.endswith(suffix) else None
            if stripped and types.get(stripped) == "histogram":
                base = stripped
                histogram_parts.setdefault(base, set()).add(suffix)
                if suffix == "_bucket" and (labels is None
                                            or 'le="' not in labels):
                    raise SchemaError(
                        f"line {lineno}: histogram bucket without le label")
                break
        if base not in types:
            raise SchemaError(
                f"line {lineno}: sample {name!r} has no preceding # TYPE")
    for name, parts in histogram_parts.items():
        missing = {"_bucket", "_sum", "_count"} - parts
        if missing:
            raise SchemaError(
                f"histogram {name}: missing series {sorted(missing)}")
    return types


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: validate exporter files, exit non-zero on failure."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.schema",
        description="Validate observability exporter output files.")
    parser.add_argument("--profile", action="append", default=[],
                        metavar="FILE", help="profile JSON file to validate")
    parser.add_argument("--metrics", action="append", default=[],
                        metavar="FILE",
                        help="Prometheus text file to validate")
    args = parser.parse_args(argv)
    if not args.profile and not args.metrics:
        parser.error("nothing to validate (pass --profile and/or --metrics)")
    for path in args.profile:
        validate_profile(Path(path).read_text(encoding="utf-8"))
        print(f"ok profile {path}")
    for path in args.metrics:
        families = validate_prometheus_text(
            Path(path).read_text(encoding="utf-8"))
        print(f"ok metrics {path} ({len(families)} families)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
