"""The run observer: EventBus lifecycle events → metrics, traces, profiles.

:class:`RunObserver` is the one object callers attach to get the full
observability surface::

    from repro.plan import Planner, Runtime
    from repro.obs import RunObserver

    rt = Runtime()
    obs = RunObserver().attach(rt.bus)
    result = rt.run(plan, A)
    obs.metrics_text()            # Prometheus exposition format
    obs.tracer.to_json("t.json")  # span trace
    obs.profile(result).render()  # roofline-annotated accounting

Every subscription goes through
:meth:`~repro.plan.EventBus.subscribe_observer`, so the documented
guarantee holds by construction: an observer handler that raises is
isolated and counted in the bus's ``dropped_events`` tally (exported as
the ``repro_dropped_events`` metric); it can never change a sketch's
output, exit code, or execution path.  When nothing is attached, the
emitting side pays only the bus's lock-free no-subscriber probe.

Metric catalogue (all names under the ``repro_`` namespace; see
``docs/observability.md`` for the event → metric mapping):

=============================== ========= ==========================================
metric                          type      labels
=============================== ========= ==========================================
``runs_total``                  counter   ``kernel``, ``driver``
``run_seconds``                 histogram ``kernel``, ``driver``
``blocks_total``                counter   ``kernel``, ``phase`` (start/done)
``blocks_in_flight``            gauge     —
``block_seconds``               histogram ``kernel``
``sample_seconds_total``        counter   ``kernel``
``compute_seconds_total``       counter   ``kernel``
``conversion_seconds_total``    counter   ``kernel``
``cpu_seconds_total``           counter   ``kernel``
``wall_seconds_total``          counter   ``kernel``
``samples_generated_total``     counter   ``kernel``
``flops_total``                 counter   ``kernel``
``sample_fraction``             gauge     ``kernel`` (last finished run)
``attained_gflops``             gauge     ``kernel`` (last finished run)
``checkpoints_total``           counter   —
``checkpoint_seconds``          histogram —
``retries_total``               counter   ``kind``
``degraded_total``              counter   ``kind``
``pool_workers``                gauge     — (live supervised worker processes)
``pool_workers_lost_total``     counter   ``reason`` (crashed/hung/shutdown)
``pool_respawns_total``         counter   —
``pool_requeues_total``         counter   ``reason``
``shards_total``                counter   ``strategy`` (shard sub-plans started)
``shard_merge_seconds``         histogram — (per-shard stripe-merge latency)
``shard_merge_words_total``     counter   — (dense words copied by merges)
``shard_requeues_total``        counter   ``shard`` (requeues while a shard ran)
``shards_resumed_total``        counter   ``repartitioned`` (yes/no)
``cache_hits_total``            counter   ``artifact``, ``source`` (memory/disk)
``cache_misses_total``          counter   ``artifact``, ``reason`` (absent/corrupt)
``cache_evictions_total``       counter   ``artifact``
``serve_requests_admitted_total`` counter —
``serve_requests_shed_total``   counter   ``reason`` (queue_full/breaker_open/draining)
``serve_requests_total``        counter   ``status`` (ok or the error type)
``serve_request_seconds``       histogram —
``requests_coalesced_total``    counter   — (requests served via a coalesced batch)
``batch_size``                  histogram — (requests per coalesced batched run)
``serve_deadline_missed_total`` counter   ``phase`` (queue/execute)
``serve_queue_depth``           gauge     — (admission queue depth)
``serve_drains_total``          counter   —
``dropped_events``              gauge     ``event`` (synced at export time)
=============================== ========= ==========================================
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING

from ..model.machine import MachineModel
from ..plan.events import (
    BLOCK_DONE,
    BLOCK_START,
    CACHE_EVICTED,
    CACHE_HIT,
    CACHE_MISS,
    CHECKPOINT_WRITTEN,
    DEADLINE_MISSED,
    DEGRADED,
    DONE,
    DRAIN_STARTED,
    PLAN_COMPILED,
    REQUEST_ADMITTED,
    REQUEST_DONE,
    REQUEST_SHED,
    REQUESTS_COALESCED,
    RETRY,
    SHARD_MERGED,
    SHARD_RESUMED,
    SHARD_START,
    TASK_REQUEUED,
    WORKER_LOST,
    WORKER_SPAWNED,
    EventBus,
)
from .metrics import MetricsRegistry
from .profile import ProfileReport, build_profile
from .tracing import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from ..plan.runtime import SketchResult

__all__ = ["RunObserver"]


class RunObserver:
    """Subscribes metrics + tracing to a bus and aggregates run context.

    Parameters
    ----------
    registry:
        A shared :class:`~repro.obs.MetricsRegistry`; a private one is
        created when omitted.  Families are get-or-create, so many
        observers can feed one registry.
    machine:
        The :class:`~repro.model.MachineModel` profiles are scored
        against (default: the planner's ``LAPTOP`` preset).
    trace:
        Set ``False`` to skip span collection (metrics only).
    """

    def __init__(self, registry: MetricsRegistry | None = None, *,
                 machine: MachineModel | None = None,
                 trace: bool = True) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.machine = machine
        self.tracer = Tracer() if trace else None
        self._lock = threading.Lock()
        self._bus: EventBus | None = None
        self._handlers: list[tuple[str, object]] = []
        # Per-attach aggregates the profile builder consumes.
        self._driver = ""
        self._run_started: float | None = None
        self._checkpoints = 0
        self._checkpoint_seconds = 0.0
        self._checkpoint_max = 0.0
        self._retries = 0
        self._degraded = 0
        # Shards execute serially inside Runtime._run_sharded, so the
        # most recent shard_start names the shard any requeue belongs to.
        self._current_shard: int | None = None
        self._shard_merge_seconds = 0.0
        self._shards_seen = 0

        r = self.registry
        self._m_runs = r.counter(
            "runs_total", "Finished sketch runs.", ("kernel", "driver"))
        self._m_run_seconds = r.histogram(
            "run_seconds", "Wall time of finished runs.",
            ("kernel", "driver"))
        self._m_blocks = r.counter(
            "blocks_total", "Block task lifecycle events.",
            ("kernel", "phase"))
        self._m_in_flight = r.gauge(
            "blocks_in_flight", "Block tasks currently executing.")
        self._m_block_seconds = r.histogram(
            "block_seconds", "Wall time per block task.", ("kernel",))
        self._m_sample = r.counter(
            "sample_seconds_total", "RNG sample time (Tables III/V).",
            ("kernel",))
        self._m_compute = r.counter(
            "compute_seconds_total", "Arithmetic time.", ("kernel",))
        self._m_conversion = r.counter(
            "conversion_seconds_total",
            "Blocked-CSR conversion time (Tables IV/VI).", ("kernel",))
        self._m_cpu = r.counter(
            "cpu_seconds_total", "Summed per-worker busy seconds.",
            ("kernel",))
        self._m_wall = r.counter(
            "wall_seconds_total", "Wall-clock seconds of runs.", ("kernel",))
        self._m_samples = r.counter(
            "samples_generated_total", "Sketch entries generated on the fly.",
            ("kernel",))
        self._m_flops = r.counter(
            "flops_total", "Useful flops (2 * d * nnz).", ("kernel",))
        self._m_sample_fraction = r.gauge(
            "sample_fraction", "Sample-time share of the last finished run.",
            ("kernel",))
        self._m_gflops = r.gauge(
            "attained_gflops", "GFlop/s of the last finished run.",
            ("kernel",))
        self._m_checkpoints = r.counter(
            "checkpoints_total", "Durable snapshots written.")
        self._m_checkpoint_seconds = r.histogram(
            "checkpoint_seconds", "Snapshot write latency.")
        self._m_retries = r.counter(
            "retries_total", "Task retries by failure kind.", ("kind",))
        self._m_degraded = r.counter(
            "degraded_total", "Degradation decisions by kind.", ("kind",))
        self._m_pool_workers = r.gauge(
            "pool_workers", "Live supervised worker processes.")
        self._m_pool_lost = r.counter(
            "pool_workers_lost_total",
            "Worker processes lost, by reason.", ("reason",))
        self._m_pool_respawns = r.counter(
            "pool_respawns_total", "Warm worker respawns.")
        self._m_pool_requeues = r.counter(
            "pool_requeues_total",
            "Tasks requeued after a worker loss or failed commit.",
            ("reason",))
        self._m_shards = r.counter(
            "shards_total", "Shard sub-plans started, by strategy.",
            ("strategy",))
        self._m_shard_merge_seconds = r.histogram(
            "shard_merge_seconds", "Per-shard stripe-merge latency.")
        self._m_shard_merge_words = r.counter(
            "shard_merge_words_total",
            "Dense words copied by shard merges.")
        self._m_shard_requeues = r.counter(
            "shard_requeues_total",
            "Tasks requeued while a shard was executing, by shard index.",
            ("shard",))
        self._m_shards_resumed = r.counter(
            "shards_resumed_total",
            "Shards seeded from checkpoints, by whether the prior state "
            "was re-partitioned from a different shard layout.",
            ("repartitioned",))
        self._m_cache_hits = r.counter(
            "cache_hits_total",
            "Artifact-cache lookups served from memory or verified disk.",
            ("artifact", "source"))
        self._m_cache_misses = r.counter(
            "cache_misses_total",
            "Artifact-cache lookups that fell through to recompute.",
            ("artifact", "reason"))
        self._m_cache_evictions = r.counter(
            "cache_evictions_total",
            "Artifact-cache entries dropped by the LRU sweep.",
            ("artifact",))
        self._m_requests_admitted = r.counter(
            "serve_requests_admitted_total",
            "Requests that cleared admission control.")
        self._m_requests_shed = r.counter(
            "serve_requests_shed_total",
            "Requests rejected by load shedding, by reason.", ("reason",))
        self._m_requests_served = r.counter(
            "serve_requests_total",
            "Completed requests by terminal status.", ("status",))
        self._m_request_seconds = r.histogram(
            "serve_request_seconds", "Dequeue-to-response latency.")
        self._m_requests_coalesced = r.counter(
            "requests_coalesced_total",
            "Requests served inside a coalesced batched run "
            "(leader included).")
        self._m_batch_size = r.histogram(
            "batch_size", "Requests per coalesced batched run.",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0))
        self._m_deadline_missed = r.counter(
            "serve_deadline_missed_total",
            "Requests whose deadline expired, by phase.", ("phase",))
        self._m_queue_depth = r.gauge(
            "serve_queue_depth", "Admission queue depth.")
        self._m_drains = r.counter(
            "serve_drains_total", "Graceful drains started.")
        self._m_dropped = r.gauge(
            "dropped_events", "Observer exceptions swallowed by the bus.",
            ("event",))
        self._block_starts: dict[tuple, float] = {}

    # -- bus wiring ----------------------------------------------------------

    def attach(self, bus: EventBus) -> "RunObserver":
        """Subscribe (as isolated observers) to *bus*; returns ``self``."""
        if self._bus is not None:
            raise RuntimeError("observer is already attached to a bus")
        handlers = [
            (PLAN_COMPILED, self._on_plan_compiled),
            (BLOCK_START, self._on_block_start),
            (BLOCK_DONE, self._on_block_done),
            (CHECKPOINT_WRITTEN, self._on_checkpoint),
            (RETRY, self._on_retry),
            (DEGRADED, self._on_degraded),
            (WORKER_SPAWNED, self._on_worker_spawned),
            (WORKER_LOST, self._on_worker_lost),
            (TASK_REQUEUED, self._on_task_requeued),
            (SHARD_START, self._on_shard_start),
            (SHARD_MERGED, self._on_shard_merged),
            (SHARD_RESUMED, self._on_shard_resumed),
            (CACHE_HIT, self._on_cache_hit),
            (CACHE_MISS, self._on_cache_miss),
            (CACHE_EVICTED, self._on_cache_evicted),
            (REQUEST_ADMITTED, self._on_request_admitted),
            (REQUEST_SHED, self._on_request_shed),
            (REQUEST_DONE, self._on_request_done),
            (REQUESTS_COALESCED, self._on_requests_coalesced),
            (DEADLINE_MISSED, self._on_deadline_missed),
            (DRAIN_STARTED, self._on_drain_started),
            (DONE, self._on_done),
        ]
        for name, handler in handlers:
            bus.subscribe_observer(name, handler)
        self._handlers = handlers
        self._bus = bus
        if self.tracer is not None:
            self.tracer.attach(bus)
        return self

    def detach(self) -> None:
        """Unsubscribe every handler registered by :meth:`attach`."""
        if self._bus is None:
            return
        for name, handler in self._handlers:
            self._bus.unsubscribe(name, handler)
        if self.tracer is not None:
            self.tracer.detach()
        self._handlers = []
        self._bus = None

    # -- event handlers ------------------------------------------------------

    def _on_plan_compiled(self, event) -> None:
        with self._lock:
            self._driver = str(event.get("driver", ""))
            self._run_started = time.perf_counter()

    def _on_block_start(self, event) -> None:
        kernel = str(event.get("kernel", ""))
        self._m_blocks.inc(kernel=kernel, phase="start")
        self._m_in_flight.inc()
        with self._lock:
            self._block_starts.setdefault(event.get("task"),
                                          time.perf_counter())

    def _on_block_done(self, event) -> None:
        kernel = str(event.get("kernel", ""))
        self._m_blocks.inc(kernel=kernel, phase="done")
        self._m_in_flight.dec()
        with self._lock:
            started = self._block_starts.pop(event.get("task"), None)
        if started is not None:
            self._m_block_seconds.observe(time.perf_counter() - started,
                                          kernel=kernel)

    def _on_checkpoint(self, event) -> None:
        seconds = float(event.get("seconds", 0.0) or 0.0)
        self._m_checkpoints.inc()
        self._m_checkpoint_seconds.observe(seconds)
        with self._lock:
            self._checkpoints += 1
            self._checkpoint_seconds += seconds
            self._checkpoint_max = max(self._checkpoint_max, seconds)

    def _on_retry(self, event) -> None:
        self._m_retries.inc(kind=str(event.get("kind", "unknown")))
        with self._lock:
            self._retries += 1

    def _on_degraded(self, event) -> None:
        self._m_degraded.inc(kind=str(event.get("kind", "unknown")))
        with self._lock:
            self._degraded += 1

    def _on_worker_spawned(self, event) -> None:
        self._m_pool_workers.inc()
        if event.get("respawn"):
            self._m_pool_respawns.inc()

    def _on_worker_lost(self, event) -> None:
        self._m_pool_workers.dec()
        self._m_pool_lost.inc(reason=str(event.get("reason", "unknown")))

    def _on_task_requeued(self, event) -> None:
        self._m_pool_requeues.inc(reason=str(event.get("reason", "unknown")))
        with self._lock:
            shard = self._current_shard
        if shard is not None:
            self._m_shard_requeues.inc(shard=str(shard))

    def _on_shard_start(self, event) -> None:
        self._m_shards.inc(strategy=str(event.get("strategy", "unknown")))
        with self._lock:
            self._current_shard = event.get("shard")
            self._shards_seen += 1

    def _on_shard_merged(self, event) -> None:
        seconds = float(event.get("seconds", 0.0) or 0.0)
        self._m_shard_merge_seconds.observe(seconds)
        self._m_shard_merge_words.inc(float(event.get("words", 0) or 0))
        with self._lock:
            self._current_shard = None
            self._shard_merge_seconds += seconds

    def _on_shard_resumed(self, event) -> None:
        repartitioned = "yes" if event.get("repartitioned") else "no"
        self._m_shards_resumed.inc(repartitioned=repartitioned)

    def _on_cache_hit(self, event) -> None:
        self._m_cache_hits.inc(
            artifact=str(event.get("artifact", "unknown")),
            source=str(event.get("source", "unknown")))

    def _on_cache_miss(self, event) -> None:
        self._m_cache_misses.inc(
            artifact=str(event.get("artifact", "unknown")),
            reason=str(event.get("reason", "unknown")))

    def _on_cache_evicted(self, event) -> None:
        self._m_cache_evictions.inc(
            artifact=str(event.get("artifact", "unknown")))

    def _on_request_admitted(self, event) -> None:
        self._m_requests_admitted.inc()
        self._m_queue_depth.set(float(event.get("queue_depth", 0)))

    def _on_request_shed(self, event) -> None:
        self._m_requests_shed.inc(reason=str(event.get("reason", "unknown")))

    def _on_request_done(self, event) -> None:
        self._m_requests_served.inc(status=str(event.get("status", "ok")))
        self._m_request_seconds.observe(float(event.get("seconds", 0.0)))
        self._m_queue_depth.set(float(event.get("queue_depth", 0)))

    def _on_requests_coalesced(self, event) -> None:
        batch = float(event.get("batch", 0) or 0)
        self._m_requests_coalesced.inc(batch)
        self._m_batch_size.observe(batch)

    def _on_deadline_missed(self, event) -> None:
        self._m_deadline_missed.inc(phase=str(event.get("phase", "unknown")))

    def _on_drain_started(self, event) -> None:
        self._m_drains.inc()

    def _on_done(self, event) -> None:
        stats = event.get("stats")
        driver = str(event.get("driver", self._driver))
        if stats is None:
            return
        kernel = stats.kernel
        self._m_runs.inc(kernel=kernel, driver=driver)
        with self._lock:
            started = self._run_started
            self._run_started = None
        if started is not None:
            self._m_run_seconds.observe(time.perf_counter() - started,
                                        kernel=kernel, driver=driver)
        self._m_sample.inc(stats.sample_seconds, kernel=kernel)
        self._m_compute.inc(stats.compute_seconds, kernel=kernel)
        self._m_conversion.inc(stats.conversion_seconds, kernel=kernel)
        self._m_cpu.inc(stats.cpu_seconds, kernel=kernel)
        self._m_wall.inc(stats.wall_seconds or stats.total_seconds,
                         kernel=kernel)
        self._m_samples.inc(stats.samples_generated, kernel=kernel)
        self._m_flops.inc(stats.flops, kernel=kernel)
        self._m_sample_fraction.set(stats.sample_fraction, kernel=kernel)
        self._m_gflops.set(stats.gflops_rate, kernel=kernel)
        with self._lock:
            self._block_starts.clear()
            self._current_shard = None
            self._m_in_flight.set(0.0)

    # -- export --------------------------------------------------------------

    def _sync_dropped(self) -> int:
        """Mirror the bus's dropped-event tally into the registry.

        Done at export time because a handler that just crashed cannot
        count its own failure; the bus is the source of truth.
        """
        if self._bus is None:
            return 0
        total = 0
        with self._bus._lock:
            dropped = dict(self._bus.dropped_events)
        for name, count in dropped.items():
            self._m_dropped.set(float(count), event=name)
            total += count
        return total

    def dropped_events(self) -> int:
        """Total observer exceptions the bus has swallowed so far."""
        return self._sync_dropped()

    def metrics_text(self) -> str:
        """Prometheus text exposition of the registry (dropped-event
        counts synced from the bus first)."""
        self._sync_dropped()
        return self.registry.to_prometheus()

    def metrics_dict(self) -> dict:
        """JSON-ready snapshot of the registry."""
        self._sync_dropped()
        return self.registry.to_dict()

    def write_metrics(self, path) -> None:
        """Write :meth:`metrics_text` to *path*."""
        self._sync_dropped()
        self.registry.write_prometheus(path)

    def profile(self, result: "SketchResult",
                machine: MachineModel | None = None) -> ProfileReport:
        """Build the roofline-annotated :class:`ProfileReport` for
        *result*, folding in the event aggregates this observer saw."""
        with self._lock:
            checkpoints = (self._checkpoints, self._checkpoint_seconds,
                           self._checkpoint_max)
            retries, degraded, driver = \
                self._retries, self._degraded, self._driver
        return build_profile(
            result,
            machine=machine if machine is not None else self.machine,
            driver=driver,
            checkpoints=checkpoints,
            retries=retries,
            degraded=degraded,
            dropped_events=self._sync_dropped(),
        )
