"""Observability layer: metrics, traces and roofline profiles.

Everything in this package feeds off the :class:`~repro.plan.EventBus`
lifecycle events through *observer* subscriptions
(:meth:`~repro.plan.EventBus.subscribe_observer`), which gives two hard
guarantees to the sketching hot path:

1. **Observers cannot fail a sketch.**  An exception raised by any
   handler registered here is swallowed by the bus and counted in
   ``bus.dropped_events`` (exported as the ``repro_dropped_events``
   metric); the run's output and exit code are unchanged.
2. **Observers cannot slow-path a sketch.**  Only lifecycle events are
   subscribed — never the fault-injection hook events whose presence
   makes the engine take its guarded per-block path — and an idle bus
   keeps its lock-free no-subscriber fast path.

Typical use::

    from repro.obs import RunObserver

    obs = RunObserver().attach(runtime.bus)
    result = runtime.run(plan, A)
    obs.write_metrics("metrics.prom")
    print(obs.profile(result).render())

See ``docs/observability.md`` for the metric catalogue and the
event-to-metric mapping.
"""

from .metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram, \
    MetricsRegistry
from .observer import RunObserver
from .profile import PROFILE_FORMAT_VERSION, ProfileReport, build_profile
from .schema import SchemaError, validate_profile, validate_prometheus_text
from .tracing import Span, Tracer

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "Tracer",
    "Span",
    "ProfileReport",
    "build_profile",
    "PROFILE_FORMAT_VERSION",
    "RunObserver",
    "SchemaError",
    "validate_profile",
    "validate_prometheus_text",
]
