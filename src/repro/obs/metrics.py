"""Label-aware metrics primitives with Prometheus and JSON exporters.

A small, dependency-free subset of the Prometheus client-library data
model — counters, gauges, histograms, each with a fixed label schema —
sized for this library's needs: the observability layer
(:mod:`repro.obs.observer`) fills a :class:`MetricsRegistry` from
:class:`~repro.plan.EventBus` lifecycle events and the CLI dumps it with
``--metrics-out``.

Design rules, chosen so a scrape can never lie:

* a metric family is registered once with a fixed tuple of label names;
  every update must supply exactly those labels (missing/extra label
  keys raise immediately rather than silently creating a second series);
* counters only go up (negative increments raise);
* export is deterministic: families in registration order, series
  sorted by label values, so diffs between scrapes are meaningful;
* updates are thread-safe (one lock per family — the engine's workers
  emit events concurrently).
"""

from __future__ import annotations

import json
import math
import re
import threading
from pathlib import Path

from ..errors import ConfigError

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds-flavoured, like the Prometheus
#: client defaults but extended downward for sub-millisecond kernels).
DEFAULT_BUCKETS = (
    1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


class _MetricFamily:
    """Shared bookkeeping: name, help text, label schema, sample store."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labels: tuple[str, ...]) -> None:
        if not _NAME_RE.match(name):
            raise ConfigError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise ConfigError(f"invalid label name {label!r}")
        self.name = name
        self.help = help_text
        self.labels = tuple(labels)
        self._lock = threading.Lock()
        self._samples: dict[tuple[str, ...], object] = {}

    def _key(self, labels: dict) -> tuple[str, ...]:
        if set(labels) != set(self.labels):
            raise ConfigError(
                f"metric {self.name!r} takes labels {list(self.labels)}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labels)

    def _label_str(self, key: tuple[str, ...],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
        pairs = [(n, v) for n, v in zip(self.labels, key)] + list(extra)
        if not pairs:
            return ""
        body = ",".join(f'{n}="{_escape_label_value(v)}"' for n, v in pairs)
        return "{" + body + "}"

    def _sorted_samples(self) -> list[tuple[tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._samples.items())

    # Subclasses implement render_prometheus / sample_dicts.


class Counter(_MetricFamily):
    """Monotonically increasing count (events, seconds, samples, flops)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add *amount* (must be >= 0) to the series at *labels*."""
        if amount < 0:
            raise ConfigError(
                f"counter {self.name!r} cannot decrease (got {amount})")
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        """Current value of the series at *labels* (0 if never touched)."""
        key = self._key(labels)
        with self._lock:
            return float(self._samples.get(key, 0.0))

    def render_prometheus(self) -> list[str]:
        return [f"{self.name}{self._label_str(key)} {_format_value(val)}"
                for key, val in self._sorted_samples()]

    def sample_dicts(self) -> list[dict]:
        return [{"labels": dict(zip(self.labels, key)), "value": val}
                for key, val in self._sorted_samples()]


class Gauge(_MetricFamily):
    """A value that can go up and down (in-flight blocks, last-run ratio)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._samples[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._samples.get(key, 0.0))

    render_prometheus = Counter.render_prometheus
    sample_dicts = Counter.sample_dicts


class _HistogramSeries:
    __slots__ = ("counts", "total", "count")

    def __init__(self, nbuckets: int) -> None:
        self.counts = [0] * nbuckets
        self.total = 0.0
        self.count = 0


class Histogram(_MetricFamily):
    """Cumulative-bucket histogram (latencies: blocks, checkpoints, runs)."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str, labels: tuple[str, ...],
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help_text, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ConfigError(
                f"histogram {name!r} buckets must be strictly increasing")
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        """Record one observation of *value* at *labels*."""
        key = self._key(labels)
        value = float(value)
        with self._lock:
            series = self._samples.get(key)
            if series is None:
                series = self._samples[key] = \
                    _HistogramSeries(len(self.buckets))
            for idx, bound in enumerate(self.buckets):
                if value <= bound:
                    series.counts[idx] += 1
            series.total += value
            series.count += 1

    def series(self, **labels) -> dict:
        """``{"count": n, "sum": s, "buckets": {le: cumulative}}`` at
        *labels* (zeros if never observed)."""
        key = self._key(labels)
        with self._lock:
            s = self._samples.get(key)
            if s is None:
                return {"count": 0, "sum": 0.0,
                        "buckets": {_format_value(b): 0
                                    for b in self.buckets + (math.inf,)}}
            buckets = {_format_value(b): c
                       for b, c in zip(self.buckets, s.counts)}
            buckets["+Inf"] = s.count
            return {"count": s.count, "sum": s.total, "buckets": buckets}

    def render_prometheus(self) -> list[str]:
        lines = []
        for key, s in self._sorted_samples():
            for bound, cum in zip(self.buckets, s.counts):
                le = (("le", _format_value(float(bound))),)
                lines.append(f"{self.name}_bucket"
                             f"{self._label_str(key, le)} {cum}")
            lines.append(f"{self.name}_bucket"
                         f"{self._label_str(key, (('le', '+Inf'),))} "
                         f"{s.count}")
            lines.append(f"{self.name}_sum{self._label_str(key)} "
                         f"{_format_value(s.total)}")
            lines.append(f"{self.name}_count{self._label_str(key)} {s.count}")
        return lines

    def sample_dicts(self) -> list[dict]:
        out = []
        for key, s in self._sorted_samples():
            buckets = {_format_value(float(b)): c
                       for b, c in zip(self.buckets, s.counts)}
            buckets["+Inf"] = s.count
            out.append({"labels": dict(zip(self.labels, key)),
                        "count": s.count, "sum": s.total,
                        "buckets": buckets})
        return out


class MetricsRegistry:
    """Named collection of metric families with a shared namespace prefix.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking for an
    existing name returns the registered family (and raises if the kind
    or label schema disagrees), so independent subscribers can share
    series safely.
    """

    def __init__(self, namespace: str = "repro") -> None:
        if namespace and not _NAME_RE.match(namespace):
            raise ConfigError(f"invalid metrics namespace {namespace!r}")
        self.namespace = namespace
        self._lock = threading.Lock()
        self._families: dict[str, _MetricFamily] = {}

    def _full_name(self, name: str) -> str:
        return f"{self.namespace}_{name}" if self.namespace else name

    def _register(self, cls, name: str, help_text: str,
                  labels: tuple[str, ...], **kwargs) -> _MetricFamily:
        full = self._full_name(name)
        with self._lock:
            existing = self._families.get(full)
            if existing is not None:
                if not isinstance(existing, cls) \
                        or existing.labels != tuple(labels):
                    raise ConfigError(
                        f"metric {full!r} already registered as "
                        f"{existing.kind} with labels "
                        f"{list(existing.labels)}"
                    )
                return existing
            family = cls(full, help_text, tuple(labels), **kwargs)
            self._families[full] = family
            return family

    def counter(self, name: str, help_text: str = "",
                labels: tuple[str, ...] = ()) -> Counter:
        """Get or create a :class:`Counter` named ``<namespace>_<name>``."""
        return self._register(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "",
              labels: tuple[str, ...] = ()) -> Gauge:
        """Get or create a :class:`Gauge` named ``<namespace>_<name>``."""
        return self._register(Gauge, name, help_text, labels)

    def histogram(self, name: str, help_text: str = "",
                  labels: tuple[str, ...] = (),
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        """Get or create a :class:`Histogram` named
        ``<namespace>_<name>``."""
        return self._register(Histogram, name, help_text, labels,
                              buckets=buckets)

    def families(self) -> list[_MetricFamily]:
        """Registered families, in registration order."""
        with self._lock:
            return list(self._families.values())

    # -- exporters -----------------------------------------------------------

    def to_prometheus(self) -> str:
        """Render the registry in the Prometheus text exposition format."""
        lines: list[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            lines.extend(family.render_prometheus())
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> dict:
        """JSON-ready snapshot of every family and series."""
        return {
            "namespace": self.namespace,
            "metrics": [
                {"name": f.name, "type": f.kind, "help": f.help,
                 "labels": list(f.labels), "samples": f.sample_dicts()}
                for f in self.families()
            ],
        }

    def write_prometheus(self, path) -> Path:
        """Write :meth:`to_prometheus` output to *path*; returns the path."""
        path = Path(path)
        path.write_text(self.to_prometheus(), encoding="utf-8")
        return path

    def write_json(self, path) -> Path:
        """Write :meth:`to_dict` as JSON to *path*; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True)
                        + "\n", encoding="utf-8")
        return path
