"""Span-based tracing of a sketching run, fed by lifecycle events.

A :class:`Tracer` subscribed to a :class:`~repro.plan.EventBus` (always
as an *observer* — it can never abort a run) turns the event stream into
a tree of :class:`Span` records:

* ``plan_compiled`` opens the root ``run`` span; ``done`` closes it;
* ``block_start``/``block_done`` bracket one ``block`` span per task
  (re-emitted starts from straggler re-execution reuse the open span);
* ``checkpoint_written`` records a ``checkpoint`` span whose duration is
  the measured write latency carried in the event payload;
* ``worker_spawned``/``worker_lost`` bracket one ``worker`` span per
  supervised process-pool worker (attrs carry the pid, whether the spawn
  was a warm respawn, and the loss reason);
* ``shard_start``/``shard_merged`` bracket one ``shard`` span per column
  shard of a partitioned run (attrs carry the column range, strategy,
  nnz, and — once merged — the stripe-copy seconds and words);
* ``retry``, ``degraded``, ``task_requeued``, and ``shard_resumed``
  become zero-duration *annotations* attached to the trace.

Timestamps are ``time.perf_counter`` values rebased to the first event,
so a trace is self-contained and diffable; :meth:`Tracer.to_chrome`
converts to the Chrome ``chrome://tracing`` / Perfetto JSON array format
for visual inspection.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..plan.events import (
    BLOCK_DONE,
    BLOCK_START,
    CHECKPOINT_WRITTEN,
    DEGRADED,
    DONE,
    PLAN_COMPILED,
    RETRY,
    SHARD_MERGED,
    SHARD_RESUMED,
    SHARD_START,
    TASK_REQUEUED,
    WORKER_LOST,
    WORKER_SPAWNED,
    EventBus,
)

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """One timed region of a run (or a zero-duration annotation)."""

    name: str                     # "run" / "block" / "checkpoint" / ...
    start: float                  # seconds since the trace began
    end: float | None = None      # None while still open
    attrs: dict = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        """Span duration (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> dict:
        return {"name": self.name, "start": self.start, "end": self.end,
                "seconds": self.seconds, "attrs": dict(self.attrs)}


class Tracer:
    """Collects :class:`Span` records from bus lifecycle events.

    Thread-safe: engine workers emit ``block_start``/``block_done``
    concurrently.  All subscriptions are observers, so a tracer bug is
    counted in ``bus.dropped_events`` instead of failing the sketch.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._t0: float | None = None
        self.spans: list[Span] = []
        self.annotations: list[Span] = []
        self._open_blocks: dict[tuple, Span] = {}
        self._open_workers: dict[int, Span] = {}
        self._open_shards: dict[int, Span] = {}
        self._run: Span | None = None
        self._handlers: list[tuple[str, object]] = []
        self._bus: EventBus | None = None

    # -- time base -----------------------------------------------------------

    def _now(self) -> float:
        now = time.perf_counter()
        if self._t0 is None:
            self._t0 = now
        return now - self._t0

    # -- bus wiring ----------------------------------------------------------

    def attach(self, bus: EventBus) -> "Tracer":
        """Subscribe (as observers) to *bus*'s lifecycle events."""
        if self._bus is not None:
            raise RuntimeError("tracer is already attached to a bus")
        handlers = [
            (PLAN_COMPILED, self._on_plan_compiled),
            (BLOCK_START, self._on_block_start),
            (BLOCK_DONE, self._on_block_done),
            (CHECKPOINT_WRITTEN, self._on_checkpoint),
            (RETRY, self._on_annotation),
            (DEGRADED, self._on_annotation),
            (WORKER_SPAWNED, self._on_worker_spawned),
            (WORKER_LOST, self._on_worker_lost),
            (TASK_REQUEUED, self._on_annotation),
            (SHARD_START, self._on_shard_start),
            (SHARD_MERGED, self._on_shard_merged),
            (SHARD_RESUMED, self._on_annotation),
            (DONE, self._on_done),
        ]
        for name, handler in handlers:
            bus.subscribe_observer(name, handler)
        self._handlers = handlers
        self._bus = bus
        return self

    def detach(self) -> None:
        """Unsubscribe from the bus attached via :meth:`attach`."""
        if self._bus is None:
            return
        for name, handler in self._handlers:
            self._bus.unsubscribe(name, handler)
        self._bus = None
        self._handlers = []

    # -- event handlers ------------------------------------------------------

    def _on_plan_compiled(self, event) -> None:
        with self._lock:
            plan = event.get("plan")
            attrs = {"driver": event.get("driver")}
            if plan is not None:
                attrs.update(kernel=plan.kernel, d=plan.problem.d,
                             n=plan.problem.n, threads=plan.threads)
            self._run = Span("run", self._now(), attrs=attrs)
            self.spans.append(self._run)

    def _on_block_start(self, event) -> None:
        with self._lock:
            key = event.get("task")
            span = Span("block", self._now(),
                        attrs={"task": list(key) if key else None,
                               "kernel": event.get("kernel")})
            # A straggler re-execution re-emits block_start for a task
            # whose first start never committed; keep the earliest start.
            if key not in self._open_blocks:
                self._open_blocks[key] = span
                self.spans.append(span)

    def _on_block_done(self, event) -> None:
        with self._lock:
            now = self._now()
            key = event.get("task")
            span = self._open_blocks.pop(key, None)
            if span is None:  # done without a tracked start: record anyway
                span = Span("block", now,
                            attrs={"task": list(key) if key else None,
                                   "kernel": event.get("kernel")})
                self.spans.append(span)
            span.end = now

    def _on_checkpoint(self, event) -> None:
        with self._lock:
            now = self._now()
            seconds = float(event.get("seconds", 0.0) or 0.0)
            self.spans.append(Span(
                "checkpoint", now - seconds, end=now,
                attrs={"path": str(event.get("path")),
                       "rows": list(event.get("rows") or ()),
                       "snapshot": event.get("snapshots_written")}))

    def _on_worker_spawned(self, event) -> None:
        with self._lock:
            wid = event.get("worker")
            span = Span("worker", self._now(),
                        attrs={"worker": wid, "pid": event.get("pid"),
                               "respawn": bool(event.get("respawn"))})
            # A respawn reuses the worker id; the previous span was
            # closed by the worker_lost that triggered the respawn.
            self._open_workers[wid] = span
            self.spans.append(span)

    def _on_worker_lost(self, event) -> None:
        with self._lock:
            span = self._open_workers.pop(event.get("worker"), None)
            if span is not None:
                span.end = self._now()
                span.attrs["reason"] = event.get("reason")

    def _on_shard_start(self, event) -> None:
        with self._lock:
            idx = event.get("shard")
            span = Span("shard", self._now(),
                        attrs={"shard": idx,
                               "shards": event.get("shards"),
                               "col_start": event.get("col_start"),
                               "col_stop": event.get("col_stop"),
                               "nnz": event.get("nnz"),
                               "strategy": event.get("strategy")})
            self._open_shards[idx] = span
            self.spans.append(span)

    def _on_shard_merged(self, event) -> None:
        with self._lock:
            now = self._now()
            span = self._open_shards.pop(event.get("shard"), None)
            if span is None:  # merged without a tracked start
                span = Span("shard", now,
                            attrs={"shard": event.get("shard"),
                                   "col_start": event.get("col_start"),
                                   "col_stop": event.get("col_stop")})
                self.spans.append(span)
            span.end = now
            span.attrs["merge_seconds"] = float(event.get("seconds", 0.0)
                                                or 0.0)
            span.attrs["merge_words"] = event.get("words")

    def _on_annotation(self, event) -> None:
        with self._lock:
            now = self._now()
            self.annotations.append(Span(
                event.name, now, end=now,
                attrs={k: v for k, v in event.payload.items()
                       if isinstance(v, (str, int, float, bool, tuple))}))

    def _on_done(self, event) -> None:
        with self._lock:
            now = self._now()
            if self._run is not None and self._run.end is None:
                self._run.end = now
            # Anything still open (e.g. a crashed block) closes unfinished.
            for span in self._open_blocks.values():
                span.attrs["unfinished"] = True
            self._open_blocks.clear()
            for span in self._open_workers.values():
                span.attrs["unfinished"] = True
            self._open_workers.clear()
            for span in self._open_shards.values():
                span.attrs["unfinished"] = True
            self._open_shards.clear()

    # -- export --------------------------------------------------------------

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "spans": [s.to_dict() for s in self.spans],
                "annotations": [a.to_dict() for a in self.annotations],
            }

    def to_json(self, path=None, *, indent: int = 2) -> str:
        """Serialize the trace; optionally also write it to *path*."""
        text = json.dumps(self.to_dict(), indent=indent, sort_keys=True)
        if path is not None:
            Path(path).write_text(text + "\n", encoding="utf-8")
        return text

    def to_chrome(self) -> list[dict]:
        """Chrome/Perfetto trace-event array (``X`` complete events)."""
        events = []
        with self._lock:
            for span in self.spans:
                events.append({
                    "name": span.name, "ph": "X", "pid": 0, "tid": 0,
                    "ts": span.start * 1e6, "dur": span.seconds * 1e6,
                    "args": dict(span.attrs),
                })
            for ann in self.annotations:
                events.append({
                    "name": ann.name, "ph": "i", "pid": 0, "tid": 0,
                    "ts": ann.start * 1e6, "s": "g",
                    "args": dict(ann.attrs),
                })
        return events
