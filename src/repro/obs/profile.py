"""Roofline-annotated profile of one sketching run.

The paper's evaluation is accounting-driven: Tables III–VI split runtime
into sample/compute/conversion buckets, and Section III's roofline model
(Eq. 4–7) predicts what fraction of machine peak those buckets should
sustain.  A :class:`ProfileReport` packages both sides for a single run —
the *measured* numbers straight from the returned
:class:`~repro.kernels.KernelStats` (bit-for-bit: ``attained_gflops`` is
``stats.gflops_rate``, ``sample_fraction`` is ``stats.sample_fraction``)
and the *model-predicted* numbers from the machine model — so "did this
run perform as the paper says it should?" is a one-object answer.

Model numbers are taken from the plan's recorded
:class:`~repro.plan.PlanDecision` data when the run was compiled by the
:class:`~repro.plan.Planner` (they then reflect the machine the planner
actually used), and recomputed from the given
:class:`~repro.model.MachineModel` otherwise; the ``pregen`` baseline is
scored against the classical blocked-GEMM intensity
(:func:`repro.model.roofline.gemm_ci`) since it performs no on-the-fly
generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..model.machine import LAPTOP, MachineModel
from ..model.roofline import fraction_of_peak, gemm_ci

if TYPE_CHECKING:  # pragma: no cover
    from ..kernels.stats import KernelStats
    from ..plan.runtime import SketchResult
    from ..plan.spec import SketchPlan

__all__ = ["ProfileReport", "build_profile"]

PROFILE_FORMAT_VERSION = 1


@dataclass
class ProfileReport:
    """Measured vs. model-predicted accounting for one run."""

    kernel: str
    backend: str
    driver: str
    machine: str
    # problem
    m: int
    n: int
    d: int
    nnz: int | None
    rho: float | None
    # measured (bit-for-bit from KernelStats)
    total_seconds: float
    sample_seconds: float
    compute_seconds: float
    conversion_seconds: float
    cpu_seconds: float
    wall_seconds: float
    sample_fraction: float
    attained_gflops: float
    samples_generated: int
    flops: int
    blocks_processed: int
    rng_samples_per_second: float
    # roofline model (Eq. 4-7)
    model_ci: float | None
    machine_balance: float
    peak_gflops: float
    predicted_fraction_of_peak: float | None
    predicted_gflops: float | None
    attained_fraction_of_peak: float
    gemm_ci: float
    # event-derived
    checkpoints_written: int = 0
    checkpoint_seconds: float = 0.0
    checkpoint_max_seconds: float = 0.0
    retries: int = 0
    degraded: int = 0
    dropped_events: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def model_ratio(self) -> float | None:
        """Attained over model-predicted GFlop/s (1.0 = on the roofline)."""
        if not self.predicted_gflops:
            return None
        return self.attained_gflops / self.predicted_gflops

    def as_dict(self) -> dict:
        return {
            "version": PROFILE_FORMAT_VERSION,
            "kernel": self.kernel,
            "backend": self.backend,
            "driver": self.driver,
            "machine": self.machine,
            "problem": {"m": self.m, "n": self.n, "d": self.d,
                        "nnz": self.nnz, "rho": self.rho},
            "measured": {
                "total_seconds": self.total_seconds,
                "sample_seconds": self.sample_seconds,
                "compute_seconds": self.compute_seconds,
                "conversion_seconds": self.conversion_seconds,
                "cpu_seconds": self.cpu_seconds,
                "wall_seconds": self.wall_seconds,
                "sample_fraction": self.sample_fraction,
                "attained_gflops": self.attained_gflops,
                "samples_generated": self.samples_generated,
                "flops": self.flops,
                "blocks_processed": self.blocks_processed,
                "rng_samples_per_second": self.rng_samples_per_second,
            },
            "roofline": {
                "model_ci": self.model_ci,
                "machine_balance": self.machine_balance,
                "peak_gflops": self.peak_gflops,
                "predicted_fraction_of_peak":
                    self.predicted_fraction_of_peak,
                "predicted_gflops": self.predicted_gflops,
                "attained_fraction_of_peak": self.attained_fraction_of_peak,
                "model_ratio": self.model_ratio,
                "gemm_ci": self.gemm_ci,
            },
            "events": {
                "checkpoints_written": self.checkpoints_written,
                "checkpoint_seconds": self.checkpoint_seconds,
                "checkpoint_max_seconds": self.checkpoint_max_seconds,
                "retries": self.retries,
                "degraded": self.degraded,
                "dropped_events": self.dropped_events,
            },
            "extra": dict(self.extra),
        }

    def render(self) -> str:
        """Human-readable profile block for the CLI."""
        nnz = "?" if self.nnz is None else str(self.nnz)
        rho = "?" if self.rho is None else f"{self.rho:.3e}"
        lines = [
            f"profile: {self.kernel} on {self.machine} "
            f"({self.driver} driver, {self.backend} backend)",
            f"  problem     : {self.m} x {self.n}, nnz={nnz} (rho={rho}), "
            f"d={self.d}",
            f"  time        : total={self.total_seconds:.4f}s "
            f"sample={self.sample_seconds:.4f}s "
            f"compute={self.compute_seconds:.4f}s "
            f"conversion={self.conversion_seconds:.4f}s",
            f"  parallelism : cpu={self.cpu_seconds:.4f}s "
            f"wall={self.wall_seconds:.4f}s",
            f"  rng         : {self.samples_generated} samples, "
            f"{self.rng_samples_per_second:.3e}/s, "
            f"sample fraction {self.sample_fraction:.1%}",
            f"  attained    : {self.attained_gflops:.3f} GFlop/s "
            f"({self.attained_fraction_of_peak:.2%} of "
            f"{self.peak_gflops:g} GFlop/s peak)",
        ]
        if self.predicted_gflops is not None:
            ratio = self.model_ratio
            lines.append(
                f"  roofline    : model CI {self.model_ci:.2f} vs balance "
                f"{self.machine_balance:.2f} -> predicted "
                f"{self.predicted_gflops:.3f} GFlop/s "
                f"({self.predicted_fraction_of_peak:.2%} of peak); "
                f"attained/predicted = "
                + (f"{ratio:.3f}" if ratio is not None else "n/a"))
        else:
            lines.append("  roofline    : no model prediction "
                         "(density unknown)")
        lines.append(f"  gemm ci     : {self.gemm_ci:.2f} "
                     f"(classical blocked-GEMM sqrt(M) intensity)")
        if self.checkpoints_written:
            lines.append(
                f"  checkpoints : {self.checkpoints_written} written, "
                f"{self.checkpoint_seconds:.4f}s total "
                f"(max {self.checkpoint_max_seconds:.4f}s)")
        if self.retries or self.degraded:
            lines.append(f"  resilience  : retries={self.retries} "
                         f"degraded={self.degraded}")
        if self.dropped_events:
            lines.append(f"  observers   : {self.dropped_events} event(s) "
                         f"dropped by failing observer handlers")
        return "\n".join(lines)


def _model_ci(plan: "SketchPlan | None", machine: MachineModel,
              kernel: str, rho: float | None) -> float | None:
    """Eq. 4 computational intensity for this run.

    Prefers the numbers the planner recorded in the blocking decision
    (they reflect the planner's machine); falls back to re-running the
    block optimizer on *machine*; ``pregen`` uses the GEMM intensity.
    """
    if kernel == "pregen":
        return gemm_ci(machine.cache_words)
    if plan is not None:
        for dec in plan.decisions:
            if dec.field == "blocking" and "model_ci" in dec.data:
                return float(dec.data["model_ci"])
    if rho is None or not (0.0 < rho <= 1.0):
        return None
    from ..model.blocksize import optimize_blocks

    model = optimize_blocks(rho, machine.cache_words, machine.h("uniform"))
    return float(model.ci)


def build_profile(result: "SketchResult | None" = None, *,
                  stats: "KernelStats | None" = None,
                  plan: "SketchPlan | None" = None,
                  machine: MachineModel | None = None,
                  driver: str = "",
                  checkpoints: tuple[int, float, float] = (0, 0.0, 0.0),
                  retries: int = 0, degraded: int = 0,
                  dropped_events: int = 0) -> ProfileReport:
    """Assemble a :class:`ProfileReport` from a run's artefacts.

    Pass either a :class:`~repro.plan.SketchResult` (*result*) or the
    *stats*/*plan* pair explicitly.  *checkpoints* is
    ``(count, total_seconds, max_seconds)`` as aggregated from
    ``checkpoint_written`` events (the :class:`~repro.obs.RunObserver`
    does this); *machine* defaults to the conservative ``LAPTOP``
    preset, matching the planner's default.
    """
    if result is not None:
        stats = result.stats if stats is None else stats
        plan = result.plan if plan is None else plan
    if stats is None:
        raise ValueError("build_profile needs a result or stats")
    machine = machine if machine is not None else LAPTOP

    if plan is not None:
        m, n, d = plan.problem.m, plan.problem.n, plan.problem.d
        nnz = plan.problem.nnz
        kernel = plan.kernel
        backend = plan.backend
    else:
        d = stats.d
        m = n = 0
        nnz = None
        kernel = stats.kernel
        backend = str(stats.extra.get("backend", "numpy"))
    rho = None if (nnz is None or m == 0 or n == 0) else nnz / (m * n)

    attained = stats.gflops_rate
    peak = machine.peak_gflops
    ci = _model_ci(plan, machine, kernel, rho)
    predicted_fraction = None if ci is None else fraction_of_peak(ci, machine)
    predicted = None if predicted_fraction is None \
        else predicted_fraction * peak
    ck_count, ck_total, ck_max = checkpoints

    return ProfileReport(
        kernel=kernel,
        backend=str(stats.extra.get("backend", backend)),
        driver=driver,
        machine=machine.name,
        m=m, n=n, d=d, nnz=nnz, rho=rho,
        total_seconds=stats.total_seconds,
        sample_seconds=stats.sample_seconds,
        compute_seconds=stats.compute_seconds,
        conversion_seconds=stats.conversion_seconds,
        cpu_seconds=stats.cpu_seconds,
        wall_seconds=stats.wall_seconds,
        sample_fraction=stats.sample_fraction,
        attained_gflops=attained,
        samples_generated=stats.samples_generated,
        flops=stats.flops,
        blocks_processed=stats.blocks_processed,
        rng_samples_per_second=(stats.samples_generated / stats.sample_seconds
                                if stats.sample_seconds > 0 else 0.0),
        model_ci=ci,
        machine_balance=machine.machine_balance,
        peak_gflops=peak,
        predicted_fraction_of_peak=predicted_fraction,
        predicted_gflops=predicted,
        attained_fraction_of_peak=(attained / peak if peak > 0 else 0.0),
        gemm_ci=gemm_ci(machine.cache_words),
        checkpoints_written=ck_count,
        checkpoint_seconds=ck_total,
        checkpoint_max_seconds=ck_max,
        retries=retries,
        degraded=degraded,
        dropped_events=dropped_events,
    )
