"""Typed artifact classes over the raw :class:`~repro.cache.ArtifactCache`.

Three artifact classes are cached, each with its own key recipe:

``tune``
    :class:`~repro.kernels.TuneResult` records from
    :func:`~repro.kernels.autotune_blocking` /
    :func:`~repro.kernels.autotune_kernel`.  Keyed by the **pattern**
    fingerprint (tuning depends on structure, not values), the machine
    profile, the backend, and every tuning parameter including the
    recorded ``tuning_seed``.
``kernel_choice``
    :class:`~repro.kernels.KernelChoice` records from
    :func:`~repro.kernels.choose_kernel` (the column-concentration scan
    is O(nnz + n log n) — worth skipping on repeat traffic).
``blocked_csr``
    The blocked-CSR conversion of ``A`` itself.  Keyed by the **full
    matrix** fingerprint (values included): serving another matrix's
    blocks would be a wrong answer, the one failure a cache may not
    have.  Stored as four ``.npy`` payloads (block starts, stacked
    per-block indptr, concatenated indices/data) so workers can rebuild
    every block as zero-copy views.
``jit_warmup``
    Markers recording that a (kernel, backend, machine) combination has
    been JIT-warmed, with the measured compile seconds — so
    ``jit_compile_seconds`` is paid once per machine, not per run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..persist.snapshot import _array_to_npy_bytes, _npy_bytes_to_array
from ..sparse.blocked_csr import BlockedCSR
from ..sparse.csr import CSRMatrix
from .keys import cache_key, machine_fingerprint, matrix_fingerprint, \
    pattern_fingerprint, shard_component
from .store import ArtifactCache, CacheEntry

if TYPE_CHECKING:  # pragma: no cover
    from ..kernels.autotune import TuneResult
    from ..kernels.dispatch import KernelChoice
    from ..model.machine import MachineModel
    from ..sparse.csc import CSCMatrix

__all__ = [
    "TUNE_ARTIFACT", "CHOICE_ARTIFACT", "BLOCKED_ARTIFACT", "JIT_ARTIFACT",
    "tune_key", "fetch_tune_result", "store_tune_result",
    "kernel_choice_key", "fetch_kernel_choice", "store_kernel_choice",
    "blocked_csr_key", "fetch_blocked_csr", "store_blocked_csr",
    "jit_warmup_key", "fetch_jit_marker", "store_jit_marker",
]

TUNE_ARTIFACT = "tune"
CHOICE_ARTIFACT = "kernel_choice"
BLOCKED_ARTIFACT = "blocked_csr"
JIT_ARTIFACT = "jit_warmup"


# -- autotune results --------------------------------------------------------


def tune_key(A: "CSCMatrix", *, kernel: str, d: int, backend: str,
             max_tuning_cols: int, repeats: int, tuning_seed: int,
             machine: "MachineModel | None" = None,
             candidates=None) -> str:
    """Cache key for one autotune invocation (``kernel="race"`` for the
    algo3-vs-algo4 race of :func:`~repro.kernels.autotune_kernel`)."""
    return cache_key(TUNE_ARTIFACT, {
        "pattern": pattern_fingerprint(A),
        "machine": machine_fingerprint(machine),
        "backend": str(backend),
        "kernel": str(kernel),
        "d": int(d),
        "max_tuning_cols": int(max_tuning_cols),
        "repeats": int(repeats),
        "tuning_seed": int(tuning_seed),
        "candidates": (None if candidates is None else
                       [[int(bd), int(bn)] for bd, bn in candidates]),
    })


def fetch_tune_result(cache: ArtifactCache, key: str) -> "TuneResult | None":
    from ..kernels.autotune import TuneResult

    def _load(entry: CacheEntry) -> "TuneResult":
        return TuneResult.from_json(
            entry.payloads["tune.json"].decode("utf-8"))

    return cache.fetch(TUNE_ARTIFACT, key, _load)


def store_tune_result(cache: ArtifactCache, key: str,
                      result: "TuneResult") -> None:
    cache.insert(TUNE_ARTIFACT, key,
                 meta={"kernel": result.kernel, "backend": result.backend},
                 payloads={"tune.json": result.to_json().encode("utf-8")},
                 obj=result)


# -- kernel choices ----------------------------------------------------------


def kernel_choice_key(A: "CSCMatrix", *, backend: str,
                      concentration_threshold: float,
                      machine: "MachineModel | None" = None) -> str:
    return cache_key(CHOICE_ARTIFACT, {
        "pattern": pattern_fingerprint(A),
        "machine": machine_fingerprint(machine),
        "backend": str(backend),
        "concentration_threshold": float(concentration_threshold),
    })


def fetch_kernel_choice(cache: ArtifactCache,
                        key: str) -> "KernelChoice | None":
    from ..kernels.dispatch import KernelChoice

    def _load(entry: CacheEntry) -> "KernelChoice":
        return KernelChoice.from_json(
            entry.payloads["choice.json"].decode("utf-8"))

    return cache.fetch(CHOICE_ARTIFACT, key, _load)


def store_kernel_choice(cache: ArtifactCache, key: str,
                        choice: "KernelChoice") -> None:
    cache.insert(CHOICE_ARTIFACT, key,
                 meta={"kernel": choice.kernel, "backend": choice.backend},
                 payloads={"choice.json": choice.to_json().encode("utf-8")},
                 obj=choice)


# -- the blocked-CSR conversion ----------------------------------------------


def blocked_csr_key(A: "CSCMatrix", b_n: int, *, shard=None) -> str:
    """Key for ``A``'s width-``b_n`` blocked-CSR conversion (values pinned).

    *shard* scopes the key to one column stripe of *A* (a
    :class:`~repro.plan.ShardPlan` or ``(col_start, col_stop)`` pair):
    the stripe's conversion is keyed by the **whole** matrix fingerprint
    plus the stripe range, so sharded and unsharded runs of the same
    matrix populate distinct, non-colliding entries.
    """
    components = {
        "matrix": matrix_fingerprint(A),
        "b_n": int(b_n),
    }
    comp = shard_component(shard)
    if comp is not None:
        components["shard"] = comp
    return cache_key(BLOCKED_ARTIFACT, components)


def store_blocked_csr(cache: ArtifactCache, key: str, blocked: BlockedCSR,
                      *, b_n: int, shard=None) -> None:
    """Serialize *blocked* into four npy payloads (one checksum each)."""
    m, n = blocked.shape
    indptr = np.stack([blk.indptr for blk in blocked.blocks]) \
        if blocked.n_blocks else np.zeros((0, m + 1), dtype=np.int64)
    indices = np.concatenate([blk.indices for blk in blocked.blocks]) \
        if blocked.n_blocks else np.zeros(0, dtype=np.int64)
    data = np.concatenate([blk.data for blk in blocked.blocks]) \
        if blocked.n_blocks else np.zeros(0, dtype=np.float64)
    meta = {"m": int(m), "n": int(n), "b_n": int(b_n),
            "n_blocks": int(blocked.n_blocks), "nnz": int(blocked.nnz)}
    comp = shard_component(shard)
    if comp is not None:
        meta["shard"] = comp
    cache.insert(
        BLOCKED_ARTIFACT, key,
        meta=meta,
        payloads={
            "block_starts.npy": _array_to_npy_bytes(blocked.block_starts),
            "indptr.npy": _array_to_npy_bytes(indptr),
            "indices.npy": _array_to_npy_bytes(indices),
            "data.npy": _array_to_npy_bytes(data),
        },
        obj=blocked,
    )


def blocked_csr_from_arrays(shape: tuple[int, int], block_starts: np.ndarray,
                            indptr: np.ndarray, indices: np.ndarray,
                            data: np.ndarray) -> BlockedCSR:
    """Rebuild a :class:`BlockedCSR` from its flat serialized arrays.

    Blocks are zero-copy views into *indices*/*data*, so the same
    routine reconstructs entries loaded from disk **and** blocks mapped
    from shared memory in pool workers (no per-worker reconversion).
    """
    m, n = int(shape[0]), int(shape[1])
    block_starts = np.asarray(block_starts, dtype=np.int64)
    blocks = []
    offset = 0
    for b in range(block_starts.size - 1):
        width = int(block_starts[b + 1] - block_starts[b])
        ip = indptr[b]
        nnz_b = int(ip[-1])
        blocks.append(CSRMatrix((m, width), ip,
                                indices[offset:offset + nnz_b],
                                data[offset:offset + nnz_b], check=False))
        offset += nnz_b
    return BlockedCSR((m, n), block_starts, blocks, check=False)


def fetch_blocked_csr(cache: ArtifactCache, key: str,
                      expected_shape: tuple[int, int]) -> BlockedCSR | None:
    """Load a cached conversion; shape drift is treated as corruption."""

    def _load(entry: CacheEntry) -> BlockedCSR:
        meta = entry.meta
        shape = (int(meta["m"]), int(meta["n"]))
        if shape != tuple(expected_shape):
            raise ValueError(
                f"cached blocked CSR has shape {shape}, expected "
                f"{tuple(expected_shape)}"
            )
        block_starts = _npy_bytes_to_array(entry.payloads["block_starts.npy"])
        indptr = _npy_bytes_to_array(entry.payloads["indptr.npy"])
        indices = _npy_bytes_to_array(entry.payloads["indices.npy"])
        data = _npy_bytes_to_array(entry.payloads["data.npy"])
        blocked = blocked_csr_from_arrays(shape, block_starts, indptr,
                                          indices, data)
        if blocked.n_blocks != int(meta["n_blocks"]) or \
                blocked.nnz != int(meta["nnz"]):
            raise ValueError("cached blocked CSR does not match its manifest")
        return blocked

    return cache.fetch(BLOCKED_ARTIFACT, key, _load)


# -- JIT warm-up markers -----------------------------------------------------


def jit_warmup_key(*, kernel: str, backend: str, rng_kind: str,
                   machine: "MachineModel | None" = None) -> str:
    return cache_key(JIT_ARTIFACT, {
        "machine": machine_fingerprint(machine),
        "backend": str(backend),
        "kernel": str(kernel),
        "rng_kind": str(rng_kind),
    })


def fetch_jit_marker(cache: ArtifactCache, key: str) -> dict | None:
    def _load(entry: CacheEntry) -> dict:
        return dict(entry.meta)

    return cache.fetch(JIT_ARTIFACT, key, _load)


def store_jit_marker(cache: ArtifactCache, key: str, *, kernel: str,
                     backend: str, jit_compile_seconds: float) -> None:
    meta = {"kernel": str(kernel), "backend": str(backend),
            "jit_compile_seconds": float(jit_compile_seconds)}
    cache.insert(JIT_ARTIFACT, key, meta=meta, payloads={}, obj=meta)
