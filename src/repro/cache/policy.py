"""The cache policy: one home for the artifact-cache knobs.

A :class:`CachePolicy` is the sibling of
:class:`~repro.plan.PersistencePolicy`: a small frozen record validating
the cache configuration once (directory, size budget, readonly mode) so
``sketch()``, the :class:`~repro.plan.Planner`, the
:class:`~repro.plan.Runtime`, and the CLI all consume the same object
instead of re-threading three loose kwargs.

Unlike the persistence policy it is deliberately **not** serialized onto
the :class:`~repro.plan.SketchPlan`: caching is an execution-environment
concern — outputs are bit-identical with the cache on, off, hit, or
cold — so a plan's JSON record and digest must not change when a cache
directory appears on one host and not another.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..errors import ConfigError
from ..utils.validation import check_positive_int

__all__ = ["CACHE_DIR_ENV_VAR", "DEFAULT_MAX_BYTES", "CachePolicy"]

#: Environment variable consulted by :meth:`CachePolicy.from_env` when no
#: explicit cache directory is configured.
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"

#: Default on-disk budget before LRU eviction kicks in (256 MiB).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


@dataclass(frozen=True)
class CachePolicy:
    """Artifact-cache policy consumed by :class:`~repro.cache.ArtifactCache`.

    Attributes
    ----------
    cache_dir:
        Directory holding the content-addressed entries; ``None``
        disables the cache entirely (every lookup is a structural miss
        and nothing is written).
    max_bytes:
        On-disk budget.  After every store the least-recently-used
        entries are evicted until the total payload size fits.
    readonly:
        Serve hits from an existing cache but never write, evict, or
        repair it — for shared read-only caches (CI images, network
        mounts) where many processes hit one warmed directory.
    """

    cache_dir: str | None = None
    max_bytes: int = DEFAULT_MAX_BYTES
    readonly: bool = False

    def __post_init__(self) -> None:
        check_positive_int(self.max_bytes, "max_bytes")
        if self.readonly and self.cache_dir is None:
            raise ConfigError("readonly=True requires a cache directory")

    @property
    def enabled(self) -> bool:
        """Whether this policy caches anything at all."""
        return self.cache_dir is not None

    # -- construction helpers ------------------------------------------------

    @classmethod
    def disabled(cls) -> "CachePolicy":
        """The no-cache policy."""
        return cls()

    @classmethod
    def from_env(cls, *, max_bytes: int = DEFAULT_MAX_BYTES,
                 readonly: bool = False) -> "CachePolicy":
        """A policy from :data:`CACHE_DIR_ENV_VAR` (disabled when unset)."""
        directory = os.environ.get(CACHE_DIR_ENV_VAR, "").strip()
        if not directory:
            return cls.disabled()
        return cls(cache_dir=directory, max_bytes=max_bytes,
                   readonly=readonly)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "cache_dir": self.cache_dir,
            "max_bytes": int(self.max_bytes),
            "readonly": bool(self.readonly),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CachePolicy":
        return cls(
            cache_dir=data.get("cache_dir"),
            max_bytes=int(data.get("max_bytes", DEFAULT_MAX_BYTES)),
            readonly=bool(data.get("readonly", False)),
        )
