"""Content-addressed cache keys.

Every cached artifact is addressed by a SHA-256 digest over the
canonical JSON of its *key components* — never by filename, mtime, or
user-supplied label — so a stale or mislabeled entry is structurally
impossible: change any input that could change the artifact and the key
changes with it.

Two matrix fingerprints exist on purpose:

* :func:`pattern_fingerprint` hashes the sparsity **structure** only
  (shape + ``indptr`` + ``indices``).  Tuning results and kernel choices
  depend on where the nonzeros are, not on their values, so same-pattern
  matrices share those entries.
* :func:`matrix_fingerprint` additionally hashes the stored **values**.
  The blocked-CSR conversion carries ``A``'s data verbatim, so its key
  must pin the values too — a same-pattern, different-values matrix must
  never be served another matrix's blocks (wrong answers are the one
  failure mode a cache may not have).
"""

from __future__ import annotations

import hashlib
import platform
from typing import TYPE_CHECKING

import numpy as np

from ..utils.canonical import canonical_digest, canonical_json

if TYPE_CHECKING:  # pragma: no cover
    from ..model.machine import MachineModel
    from ..sparse.csc import CSCMatrix

__all__ = [
    "KEY_VERSION",
    "pattern_fingerprint",
    "matrix_fingerprint",
    "machine_fingerprint",
    "shard_component",
    "cache_key",
]

#: Bump to invalidate every existing cache entry (key-schema changes).
KEY_VERSION = 1


def _hash_arrays(header: dict, arrays: "list[np.ndarray]") -> str:
    h = hashlib.sha256()
    h.update(canonical_json(header).encode("utf-8"))
    for arr in arrays:
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def pattern_fingerprint(A: "CSCMatrix") -> str:
    """Digest of *A*'s sparsity structure (shape, indptr, indices)."""
    m, n = A.shape
    return _hash_arrays(
        {"kind": "csc-pattern", "m": int(m), "n": int(n), "nnz": int(A.nnz)},
        [A.indptr, A.indices],
    )


def matrix_fingerprint(A: "CSCMatrix") -> str:
    """Digest of *A*'s structure **and** stored values."""
    m, n = A.shape
    return _hash_arrays(
        {"kind": "csc-matrix", "m": int(m), "n": int(n), "nnz": int(A.nnz)},
        [A.indptr, A.indices, A.data],
    )


def machine_fingerprint(machine: "MachineModel | None" = None) -> dict:
    """JSON-ready identity of the machine profile an artifact is valid for.

    Combines the explicit :class:`~repro.model.MachineModel` parameters
    (they steer planning decisions) with the host's coarse hardware
    identity (measured tunings and JIT artifacts do not transfer across
    architectures).
    """
    record: dict = {
        "host_system": platform.system(),
        "host_machine": platform.machine(),
    }
    if machine is not None:
        record["model"] = {
            "name": machine.name,
            "cache_bytes": int(machine.cache_bytes),
            "peak_gflops": float(machine.peak_gflops),
            "bandwidth_gbs": float(machine.bandwidth_gbs),
            "h_base": float(machine.h_base),
            "random_access_penalty": float(machine.random_access_penalty),
            "cores": int(machine.cores),
            "bandwidth_saturation_threads":
                int(machine.bandwidth_saturation_threads),
        }
    return record


def shard_component(shard) -> dict | None:
    """JSON-ready key component identifying one column stripe.

    Shard-scoped artifacts (a per-shard blocked-CSR conversion) are
    keyed by the *whole* matrix fingerprint plus this component, so a
    stripe entry can never be confused with the full-matrix entry — nor
    with a different stripe of the same matrix.  Accepts a
    :class:`~repro.plan.ShardPlan` or a ``(col_start, col_stop)`` pair;
    ``None`` passes through (unsharded artifacts add no component).
    """
    if shard is None:
        return None
    if isinstance(shard, (tuple, list)):
        c0, c1 = shard
    else:
        c0, c1 = shard.col_start, shard.col_stop
    return {"col_start": int(c0), "col_stop": int(c1)}


def cache_key(artifact: str, components: dict) -> str:
    """The content-addressed key for one artifact.

    *components* must be a JSON-ready dict (fingerprint strings, plain
    scalars, nested dicts); the artifact class name and the key-schema
    version are mixed in so distinct artifact types can never collide
    and a schema bump invalidates everything at once.
    """
    return canonical_digest(
        {"artifact": str(artifact), "key_version": KEY_VERSION,
         "components": components}
    )
