"""Content-addressed plan & artifact cache for the fixed-``A`` hot path.

The serving pattern the related work targets — the *same* sparse ``A``
re-sketched over and over — pays the planner's heuristics, the
autotuner's measured trials, the blocked-CSR conversion, and JIT warm-up
on every call.  This package amortizes all of that per-``A`` setup:

* :class:`CachePolicy` — the knobs (directory, size budget, readonly),
  a sibling of :class:`~repro.plan.PersistencePolicy`;
* :class:`ArtifactCache` — the in-memory + on-disk store (atomic
  writes, per-file checksums, LRU eviction, ``cache_hit`` /
  ``cache_miss`` / ``cache_evicted`` bus events);
* :mod:`repro.cache.keys` — canonical content-addressed key recipes;
* :mod:`repro.cache.artifacts` — the typed artifact classes (autotune
  results, kernel choices, the blocked-CSR conversion, JIT markers).

Correctness contract: a cache hit must be **bit-identical** to a cold
run, and a damaged entry downgrades to a loud miss plus recompute —
never a wrong answer.
"""

from .keys import (
    KEY_VERSION,
    cache_key,
    machine_fingerprint,
    matrix_fingerprint,
    pattern_fingerprint,
)
from .policy import CACHE_DIR_ENV_VAR, DEFAULT_MAX_BYTES, CachePolicy
from .store import ArtifactCache, CacheEntry

__all__ = [
    "CACHE_DIR_ENV_VAR",
    "DEFAULT_MAX_BYTES",
    "KEY_VERSION",
    "CachePolicy",
    "ArtifactCache",
    "CacheEntry",
    "cache_key",
    "pattern_fingerprint",
    "matrix_fingerprint",
    "machine_fingerprint",
]
