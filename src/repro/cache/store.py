"""The content-addressed artifact store: in-memory + on-disk, never wrong.

An :class:`ArtifactCache` memoizes expensive per-``A`` setup work —
autotune results, kernel choices, the blocked-CSR conversion, JIT
warm-up markers — behind one API.  Entries live twice:

* **in memory** — deserialized objects keyed ``(artifact, key)``, so
  repeat ``sketch()`` calls inside one process pay a dict probe;
* **on disk** — one directory per entry, written with the same
  crash-safe protocol as :mod:`repro.persist.snapshot` (write + fsync
  every payload, write + fsync a manifest naming sizes and checksums,
  fsync, rename, fsync the parent), so concurrent readers only ever see
  absent or complete entries.

The failure contract is the inverse of the checkpoint subsystem's: a
cache is an *optimization*, so damage is never fatal.  A torn, truncated
or bit-flipped entry is detected by the manifest's per-file size and
checksum, reported loudly (one ``WARNING`` log line), quarantined
(deleted), and reported to the caller as a miss — the caller recomputes
and the cache heals itself.  A corrupt cache can cost time; it can never
change an answer.

Eviction is least-recently-used over entry directories: every disk hit
touches the entry's manifest mtime, and after each store the oldest
entries are dropped until the policy's ``max_bytes`` budget holds.
"""

from __future__ import annotations

import json
import logging
import os
import shutil
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from ..errors import CheckpointCorruptionError, ConfigError
from ..persist.checksum import checksum_bytes, default_algo
from .policy import CachePolicy

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.injector import FaultInjector
    from ..plan.events import EventBus

__all__ = ["CacheEntry", "ArtifactCache", "ENTRY_MANIFEST_NAME",
           "ENTRY_FORMAT_VERSION"]

ENTRY_MANIFEST_NAME = "MANIFEST.json"
ENTRY_FORMAT_VERSION = 1
_TMP_PREFIX = ".cache-tmp-"

_LOG = logging.getLogger("repro.cache")


@dataclass
class CacheEntry:
    """One verified on-disk entry: its metadata and raw payload bytes."""

    artifact: str
    key: str
    meta: dict = field(default_factory=dict)
    payloads: dict = field(default_factory=dict)  # name -> bytes


def _fsync_path(path: Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform dependent
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_file_sync(path: Path, data: bytes) -> None:
    with open(path, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())


class ArtifactCache:
    """Content-addressed cache over one :class:`~repro.cache.CachePolicy`.

    Parameters
    ----------
    policy:
        Must be enabled (have a directory); use :meth:`ensure` to map a
        possibly-disabled policy to an ``ArtifactCache | None``.
    bus:
        Optional :class:`~repro.plan.EventBus`; every lookup outcome is
        emitted as a ``cache_hit`` / ``cache_miss`` / ``cache_evicted``
        lifecycle event so the observability layer can count them.
    injector:
        Optional :class:`~repro.faults.FaultInjector` whose storage
        faults (``torn_write`` / ``bitflip``, pseudo-kernel ``"cache"``)
        are applied to just-finalized entries.  Testing only.
    """

    def __init__(self, policy: CachePolicy, *,
                 bus: "EventBus | None" = None,
                 injector: "FaultInjector | None" = None) -> None:
        if not isinstance(policy, CachePolicy):
            raise ConfigError(
                f"policy must be a CachePolicy, got {type(policy).__name__}"
            )
        if not policy.enabled:
            raise ConfigError(
                "ArtifactCache requires an enabled policy (a cache_dir); "
                "use ArtifactCache.ensure() to handle the disabled case"
            )
        self.policy = policy
        self.bus = bus
        self.injector = injector
        self.root = Path(policy.cache_dir)
        self._lock = threading.Lock()
        self._memo: dict[tuple[str, str], object] = {}
        self.hits: dict[str, int] = {}
        self.misses: dict[str, int] = {}
        self.evictions: dict[str, int] = {}
        self._put_seq = 0

    # -- construction --------------------------------------------------------

    @classmethod
    def ensure(cls, cache, *, bus: "EventBus | None" = None,
               injector: "FaultInjector | None" = None
               ) -> "ArtifactCache | None":
        """Normalize ``CachePolicy | ArtifactCache | None`` to a cache.

        A disabled policy (or ``None``) maps to ``None``; an existing
        cache is returned as-is (adopting *bus* if it has none yet, so
        planner-phase and runtime-phase events land on the same bus).
        """
        if cache is None:
            return None
        if isinstance(cache, ArtifactCache):
            if cache.bus is None and bus is not None:
                cache.bus = bus
            return cache
        if isinstance(cache, CachePolicy):
            if not cache.enabled:
                return None
            return cls(cache, bus=bus, injector=injector)
        raise ConfigError(
            f"cache must be a CachePolicy, ArtifactCache, or None, got "
            f"{type(cache).__name__}"
        )

    # -- counters / events ---------------------------------------------------

    def hit_total(self) -> int:
        with self._lock:
            return sum(self.hits.values())

    def miss_total(self) -> int:
        with self._lock:
            return sum(self.misses.values())

    def eviction_total(self) -> int:
        with self._lock:
            return sum(self.evictions.values())

    def _count(self, table: dict, artifact: str) -> None:
        with self._lock:
            table[artifact] = table.get(artifact, 0) + 1

    def _emit(self, name: str, **payload) -> None:
        if self.bus is None:
            return
        self.bus.emit(name, **payload)

    def _hit(self, artifact: str, key: str, source: str) -> None:
        from ..plan.events import CACHE_HIT

        self._count(self.hits, artifact)
        self._emit(CACHE_HIT, artifact=artifact, key=key, source=source)

    def _miss(self, artifact: str, key: str, reason: str) -> None:
        from ..plan.events import CACHE_MISS

        self._count(self.misses, artifact)
        self._emit(CACHE_MISS, artifact=artifact, key=key, reason=reason)

    def _evicted(self, artifact: str, key: str, nbytes: int) -> None:
        from ..plan.events import CACHE_EVICTED

        self._count(self.evictions, artifact)
        self._emit(CACHE_EVICTED, artifact=artifact, key=key,
                   nbytes=int(nbytes))

    # -- paths ---------------------------------------------------------------

    def _entry_dir(self, artifact: str, key: str) -> Path:
        return self.root / artifact / key

    def _iter_entries(self):
        """Yield ``(artifact, key, path, nbytes, mtime)`` for every entry."""
        if not self.root.is_dir():
            return
        for artifact_dir in sorted(self.root.iterdir()):
            if not artifact_dir.is_dir() or \
                    artifact_dir.name.startswith(_TMP_PREFIX):
                continue
            for entry in sorted(artifact_dir.iterdir()):
                if not entry.is_dir() or entry.name.startswith(_TMP_PREFIX):
                    continue
                manifest = entry / ENTRY_MANIFEST_NAME
                try:
                    mtime = manifest.stat().st_mtime
                except OSError:
                    mtime = 0.0
                nbytes = 0
                for f in entry.iterdir():
                    try:
                        nbytes += f.stat().st_size
                    except OSError:  # pragma: no cover - racing deletion
                        pass
                yield artifact_dir.name, entry.name, entry, nbytes, mtime

    def _quarantine(self, path: Path, why: str) -> None:
        """Loudly drop a damaged entry (kept untouched in readonly mode)."""
        _LOG.warning(
            "cache entry %s is corrupt (%s); %s and recomputing",
            path, why,
            "leaving it in place (readonly)" if self.policy.readonly
            else "removing it",
        )
        if not self.policy.readonly:
            shutil.rmtree(path, ignore_errors=True)

    # -- read path -----------------------------------------------------------

    def _verify_entry(self, artifact: str, key: str,
                      path: Path) -> tuple[CacheEntry | None, str]:
        """Load and checksum one entry; ``(entry, "")`` or ``(None, why)``."""
        manifest_path = path / ENTRY_MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            return None, f"unreadable manifest: {exc}"
        if manifest.get("version") != ENTRY_FORMAT_VERSION:
            return None, f"unknown entry version {manifest.get('version')!r}"
        if manifest.get("artifact") != artifact or manifest.get("key") != key:
            return None, "manifest identity does not match its location"
        files = manifest.get("files")
        meta = manifest.get("meta")
        if not isinstance(files, dict) or not isinstance(meta, dict):
            return None, "malformed manifest record"
        payloads: dict[str, bytes] = {}
        for name, record in files.items():
            try:
                data = (path / name).read_bytes()
            except OSError as exc:
                return None, f"unreadable payload {name!r}: {exc}"
            if len(data) != int(record.get("nbytes", -1)):
                return None, (
                    f"payload {name!r} is {len(data)} bytes, manifest says "
                    f"{record.get('nbytes')} (torn write)"
                )
            try:
                digest = checksum_bytes(data, record.get("algo", "crc32"))
            except CheckpointCorruptionError as exc:
                return None, str(exc)
            if digest != record.get("checksum"):
                return None, f"payload {name!r} failed its checksum (bitflip)"
            payloads[name] = data
        return CacheEntry(artifact=artifact, key=key, meta=meta,
                          payloads=payloads), ""

    def fetch(self, artifact: str, key: str,
              deserialize: "Callable[[CacheEntry], object] | None" = None):
        """Look up one artifact; ``None`` on any kind of miss.

        On a disk hit the entry is verified (sizes + checksums), handed
        to *deserialize* (when given), memoized, and its recency
        refreshed for LRU.  Corruption anywhere — torn payload, failed
        checksum, a *deserialize* that raises — downgrades to a loud
        miss with the entry quarantined, never an exception.
        """
        mkey = (str(artifact), str(key))
        with self._lock:
            obj = self._memo.get(mkey)
        if obj is not None:
            self._hit(artifact, key, source="memory")
            return obj
        path = self._entry_dir(artifact, key)
        if not (path / ENTRY_MANIFEST_NAME).exists():
            self._miss(artifact, key, reason="absent")
            return None
        entry, why = self._verify_entry(artifact, key, path)
        if entry is None:
            self._quarantine(path, why)
            self._miss(artifact, key, reason="corrupt")
            return None
        if deserialize is not None:
            try:
                obj = deserialize(entry)
            except Exception as exc:  # noqa: BLE001 - cache must not raise
                self._quarantine(path, f"payload failed to deserialize: {exc}")
                self._miss(artifact, key, reason="corrupt")
                return None
        else:
            obj = entry
        if not self.policy.readonly:
            try:
                os.utime(path / ENTRY_MANIFEST_NAME)
            except OSError:  # pragma: no cover - racing deletion
                pass
        with self._lock:
            self._memo[mkey] = obj
        self._hit(artifact, key, source="disk")
        return obj

    # -- write path ----------------------------------------------------------

    def insert(self, artifact: str, key: str, *, meta: dict | None = None,
               payloads: dict | None = None, obj: object = None) -> bool:
        """Store one artifact (atomic, durable); returns whether it wrote.

        *payloads* maps file names to bytes; *meta* is a JSON-ready dict
        stored in the manifest; *obj* (default: the resulting
        :class:`CacheEntry`) is what future same-process :meth:`fetch`
        calls return from memory.  In readonly mode the disk write is
        skipped but the in-memory memoization still happens.
        """
        artifact, key = str(artifact), str(key)
        meta = dict(meta or {})
        payloads = dict(payloads or {})
        for name in payloads:
            if "/" in name or name.startswith(".") or \
                    name == ENTRY_MANIFEST_NAME:
                raise ConfigError(f"invalid payload name {name!r}")
        entry = CacheEntry(artifact=artifact, key=key, meta=meta,
                           payloads=payloads)
        with self._lock:
            self._memo[(artifact, key)] = obj if obj is not None else entry
            self._put_seq += 1
            seq = self._put_seq
        if self.policy.readonly:
            return False

        final = self._entry_dir(artifact, key)
        final.parent.mkdir(parents=True, exist_ok=True)
        tmp = final.parent / f"{_TMP_PREFIX}{key}-{os.getpid()}"
        shutil.rmtree(tmp, ignore_errors=True)
        tmp.mkdir()
        algo = default_algo()
        files = {}
        try:
            for name, data in payloads.items():
                _write_file_sync(tmp / name, data)
                files[name] = {"nbytes": len(data),
                               "checksum": checksum_bytes(data, algo),
                               "algo": algo}
            manifest = {"version": ENTRY_FORMAT_VERSION, "artifact": artifact,
                        "key": key, "meta": meta, "files": files,
                        "created": time.time()}
            _write_file_sync(tmp / ENTRY_MANIFEST_NAME,
                             json.dumps(manifest, indent=1,
                                        sort_keys=True).encode("utf-8"))
            _fsync_path(tmp)
            if final.exists():
                shutil.rmtree(final, ignore_errors=True)
            os.rename(tmp, final)
            _fsync_path(final.parent)
        except OSError as exc:  # pragma: no cover - disk-full etc.
            _LOG.warning("cache store for %s/%s failed: %s", artifact,
                         key[:12], exc)
            shutil.rmtree(tmp, ignore_errors=True)
            return False
        self._apply_faults(final, seq)
        self._evict_lru()
        return True

    def _apply_faults(self, entry_dir: Path, seq: int) -> None:
        """Damage a just-finalized entry per the injector's storage faults."""
        if self.injector is None:
            return
        kinds = self.injector.cache_faults(seq)
        if not kinds:
            return
        targets = sorted(p for p in entry_dir.iterdir()
                         if p.name != ENTRY_MANIFEST_NAME) \
            or [entry_dir / ENTRY_MANIFEST_NAME]
        victim = targets[0]
        data = bytearray(victim.read_bytes())
        for kind in kinds:
            if kind == "torn_write":
                data = data[:max(1, len(data) // 2)]
            elif kind == "bitflip" and data:
                data[len(data) // 2] ^= 0x40
        victim.write_bytes(bytes(data))

    def _evict_lru(self) -> None:
        entries = list(self._iter_entries())
        total = sum(e[3] for e in entries)
        if total <= self.policy.max_bytes:
            return
        # Oldest manifest mtime first; the just-written entry is newest
        # and therefore evicted last.
        entries.sort(key=lambda e: e[4])
        for artifact, key, path, nbytes, _mtime in entries:
            if total <= self.policy.max_bytes:
                break
            shutil.rmtree(path, ignore_errors=True)
            with self._lock:
                self._memo.pop((artifact, key), None)
            total -= nbytes
            self._evicted(artifact, key, nbytes)

    # -- maintenance ---------------------------------------------------------

    def _entry_shard(self, path: Path) -> dict | None:
        """The ``shard`` meta component of one entry, if it carries one.

        Best-effort manifest peek for accounting only: unreadable or
        malformed manifests simply count as unsharded here — the read
        path's full verification is the integrity authority.
        """
        try:
            manifest = json.loads(
                (path / ENTRY_MANIFEST_NAME).read_text(encoding="utf-8"))
            shard = manifest.get("meta", {}).get("shard")
        except (OSError, ValueError, AttributeError):
            return None
        return shard if isinstance(shard, dict) else None

    def stats(self) -> dict:
        """Scorecard: entry counts and bytes per artifact plus counters.

        Shard-scoped entries (artifacts whose meta carries a ``shard``
        column-range component, e.g. per-shard blocked-CSR conversions)
        are reported distinctly — ``shard_entries`` / ``shard_bytes``
        per artifact and in the totals — so a cache serving a
        partitioned workload shows how much of it is stripe-scoped
        rather than whole-matrix.
        """
        per: dict[str, dict] = {}
        entries = 0
        total = 0
        shard_entries = 0
        shard_bytes = 0
        for artifact, _key, path, nbytes, _mtime in self._iter_entries():
            record = per.setdefault(
                artifact,
                {"entries": 0, "bytes": 0,
                 "shard_entries": 0, "shard_bytes": 0})
            record["entries"] += 1
            record["bytes"] += nbytes
            entries += 1
            total += nbytes
            if self._entry_shard(path) is not None:
                record["shard_entries"] += 1
                record["shard_bytes"] += nbytes
                shard_entries += 1
                shard_bytes += nbytes
        with self._lock:
            return {
                "cache_dir": str(self.root),
                "entries": entries,
                "total_bytes": total,
                "shard_entries": shard_entries,
                "shard_bytes": shard_bytes,
                "max_bytes": int(self.policy.max_bytes),
                "readonly": bool(self.policy.readonly),
                "artifacts": per,
                "hits": sum(self.hits.values()),
                "misses": sum(self.misses.values()),
                "evictions": sum(self.evictions.values()),
            }

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        if self.policy.readonly:
            raise ConfigError("cannot clear a readonly cache")
        removed = 0
        for _artifact, _key, path, _nbytes, _mtime in self._iter_entries():
            shutil.rmtree(path, ignore_errors=True)
            removed += 1
        with self._lock:
            self._memo.clear()
        return removed

    def verify(self) -> dict:
        """Re-checksum every entry; quarantine the damaged ones.

        Returns ``{"checked": n, "ok": n, "corrupt": [relative paths],
        "shard_checked": n}`` — the last counts the shard-scoped entries
        (per-shard blocked-CSR conversions) covered by the sweep, so a
        partitioned workload's stripe artifacts are visibly audited.
        Unlike :meth:`fetch`, verification touches no counters and emits
        no events — it is an offline audit, not a lookup.
        """
        checked = ok = shard_checked = 0
        corrupt: list[str] = []
        for artifact, key, path, _nbytes, _mtime in self._iter_entries():
            checked += 1
            entry, why = self._verify_entry(artifact, key, path)
            if entry is not None and \
                    isinstance(entry.meta.get("shard"), dict):
                shard_checked += 1
            if entry is None:
                corrupt.append(f"{artifact}/{key}")
                self._quarantine(path, why)
                with self._lock:
                    self._memo.pop((artifact, key), None)
            else:
                ok += 1
        return {"checked": checked, "ok": ok, "corrupt": corrupt,
                "shard_checked": shard_checked}
