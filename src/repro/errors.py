"""Exception hierarchy for :mod:`repro`.

Every error raised intentionally by this library derives from
:class:`ReproError`, so downstream users can catch library failures with a
single ``except`` clause while letting genuine programming errors
(``TypeError`` from NumPy, etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ShapeError(ReproError, ValueError):
    """An operand's dimensions are inconsistent with the requested operation."""


class FormatError(ReproError, ValueError):
    """A sparse-matrix data structure violates its format invariants.

    Raised, for example, when CSC column pointers are not monotone, when row
    indices fall outside ``[0, m)``, or when a blocked-CSR structure's block
    boundaries do not tile the column range.
    """


class ConfigError(ReproError, ValueError):
    """A configuration object (block sizes, distribution name, machine
    parameters, solver tolerances) is invalid or internally inconsistent."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to reach its tolerance within the allowed
    iteration budget and the caller asked for strict behaviour."""


class SingularMatrixError(ReproError, RuntimeError):
    """A factorization encountered (numerical) rank deficiency that the
    selected algorithm cannot handle (e.g. SAP-QR on a singular sketch;
    the paper prescribes SAP-SVD for that regime)."""
