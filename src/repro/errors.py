"""Exception hierarchy for :mod:`repro`.

Every error raised intentionally by this library derives from
:class:`ReproError`, so downstream users can catch library failures with a
single ``except`` clause while letting genuine programming errors
(``TypeError`` from NumPy, etc.) propagate.

Hierarchy::

    ReproError
    ├── ShapeError (ValueError)           operand dimensions inconsistent
    ├── FormatError (ValueError)          sparse structure invariant broken
    ├── ConfigError (ValueError)          invalid configuration / parameters
    ├── ConvergenceError (RuntimeError)   iterative solver missed tolerance
    ├── SingularMatrixError (RuntimeError) factorization hit rank deficiency
    ├── SketchQualityError (RuntimeError) sketch failed a numerical guardrail
    ├── TaskFailedError (RuntimeError)    a block task failed irrecoverably
    │   ├── TaskTimeoutError              task exceeded its deadline
    │   └── RetryExhaustedError           task failed on every allowed attempt
    ├── CheckpointError (RuntimeError)    durable snapshot could not be used
    │   ├── CheckpointCorruptionError     torn write / checksum mismatch
    │   └── CheckpointMismatchError       snapshot fingerprint drifted
    └── ServeError (RuntimeError)         sketch-service request failures
        ├── RequestShedError              admission control rejected the request
        └── RequestDeadlineError          the request's deadline expired

The three task-level errors are raised by the resilient parallel executor
(:mod:`repro.parallel.executor`); :class:`SketchQualityError` is raised by
its numerical guardrails (policy ``"raise"``) and by the end-of-run
distortion spot-check in :func:`repro.core.sketch`.  The checkpoint errors
are raised by the durable snapshot subsystem (:mod:`repro.persist`).
Injected faults from :mod:`repro.faults` deliberately do **not** derive
from :class:`ReproError` — they simulate arbitrary third-party crashes the
executor must survive.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ShapeError(ReproError, ValueError):
    """An operand's dimensions are inconsistent with the requested operation."""


class FormatError(ReproError, ValueError):
    """A sparse-matrix data structure violates its format invariants.

    Raised, for example, when CSC column pointers are not monotone, when row
    indices fall outside ``[0, m)``, or when a blocked-CSR structure's block
    boundaries do not tile the column range.
    """


class ConfigError(ReproError, ValueError):
    """A configuration object (block sizes, distribution name, machine
    parameters, solver tolerances) is invalid or internally inconsistent."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to reach its tolerance within the allowed
    iteration budget and the caller asked for strict behaviour."""


class SingularMatrixError(ReproError, RuntimeError):
    """A factorization encountered (numerical) rank deficiency that the
    selected algorithm cannot handle (e.g. SAP-QR on a singular sketch;
    the paper prescribes SAP-SVD for that regime)."""


class SketchQualityError(ReproError, RuntimeError):
    """A computed sketch failed a numerical guardrail.

    Raised when a block contains NaN/Inf or exceeds the magnitude bound
    implied by the entry distribution's moments (guardrail policy
    ``"raise"``), or when the end-of-run effective-distortion spot-check
    finds the sketch is not a usable subspace embedding even after an
    automatic re-sketch at larger ``d``.
    """


class TaskFailedError(ReproError, RuntimeError):
    """A block task of the parallel sketching executor failed and could not
    be recovered by the configured retry/degradation policy."""


class TaskTimeoutError(TaskFailedError):
    """A block task exceeded its per-task deadline and straggler
    re-execution was disabled (or itself failed)."""


class RetryExhaustedError(TaskFailedError):
    """A block task failed on its initial attempt and on every allowed
    retry (including any kernel-degradation attempt)."""


class CheckpointError(ReproError, RuntimeError):
    """A durable sketch checkpoint could not be written, found, or loaded."""


class CheckpointCorruptionError(CheckpointError):
    """A snapshot on disk is damaged: a torn (partial) write, a missing or
    truncated block file, or a content checksum that does not match the
    manifest.  Recovery falls back to the previous verified-good snapshot;
    this error is raised when no snapshot survives verification."""


class CheckpointMismatchError(CheckpointError):
    """A snapshot's config fingerprint disagrees with the resuming run
    (different ``b_d``/``b_n``, kernel, backend, RNG family, seed, or
    distribution).  Resuming anyway would silently produce a sketch that
    matches neither configuration, so the mismatch is always fatal."""


class ServeError(ReproError, RuntimeError):
    """A sketch-service request failed for a service-level reason
    (admission control, deadline, drain) rather than a compute fault.

    The serving daemon (:mod:`repro.serve`) maps these onto HTTP status
    codes; embedded callers of :class:`repro.serve.SketchService` catch
    them directly."""


class RequestShedError(ServeError):
    """Admission control rejected the request: the bounded queue was
    full, the circuit breaker was open, or the daemon was draining.

    Attributes
    ----------
    reason:
        ``"queue_full"``, ``"breaker_open"``, or ``"draining"``.
    retry_after:
        Suggested client back-off in seconds, derived from the current
        queue depth and the recent service-time estimate (or from the
        breaker's remaining recovery window).
    """

    def __init__(self, message: str, *, reason: str,
                 retry_after: float) -> None:
        super().__init__(message)
        self.reason = reason
        self.retry_after = float(retry_after)


class RequestDeadlineError(ServeError):
    """The request's deadline expired — while queued (never started) or
    mid-execution (the run was cancelled; claimed-but-uncommitted tiles
    were abandoned, never served).

    Attributes
    ----------
    phase:
        ``"queue"`` (expired before execution started) or
        ``"execute"`` (cancelled mid-run).
    """

    def __init__(self, message: str, *, phase: str) -> None:
        super().__init__(message)
        self.phase = phase
