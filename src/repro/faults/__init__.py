"""Deterministic fault injection for the blocked sketching pipeline.

The chaos-engineering half of the resilience layer (the recovery half
lives in :mod:`repro.parallel`): seedable, coordinate-keyed fault plans
(:class:`FaultPlan` / :class:`FaultSpec`) and the thread-safe runtime that
fires them (:class:`FaultInjector`), injected into the executor through a
hook interface that costs nothing when disabled.  Supported faults:
task raises, NaN/Inf block corruption, simulated stragglers, corrupted
RNG state (:class:`CorruptingRNG`), storage faults against the
durable-checkpoint path (``torn_write`` crashes raising
:class:`InjectedCrashError`, colluding ``bitflip`` corruption), and
process-pool faults against the supervised worker fleet
(``kill_worker`` / ``hang_worker`` / ``corrupt_tile``).  See
``docs/robustness.md`` for the fault model and recovery semantics.
"""

from .injector import CorruptingRNG, FaultEvent, FaultInjector
from .plan import (
    FAULT_KINDS,
    PROCESS_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedCrashError,
    InjectedFaultError,
    task_hash,
)

__all__ = [
    "CorruptingRNG",
    "FaultEvent",
    "FaultInjector",
    "FAULT_KINDS",
    "PROCESS_FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrashError",
    "InjectedFaultError",
    "task_hash",
]
