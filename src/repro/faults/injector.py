"""Runtime fault injection driven by a :class:`~repro.faults.plan.FaultPlan`.

The :class:`FaultInjector` is the stateful half of the fault framework: it
tracks per-``(spec, task)`` hit counts (thread-safely, so parallel workers
observe the planned ``max_hits`` exactly) and records every fault it
actually fired as a :class:`FaultEvent`, letting tests assert that a run's
:class:`~repro.parallel.resilience.RunHealth` report matches the injected
faults one-for-one.

The execution engine talks to the injector through three hooks, all no-ops
when no fault matches:

* :meth:`FaultInjector.on_task_start` — may raise
  :class:`~repro.faults.plan.InjectedFaultError` or sleep (straggler);
* :meth:`FaultInjector.rng_for` — may wrap the task's generator in a
  :class:`CorruptingRNG` (corrupted checkpoint state);
* :meth:`FaultInjector.on_block_computed` — may poison the finished block
  with NaN/Inf.

Since the plan/compile/execute refactor these hooks are not called
directly by the engine: :meth:`FaultInjector.register` subscribes them to
the ``task_start`` / ``rng_request`` / ``block_computed`` events on a
:class:`~repro.plan.EventBus`, and the engine simply emits.  Anything
else that wants to perturb or observe per-attempt execution can
subscribe to the same events without the engine changing.

The snapshot writer (:mod:`repro.persist.snapshot`) adds a fourth hook,
:meth:`FaultInjector.snapshot_faults`, which reports which storage faults
(``torn_write`` / ``bitflip``) to apply to a just-finalized snapshot; the
task coordinate there is ``(snapshot seq, block index)`` rather than a
kernel block offset.

Production code paths pass ``injector=None`` and pay a single ``is None``
check per run — the framework costs ~zero when disabled.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from ..rng.base import SketchingRNG
from .plan import FaultPlan, FaultSpec, InjectedFaultError

__all__ = ["FaultEvent", "FaultInjector", "CorruptingRNG"]


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired during a run."""

    kind: str
    task: tuple[int, int]
    attempt: int
    context: str      # 'parallel' (pool worker) or 'serial' (driver thread)
    kernel: str


class CorruptingRNG(SketchingRNG):
    """Wraps a :class:`~repro.rng.base.SketchingRNG`, scaling every sample.

    Models a corrupted RNG checkpoint: the generator keeps producing
    finite numbers, but wildly out of distribution — the failure mode the
    *magnitude* guardrail (not the NaN check) exists to catch.

    A proper :class:`~repro.rng.base.SketchingRNG` subclass (mirroring the
    streaming layer's ``_OffsetRNG`` view): every derived entry point —
    :meth:`~repro.rng.base.SketchingRNG.column_block`,
    :meth:`~repro.rng.base.SketchingRNG.materialize` — routes through the
    corrupted :meth:`column_block_batch`, and the identity / counter
    properties forward to the wrapped generator (setters included), so the
    corruption composes with offset views in either nesting order and run
    accounting stays truthful.
    """

    def __init__(self, inner: SketchingRNG, magnitude: float) -> None:
        # Deliberately skip SketchingRNG.__init__: state lives in `inner`.
        self._inner = inner
        self._magnitude = float(magnitude)

    def _bits_block(self, r, d1, js):  # pragma: no cover - not reached
        raise NotImplementedError

    def column_block_batch(self, r: int, d1: int, js: np.ndarray) -> np.ndarray:
        return self._inner.column_block_batch(r, d1, js) * self._magnitude

    @property
    def blocking_independent(self) -> bool:
        return self._inner.blocking_independent

    @property
    def dist(self):
        return self._inner.dist

    @property
    def post_scale(self) -> float:
        return self._inner.post_scale

    @property
    def samples_generated(self) -> int:
        return self._inner.samples_generated

    @samples_generated.setter
    def samples_generated(self, value: int) -> None:
        self._inner.samples_generated = value

    @property
    def family(self) -> str:
        return self._inner.family

    @property
    def seed(self) -> int:
        return self._inner.seed

    @seed.setter
    def seed(self, value: int) -> None:
        self._inner.seed = value


class FaultInjector:
    """Stateful runtime for a :class:`FaultPlan`.

    Thread-safe: hit counters and the event log are lock-protected, so a
    plan's ``max_hits`` budget is honoured exactly even when many workers
    race into the same task's fault (e.g. a straggler's original attempt
    and its re-execution).
    """

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan if plan is not None else FaultPlan.empty()
        self._lock = threading.Lock()
        self._hits: dict[tuple[object, tuple[int, int]], int] = {}
        self.events: list[FaultEvent] = []

    # -- internals --------------------------------------------------------

    def _claim(self, spec_id: object, task: tuple[int, int],
               spec: FaultSpec) -> bool:
        """Atomically consume one firing of *spec* at *task* if any remain."""
        key = (spec_id, tuple(task))
        with self._lock:
            count = self._hits.get(key, 0)
            if spec.max_hits is not None and count >= spec.max_hits:
                return False
            self._hits[key] = count + 1
            return True

    def _record(self, spec: FaultSpec, task: tuple[int, int], attempt: int,
                context: str, kernel: str) -> None:
        event = FaultEvent(kind=spec.kind, task=tuple(task), attempt=attempt,
                           context=context, kernel=kernel)
        with self._lock:
            self.events.append(event)

    def _fire(self, kinds: tuple[str, ...], task: tuple[int, int],
              kernel: str, context: str, attempt: int):
        """Yield specs of the given *kinds* that claim a firing now."""
        for spec_id, spec in self.plan.faults_for(task, kernel, context):
            if spec.kind in kinds and self._claim(spec_id, task, spec):
                self._record(spec, task, attempt, context, kernel)
                yield spec

    # -- executor hooks ---------------------------------------------------

    def on_task_start(self, task: tuple[int, int], kernel: str,
                      context: str, attempt: int) -> None:
        """Fire ``stall`` (sleep) then ``raise`` faults for this attempt."""
        for spec in self._fire(("stall",), task, kernel, context, attempt):
            time.sleep(spec.sleep_seconds)
        for spec in self._fire(("raise",), task, kernel, context, attempt):
            raise InjectedFaultError(
                f"injected fault at task (i={task[0]}, j={task[1]}), "
                f"attempt {attempt} [{context}/{kernel}]"
            )

    def rng_for(self, task: tuple[int, int], kernel: str, context: str,
                attempt: int, rng):
        """Return *rng* or a :class:`CorruptingRNG` if an ``rng`` fault fires."""
        for spec in self._fire(("rng",), task, kernel, context, attempt):
            return CorruptingRNG(rng, spec.magnitude)
        return rng

    def on_block_computed(self, task: tuple[int, int], kernel: str,
                          context: str, attempt: int,
                          block: np.ndarray) -> None:
        """Fire ``nan``/``inf`` corruption on the finished block (in place)."""
        for spec in self._fire(("nan", "inf"), task, kernel, context, attempt):
            if block.size:
                block.flat[block.size // 2] = (np.nan if spec.kind == "nan"
                                               else np.inf)

    # -- event-bus wiring -------------------------------------------------

    def register(self, bus) -> None:
        """Subscribe this injector's hooks to *bus* (idempotent per bus).

        Adapts the three executor hooks to the
        :data:`~repro.plan.events.FAULT_HOOK_EVENTS`:

        * ``task_start`` → :meth:`on_task_start` (may sleep or raise);
        * ``rng_request`` → :meth:`rng_for`, writing the (possibly
          corrupting) generator back into the event's ``rng`` slot;
        * ``block_computed`` → :meth:`on_block_computed` (in-place
          block poisoning).

        The snapshot-storage hook stays out of band: snapshots are
        written by the checkpoint manager, which takes the injector
        directly (see :class:`repro.persist.CheckpointManager`).
        """
        from ..plan.events import BLOCK_COMPUTED, RNG_REQUEST, TASK_START

        with self._lock:
            registered = getattr(self, "_registered_buses", None)
            if registered is None:
                registered = self._registered_buses = set()
            if id(bus) in registered:
                return
            registered.add(id(bus))

        def _on_task_start(event) -> None:
            self.on_task_start(event["task"], event["kernel"],
                               event["context"], event["attempt"])

        def _on_rng_request(event) -> None:
            event["rng"] = self.rng_for(event["task"], event["kernel"],
                                        event["context"], event["attempt"],
                                        event["rng"])

        def _on_block_computed(event) -> None:
            self.on_block_computed(event["task"], event["kernel"],
                                   event["context"], event["attempt"],
                                   event["block"])

        bus.subscribe(TASK_START, _on_task_start)
        bus.subscribe(RNG_REQUEST, _on_rng_request)
        bus.subscribe(BLOCK_COMPUTED, _on_block_computed)

    def process_faults(self, task: tuple[int, int], kernel: str,
                       attempt: int) -> list[dict]:
        """Process-pool faults to ship to the worker assigned *task*.

        Called by the :mod:`repro.parallel.procpool` supervisor at
        *dispatch* time — hits are claimed here, in the supervisor
        process, so a spec's ``max_hits`` budget is honoured exactly
        across requeues and respawned workers (worker processes never
        share this injector's counters).  Each returned dict is a
        self-contained instruction the worker applies mechanically:
        ``{"kind": ..., "sleep_seconds": ...}``.  The context is
        ``"process"``; ``scope="parallel"`` specs do not match it
        (pool workers are processes, not threads).
        """
        from .plan import PROCESS_FAULT_KINDS

        return [{"kind": spec.kind,
                 "sleep_seconds": float(spec.sleep_seconds)}
                for spec in self._fire(PROCESS_FAULT_KINDS, tuple(task),
                                       kernel, "process", attempt)]

    def snapshot_faults(self, seq: int, block_index: int) -> list[str]:
        """Storage-fault kinds to apply to block *block_index* of snapshot *seq*.

        Called by :func:`repro.persist.snapshot.write_snapshot` after a
        snapshot directory is finalized.  The task coordinate is
        ``(seq, block_index)`` — specs targeting ``task=None`` match every
        block of every snapshot; kernel/scope filters use the pseudo
        kernel ``"snapshot"`` and context ``"persist"``.
        """
        return [spec.kind
                for spec in self._fire(("torn_write", "bitflip"),
                                       (int(seq), int(block_index)),
                                       "snapshot", "persist", 1)]

    def cache_faults(self, seq: int) -> list[str]:
        """Storage-fault kinds to apply to the *seq*-th cache entry written.

        Called by :class:`repro.cache.ArtifactCache` after an entry
        directory is finalized — the same out-of-band damage model as
        :meth:`snapshot_faults`, addressed by store order.  The task
        coordinate is ``(seq, 0)``; kernel/scope filters use the pseudo
        kernel ``"cache"`` and context ``"cache"``.
        """
        return [spec.kind
                for spec in self._fire(("torn_write", "bitflip"),
                                       (int(seq), 0), "cache", "cache", 1)]

    # -- inspection -------------------------------------------------------

    @property
    def fault_count(self) -> int:
        """Total faults fired so far."""
        with self._lock:
            return len(self.events)

    def events_by_kind(self) -> dict[str, int]:
        """Histogram of fired fault kinds."""
        out: dict[str, int] = {}
        with self._lock:
            for e in self.events:
                out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def reset(self) -> None:
        """Forget all hits and events (reuse the plan for a fresh run)."""
        with self._lock:
            self._hits.clear()
            self.events.clear()
