"""Deterministic fault planning: what goes wrong, where, and how often.

A :class:`FaultPlan` is a pure description of the faults to inject into a
blocked sketching run — it holds no runtime state, so the same plan can be
handed to many :class:`~repro.faults.injector.FaultInjector` instances and
every run observes the *same* faults at the same block coordinates.  Plans
are built either from explicit :class:`FaultSpec` entries (tests that
target one block) or from :meth:`FaultPlan.random`, which decides per task
coordinate with a splitmix64-style hash of ``(seed, i, j)`` — deterministic
across runs, thread counts, and partition strategies, exactly like the
sketch entries themselves (Section IV-C's counter-based RNG argument
applied to chaos engineering).

Fault kinds
-----------
``raise``
    The task raises :class:`InjectedFaultError` before computing.
``nan`` / ``inf``
    The computed block is poisoned with a NaN / Inf entry after the kernel
    finishes (models a corrupted write or bad FMA result).
``stall``
    The task sleeps for :attr:`FaultSpec.sleep_seconds` before computing —
    a simulated straggler for deadline / re-execution testing.
``rng``
    The task's generator is wrapped so every sample is scaled by
    :attr:`FaultSpec.magnitude` (models corrupted RNG checkpoint state;
    caught by the magnitude guardrail, not the finiteness check).
``torn_write``
    Targets the *snapshot path* (:mod:`repro.persist.snapshot`), not a
    kernel task: a just-finalized snapshot block file is truncated and
    :class:`InjectedCrashError` is raised — a crash that beat the data to
    disk while the manifest survived.  The task coordinate is
    ``(snapshot seq, block index)``.  Loaders must reject the torn
    snapshot (manifest size/checksum mismatch) and fall back to the
    previous verified-good one — never resume from it.
``bitflip``
    Also targets the snapshot path: one byte of a finalized block file is
    flipped *and the manifest checksum is patched to collude* — modelling
    corruption that happened before checksumming (bad DIMM, buggy
    writer).  Checksum verification passes by construction; only the
    replay audit of :mod:`repro.persist.verify` can catch it.
``kill_worker``
    Targets the *process pool* (:mod:`repro.parallel.procpool`): the
    worker process assigned the task SIGKILLs itself before computing —
    a real process death with no cleanup, exactly like an OOM kill.  The
    supervisor must detect the dead pipe, requeue the worker's claimed
    tasks, and respawn a warm replacement.
``hang_worker``
    Also targets the process pool: the worker sleeps for
    :attr:`FaultSpec.sleep_seconds` *without heartbeating* before
    computing — a wedged worker.  The supervisor must notice the missed
    heartbeat deadline, kill the worker, and requeue its tasks.
``corrupt_tile``
    Also targets the process pool: the worker computes the tile
    correctly, checksums the *correct* bytes, then flips one byte of the
    shared-memory tile before committing — a write that raced or tore
    between checksum and commit.  The supervisor's claimed-before-commit
    verification must reject the commit and requeue the task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..errors import ConfigError

__all__ = ["InjectedFaultError", "InjectedCrashError", "FaultSpec",
           "FaultPlan", "FAULT_KINDS", "PROCESS_FAULT_KINDS"]

FAULT_KINDS = ("raise", "nan", "inf", "stall", "rng", "torn_write", "bitflip",
               "kill_worker", "hang_worker", "corrupt_tile")

#: The subset of :data:`FAULT_KINDS` applied by process-pool workers
#: (claimed supervisor-side at dispatch, executed worker-side).
PROCESS_FAULT_KINDS = ("kill_worker", "hang_worker", "corrupt_tile")

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def _mix64(x: int) -> int:
    """SplitMix64 finalizer — a stateless avalanche over 64-bit ints."""
    x &= _MASK64
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & _MASK64
    return x ^ (x >> 31)


def task_hash(seed: int, i: int, j: int, salt: int = 0) -> int:
    """Deterministic 64-bit hash of a block-task coordinate.

    Keyed on the plan seed and the task's ``(row offset, column offset)``
    — never on thread or execution order — so random fault plans reproduce
    bit-identically for any scheduling.
    """
    h = _mix64(seed + _GOLDEN)
    h = _mix64(h ^ _mix64(i + 2 * _GOLDEN))
    h = _mix64(h ^ _mix64(j + 3 * _GOLDEN))
    return _mix64(h ^ _mix64(salt + 5 * _GOLDEN))


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    task:
        ``(i, j)`` — the row/column *offsets* of the targeted ``Ahat``
        block (the first two coordinates yielded by
        :func:`repro.kernels.iter_block_tasks`), or ``None`` to match
        every task.
    max_hits:
        How many times the fault fires *per task* before going quiet
        (``None`` = unlimited).  The default of 1 models a transient
        fault: the first attempt fails, the retry succeeds.
    sleep_seconds:
        Stall duration for ``kind="stall"``.
    magnitude:
        Sample scale factor for ``kind="rng"`` (large values trip the
        magnitude guardrail).
    kernel:
        Restrict the fault to attempts running this kernel (``"algo3"`` /
        ``"algo4"``); ``None`` matches both.  Lets tests prove the
        algo4→algo3 degradation path.
    scope:
        ``"any"`` (default), ``"parallel"`` (fire only inside pool
        workers), or ``"serial"`` (fire only in the driver thread).
        ``"parallel"`` faults let tests prove the parallel→serial
        degradation path.
    """

    kind: str
    task: tuple[int, int] | None = None
    max_hits: int | None = 1
    sleep_seconds: float = 0.05
    magnitude: float = 1e30
    kernel: str | None = None
    scope: str = "any"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.scope not in ("any", "parallel", "serial"):
            raise ConfigError(
                f"scope must be 'any', 'parallel' or 'serial', got {self.scope!r}"
            )
        if self.max_hits is not None and self.max_hits < 1:
            raise ConfigError(f"max_hits must be >= 1 or None, got {self.max_hits}")
        if self.sleep_seconds < 0:
            raise ConfigError(
                f"sleep_seconds must be non-negative, got {self.sleep_seconds}"
            )

    def matches(self, task: tuple[int, int], kernel: str, context: str) -> bool:
        """Does this spec apply to an attempt at *task* under *kernel*?"""
        if self.task is not None and tuple(self.task) != tuple(task):
            return False
        if self.kernel is not None and self.kernel != kernel:
            return False
        if self.scope == "parallel" and context != "parallel":
            return False
        if self.scope == "serial" and context != "serial":
            return False
        return True


class FaultPlan:
    """A deterministic collection of faults to inject into one run.

    Parameters
    ----------
    specs:
        Explicit :class:`FaultSpec` entries.
    seed, rate, kinds:
        Optional *random component*: every task whose
        :func:`task_hash` falls below ``rate`` additionally suffers one
        fault whose kind is hash-chosen from *kinds*.  Stateless, so the
        same ``(seed, rate, kinds)`` always poisons the same tasks.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), *, seed: int = 0,
                 rate: float = 0.0, kinds: Sequence[str] = ("raise", "nan")) -> None:
        self.specs = tuple(specs)
        self.seed = int(seed)
        if not (0.0 <= rate <= 1.0):
            raise ConfigError(f"rate must be in [0, 1], got {rate}")
        self.rate = float(rate)
        for k in kinds:
            if k not in FAULT_KINDS:
                raise ConfigError(f"unknown fault kind {k!r} in kinds")
        self.kinds = tuple(kinds)

    @classmethod
    def empty(cls) -> "FaultPlan":
        """A plan that injects nothing (useful as a default)."""
        return cls()

    @classmethod
    def random(cls, seed: int, rate: float,
               kinds: Sequence[str] = ("raise", "nan"),
               max_hits: int | None = 1) -> "FaultPlan":
        """A purely hash-driven plan: each task fails with probability *rate*."""
        plan = cls(seed=seed, rate=rate, kinds=kinds)
        plan._random_max_hits = max_hits
        return plan

    _random_max_hits: int | None = 1

    def faults_for(self, task: tuple[int, int], kernel: str,
                   context: str) -> Iterator[tuple[object, FaultSpec]]:
        """Yield ``(spec_id, spec)`` for every fault applicable to *task*.

        ``spec_id`` keys the injector's per-``(spec, task)`` hit counters;
        explicit specs use their index, the random component uses the
        string ``"random"``.
        """
        for idx, spec in enumerate(self.specs):
            if spec.matches(task, kernel, context):
                yield idx, spec
        if self.rate > 0.0:
            i, j = int(task[0]), int(task[1])
            h = task_hash(self.seed, i, j)
            if h / float(1 << 64) < self.rate:
                kind = self.kinds[task_hash(self.seed, i, j, salt=1)
                                  % len(self.kinds)]
                yield "random", FaultSpec(kind=kind,
                                          max_hits=self._random_max_hits)

    @property
    def is_empty(self) -> bool:
        """True when the plan can never fire."""
        return not self.specs and self.rate == 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"FaultPlan(specs={len(self.specs)}, seed={self.seed}, "
                f"rate={self.rate})")


class InjectedFaultError(RuntimeError):
    """The error raised by a planned ``kind="raise"`` fault.

    Deliberately **not** a :class:`repro.errors.ReproError`: it stands in
    for an arbitrary third-party crash (a BLAS segfault surfacing as an
    exception, a poisoned input, a worker OOM) that the resilient executor
    must survive without special-casing.
    """


class InjectedCrashError(InjectedFaultError):
    """A ``torn_write`` fault's simulated process death.

    Unlike its parent (a *transient, retryable* task failure), this stands
    in for the process being killed mid-snapshot: the resilient executor
    must **not** retry past it — it propagates so the test harness can
    observe the "crash" and exercise the resume path.
    """
