"""Floating-point-operation counting conventions.

The paper's Table VII reports GFlops for the sketching kernels using the
standard SpMM convention: multiplying a dense ``d x m`` matrix by a sparse
matrix with ``nnz`` stored entries costs ``2 * d * nnz`` flops (one multiply
and one add per (dense row, stored entry) pair).  Centralizing the
convention here keeps kernels, the roofline model, and the benches
consistent with each other and with the paper.
"""

from __future__ import annotations

__all__ = ["spmm_flops", "gemm_flops", "gflops"]


def spmm_flops(d: int, nnz: int) -> int:
    """Flops for ``S @ A`` with dense ``S`` (d rows) and sparse ``A`` (nnz entries)."""
    if d < 0 or nnz < 0:
        raise ValueError("dimensions must be non-negative")
    return 2 * d * nnz


def gemm_flops(d: int, m: int, n: int) -> int:
    """Flops for a dense ``(d x m) @ (m x n)`` product."""
    if min(d, m, n) < 0:
        raise ValueError("dimensions must be non-negative")
    return 2 * d * m * n


def gflops(flops: int | float, seconds: float) -> float:
    """Convert a flop count and a runtime to GFlop/s (paper's Table VII unit)."""
    if seconds <= 0:
        raise ValueError(f"seconds must be positive, got {seconds}")
    return flops / seconds / 1e9
