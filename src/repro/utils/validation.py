"""Input validation helpers shared across the library.

These helpers centralize the defensive checks performed at public API
boundaries so that kernels themselves can stay branch-free.  Each helper
raises a subclass of :class:`repro.errors.ReproError` with a message that
names the offending argument, which keeps error reporting consistent across
the sparse formats, kernels, and solvers.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..errors import ConfigError, ShapeError

__all__ = [
    "check_positive_int",
    "check_nonnegative_int",
    "check_in_range",
    "check_probability",
    "check_dense_matrix",
    "check_vector",
    "check_dtype_floating",
    "check_same_length",
    "check_choice",
]


def check_positive_int(value: Any, name: str) -> int:
    """Validate that *value* is a positive integer and return it as ``int``.

    Accepts NumPy integer scalars.  Booleans are rejected because they are
    almost always a bug when a dimension or block size is expected.
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ConfigError(f"{name} must be positive, got {value}")
    return value


def check_nonnegative_int(value: Any, name: str) -> int:
    """Validate that *value* is a non-negative integer and return it."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 0:
        raise ConfigError(f"{name} must be non-negative, got {value}")
    return value


def check_in_range(value: float, name: str, lo: float, hi: float,
                   *, inclusive: bool = True) -> float:
    """Validate ``lo <= value <= hi`` (or strict, if ``inclusive=False``)."""
    value = float(value)
    if inclusive:
        ok = lo <= value <= hi
        bounds = f"[{lo}, {hi}]"
    else:
        ok = lo < value < hi
        bounds = f"({lo}, {hi})"
    if not ok:
        raise ConfigError(f"{name} must lie in {bounds}, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate that *value* is a probability in ``[0, 1]``."""
    return check_in_range(value, name, 0.0, 1.0)


def check_dense_matrix(arr: Any, name: str, *, shape: tuple[int, int] | None = None,
                       writeable: bool = False) -> np.ndarray:
    """Validate that *arr* is a 2-D ndarray; optionally check shape/writeability."""
    if not isinstance(arr, np.ndarray):
        raise ShapeError(f"{name} must be a numpy.ndarray, got {type(arr).__name__}")
    if arr.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got ndim={arr.ndim}")
    if shape is not None and arr.shape != shape:
        raise ShapeError(f"{name} must have shape {shape}, got {arr.shape}")
    if writeable and not arr.flags.writeable:
        raise ShapeError(f"{name} must be writeable")
    return arr


def check_vector(arr: Any, name: str, *, size: int | None = None) -> np.ndarray:
    """Validate that *arr* is a 1-D ndarray of optional exact *size*."""
    if not isinstance(arr, np.ndarray):
        raise ShapeError(f"{name} must be a numpy.ndarray, got {type(arr).__name__}")
    if arr.ndim != 1:
        raise ShapeError(f"{name} must be 1-D, got ndim={arr.ndim}")
    if size is not None and arr.size != size:
        raise ShapeError(f"{name} must have size {size}, got {arr.size}")
    return arr


def check_dtype_floating(arr: np.ndarray, name: str) -> np.ndarray:
    """Validate that *arr* has a real floating-point dtype."""
    if not np.issubdtype(arr.dtype, np.floating):
        raise ShapeError(f"{name} must have a floating dtype, got {arr.dtype}")
    return arr


def check_same_length(name_a: str, a: Sequence, name_b: str, b: Sequence) -> None:
    """Validate that two sequences have equal length."""
    if len(a) != len(b):
        raise ShapeError(
            f"{name_a} and {name_b} must have equal length, got {len(a)} and {len(b)}"
        )


def check_choice(value: str, name: str, choices: Sequence[str]) -> str:
    """Validate that a string option is one of *choices*."""
    if value not in choices:
        raise ConfigError(
            f"{name} must be one of {sorted(choices)!r}, got {value!r}"
        )
    return value
