"""Shared utilities: validation, timing, table rendering, memory and flop accounting."""

from .flops import gemm_flops, gflops, spmm_flops
from .memory import MemoryLedger, mbytes, nbytes
from .tables import format_table, format_value, render_kv_block
from .timing import Stopwatch, Timer
from .validation import (
    check_choice,
    check_dense_matrix,
    check_dtype_floating,
    check_in_range,
    check_nonnegative_int,
    check_positive_int,
    check_probability,
    check_same_length,
    check_vector,
)

__all__ = [
    "gemm_flops",
    "gflops",
    "spmm_flops",
    "MemoryLedger",
    "mbytes",
    "nbytes",
    "format_table",
    "format_value",
    "render_kv_block",
    "Stopwatch",
    "Timer",
    "check_choice",
    "check_dense_matrix",
    "check_dtype_floating",
    "check_in_range",
    "check_nonnegative_int",
    "check_positive_int",
    "check_probability",
    "check_same_length",
    "check_vector",
]
