"""Lightweight timing instrumentation used by kernels and benchmarks.

The paper reports split timings (Tables III and V separate "sample time" —
the time spent generating random numbers — from total SpMM time).  The
:class:`Stopwatch` here accumulates named segments so a kernel can charge
RNG work and arithmetic work to different buckets with negligible overhead,
mirroring how the authors instrumented their Julia kernels (and, like them,
accepting that the timer itself adds a small overhead to the total).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

__all__ = ["Stopwatch", "Timer"]


@dataclass
class Stopwatch:
    """Accumulates wall-clock time into named buckets.

    Example
    -------
    >>> sw = Stopwatch()
    >>> with sw.bucket("sample"):
    ...     pass  # generate random numbers
    >>> with sw.bucket("compute"):
    ...     pass  # arithmetic
    >>> sorted(sw.totals)
    ['compute', 'sample']
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def bucket(self, name: str) -> Iterator[None]:
        """Context manager charging the enclosed wall time to *name*."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self.totals[name] = self.totals.get(name, 0.0) + dt
            self.counts[name] = self.counts.get(name, 0) + 1

    def add(self, name: str, seconds: float) -> None:
        """Charge *seconds* to bucket *name* directly (for externally-timed work)."""
        self.totals[name] = self.totals.get(name, 0.0) + float(seconds)
        self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str | None = None) -> float:
        """Total seconds in bucket *name*, or across all buckets if ``None``."""
        if name is None:
            return sum(self.totals.values())
        return self.totals.get(name, 0.0)

    def reset(self) -> None:
        """Clear all buckets."""
        self.totals.clear()
        self.counts.clear()

    def merge(self, other: "Stopwatch") -> None:
        """Fold another stopwatch's buckets into this one."""
        for name, t in other.totals.items():
            self.totals[name] = self.totals.get(name, 0.0) + t
        for name, c in other.counts.items():
            self.counts[name] = self.counts.get(name, 0) + c


class Timer:
    """Single-shot timer: ``with Timer() as t: ...; t.elapsed``."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._t0
