"""Paper-style plain-text table rendering for the benchmark harness.

Every benchmark in ``benchmarks/`` ends by printing a table whose rows match
the corresponding table in the paper, with a "paper" column next to each
"measured" column so that shape comparisons (who wins, by what factor) can
be eyeballed directly from the bench output.  This module owns the shared
formatting so all benches look identical.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_value", "render_kv_block"]


def format_value(v: Any, *, sig: int = 4) -> str:
    """Format one table cell.

    Floats use up to *sig* significant digits with scientific notation for
    very large/small magnitudes (matching how the paper prints densities
    like ``2.02E-03`` next to times like ``0.070``).
    """
    if v is None:
        return "N/A"
    if isinstance(v, bool):
        return "yes" if v else "no"
    if isinstance(v, int):
        return str(v)
    if isinstance(v, float):
        if v == 0.0:
            return "0"
        av = abs(v)
        if av >= 1e5 or av < 1e-3:
            return f"{v:.{max(sig - 2, 1)}E}"
        return f"{v:.{sig}g}"
    return str(v)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 *, title: str | None = None, sig: int = 4) -> str:
    """Render *rows* under *headers* as an aligned monospace table.

    Returns the table as a single string (callers print it); raises
    ``ValueError`` when a row's width disagrees with the header width so
    that harness bugs surface as errors rather than misaligned output.
    """
    ncol = len(headers)
    str_rows: list[list[str]] = []
    for r in rows:
        if len(r) != ncol:
            raise ValueError(
                f"row has {len(r)} cells but table has {ncol} columns: {r!r}"
            )
        str_rows.append([format_value(c, sig=sig) for c in r])
    widths = [len(h) for h in headers]
    for r in str_rows:
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def render_kv_block(title: str, pairs: Sequence[tuple[str, Any]]) -> str:
    """Render a titled key/value block (used for bench configuration echo)."""
    width = max((len(k) for k, _ in pairs), default=0)
    lines = [title, "-" * max(len(title), 1)]
    for k, v in pairs:
        lines.append(f"{k.ljust(width)} : {format_value(v)}")
    return "\n".join(lines)
