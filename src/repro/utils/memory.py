"""Byte-level memory accounting.

Table XI of the paper compares the *workspace* memory of the randomized
least-squares solver (which stores only the dense ``2n-by-n`` sketch) to the
memory held by SuiteSparseQR's factors.  Reproducing that comparison needs
an accounting scheme that is independent of the Python allocator, so this
module counts the bytes a data structure logically owns (array buffers),
the same quantity the paper reports in Mbytes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["nbytes", "mbytes", "MemoryLedger"]

_MB = 1024.0 * 1024.0


def nbytes(*arrays: np.ndarray) -> int:
    """Total bytes logically owned by the given array buffers."""
    return int(sum(int(a.nbytes) for a in arrays))


def mbytes(*arrays: np.ndarray) -> float:
    """Like :func:`nbytes` but in Mbytes (the paper's unit)."""
    return nbytes(*arrays) / _MB


class MemoryLedger:
    """Tracks current and peak logical memory across named allocations.

    The direct sparse QR uses this to report peak factor memory including
    transient row workspaces, mirroring how the paper measured "the memory
    usage of the resulting factors".
    """

    def __init__(self) -> None:
        self._current = 0
        self._peak = 0
        self._entries: dict[str, int] = {}

    def allocate(self, name: str, num_bytes: int) -> None:
        """Record *num_bytes* held under *name* (replacing any prior entry)."""
        if num_bytes < 0:
            raise ValueError(f"negative allocation for {name!r}: {num_bytes}")
        self._current += num_bytes - self._entries.get(name, 0)
        self._entries[name] = num_bytes
        self._peak = max(self._peak, self._current)

    def allocate_array(self, name: str, arr: np.ndarray) -> None:
        """Record the buffer of *arr* under *name*."""
        self.allocate(name, int(arr.nbytes))

    def release(self, name: str) -> None:
        """Drop the entry for *name* (no-op when absent)."""
        self._current -= self._entries.pop(name, 0)

    @property
    def current_bytes(self) -> int:
        """Bytes currently held across all live entries."""
        return self._current

    @property
    def peak_bytes(self) -> int:
        """High-water mark of :attr:`current_bytes` since construction."""
        return self._peak

    @property
    def peak_mbytes(self) -> float:
        """Peak memory in Mbytes (the paper's reporting unit)."""
        return self._peak / _MB

    def breakdown(self) -> dict[str, float]:
        """Live entries in Mbytes, largest first."""
        return dict(
            sorted(
                ((k, v / _MB) for k, v in self._entries.items()),
                key=lambda kv: -kv[1],
            )
        )
