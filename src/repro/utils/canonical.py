"""Canonical JSON: one stable byte representation per value.

Cache keys and plan digests must be identical across processes, hosts,
and Python versions, so everything that is hashed goes through
:func:`canonical_json`: keys sorted, no whitespace, ``allow_nan=False``
(NaN/Infinity have no JSON spelling and would make a digest
unverifiable).  Floats use Python's ``repr`` — the shortest string that
round-trips to the exact same double — which is deterministic on every
platform CPython supports.
"""

from __future__ import annotations

import hashlib
import json

__all__ = ["canonical_json", "canonical_digest"]


def canonical_json(obj) -> str:
    """Serialize *obj* to the canonical JSON text (sorted, compact)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def canonical_digest(obj) -> str:
    """SHA-256 hex digest of *obj*'s canonical JSON text."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()
