"""Bounded admission queue with explicit load shedding.

The serving daemon never lets backlog grow without bound: a request
either gets a seat in this queue or is shed *immediately* with a typed
:class:`~repro.errors.RequestShedError` carrying a ``retry_after`` hint
— the client-visible half of the backpressure loop.  ``retry_after`` is
derived from the live queue depth and an exponentially-weighted moving
average of recent service times, so a client that honours it arrives
roughly when a seat is expected to free up rather than hammering a
saturated daemon.

The queue is deliberately FIFO and deadline-agnostic: expiry of queued
requests is the service's concern (it checks at dequeue and emits
``deadline_missed`` with ``phase="queue"``), keeping this structure a
pure synchronization primitive.
"""

from __future__ import annotations

import threading
from collections import deque

from ..errors import RequestShedError

#: Bounds on the computed retry-after hint (seconds).  The lower bound
#: keeps a hot-looping client from busy-retrying; the upper bound keeps
#: a momentary spike from telling clients to go away for minutes.
RETRY_AFTER_MIN = 0.05
RETRY_AFTER_MAX = 30.0

#: EWMA smoothing factor for the service-time estimate.
_EWMA_ALPHA = 0.3


class AdmissionQueue:
    """Thread-safe bounded FIFO of request tickets.

    Parameters
    ----------
    capacity:
        Maximum queued (admitted but not yet executing) tickets.
    initial_service_seconds:
        Seed for the service-time EWMA before any request completes
        (only affects the very first retry-after hints).
    """

    def __init__(self, capacity: int,
                 initial_service_seconds: float = 0.5) -> None:
        self.capacity = int(capacity)
        self._items: deque = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._ewma = float(initial_service_seconds)

    # -- service-time estimate --------------------------------------------

    def observe_service_time(self, seconds: float) -> None:
        """Fold one completed request's wall time into the EWMA."""
        with self._cond:
            self._ewma = ((1.0 - _EWMA_ALPHA) * self._ewma
                          + _EWMA_ALPHA * max(0.0, float(seconds)))

    def service_estimate(self) -> float:
        """Current EWMA of per-request service seconds."""
        with self._cond:
            return self._ewma

    def retry_after(self, extra_depth: int = 0) -> float:
        """Back-off hint for a shed request: (depth+1) × EWMA, clamped."""
        with self._cond:
            depth = len(self._items) + extra_depth
            est = (depth + 1) * self._ewma
        return min(RETRY_AFTER_MAX, max(RETRY_AFTER_MIN, est))

    # -- queue operations --------------------------------------------------

    @property
    def depth(self) -> int:
        with self._cond:
            return len(self._items)

    def offer(self, ticket) -> int:
        """Enqueue *ticket*; returns the post-insert queue depth.

        Raises :class:`RequestShedError` (``reason="queue_full"`` or
        ``"draining"``) instead of blocking — shedding is always
        explicit and immediate.
        """
        with self._cond:
            if self._closed:
                raise RequestShedError(
                    "daemon is draining; not admitting new requests",
                    reason="draining",
                    retry_after=min(RETRY_AFTER_MAX, max(
                        RETRY_AFTER_MIN, (len(self._items) + 1) * self._ewma)))
            if len(self._items) >= self.capacity:
                raise RequestShedError(
                    f"admission queue is full ({self.capacity} waiting)",
                    reason="queue_full",
                    retry_after=min(RETRY_AFTER_MAX, max(
                        RETRY_AFTER_MIN, (len(self._items) + 1) * self._ewma)))
            self._items.append(ticket)
            depth = len(self._items)
            self._cond.notify()
            return depth

    def take(self, timeout: float | None = None):
        """Dequeue the oldest ticket, blocking up to *timeout* seconds.

        Returns ``None`` on timeout or once the queue is closed *and*
        empty (executor threads use that as their exit signal).
        """
        with self._cond:
            while not self._items:
                if self._closed:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None
            return self._items.popleft()

    def take_matching(self, predicate, limit: int) -> list:
        """Remove and return up to *limit* queued tickets satisfying
        *predicate*, preserving FIFO order among both the taken and the
        remaining tickets.

        Non-blocking: only tickets already queued are considered — the
        request-coalescing path must not delay a dequeued leader
        waiting for company that may never arrive.  *predicate* runs
        under the queue lock and must be a pure, fast function of the
        ticket.
        """
        taken: list = []
        if limit <= 0:
            return taken
        with self._cond:
            if not self._items:
                return taken
            kept: deque = deque()
            while self._items:
                ticket = self._items.popleft()
                if len(taken) < limit and predicate(ticket):
                    taken.append(ticket)
                else:
                    kept.append(ticket)
            self._items = kept
        return taken

    def close(self) -> list:
        """Stop admitting and wake all waiters; returns the tickets
        still queued (the drain path sheds them with retry hints)."""
        with self._cond:
            self._closed = True
            remaining = list(self._items)
            self._items.clear()
            self._cond.notify_all()
            return remaining

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed
