"""Configuration for the sketch-serving daemon.

One frozen dataclass gathers every service-level knob — admission
capacity, deadlines, breaker thresholds, drain budget, warm-pool and
matrix LRU sizes — so the CLI, the embedded :class:`SketchService`, and
tests all construct the daemon the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from ..utils.validation import check_positive_int


@dataclass(frozen=True)
class ServeConfig:
    """Service policy for ``repro serve``.

    Attributes
    ----------
    host, port:
        Listening address.  The daemon binds localhost by default;
        ``port=0`` asks the OS for an ephemeral port (tests, smoke
        runs) — the bound port is written to *ready_file*.
    queue_capacity:
        Bound of the admission queue.  A request arriving when the
        queue is full is shed with a 429-style
        :class:`~repro.errors.RequestShedError` carrying a
        ``retry_after`` derived from queue depth × recent service time.
    executors:
        Worker threads consuming the admission queue.  Each executes
        one request at a time on the shared warm pools; the default of
        1 serializes compute (the pools already parallelize inside a
        request).
    default_deadline:
        Deadline in seconds applied to requests that do not carry
        their own ``deadline_seconds`` (``None`` = no implicit
        deadline).
    drain_timeout:
        Graceful-drain budget on SIGTERM: in-flight requests get this
        long to finish before the daemon gives up and exits nonzero.
    breaker_threshold, breaker_recovery:
        Circuit breaker: consecutive pool-degraded (or failed)
        requests before the breaker opens, and how long it stays open
        before a half-open probe is allowed through.
    max_batch:
        Coalescing bound: when greater than 1, an executor thread that
        dequeues a request also drains up to ``max_batch - 1`` queued
        requests *compatible* with it — same matrix, same planning
        config apart from the seed, no chaos, no frozen plan — and
        executes them as one batched run (one pass over A computes
        every sketch; coordinate-keyed RNG makes each slice
        bit-identical to a solo run).  1 disables coalescing.
    warm_pools:
        LRU bound on live :class:`ProcessPoolSupervisor` instances
        (one per (matrix, kernel, backend, partition) binding).
    max_matrices:
        LRU bound on input matrices held in memory.
    checkpoint_dir:
        When set, the drain path writes its final state file here and
        engine-driver requests may checkpoint into per-request
        subdirectories.
    cache_dir:
        Artifact-cache directory (blocked-CSR conversions, JIT
        markers) for the fixed-A hot path; ``None`` disables the
        cache.
    allow_chaos:
        Gate for the fault-injection hooks (``chaos`` request field,
        ``slow_client`` / ``kill_pool_mid_request``).  Off by default:
        a production daemon must not accept requests that kill its own
        workers.
    ready_file:
        Path the daemon writes ``host:port\\n`` to once it is
        listening (ephemeral-port discovery for scripts and CI).
    """

    host: str = "127.0.0.1"
    port: int = 0
    queue_capacity: int = 16
    executors: int = 1
    default_deadline: float | None = 30.0
    drain_timeout: float = 10.0
    breaker_threshold: int = 3
    breaker_recovery: float = 5.0
    max_batch: int = 1
    warm_pools: int = 2
    max_matrices: int = 4
    checkpoint_dir: str | None = None
    cache_dir: str | None = None
    allow_chaos: bool = False
    ready_file: str | None = None
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive_int(self.queue_capacity, "queue_capacity")
        check_positive_int(self.executors, "executors")
        check_positive_int(self.max_batch, "max_batch")
        check_positive_int(self.warm_pools, "warm_pools")
        check_positive_int(self.max_matrices, "max_matrices")
        check_positive_int(self.breaker_threshold, "breaker_threshold")
        if not isinstance(self.port, int) or isinstance(self.port, bool) \
                or self.port < 0 or self.port > 65535:
            raise ConfigError(f"port must be in [0, 65535], got {self.port!r}")
        if self.default_deadline is not None \
                and not self.default_deadline > 0:
            raise ConfigError(
                f"default_deadline must be positive or None, got "
                f"{self.default_deadline!r}")
        if not self.drain_timeout > 0:
            raise ConfigError(
                f"drain_timeout must be positive, got {self.drain_timeout!r}")
        if not self.breaker_recovery > 0:
            raise ConfigError(
                f"breaker_recovery must be positive, got "
                f"{self.breaker_recovery!r}")
