"""Circuit breaker over the worker-pool health signal.

A pool that keeps degrading (process → thread → serial) is telling us
something is wrong with the host — cgroup memory pressure, a bad
kernel build, fork bombs from a neighbour.  Retrying every request
through a collapsing pool just converts client traffic into more
carnage.  The breaker converts *consecutive* degraded or failed
requests into fast, cheap shedding:

* **closed** — normal operation; failures increment a consecutive
  counter, any success resets it.
* **open** — after ``threshold`` consecutive failures; every request is
  shed immediately (``reason="breaker_open"``) with ``retry_after`` set
  to the remaining recovery window.
* **half-open** — once ``recovery_seconds`` has elapsed, exactly one
  probe request is allowed through; its success closes the breaker,
  its failure re-opens it for a fresh recovery window.

The breaker observes *request outcomes*, not raw pool events, so a
request that succeeded bit-identically via the degradation ladder still
counts as a failure signal — the ladder saved the response, but the
pool is sick.
"""

from __future__ import annotations

import threading
import time

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probe recovery."""

    def __init__(self, threshold: int = 3,
                 recovery_seconds: float = 5.0) -> None:
        self.threshold = int(threshold)
        self.recovery_seconds = float(recovery_seconds)
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_out = False
        self.trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if self._state == OPEN and \
                time.monotonic() - self._opened_at >= self.recovery_seconds:
            self._state = HALF_OPEN
            self._probe_out = False

    def allow(self) -> bool:
        """May a request proceed right now?

        In half-open state only the first caller gets a ``True`` (the
        probe); everyone else is shed until the probe reports back.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probe_out:
                self._probe_out = True
                return True
            return False

    def retry_after(self) -> float:
        """Seconds until the next half-open probe window."""
        with self._lock:
            if self._state != OPEN:
                return self.recovery_seconds
            remaining = (self.recovery_seconds
                         - (time.monotonic() - self._opened_at))
            return max(0.05, remaining)

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_out = False
            self._state = CLOSED

    def record_neutral(self) -> None:
        """Outcome that says nothing about pool health (deadline miss,
        bad request): just return a checked-out half-open probe so the
        breaker cannot wedge waiting for a report that never comes."""
        with self._lock:
            self._probe_out = False

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state == HALF_OPEN or \
                    self._consecutive_failures >= self.threshold:
                # A failed probe re-opens immediately; in closed state
                # the consecutive threshold must be met.
                if self._state != OPEN:
                    self.trips += 1
                self._state = OPEN
                self._opened_at = time.monotonic()
                self._probe_out = False
