"""The HTTP shell of ``repro serve``.

Stdlib-only (:mod:`http.server`) local daemon around
:class:`~repro.serve.service.SketchService`.  Endpoints:

``POST /v1/sketch``
    One sketch request (see :mod:`repro.serve.protocol`).  Status
    mapping: 200 ok · 400 malformed request · 429 shed
    (``Retry-After`` header; ``reason`` in the body) · 503 shed
    because draining · 504 deadline expired · 500 typed internal
    error.  Every failure body carries ``{"status": ..., "error":
    <exception type>, "message": ...}`` — errors are *typed*, never
    silent.
``GET /healthz``
    Liveness: 200 as long as the process serves HTTP at all.
``GET /readyz``
    Readiness: 200 while admitting; 503 once draining.
``GET /metrics``
    Prometheus exposition text from the attached
    :class:`~repro.obs.RunObserver` (queue depth, shed/served/deadline
    counters, pool worker gauges, cache hit rate, ``dropped_events``).

On SIGTERM/SIGINT the daemon drains gracefully: readiness flips,
queued requests are shed with retry hints, in-flight requests finish
(their connections stay open until the response is written), drain
state is checkpointed, and the process exits 0 — or 1 if the drain
budget expires first.

Requests are handled on per-connection threads, but compute happens on
the service's executor threads behind the admission queue — a slow or
stalled client holds only its own connection thread (and, with the
``slow_client`` chaos hook, provably not the executors).
"""

from __future__ import annotations

import json
import math
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import (
    ConfigError,
    ReproError,
    RequestDeadlineError,
    RequestShedError,
)
from ..obs.observer import RunObserver
from .config import ServeConfig
from .service import SketchService

__all__ = ["ServeDaemon"]

_MAX_BODY = 64 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """One HTTP connection; ``self.server.daemon_ref`` is the daemon."""

    protocol_version = "HTTP/1.1"

    # The default handler logs every request to stderr; the daemon's
    # stdout/stderr belong to the operator, so stay quiet.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _send_json(self, status: int, doc: dict,
                   headers: dict | None = None,
                   delay: float = 0.0) -> None:
        body = json.dumps(doc).encode("utf-8")
        if delay > 0:
            # Chaos hook slow_client: the response is written late, on
            # this connection thread only — executors are long gone.
            time.sleep(delay)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; charset=utf-8") -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        daemon: "ServeDaemon" = self.server.daemon_ref
        if self.path == "/healthz":
            self._send_text(200, "ok\n")
        elif self.path == "/readyz":
            if daemon.service.ready:
                self._send_text(200, "ready\n")
            else:
                self._send_text(503, "draining\n")
        elif self.path == "/metrics":
            self._send_text(
                200, daemon.observer.metrics_text(),
                content_type="text/plain; version=0.0.4; charset=utf-8")
        else:
            self._send_json(404, {"status": "error", "error": "NotFound",
                                  "message": f"no route {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        daemon: "ServeDaemon" = self.server.daemon_ref
        if self.path != "/v1/sketch":
            self._send_json(404, {"status": "error", "error": "NotFound",
                                  "message": f"no route {self.path!r}"})
            return
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0 or length > _MAX_BODY:
            self._send_json(400, {
                "status": "error", "error": "ConfigError",
                "message": "request needs a JSON body under "
                           f"{_MAX_BODY} bytes"})
            return
        body = self.rfile.read(length)
        try:
            doc = daemon.service.handle(body)
        except RequestShedError as err:
            status = 503 if err.reason == "draining" else 429
            self._send_json(status, {
                "status": "shed", "error": type(err).__name__,
                "reason": err.reason, "retry_after": err.retry_after,
                "message": str(err),
            }, headers={"Retry-After":
                        str(max(1, math.ceil(err.retry_after)))})
        except RequestDeadlineError as err:
            self._send_json(504, {
                "status": "deadline_missed", "error": type(err).__name__,
                "phase": err.phase, "message": str(err)})
        except ConfigError as err:
            self._send_json(400, {"status": "error",
                                  "error": type(err).__name__,
                                  "message": str(err)})
        except ReproError as err:
            self._send_json(500, {"status": "error",
                                  "error": type(err).__name__,
                                  "message": str(err)})
        else:
            self._send_json(200, doc, delay=float(doc.pop("slow_client", 0)))


class ServeDaemon:
    """Owns the HTTP server, the service, signal-driven drain, and the
    process exit code."""

    def __init__(self, config: ServeConfig | None = None,
                 service: SketchService | None = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self.service = service if service is not None \
            else SketchService(self.config)
        self.observer = RunObserver(trace=False).attach(self.service.bus)
        self._httpd: ThreadingHTTPServer | None = None
        self._drain_clean: bool | None = None
        self._drain_lock = threading.Lock()
        self._drain_thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int] | None:
        """Bound ``(host, port)`` once :meth:`start` has run."""
        if self._httpd is None:
            return None
        return self._httpd.server_address[:2]

    def start(self) -> "ServeDaemon":
        """Bind the socket and start the service executors (idempotent;
        does not enter the request loop — :meth:`run` does)."""
        if self._httpd is not None:
            return self
        httpd = ThreadingHTTPServer((self.config.host, self.config.port),
                                    _Handler)
        httpd.daemon_threads = True
        httpd.block_on_close = True   # server_close waits for responses
        httpd.daemon_ref = self
        self._httpd = httpd
        self.service.start()
        self._write_ready_file()
        return self

    def _write_ready_file(self) -> None:
        if self.config.ready_file is None:
            return
        host, port = self.address
        tmp = self.config.ready_file + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(f"{host}:{port}\n")
        import os

        os.replace(tmp, self.config.ready_file)

    def request_drain(self) -> None:
        """Begin graceful shutdown (signal handlers land here).

        Runs the drain on a helper thread: the signal arrives on the
        main thread, which is inside ``serve_forever`` — calling
        ``shutdown()`` there would deadlock.
        """
        with self._drain_lock:
            if self._drain_thread is not None:
                return
            self._drain_thread = threading.Thread(
                target=self._drain_and_stop, name="repro-serve-drain")
            self._drain_thread.start()

    def _drain_and_stop(self) -> None:
        self._drain_clean = self.service.drain()
        if self._httpd is not None:
            self._httpd.shutdown()

    def run(self, *, install_signals: bool = True) -> int:
        """Serve until drained; returns the process exit code
        (0 = clean drain, 1 = drain budget expired)."""
        self.start()
        if install_signals:
            for sig in (signal.SIGTERM, signal.SIGINT):
                signal.signal(sig, lambda _s, _f: self.request_drain())
        try:
            self._httpd.serve_forever(poll_interval=0.1)
        finally:
            # Joins in-flight connection threads so every admitted
            # request gets its response bytes before the process exits.
            self._httpd.server_close()
            if self._drain_thread is not None:
                self._drain_thread.join(timeout=self.config.drain_timeout)
            if self._drain_clean is None:
                # serve_forever ended without a signal (tests calling
                # shutdown directly): still drain for a clean exit.
                self._drain_clean = self.service.drain()
        return 0 if self._drain_clean else 1
