"""The sketch service: admission, execution, recovery, drain.

:class:`SketchService` is the transport-independent core of ``repro
serve``.  The HTTP daemon (:mod:`repro.serve.daemon`) is a thin shell
around it; tests drive it directly.  One service owns:

* a bounded :class:`~repro.serve.admission.AdmissionQueue` consumed by
  a small pool of executor threads — requests either get a seat or are
  shed immediately with a retry hint;
* a :class:`~repro.serve.breaker.CircuitBreaker` over request outcomes
  — consecutive pool degradations flip the service to fast shedding
  until a half-open probe succeeds;
* LRU-bounded stores of input matrices and **warm**
  :class:`~repro.parallel.ProcessPoolSupervisor` pools, so the "fixed
  A, many sketches" workload pays matrix publication and worker
  spawning once, not per request;
* the recovery ladder: a request whose warm pool collapses (or is
  killed by chaos) is deterministically re-executed on the serial
  driver — coordinate-keyed generators make the replay **bit-identical**
  to what the pool would have produced, so clients cannot observe the
  crash except in the stats;
* graceful drain: stop admitting, shed the queue with retry hints,
  finish in-flight work, persist a drain-state file, close the pools;
* request coalescing (``ServeConfig.max_batch > 1``): an executor that
  dequeues a request also drains queued requests *compatible* with it —
  same matrix spec, same planning config apart from the seed, no chaos,
  no frozen plan — and compiles them into one batched plan
  (``batch_seeds``) executed in a single pass over A.  Every request
  gets its own slice of the stacked output; the coordinate-keyed RNG
  contract makes that slice bit-identical to what a solo run would have
  produced.  The pooled run honours the *tightest* member deadline, and
  any pooled failure falls back to processing each member individually,
  so coalescing can never make a request fail that would have succeeded
  alone.

Deadlines bind at every stage: a request expiring while queued is
failed with ``phase="queue"`` without touching a kernel; the remaining
budget of an executing request propagates into
``ResilienceConfig.task_timeout`` *and* the pool's absolute run
deadline, which cancels claimed-but-uncommitted tiles on expiry
(``phase="execute"``) and taints the pool so stale workers can never
write into a served buffer.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import os
import signal
import threading
import time
from collections import OrderedDict

from ..errors import (
    ConfigError,
    ReproError,
    RequestDeadlineError,
    RequestShedError,
    TaskTimeoutError,
)
from ..plan.events import (
    DEADLINE_MISSED,
    DRAIN_STARTED,
    REQUEST_ADMITTED,
    REQUEST_DONE,
    REQUEST_SHED,
    REQUESTS_COALESCED,
    EventBus,
)
from .admission import AdmissionQueue
from .breaker import CircuitBreaker
from .config import ServeConfig
from .protocol import SketchRequest, encode_result, parse_request

__all__ = ["SketchService", "Ticket"]


class Ticket:
    """One admitted request's journey through the executor threads."""

    __slots__ = ("request", "deadline", "enqueued", "done", "response",
                 "error", "slow_client")

    def __init__(self, request: SketchRequest,
                 deadline: float | None) -> None:
        self.request = request
        self.deadline = deadline          # absolute time.monotonic()
        self.enqueued = time.monotonic()
        self.done = threading.Event()
        self.response: dict | None = None
        self.error: ReproError | None = None
        self.slow_client: float = 0.0

    def chaos_kill_pool(self) -> bool:
        chaos = self.request.chaos
        return bool(chaos and chaos.get("kill_pool"))

    def wait(self, timeout: float | None = None) -> dict:
        """Block until processed; returns the response document or
        raises the typed error the request failed with."""
        if not self.done.wait(timeout=timeout):
            raise TaskTimeoutError(
                f"request {self.request.request_id} did not complete "
                f"within the wait timeout")
        if self.error is not None:
            raise self.error
        assert self.response is not None
        return self.response


class SketchService:
    """Long-lived, crash-tolerant executor of sketch requests."""

    def __init__(self, config: ServeConfig | None = None,
                 bus: EventBus | None = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self.bus = bus if bus is not None else EventBus()
        self.queue = AdmissionQueue(self.config.queue_capacity)
        self.breaker = CircuitBreaker(self.config.breaker_threshold,
                                      self.config.breaker_recovery)
        self.cache = None
        if self.config.cache_dir is not None:
            from ..cache.policy import CachePolicy
            from ..cache.store import ArtifactCache

            self.cache = ArtifactCache(
                CachePolicy(cache_dir=self.config.cache_dir), bus=self.bus)
        self.counters = {"served": 0, "shed": 0, "deadline_missed": 0,
                         "failed": 0, "recovered": 0, "coalesced": 0}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._matrices: OrderedDict[str, tuple] = OrderedDict()
        self._pools: OrderedDict[tuple, object] = OrderedDict()
        self._pool_lock = threading.Lock()
        self._tl = threading.local()
        self._threads: list[threading.Thread] = []
        self._inflight = 0
        self._started = False
        self._draining = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "SketchService":
        """Spawn the executor threads (idempotent)."""
        with self._lock:
            if self._started:
                return self
            self._started = True
        for i in range(self.config.executors):
            t = threading.Thread(target=self._executor_loop,
                                 name=f"repro-serve-exec-{i}", daemon=True)
            t.start()
            self._threads.append(t)
        return self

    @property
    def ready(self) -> bool:
        """Accepting new requests right now?"""
        return self._started and not self._draining

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._inflight

    def drain(self) -> bool:
        """Graceful shutdown: stop admitting, shed the queue with retry
        hints, let in-flight requests finish, persist drain state,
        close the warm pools.  Returns ``True`` on a clean drain within
        ``drain_timeout`` (→ exit 0)."""
        with self._lock:
            if self._draining:
                return True
            self._draining = True
            in_flight = self._inflight
        self.bus.emit(DRAIN_STARTED, in_flight=in_flight,
                      queued=self.queue.depth)
        retry_after = self.queue.retry_after()
        for ticket in self.queue.close():
            err = RequestShedError(
                "daemon is draining; request was queued but never "
                "started — retry against the replacement instance",
                reason="draining", retry_after=retry_after)
            self._finish_shed(ticket, err)
        deadline = time.monotonic() + self.config.drain_timeout
        clean = True
        for t in self._threads:
            t.join(timeout=max(0.0, deadline - time.monotonic()))
            if t.is_alive():
                clean = False
        self._write_drain_state(clean)
        self.close_pools()
        return clean

    def close(self) -> None:
        """Hard shutdown (tests): close the queue and the pools."""
        self._draining = True
        for ticket in self.queue.close():
            self._finish_shed(ticket, RequestShedError(
                "service closed", reason="draining",
                retry_after=self.queue.retry_after()))
        for t in self._threads:
            t.join(timeout=5.0)
        self.close_pools()

    def close_pools(self) -> None:
        with self._pool_lock:
            pools = list(self._pools.values())
            self._pools.clear()
        for pool in pools:
            pool.close()

    def _write_drain_state(self, clean: bool) -> None:
        """Atomically persist the drain outcome (torn-write safe)."""
        if self.config.checkpoint_dir is None:
            return
        try:
            os.makedirs(self.config.checkpoint_dir, exist_ok=True)
            path = os.path.join(self.config.checkpoint_dir,
                                "serve_drain_state.json")
            tmp = path + ".tmp"
            state = {"clean": clean, "counters": dict(self.counters),
                     "unix_time": time.time()}
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(state, fh, indent=2, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError:  # pragma: no cover - drain must not crash on IO
            pass

    # -- admission ---------------------------------------------------------

    def submit(self, request: SketchRequest) -> Ticket:
        """Admit one request or shed it.

        Raises :class:`RequestShedError` when the daemon is draining,
        the breaker is open, or the queue is full; otherwise returns
        the :class:`Ticket` whose :meth:`Ticket.wait` yields the
        response.
        """
        if not request.request_id:
            request.request_id = f"r{next(self._ids)}"
        if not self.breaker.allow():
            err = RequestShedError(
                "circuit breaker is open after consecutive pool "
                "degradations; backing off",
                reason="breaker_open",
                retry_after=self.breaker.retry_after())
            self._count_shed(request.request_id, err)
            raise err
        seconds = request.deadline_seconds
        if seconds is None:
            seconds = self.config.default_deadline
        deadline = None if seconds is None else time.monotonic() + seconds
        ticket = Ticket(request, deadline)
        if request.chaos:
            ticket.slow_client = float(
                request.chaos.get("slow_client") or 0.0)
        try:
            depth = self.queue.offer(ticket)
        except RequestShedError as err:
            self._count_shed(request.request_id, err)
            raise
        self.bus.emit(REQUEST_ADMITTED, request_id=request.request_id,
                      queue_depth=depth)
        return ticket

    def handle(self, body, *, wait_timeout: float | None = None) -> dict:
        """Parse → submit → wait: the synchronous request path used by
        the HTTP handler and by embedded callers/tests."""
        request = parse_request(body, allow_chaos=self.config.allow_chaos)
        ticket = self.submit(request)
        if wait_timeout is None and ticket.deadline is not None:
            # Give the executor the full budget plus shutdown slack.
            wait_timeout = (ticket.deadline - time.monotonic()
                            + self.config.drain_timeout + 5.0)
        return ticket.wait(timeout=wait_timeout)

    def _count_shed(self, request_id: str, err: RequestShedError) -> None:
        with self._lock:
            self.counters["shed"] += 1
        self.bus.emit(REQUEST_SHED, request_id=request_id,
                      reason=err.reason, retry_after=err.retry_after)

    def _finish_shed(self, ticket: Ticket, err: RequestShedError) -> None:
        self._count_shed(ticket.request.request_id, err)
        ticket.error = err
        ticket.done.set()

    # -- execution ---------------------------------------------------------

    def _executor_loop(self) -> None:
        while True:
            ticket = self.queue.take(timeout=0.1)
            if ticket is None:
                if self.queue.closed:
                    return
                continue
            group = [ticket]
            if self.config.max_batch > 1:
                group.extend(self._coalesce(ticket))
            with self._lock:
                self._inflight += len(group)
            started = time.monotonic()
            try:
                if len(group) == 1:
                    self._process(ticket)
                else:
                    self._process_batch(group)
            finally:
                elapsed = time.monotonic() - started
                with self._lock:
                    self._inflight -= len(group)
                # The EWMA feeds per-request retry-after hints, so a
                # pooled run reports its amortized per-request cost.
                self.queue.observe_service_time(elapsed / len(group))
                for t in group:
                    status = "ok" if t.error is None else \
                        type(t.error).__name__
                    self.bus.emit(REQUEST_DONE,
                                  request_id=t.request.request_id,
                                  status=status, seconds=elapsed,
                                  queue_depth=self.queue.depth)
                    t.done.set()

    # -- coalescing --------------------------------------------------------

    def _coalesce_key(self, ticket: Ticket) -> str | None:
        """Canonical compatibility key of one request, or ``None`` when
        the request must not be coalesced.

        Two requests may share a batched run only when everything that
        shapes the computation — matrix spec, kernel, backend,
        blocking, distribution, generator family, driver, partition —
        is identical; only the seed may differ (it becomes that
        request's entry in ``batch_seeds``).  Frozen-plan requests,
        chaos requests, and the pregenerated kernel (which has no
        batched tier) always run solo.
        """
        request = ticket.request
        if request.plan is not None or request.chaos:
            return None
        if request.config.get("kernel") == "pregen":
            return None
        config = {k: v for k, v in request.config.items() if k != "seed"}
        try:
            return json.dumps([request.matrix, config], sort_keys=True)
        except TypeError:
            return None

    def _coalesce(self, leader: Ticket) -> list:
        """Drain queued tickets compatible with *leader* (never blocks
        waiting for more arrivals)."""
        key = self._coalesce_key(leader)
        if key is None:
            return []
        return self.queue.take_matching(
            lambda t: self._coalesce_key(t) == key,
            self.config.max_batch - 1)

    @staticmethod
    def _seed_of(ticket: Ticket) -> int:
        from ..core.config import SketchConfig

        seed = ticket.request.config.get("seed")
        return int(seed) if seed is not None else SketchConfig().seed

    def _process_batch(self, group: list) -> None:
        """Execute coalesced *group* as one batched run and demux the
        stacked sketch back to the member tickets."""
        live = []
        for t in group:
            if t.deadline is not None and time.monotonic() >= t.deadline:
                self._miss_deadline(t, "queue")
            else:
                live.append(t)
        if not live:
            return
        if len(live) == 1:
            self._process(live[0])
            return
        leader = live[0]
        self.bus.emit(REQUESTS_COALESCED, batch=len(live),
                      leader=leader.request.request_id,
                      request_ids=[t.request.request_id for t in live])
        try:
            A, matrix_key = self._matrix_for(leader.request.matrix)
            plan = self._plan_for(
                leader.request, A,
                batch_seeds=[self._seed_of(t) for t in live])
            # The pooled run binds to the tightest member deadline; a
            # looser member whose pooled attempt dies on it is re-run
            # solo below, under its own budget.
            with_deadline = [t for t in live if t.deadline is not None]
            tight = min(with_deadline, key=lambda t: t.deadline) \
                if with_deadline else leader
            plan = self._propagate_deadline(plan, tight)
            self._tl.ticket = tight
            self._tl.matrix_key = matrix_key
            try:
                result = self._execute(plan, A, None, tight)
            finally:
                self._tl.ticket = None
                self._tl.matrix_key = None
        except ConfigError as err:
            # The members share one config, so a bad one fails them all
            # identically — and says nothing about pool health.
            self.breaker.record_neutral()
            with self._lock:
                self.counters["failed"] += len(live)
            for t in live:
                t.error = err
            return
        except ReproError:
            # Coalescing is an optimization, never a correctness risk:
            # any pooled failure (deadline, timeout, crash beyond the
            # recovery ladder) degrades to per-request processing so a
            # member with budget to spare still gets its solo answer.
            self.breaker.record_neutral()
            for t in live:
                self._process(t)
            return
        health = result.stats.health
        degraded = health is not None and (health.degraded_to_thread
                                           or health.degraded_to_serial)
        if degraded:
            self.breaker.record_failure()
        else:
            self.breaker.record_success()
        recovered = bool(result.stats.extra.get("serve_recovered"))
        for index, t in enumerate(live):
            sub = dataclasses.replace(result, sketch=result.sketch[index])
            t.response = encode_result(sub, t.request.output,
                                       t.request.request_id)
            t.response["coalesced"] = {"batch": len(live), "index": index}
            if recovered:
                t.response["recovered"] = True
            if t.slow_client > 0:
                t.response["slow_client"] = t.slow_client
        with self._lock:
            self.counters["served"] += len(live)
            self.counters["coalesced"] += len(live)

    def _process(self, ticket: Ticket) -> None:
        request = ticket.request
        try:
            if ticket.deadline is not None \
                    and time.monotonic() >= ticket.deadline:
                self._miss_deadline(ticket, "queue")
                return
            A, matrix_key = self._matrix_for(request.matrix)
            plan = self._plan_for(request, A)
            plan = self._propagate_deadline(plan, ticket)
            injector = self._injector_for(request)
            self._tl.ticket = ticket
            self._tl.matrix_key = matrix_key
            try:
                result = self._execute(plan, A, injector, ticket)
            finally:
                self._tl.ticket = None
                self._tl.matrix_key = None
            health = result.stats.health
            degraded = health is not None and (health.degraded_to_thread
                                               or health.degraded_to_serial)
            if degraded:
                # Served fine (the ladder is bit-identical), but the
                # pool is sick — that is the breaker's trip signal.
                self.breaker.record_failure()
            else:
                self.breaker.record_success()
            ticket.response = encode_result(result, request.output,
                                            request.request_id)
            if result.stats.extra.get("serve_recovered"):
                ticket.response["recovered"] = True
            if ticket.slow_client > 0:
                # Chaos hook: the transport delays writing this response
                # on its own connection thread; executors stay free.
                ticket.response["slow_client"] = ticket.slow_client
            with self._lock:
                self.counters["served"] += 1
        except RequestDeadlineError as err:
            # Raised below _process (deadline expired between admission
            # checks, or inside an execution layer): same bookkeeping as
            # a miss detected here.
            self._record_deadline_miss(ticket, err.phase)
            ticket.error = err
        except TaskTimeoutError as err:
            if ticket.deadline is not None \
                    and time.monotonic() >= ticket.deadline:
                self._miss_deadline(ticket, "execute", str(err))
            else:
                self.breaker.record_failure()
                with self._lock:
                    self.counters["failed"] += 1
                ticket.error = err
        except ConfigError as err:
            # A bad request says nothing about pool health.
            self.breaker.record_neutral()
            with self._lock:
                self.counters["failed"] += 1
            ticket.error = err
        except ReproError as err:
            self.breaker.record_failure()
            with self._lock:
                self.counters["failed"] += 1
            ticket.error = err

    def _record_deadline_miss(self, ticket: Ticket, phase: str) -> None:
        with self._lock:
            self.counters["deadline_missed"] += 1
        self.bus.emit(DEADLINE_MISSED,
                      request_id=ticket.request.request_id, phase=phase)
        # A deadline miss says nothing about pool health either way,
        # but a half-open probe must not stay checked out forever.
        self.breaker.record_neutral()

    def _miss_deadline(self, ticket: Ticket, phase: str,
                       detail: str = "") -> None:
        self._record_deadline_miss(ticket, phase)
        message = (f"request {ticket.request.request_id} deadline expired "
                   f"in phase {phase!r}")
        if detail:
            message += f": {detail}"
        ticket.error = RequestDeadlineError(message, phase=phase)

    def _execute(self, plan, A, injector, ticket: Ticket):
        """One run, with deterministic crash recovery.

        A warm-pool collapse mid-request (worker massacre, supervisor
        taint short of a deadline) falls back to a serial re-execution
        of the same plan — bit-identical by the coordinate-keyed RNG
        contract — so the client sees a correct response and only the
        stats betray the crash.
        """
        from ..plan.runtime import Runtime

        runtime = Runtime(self.bus)
        runtime.register_local_driver("process", self._warm_process_driver)
        try:
            return runtime.run(plan, A, injector=injector, cache=self.cache)
        except (RequestDeadlineError, TaskTimeoutError, ConfigError):
            raise
        except ReproError:
            if ticket.deadline is not None \
                    and time.monotonic() >= ticket.deadline:
                raise
            with self._lock:
                self.counters["recovered"] += 1
            serial = dataclasses.replace(plan, driver="serial", threads=1)
            result = Runtime(self.bus).run(serial, A, cache=self.cache)
            result.stats.extra["serve_recovered"] = True
            return result

    # -- planning ----------------------------------------------------------

    def _plan_for(self, request: SketchRequest, A, batch_seeds=None):
        from ..core.config import SketchConfig
        from ..parallel.procpool import WorkerPoolConfig
        from ..parallel.resilience import ResilienceConfig
        from ..plan.planner import Planner
        from ..plan.spec import SketchPlan

        if request.plan is not None:
            try:
                return SketchPlan.from_dict(request.plan)
            except (KeyError, TypeError, ValueError) as exc:
                raise ConfigError(
                    f"invalid plan record: {exc}") from None
        cfg_fields = dict(request.config)
        d = cfg_fields.pop("d", None)
        gamma = cfg_fields.pop("gamma", None)
        driver = cfg_fields.pop("driver", "auto")
        workers = cfg_fields.pop("workers", None)
        shards = cfg_fields.pop("shards", None)
        strategy = cfg_fields.pop("partition_strategy", "even")
        partition = None
        if shards is not None:
            from ..plan.spec import PartitionSpec

            partition = PartitionSpec(shards=int(shards),
                                      strategy=str(strategy))
        resilience = cfg_fields.pop("resilience", None)
        if resilience is not None:
            if not isinstance(resilience, dict):
                raise ConfigError("config.resilience must be an object")
            try:
                resilience = ResilienceConfig(**resilience)
            except TypeError as exc:
                raise ConfigError(
                    f"invalid resilience config: {exc}") from None
        try:
            cfg = SketchConfig(resilience=resilience, **cfg_fields)
        except TypeError as exc:
            raise ConfigError(f"invalid config: {exc}") from None
        pool = None
        if workers is not None:
            pool = WorkerPoolConfig(workers=int(workers))
        return Planner().compile(A, cfg, d=d, gamma=gamma, driver=driver,
                                 pool=pool, partition=partition,
                                 batch_seeds=batch_seeds, cache=self.cache)

    def _propagate_deadline(self, plan, ticket: Ticket):
        """Fold the request's remaining budget into the plan's per-task
        deadline, so every execution layer under this request — engine
        futures, serial post-hoc checks, the pool's fallback rungs —
        enforces it."""
        from ..parallel.resilience import ResilienceConfig

        if ticket.deadline is None:
            return plan
        remaining = ticket.deadline - time.monotonic()
        if remaining <= 0:
            raise RequestDeadlineError(
                f"request {ticket.request.request_id} deadline expired "
                f"before execution began", phase="queue")
        base = plan.resilience if plan.resilience is not None \
            else ResilienceConfig()
        timeout = remaining if base.task_timeout is None \
            else min(base.task_timeout, remaining)
        return dataclasses.replace(
            plan, resilience=dataclasses.replace(base, task_timeout=timeout))

    def _injector_for(self, request: SketchRequest):
        if not request.chaos or not request.chaos.get("faults"):
            return None
        from ..faults.injector import FaultInjector
        from ..faults.plan import FaultPlan, FaultSpec

        specs = []
        for f in request.chaos["faults"]:
            fields = dict(f)
            if fields.get("task") is not None:
                fields["task"] = tuple(fields["task"])
            specs.append(FaultSpec(**fields))
        return FaultInjector(FaultPlan(
            specs, seed=int(request.chaos.get("seed", 0))))

    # -- matrices and warm pools -------------------------------------------

    def _matrix_for(self, spec: dict):
        """Load (or LRU-recall) the request's input matrix; returns
        ``(A, content_fingerprint)``."""
        from ..cache.keys import matrix_fingerprint

        key = json.dumps(spec, sort_keys=True)
        with self._lock:
            entry = self._matrices.get(key)
            if entry is not None:
                self._matrices.move_to_end(key)
                return entry
        if "random" in spec:
            from ..sparse import random_sparse

            m, n, density = spec["random"]
            A = random_sparse(m, n, density, seed=spec.get("seed", 0))
        else:
            from ..sparse.io_mm import read_matrix_market

            try:
                A = read_matrix_market(spec["path"])
            except OSError as exc:
                raise ConfigError(
                    f"cannot read matrix {spec['path']!r}: {exc}") from None
        entry = (A, matrix_fingerprint(A))
        with self._lock:
            self._matrices[key] = entry
            self._matrices.move_to_end(key)
            while len(self._matrices) > self.config.max_matrices:
                self._matrices.popitem(last=False)
        return entry

    def _pool_key(self, plan, matrix_key: str) -> tuple:
        b_n = plan.b_n if plan.kernel == "algo4" else None
        # Sharded execution must never share a warm pool across stripes:
        # a per-shard sub-plan's workers hold that stripe of A in shared
        # memory, so the stripe identity (and, for a parent plan, the
        # partition request) is part of the pool's address.
        shard = None
        if plan.shard is not None:
            shard = ("shard", int(plan.shard.col_start),
                     int(plan.shard.col_stop))
        elif plan.partition is not None:
            shard = ("partition", int(plan.partition.shards),
                     plan.partition.strategy)
        return (matrix_key, plan.kernel, plan.backend, b_n, shard)

    def _get_pool(self, plan, A, matrix_key: str, blocked):
        """Fetch or build the warm pool bound to this (matrix, kernel,
        backend, partition); LRU-evicts (and closes) excess pools."""
        from ..parallel.procpool import ProcessPoolSupervisor

        key = self._pool_key(plan, matrix_key)
        stale = None
        with self._pool_lock:
            pool = self._pools.get(key)
            if pool is not None:
                if not pool.tainted and pool.compatible(plan):
                    self._pools.move_to_end(key)
                    return pool
                stale = self._pools.pop(key)
        if stale is not None:
            stale.close()
        pool = ProcessPoolSupervisor(plan, A, plan.rng_factory(),
                                     bus=self.bus, blocked=blocked)
        pool.start()
        evicted = []
        with self._pool_lock:
            self._pools[key] = pool
            self._pools.move_to_end(key)
            while len(self._pools) > self.config.warm_pools:
                evicted.append(self._pools.popitem(last=False)[1])
        for old in evicted:
            old.close()
        return pool

    def _recycle_pool(self, plan, matrix_key: str) -> None:
        key = self._pool_key(plan, matrix_key)
        with self._pool_lock:
            pool = self._pools.pop(key, None)
        if pool is not None:
            pool.close()

    def _warm_process_driver(self, runtime, plan, A, factory, blocked,
                             injector):
        """Instance-local ``process`` driver: execute on the warm,
        reused supervisor instead of building one per request."""
        ticket: Ticket = self._tl.ticket
        matrix_key: str = self._tl.matrix_key
        pool = self._get_pool(plan, A, matrix_key, blocked)
        if ticket is not None and ticket.chaos_kill_pool():
            self._schedule_pool_kill(pool)
        try:
            return pool.execute(plan, factory, injector=injector,
                                deadline=ticket.deadline
                                if ticket is not None else None)
        finally:
            if pool.tainted:
                self._recycle_pool(plan, matrix_key)

    def _schedule_pool_kill(self, pool) -> None:
        """Chaos hook ``kill_pool``: SIGKILL every live worker shortly
        after dispatch begins, mid-request."""
        victims = pool.worker_pids()

        def _massacre() -> None:
            for pid in victims:
                try:
                    os.kill(pid, signal.SIGKILL)
                except OSError:  # pragma: no cover - already gone
                    pass

        timer = threading.Timer(0.05, _massacre)
        timer.daemon = True
        timer.start()
