"""``repro serve`` — the long-lived, crash-tolerant sketch service.

The "fixed A, many sketches" workload of the paper is a request-serving
pattern: one sparse matrix, a stream of sketch requests against it.
This package turns the plan/compile/execute stack into a daemon built
for that shape:

* :class:`ServeConfig` — service policy (queue bound, deadlines,
  breaker, drain budget, warm-pool sizing);
* :class:`AdmissionQueue` — bounded FIFO with explicit 429-style load
  shedding and queue-depth-derived retry hints;
* :class:`CircuitBreaker` — consecutive pool degradations flip the
  service to fast shedding, half-open probes recover it;
* :class:`SketchService` — the transport-independent core: warm
  :class:`~repro.parallel.ProcessPoolSupervisor` reuse, per-request
  deadlines propagated into every execution layer, deterministic
  (bit-identical) serial re-execution when a pool dies mid-request,
  graceful drain;
* :class:`ServeDaemon` — the stdlib HTTP shell with ``/healthz``,
  ``/readyz``, ``/metrics``, and ``POST /v1/sketch``.

Typed failures: shed requests raise/return
:class:`~repro.errors.RequestShedError` (429/503), expired ones
:class:`~repro.errors.RequestDeadlineError` (504) — a client can always
tell *why* it was refused and when to come back.
"""

from .admission import AdmissionQueue
from .breaker import CircuitBreaker
from .config import ServeConfig
from .daemon import ServeDaemon
from .protocol import SketchRequest, encode_result, parse_request, sketch_digest
from .service import SketchService, Ticket

__all__ = [
    "AdmissionQueue",
    "CircuitBreaker",
    "ServeConfig",
    "ServeDaemon",
    "SketchRequest",
    "SketchService",
    "Ticket",
    "encode_result",
    "parse_request",
    "sketch_digest",
]
