"""Wire protocol of the sketch service: request parsing, response
encoding.

Requests are JSON documents::

    {
      "matrix":  {"random": [m, n, density], "seed": 0}   // or
                 {"path": "A.mtx"},
      "plan":    { ...SketchPlan.to_dict()... },          // or
      "config":  {"kernel": "algo3", "d": 64, "seed": 7,
                  "driver": "process", ...},
      "deadline_seconds": 5.0,                            // optional
      "output":  "digest" | "array" | "none",             // default digest
      "chaos":   { ... }                                  // gated, see below
    }

Exactly one of ``plan`` (a full frozen plan record, replayed verbatim)
or ``config`` (planning inputs compiled server-side by
:class:`~repro.plan.Planner`) must be present; ``config`` may be
omitted entirely for all-defaults planning.  ``output="array"`` returns
the sketch itself as base64-encoded little-endian float64 C-order bytes
— the representation is exact, so two servers (or a server and a local
``Runtime.run``) can be compared for *bit-identity*, which is the
service's core determinism contract.  ``"digest"`` returns only a
checksum of those bytes (cheap bit-identity checks), ``"none"`` just
stats.

``chaos`` is refused unless the daemon was started with
``--allow-chaos``: it carries a fault plan for the request
(``faults``: list of :class:`~repro.faults.FaultSpec` fields), an
optional ``slow_client`` delay in seconds (the *response* is written
that much later, proving a slow reader cannot stall the executor
threads), and ``kill_pool: true`` (kill the warm pool's workers
mid-request, exercising crash recovery).

Parsing raises :class:`~repro.errors.ConfigError` for malformed
requests — the daemon maps that to HTTP 400.
"""

from __future__ import annotations

import base64
import json
import sys
from dataclasses import dataclass, field

from ..errors import ConfigError

__all__ = ["SketchRequest", "parse_request", "encode_result",
           "sketch_digest", "OUTPUT_MODES"]

OUTPUT_MODES = ("digest", "array", "none")

_CONFIG_FIELDS = frozenset({
    "gamma", "distribution", "rng_kind", "kernel", "backend", "b_d", "b_n",
    "seed", "normalize", "threads", "resilience", "d", "driver", "workers",
})

_CHAOS_FIELDS = frozenset({"faults", "seed", "slow_client", "kill_pool"})

_FAULT_FIELDS = frozenset({"kind", "task", "max_hits", "sleep_seconds",
                           "magnitude", "kernel", "scope"})


@dataclass
class SketchRequest:
    """One parsed, validated request (transport-independent)."""

    matrix: dict
    plan: dict | None = None
    config: dict = field(default_factory=dict)
    deadline_seconds: float | None = None
    output: str = "digest"
    chaos: dict | None = None
    request_id: str = ""


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ConfigError(message)


def _parse_matrix(spec) -> dict:
    _require(isinstance(spec, dict), "matrix must be an object")
    if "random" in spec:
        _require(set(spec) <= {"random", "seed"},
                 "random matrix spec allows only 'random' and 'seed'")
        dims = spec["random"]
        _require(isinstance(dims, (list, tuple)) and len(dims) == 3,
                 "matrix.random must be [m, n, density]")
        m, n, density = dims
        _require(isinstance(m, int) and isinstance(n, int)
                 and m > 0 and n > 0, "matrix dimensions must be positive")
        _require(isinstance(density, (int, float)) and 0 < density <= 1,
                 "matrix density must be in (0, 1]")
        seed = spec.get("seed", 0)
        _require(isinstance(seed, int), "matrix seed must be an integer")
        return {"random": [int(m), int(n), float(density)],
                "seed": int(seed)}
    if "path" in spec:
        _require(set(spec) <= {"path"},
                 "path matrix spec allows only 'path'")
        _require(isinstance(spec["path"], str) and spec["path"],
                 "matrix.path must be a non-empty string")
        return {"path": spec["path"]}
    raise ConfigError("matrix spec needs either 'random' or 'path'")


def _parse_chaos(spec, allow_chaos: bool) -> dict:
    _require(allow_chaos,
             "chaos injection is disabled; start the daemon with "
             "--allow-chaos to enable fault hooks")
    _require(isinstance(spec, dict), "chaos must be an object")
    unknown = set(spec) - _CHAOS_FIELDS
    _require(not unknown, f"unknown chaos field(s): {sorted(unknown)}")
    faults = spec.get("faults", [])
    _require(isinstance(faults, list), "chaos.faults must be a list")
    for f in faults:
        _require(isinstance(f, dict), "each chaos fault must be an object")
        bad = set(f) - _FAULT_FIELDS
        _require(not bad, f"unknown fault field(s): {sorted(bad)}")
        _require("kind" in f, "each chaos fault needs a 'kind'")
    slow = spec.get("slow_client")
    _require(slow is None or (isinstance(slow, (int, float))
                              and 0 <= slow <= 30),
             "chaos.slow_client must be in [0, 30] seconds")
    kill = spec.get("kill_pool", False)
    _require(isinstance(kill, bool), "chaos.kill_pool must be a boolean")
    return spec


def parse_request(body: bytes | str | dict, *,
                  allow_chaos: bool = False) -> SketchRequest:
    """Validate one request document into a :class:`SketchRequest`.

    Accepts raw JSON bytes/text or an already-decoded dict; raises
    :class:`ConfigError` (→ HTTP 400) on any malformed field.
    """
    if isinstance(body, (bytes, bytearray, str)):
        try:
            payload = json.loads(body)
        except (ValueError, UnicodeDecodeError) as exc:
            raise ConfigError(f"request body is not valid JSON: {exc}") \
                from None
    else:
        payload = body
    _require(isinstance(payload, dict), "request body must be a JSON object")
    known = {"matrix", "plan", "config", "deadline_seconds", "output",
             "chaos", "request_id"}
    unknown = set(payload) - known
    _require(not unknown, f"unknown request field(s): {sorted(unknown)}")
    _require("matrix" in payload, "request needs a 'matrix' spec")
    matrix = _parse_matrix(payload["matrix"])

    request_id = payload.get("request_id", "")
    _require(isinstance(request_id, str) and len(request_id) <= 256,
             "request_id must be a string of at most 256 characters")

    plan = payload.get("plan")
    config = payload.get("config", {})
    _require(plan is None or isinstance(plan, dict),
             "plan must be an object (SketchPlan.to_dict())")
    _require(isinstance(config, dict), "config must be an object")
    _require(plan is None or not config,
             "pass either a full 'plan' or planning 'config', not both")
    bad = set(config) - _CONFIG_FIELDS
    _require(not bad, f"unknown config field(s): {sorted(bad)}")

    deadline = payload.get("deadline_seconds")
    _require(deadline is None or (isinstance(deadline, (int, float))
                                  and deadline > 0),
             "deadline_seconds must be a positive number")

    output = payload.get("output", "digest")
    _require(output in OUTPUT_MODES,
             f"output must be one of {OUTPUT_MODES}, got {output!r}")

    chaos = payload.get("chaos")
    if chaos is not None:
        chaos = _parse_chaos(chaos, allow_chaos)

    return SketchRequest(matrix=matrix, plan=plan, config=dict(config),
                         deadline_seconds=(None if deadline is None
                                           else float(deadline)),
                         output=output, chaos=chaos,
                         request_id=request_id)


def sketch_digest(sketch) -> str:
    """Checksum of the sketch's canonical bytes (little-endian float64,
    C order) — the cheap form of the bit-identity contract."""
    import numpy as np

    from ..persist.checksum import checksum_bytes, default_algo

    canonical = np.ascontiguousarray(sketch, dtype="<f8")
    return f"{default_algo()}:{checksum_bytes(canonical.tobytes(), default_algo())}"


def encode_result(result, output: str = "digest",
                  request_id: str = "") -> dict:
    """Serialize a :class:`~repro.plan.SketchResult` for the wire."""
    import numpy as np

    sketch = result.sketch
    doc = {
        "status": "ok",
        "request_id": request_id,
        "plan_digest": result.plan.digest(),
        "kernel": result.kernel_used,
        "scale": result.scale,
        "sketch": {
            "shape": list(sketch.shape),
            "dtype": "<f8",
            "digest": sketch_digest(sketch),
        },
        "stats": {
            "total_seconds": result.stats.total_seconds,
            "sample_seconds": result.stats.sample_seconds,
            "compute_seconds": result.stats.compute_seconds,
            "conversion_seconds": result.stats.conversion_seconds,
            "samples_generated": result.stats.samples_generated,
            "driver": result.stats.extra.get("driver"),
        },
    }
    if result.stats.health is not None:
        h = result.stats.health
        doc["health"] = {
            "summary": h.summary(),
            "ok": h.ok,
            "clean": h.clean,
            "workers_lost": h.workers_lost,
            "degraded_to_thread": h.degraded_to_thread,
            "degraded_to_serial": h.degraded_to_serial,
            "timeouts": h.timeouts,
        }
    if output == "array":
        canonical = np.ascontiguousarray(sketch, dtype="<f8")
        if sys.byteorder != "little":  # pragma: no cover - BE hosts
            canonical = canonical.astype("<f8")
        doc["sketch"]["data"] = base64.b64encode(
            canonical.tobytes()).decode("ascii")
    elif output == "none":
        doc["sketch"].pop("digest")
    return doc
