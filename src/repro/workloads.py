"""Surrogate test-matrix suites for the paper's experiments.

The paper evaluates on SuiteSparse Matrix Collection matrices (Table I for
SpMM, Table VIII for least squares).  The collection is unavailable in
this offline reproduction, so each matrix is replaced by a deterministic
synthetic surrogate from the same *structure class* with the published
shape statistics (see DESIGN.md's substitution table and
:mod:`repro.sparse.generators`):

* ``mk-12, ch7-9-b3, shar_te2-b2, cis-n4c6-b4`` — simplicial-complex
  boundary matrices: constant nonzeros per column, +-1 values ->
  :func:`repro.sparse.fixed_col_nnz_sparse`;
* ``mesh_deform`` — FEM profile -> :func:`repro.sparse.banded_sparse`;
* ``rail*`` — set-covering LPs with hierarchically overlapping column
  supports (stored transposed to be tall, as the paper does) ->
  :func:`repro.sparse.rail_like_sparse`, which reproduces the published
  ``cond(AD)`` band; ``spal_004`` — dense-ish random ->
  :func:`repro.sparse.random_sparse`;
* ``specular, connectus, landmark`` — numerically rank-deficient
  (cond ~ 1e14..1e18) -> :func:`repro.sparse.near_rank_deficient`.

Each case carries the paper's published numbers (dimensions, nnz, and the
reported table values) so benches can print paper-vs-measured side by
side, plus per-scale dimensions: ``ci`` (seconds on a laptop core),
``small`` (minutes), ``paper`` (the published dimensions — memory-hungry;
provided for completeness).  Select with the ``REPRO_SCALE`` environment
variable or an explicit argument.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict

from .errors import ConfigError
from .sparse import (
    CSCMatrix,
    banded_sparse,
    fixed_col_nnz_sparse,
    near_rank_deficient,
    rail_like_sparse,
    random_sparse,
)

__all__ = [
    "MatrixCase",
    "SPMM_SUITE",
    "LSQ_SUITE",
    "ABNORMAL_SUITE",
    "build_matrix",
    "current_scale",
    "scale_dims",
]

SCALES = ("ci", "small", "paper")

#: Linear shrink factors applied to (m, n) per scale.
_SCALE_FACTORS = {"ci": 0.02, "small": 0.1, "paper": 1.0}


def current_scale(default: str = "ci") -> str:
    """The active experiment scale, from ``REPRO_SCALE`` (default ``ci``)."""
    scale = os.environ.get("REPRO_SCALE", default)
    if scale not in SCALES:
        raise ConfigError(
            f"REPRO_SCALE must be one of {SCALES}, got {scale!r}"
        )
    return scale


def scale_dims(m: int, n: int, scale: str, *, min_m: int = 64,
               min_n: int = 24) -> tuple[int, int]:
    """Shrink the paper dimensions to the requested scale with floors."""
    if scale not in SCALES:
        raise ConfigError(f"scale must be one of {SCALES}, got {scale!r}")
    f = _SCALE_FACTORS[scale]
    return max(min_m, int(round(m * f))), max(min_n, int(round(n * f)))


@dataclass(frozen=True)
class MatrixCase:
    """One paper test matrix: published stats + surrogate builder.

    ``paper`` holds the row of the paper's table (for side-by-side
    printing); ``builder(m, n, seed)`` produces the surrogate at any
    dimensions.
    """

    name: str
    m: int
    n: int
    nnz: int
    structure: str
    builder: Callable[[int, int, int], CSCMatrix]
    paper: Dict[str, float] = field(default_factory=dict)
    seed: int = 0
    #: Optional per-scale dimension caps ``{scale: (max_m, max_n)}`` keeping
    #: the heaviest surrogates feasible for the direct-QR baseline at the
    #: reduced scales (never applied at ``paper`` scale).
    scale_caps: Dict[str, tuple] = field(default_factory=dict)

    @property
    def density(self) -> float:
        """The paper's published density."""
        return self.nnz / (self.m * self.n)

    @property
    def col_nnz(self) -> int:
        """Average stored entries per column (rounded)."""
        return max(1, round(self.nnz / self.n))


def _load_real_matrix(case: MatrixCase, directory: str) -> CSCMatrix | None:
    """Load the genuine collection matrix for *case*, when available.

    Looks for ``<name>.mtx`` under *directory*; applies the paper's data
    hygiene: wide matrices are transposed to be tall ("test matrices that
    have n >> m are transposed"), and empty rows/columns are removed ("we
    removed 158 empty columns from specular and 54 empty rows from
    connectus").  Returns ``None`` when the file is absent.
    """
    from pathlib import Path

    from .sparse import read_matrix_market

    path = Path(directory) / f"{case.name}.mtx"
    if not path.exists():
        return None
    A = read_matrix_market(path)
    if A.shape[0] < A.shape[1]:
        A = A.transpose()
    # Drop empty columns, then empty rows (order matters only cosmetically).
    import numpy as np

    keep_cols = np.flatnonzero(A.col_nnz() > 0)
    if keep_cols.size < A.shape[1]:
        coo = A.to_coo()
        remap = -np.ones(A.shape[1], dtype=np.int64)
        remap[keep_cols] = np.arange(keep_cols.size)
        from .sparse import COOMatrix

        A = COOMatrix((A.shape[0], keep_cols.size), coo.rows,
                      remap[coo.cols], coo.vals).to_csc()
    row_counts = np.diff(A.to_csr().indptr)
    keep_rows = np.flatnonzero(row_counts > 0)
    if keep_rows.size < A.shape[0]:
        coo = A.to_coo()
        remap = -np.ones(A.shape[0], dtype=np.int64)
        remap[keep_rows] = np.arange(keep_rows.size)
        from .sparse import COOMatrix

        A = COOMatrix((keep_rows.size, A.shape[1]), remap[coo.rows],
                      coo.cols, coo.vals).to_csc()
    return A


def build_matrix(case: MatrixCase, scale: str | None = None) -> CSCMatrix:
    """Instantiate a case's matrix at the given (or active) scale.

    When the ``REPRO_MATRIX_DIR`` environment variable points at a
    directory containing the genuine SuiteSparse collection files
    (``<name>.mtx``), the real matrix is loaded (paper dimensions,
    transposed/cleaned per the paper's notes) and the scale argument is
    ignored; otherwise the deterministic surrogate is generated at the
    scaled dimensions.
    """
    directory = os.environ.get("REPRO_MATRIX_DIR")
    if directory:
        real = _load_real_matrix(case, directory)
        if real is not None:
            return real
    scale = current_scale() if scale is None else scale
    m, n = scale_dims(case.m, case.n, scale)
    if scale != "paper" and scale in case.scale_caps:
        cap_m, cap_n = case.scale_caps[scale]
        m, n = min(m, cap_m), min(n, cap_n)
    return case.builder(m, n, case.seed)


def _boundary(k: int):
    """Builder for boundary-matrix surrogates with ``k`` entries/column."""
    def build(m: int, n: int, seed: int) -> CSCMatrix:
        return fixed_col_nnz_sparse(m, n, min(k, m), seed=seed, values="pm1")
    return build


def _banded(density: float):
    def build(m: int, n: int, seed: int) -> CSCMatrix:
        return banded_sparse(m, n, density, bandwidth_frac=0.03, seed=seed)
    return build


def _rail(nnz_per_row: float, mix_spread: float = 2.5):
    def build(m: int, n: int, seed: int) -> CSCMatrix:
        # Per-row participation in rail-like LPs is tied to the row count
        # after transposition; target the published nnz/m entries per row.
        nnz = max(4 * n, int(round(nnz_per_row * m)))
        return rail_like_sparse(m, n, min(nnz, m * n // 2), seed=seed,
                                mix_spread=mix_spread)
    return build


def _densish(nnz_per_row: float):
    def build(m: int, n: int, seed: int) -> CSCMatrix:
        # Preserve the per-row nonzero count under scaling: at reduced n
        # the paper density would leave most rows empty, which degrades
        # every per-row mechanism (Algorithm 4 reuse, QR rotations).
        density = min(0.5, max(nnz_per_row / n, 2.0 / m))
        return random_sparse(m, n, density, seed=seed)
    return build


def _illcond(nnz_per_row: float, perturb: float):
    def build(m: int, n: int, seed: int) -> CSCMatrix:
        density = min(0.5, max(nnz_per_row / n, 2.0 / m))
        return near_rank_deficient(m, n, density, seed=seed,
                                   dup_cols=2, perturb=perturb)
    return build


#: Table I — SpMM benchmark suite (d = 3 n in the paper's runs).
SPMM_SUITE: Dict[str, MatrixCase] = {
    "mk-12": MatrixCase(
        name="mk-12", m=13860, n=1485, nnz=41580,
        structure="boundary (28/col, +-1)", builder=_boundary(28), seed=101,
        paper={"d": 4455, "density": 2.02e-3,
               "mkl": 0.137, "eigen": 0.145, "julia": 0.118,
               "algo3_uniform": 0.070, "algo3_pm1": 0.0501},
    ),
    "ch7-9-b3": MatrixCase(
        name="ch7-9-b3", m=105840, n=17640, nnz=423360,
        structure="boundary (24/col, +-1)", builder=_boundary(24), seed=102,
        paper={"d": 52920, "density": 2.27e-4,
               "mkl": 16.43, "eigen": 16.58, "julia": 14.86,
               "algo3_uniform": 7.74, "algo3_pm1": 5.89},
    ),
    "shar_te2-b2": MatrixCase(
        name="shar_te2-b2", m=200200, n=17160, nnz=600600,
        structure="boundary (35/col, +-1)", builder=_boundary(35), seed=103,
        paper={"d": 51480, "density": 1.75e-4,
               "mkl": 21.93, "eigen": 22.05, "julia": 27.59,
               "algo3_uniform": 10.20, "algo3_pm1": 7.63},
    ),
    "mesh_deform": MatrixCase(
        name="mesh_deform", m=234023, n=9393, nnz=853829,
        structure="FEM banded", builder=_banded(3.88e-4), seed=104,
        paper={"d": 28179, "density": 3.88e-4,
               "mkl": 15.82, "eigen": 16.08, "julia": 14.99,
               "algo3_uniform": 8.65, "algo3_pm1": 5.74},
    ),
    "cis-n4c6-b4": MatrixCase(
        name="cis-n4c6-b4", m=20058, n=5970, nnz=100290,
        structure="boundary (17/col, +-1)", builder=_boundary(17), seed=105,
        paper={"d": 17910, "density": 8.38e-4,
               "mkl": 1.351, "eigen": 1.36, "julia": 1.18,
               "algo3_uniform": 0.74, "algo3_pm1": 0.531},
    ),
}

#: Table VIII — least-squares suite (dimensions *after* the paper's
#: transposition of wide matrices; gamma = 2).
LSQ_SUITE: Dict[str, MatrixCase] = {
    "rail582": MatrixCase(
        name="rail582", m=56097, n=582, nnz=402290,
        structure="rail LP (hier. overlap)", builder=_rail(402290 / 56097),
        seed=201,
        paper={"cond": 185.91, "mem_mb": 6.89,
               "lsqr_d_time": 0.34, "lsqr_d_iter": 477,
               "sap_time": 0.18, "sap_iter": 80, "sap_sketch": 0.07,
               "suitesparse_time": 0.55,
               "sap_mem": 5.42, "suitesparse_mem": 218.94,
               "err_lsqrd": 1.28e-14, "err_sap": 5.21e-15,
               "err_ss": 7.02e-16, "sap_method": "qr"},
    ),
    "rail2586": MatrixCase(
        name="rail2586", m=923269, n=2586, nnz=8011362,
        structure="rail LP (hier. overlap)", builder=_rail(8011362 / 923269, 2.8),
        seed=202,
        scale_caps={"small": (46000, 259)},
        paper={"cond": 496.0, "mem_mb": 135.57,
               "lsqr_d_time": 24.23, "lsqr_d_iter": 1412,
               "sap_time": 4.78, "sap_iter": 87, "sap_sketch": 1.17,
               "suitesparse_time": 39.75,
               "sap_mem": 107.0, "suitesparse_mem": 15950.11,
               "err_lsqrd": 2.17e-14, "err_sap": 3.24e-15,
               "err_ss": 1.82e-15, "sap_method": "qr"},
    ),
    "rail4284": MatrixCase(
        name="rail4284", m=1096894, n=4284, nnz=11284032,
        structure="rail LP (hier. overlap)", builder=_rail(11284032 / 1096894, 2.8),
        seed=203,
        scale_caps={"small": (55000, 428)},
        paper={"cond": 399.78, "mem_mb": 189.32,
               "lsqr_d_time": 63.0, "lsqr_d_iter": 2562,
               "sap_time": 11.52, "sap_iter": 88, "sap_sketch": 2.65,
               "suitesparse_time": 149.27,
               "sap_mem": 293.64, "suitesparse_mem": 38959.24,
               "err_lsqrd": 1.59e-14, "err_sap": 2.55e-15,
               "err_ss": 1.73e-15, "sap_method": "qr"},
    ),
    "spal_004": MatrixCase(
        name="spal_004", m=321696, n=10203, nnz=46168124,
        structure="dense-ish random", builder=_densish(46168124 / 321696),
        seed=204,
        scale_caps={"small": (16000, 320)},
        paper={"cond": 39389.87, "mem_mb": 741.26,
               "lsqr_d_time": 381.23, "lsqr_d_iter": 4830,
               "sap_time": 66.99, "sap_iter": 80, "sap_sketch": 11.48,
               "suitesparse_time": 508.41,
               "sap_mem": 1665.62, "suitesparse_mem": 49807.51,
               "err_lsqrd": 3.36e-14, "err_sap": 1.29e-15,
               "err_ss": 1.03e-16, "sap_method": "qr"},
    ),
    "specular": MatrixCase(
        name="specular", m=477976, n=1442, nnz=7647040,
        structure="near rank-deficient (cond~1e14)",
        builder=_illcond(7647040 / 477976, 1e-14), seed=205,
        scale_caps={"small": (24000, 144)},
        paper={"cond": 2.31e14, "mem_mb": 122.37,
               "lsqr_d_time": 4.92, "lsqr_d_iter": 351,
               "sap_time": 3.43, "sap_iter": 79, "sap_sketch": 0.35,
               "suitesparse_time": 2.04,
               "sap_mem": 33.27, "suitesparse_mem": 984.10,
               "err_lsqrd": 7.16e-15, "err_sap": 3.30e-15,
               "err_ss": 1.62e-14, "sap_method": "svd"},
    ),
    "connectus": MatrixCase(
        name="connectus", m=394792, n=458, nnz=1127525,
        structure="near rank-deficient (cond~1e16)",
        builder=_illcond(1127525 / 394792, 1e-16), seed=206,
        scale_caps={"small": (20000, 92)},
        paper={"cond": 1.27e16, "mem_mb": 21.20,
               "lsqr_d_time": 0.19, "lsqr_d_iter": 73,
               "sap_time": 0.60, "sap_iter": 77, "sap_sketch": 0.13,
               "suitesparse_time": 1.46,
               "sap_mem": 3.36, "suitesparse_mem": 769.55,
               "err_lsqrd": 2.80e-15, "err_sap": 5.33e-15,
               "err_ss": 4.48e-15, "sap_method": "svd"},
    ),
    "landmark": MatrixCase(
        name="landmark", m=71952, n=2704, nnz=1146848,
        structure="near rank-deficient (cond~1e18)",
        builder=_illcond(1146848 / 71952, 1e-17), seed=207,
        scale_caps={"small": (7200, 270)},
        paper={"cond": 1.39e18, "mem_mb": 18.37,
               "lsqr_d_time": 0.80, "lsqr_d_iter": 462,
               "sap_time": 9.61, "sap_iter": 80, "sap_sketch": 0.11,
               "suitesparse_time": 3.74,
               "sap_mem": 116.99, "suitesparse_mem": 850.54,
               "err_lsqrd": 5.65e-15, "err_sap": 2.64e-15,
               "err_ss": 5.30e-16, "sap_method": "svd"},
    ),
}

#: Table VI — the exotic synthetic patterns (m=100000, n=10000, rho~1e-3).
#: Builders take the already-scaled (m, n); the dense-line period scales so
#: the density stays ~1e-3 at every scale.
def _abnormal_case(name: str, kind: str, paper: Dict[str, float]) -> MatrixCase:
    from .sparse import abnormal_a, abnormal_b, abnormal_c

    def build(m: int, n: int, seed: int) -> CSCMatrix:
        # Keep density ~1e-3: dense lines every 1000 rows/columns, clipped
        # so small scales still contain at least a few dense lines.
        if kind == "a":
            return abnormal_a(m, n, period=max(2, min(1000, m // 4)), seed=seed)
        if kind == "b":
            return abnormal_b(m, n, density=1e-3, seed=seed)
        return abnormal_c(m, n, period=max(2, min(1000, n // 4)), seed=seed)

    return MatrixCase(name=name, m=100000, n=10000, nnz=1_000_000,
                      structure=f"abnormal_{kind}", builder=build,
                      seed=300 + ord(kind), paper=paper)


ABNORMAL_SUITE: Dict[str, MatrixCase] = {
    "Abnormal_A": _abnormal_case(
        "Abnormal_A", "a",
        {"algo3_time": 8.56, "algo4_time": 4.40, "algo4_conv": 0.035},
    ),
    "Abnormal_B": _abnormal_case(
        "Abnormal_B", "b",
        {"algo3_time": 8.51, "algo4_time": 6.10, "algo4_conv": 0.085},
    ),
    "Abnormal_C": _abnormal_case(
        "Abnormal_C", "c",
        {"algo3_time": 8.46, "algo4_time": 9.43, "algo4_conv": 0.056},
    ),
}
