"""Direct sparse least squares via George-Heath row-wise Givens QR.

The stand-in for SuiteSparseQR (see DESIGN.md's substitution table): a
from-scratch direct sparse orthogonal factorization with the defining
behaviours the paper measures against —

* it computes a sparse triangular factor ``R`` whose **fill-in** grows
  with the matrix's structure, so factor memory can dwarf ``mem(A)``
  (Table XI reports 7x-130x more memory than SAP);
* its runtime is dominated by the factorization of the full ``m x n``
  matrix, which for extremely tall problems loses to SAP's
  factor-a-``2n x n``-sketch strategy (Table IX);
* being a direct method, its solutions reach machine-precision backward
  error (Table X).

Algorithm (George & Heath, 1980): rows of ``A`` are processed one at a
time; each incoming row is annihilated against the existing rows of ``R``
with Givens rotations (the rotation simultaneously updates the implicitly
transformed right-hand side), leaving a sparse upper-triangular ``R`` and
``c = Q^T b`` without ever storing ``Q`` — exactly the Q-less strategy
SuiteSparseQR uses for least squares.  Workspace is tracked with a
:class:`repro.utils.MemoryLedger` so the benches can report peak factor
memory the way the paper "look[ed] at the memory usage of the resulting
factors".
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import ShapeError
from ..sparse.csc import CSCMatrix
from ..utils.memory import MemoryLedger
from ..utils.validation import check_vector
from .diagnostics import LstsqSolution, error_metric

__all__ = ["givens_qr_factorize", "solve_direct_qr", "refine_solution",
           "SparseR", "GivensLog"]


class GivensLog:
    """Recorded orthogonal factor: the rotation sequence of the QR sweep.

    Direct solvers keep (a representation of) ``Q`` so further right-hand
    sides can be solved without refactorizing — SuiteSparseQR via Julia's
    ``qr(A)`` stores Householder vectors; the row-wise Givens equivalent is
    this log of ``(pivot, c, s)`` triples grouped by input row, replayable
    with :meth:`apply_qt`.  Retaining it is what makes the direct method's
    memory scale with ``m`` and fill (the Table XI blow-up); pass
    ``store_q=False`` to :func:`solve_direct_qr` for the Q-less variant.
    """

    def __init__(self, m: int, n: int) -> None:
        self.m = m
        self.n = n
        self._pivots: list[int] = []
        self._cos: list[float] = []
        self._sin: list[float] = []
        self._row_ptr = np.zeros(m + 1, dtype=np.int64)
        self._claims = np.full(m, -1, dtype=np.int64)  # row -> claimed pivot

    def record_rotation(self, j: int, c: float, s: float) -> None:
        """Append one rotation against pivot row *j*."""
        self._pivots.append(j)
        self._cos.append(c)
        self._sin.append(s)

    def record_claim(self, i: int, j: int) -> None:
        """Record that input row *i* became pivot row *j* (after its rotations)."""
        self._claims[i] = j

    def end_row(self, i: int) -> None:
        """Mark the end of input row *i*'s rotation sequence."""
        self._row_ptr[i + 1] = len(self._pivots)

    @property
    def n_rotations(self) -> int:
        """Total rotations recorded."""
        return len(self._pivots)

    @property
    def memory_bytes(self) -> int:
        """Bytes to hold the log: pivot index + cosine + sine per rotation,
        plus the per-row pointers and claim table."""
        return (24 * self.n_rotations + int(self._row_ptr.nbytes)
                + int(self._claims.nbytes))

    def apply_qt(self, b: np.ndarray) -> np.ndarray:
        """Replay the sweep on a new right-hand side: returns ``(Q^T b)[:n]``.

        Bit-identical to the rhs transformation performed during the
        factorization, so ``R.solve`` on the result solves the new system.
        """
        check_vector(b, "b", size=self.m)
        c_vec = np.zeros(self.n, dtype=np.float64)
        piv, cos, sin = self._pivots, self._cos, self._sin
        for i in range(self.m):
            lo, hi = int(self._row_ptr[i]), int(self._row_ptr[i + 1])
            beta = float(b[i])
            for t in range(lo, hi):
                j = piv[t]
                cj = c_vec[j]
                c_vec[j] = cos[t] * cj + sin[t] * beta
                beta = -sin[t] * cj + cos[t] * beta
            claimed = int(self._claims[i])
            if claimed >= 0:
                c_vec[claimed] = beta
        return c_vec


class SparseR:
    """Sparse upper-triangular factor held as per-pivot compressed rows.

    ``rows[j]`` is ``(cols, vals)`` with ``cols`` strictly increasing and
    ``cols[0] == j``; absent pivots correspond to structurally (or
    numerically) rank-deficient columns.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self.rows: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self.rhs = np.zeros(n, dtype=np.float64)

    @property
    def nnz(self) -> int:
        """Stored entries across all pivot rows (the fill-in measure)."""
        return sum(c.size for c, _ in self.rows.values())

    @property
    def memory_bytes(self) -> int:
        """Bytes held by the factor (indices + values + transformed rhs)."""
        return 16 * self.nnz + int(self.rhs.nbytes)

    def to_dense(self) -> np.ndarray:
        """Densify (testing aid for small problems)."""
        R = np.zeros((self.n, self.n), dtype=np.float64)
        for j, (cols, vals) in self.rows.items():
            R[j, cols] = vals
        return R

    def _max_pivot(self) -> float:
        pivots = [abs(v[0]) for (_, v) in self.rows.values()]
        return max(pivots) if pivots else 0.0

    def solve(self, rcond: float = 1e-12,
              rhs: np.ndarray | None = None) -> np.ndarray:
        """Back substitution ``R x = rhs`` (default: the transformed ``c``).

        Missing or numerically tiny pivots (relative to the largest pivot)
        get ``x_j = 0`` — a basic solution, mirroring rank-revealing
        direct solvers' treatment of dead columns.
        """
        c = self.rhs if rhs is None else np.asarray(rhs, dtype=np.float64)
        if c.shape != (self.n,):
            raise ShapeError(f"rhs must have shape ({self.n},), got {c.shape}")
        x = np.zeros(self.n, dtype=np.float64)
        max_piv = self._max_pivot()
        for j in range(self.n - 1, -1, -1):
            entry = self.rows.get(j)
            if entry is None:
                continue
            cols, vals = entry
            piv = vals[0]
            if abs(piv) <= rcond * max_piv:
                continue
            acc = c[j]
            if cols.size > 1:
                acc -= float(vals[1:] @ x[cols[1:]])
            x[j] = acc / piv
        return x

    def solve_transposed(self, w: np.ndarray,
                         rcond: float = 1e-12) -> np.ndarray:
        """Forward substitution ``R^T y = w`` using R's row storage.

        The scatter formulation: once ``y[j]`` is fixed, row ``j`` of ``R``
        eliminates its contribution from every later unknown — no column
        access into the row-compressed factor is needed.
        """
        w = np.asarray(w, dtype=np.float64)
        if w.shape != (self.n,):
            raise ShapeError(f"w must have shape ({self.n},), got {w.shape}")
        y = w.copy()
        max_piv = self._max_pivot()
        for j in range(self.n):
            entry = self.rows.get(j)
            if entry is None:
                y[j] = 0.0
                continue
            cols, vals = entry
            piv = vals[0]
            if abs(piv) <= rcond * max_piv:
                y[j] = 0.0
                continue
            y[j] /= piv
            if cols.size > 1:
                y[cols[1:]] -= vals[1:] * y[j]
        return y


def _rotate(p_cols: np.ndarray, p_vals: np.ndarray,
            r_cols: np.ndarray, r_vals: np.ndarray,
            j: int) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, float, float]:
    """One Givens rotation zeroing the incoming row's entry in column *j*.

    Both rows lead with column ``j``.  Returns the updated pivot row, the
    remainder of the incoming row (column ``j`` eliminated), and the
    rotation cosine/sine for the right-hand-side update.
    """
    a = p_vals[0]  # R[j, j]
    b = r_vals[0]  # incoming row's entry in column j
    r = float(np.hypot(a, b))
    c, s = a / r, b / r
    union = np.union1d(p_cols, r_cols)
    p_full = np.zeros(union.size, dtype=np.float64)
    r_full = np.zeros(union.size, dtype=np.float64)
    p_full[np.searchsorted(union, p_cols)] = p_vals
    r_full[np.searchsorted(union, r_cols)] = r_vals
    new_p = c * p_full + s * r_full
    new_r = -s * p_full + c * r_full
    new_p[0] = r          # exact by construction
    new_r[0] = 0.0        # eliminated
    keep = new_r != 0.0
    keep[0] = False
    return union, new_p, union[keep], new_r[keep], c, s


def givens_qr_factorize(
    A: CSCMatrix,
    b: np.ndarray,
    ledger: MemoryLedger | None = None,
    qlog: GivensLog | None = None,
) -> SparseR:
    """Row-wise Givens QR of ``A`` with simultaneous rhs transformation.

    Returns the :class:`SparseR` holding ``R`` and ``c = (Q^T b)[:n]``.
    When *ledger* is given, factor memory (including the growing ``Q``
    log, if any) is recorded after every row so
    :attr:`MemoryLedger.peak_bytes` reflects the true high-water mark.
    When *qlog* is given, every rotation and pivot claim is recorded so
    :meth:`GivensLog.apply_qt` can solve further right-hand sides.
    """
    m, n = A.shape
    check_vector(b, "b", size=m)
    R = SparseR(n)
    A_csr = A.to_csr()
    for i in range(m):
        cols, vals = A_csr.row(i)
        if cols.size == 0:
            if qlog is not None:
                qlog.end_row(i)
            continue
        cols = cols.copy()
        vals = vals.copy()
        beta = float(b[i])
        while cols.size:
            j = int(cols[0])
            pivot = R.rows.get(j)
            if pivot is None:
                R.rows[j] = (cols, vals)
                R.rhs[j] = beta
                if qlog is not None:
                    qlog.record_claim(i, j)
                break
            p_cols, p_vals = pivot
            new_pc, new_pv, cols, vals, c, s = _rotate(
                p_cols, p_vals, cols, vals, j
            )
            R.rows[j] = (new_pc, new_pv)
            cj = R.rhs[j]
            R.rhs[j] = c * cj + s * beta
            beta = -s * cj + c * beta
            if qlog is not None:
                qlog.record_rotation(j, c, s)
        if qlog is not None:
            qlog.end_row(i)
        if ledger is not None:
            ledger.allocate("R_factor", R.memory_bytes)
            if qlog is not None:
                ledger.allocate("Q_log", qlog.memory_bytes)
    return R


def refine_solution(A: CSCMatrix, R: SparseR, x: np.ndarray, b: np.ndarray,
                    steps: int = 1, rcond: float = 1e-12) -> np.ndarray:
    """Corrected-seminormal-equations refinement of a QR solution.

    Each step solves ``R^T R dx = A^T (b - A x)`` by a forward then a
    backward triangular sweep and applies the correction — the standard
    fix-up (Bjorck) that restores full backward stability to seminormal /
    Q-less solves, and the reason Q-less SuiteSparseQR least squares is
    accurate in practice.
    """
    if steps < 0:
        raise ShapeError(f"steps must be non-negative, got {steps}")
    from .lsqr import CscOperator

    op = CscOperator(A)
    x = x.astype(np.float64, copy=True)
    for _ in range(steps):
        residual = b - op.matvec(x)
        w = op.rmatvec(residual)
        y = R.solve_transposed(w, rcond=rcond)
        dx = R.solve(rcond=rcond, rhs=y)
        x += dx
    return x


def solve_direct_qr(A: CSCMatrix, b: np.ndarray,
                    rcond: float = 1e-12,
                    store_q: bool = True,
                    refine_steps: int = 0) -> LstsqSolution:
    """Direct sparse least squares (the SuiteSparse-role baseline).

    Factorizes with :func:`givens_qr_factorize`, back-substitutes, and
    reports runtime, peak factor memory, fill-in, and the Table X error
    metric in a :class:`LstsqSolution`.

    ``refine_steps`` applies that many corrected-seminormal-equations
    refinement sweeps to the back-substituted solution
    (:func:`refine_solution`).

    ``store_q=True`` (default) retains the orthogonal factor as a
    :class:`GivensLog` — what a factorization object like Julia's
    ``qr(A)`` keeps so later right-hand sides solve cheaply, and the
    memory behaviour Table XI measures for SuiteSparse.  The log is
    returned under ``details["qlog"]``.  ``store_q=False`` gives the
    Q-less (memory-lean) variant.
    """
    m, n = A.shape
    if m < n:
        raise ShapeError(
            f"direct QR expects an overdetermined system, got {A.shape}"
        )
    ledger = MemoryLedger()
    qlog = GivensLog(m, n) if store_q else None
    t0 = time.perf_counter()
    R = givens_qr_factorize(A, b, ledger=ledger, qlog=qlog)
    t_factor = time.perf_counter() - t0
    t1 = time.perf_counter()
    x = R.solve(rcond=rcond)
    if refine_steps:
        x = refine_solution(A, R, x, b, steps=refine_steps, rcond=rcond)
    t_solve = time.perf_counter() - t1
    details = {
        "fill_nnz": R.nnz,
        "input_nnz": A.nnz,
        "fill_ratio": R.nnz / max(A.nnz, 1),
    }
    if qlog is not None:
        details["qlog"] = qlog
        details["n_rotations"] = qlog.n_rotations
    return LstsqSolution(
        method="direct-qr",
        x=x,
        seconds=t_factor + t_solve,
        iterations=0,
        factor_seconds=t_factor,
        solve_seconds=t_solve,
        error=error_metric(A, x, b),
        memory_bytes=ledger.peak_bytes,
        converged=True,
        details=details,
    )
