"""Sketch-and-precondition (SAP) least squares, plus the LSQR-D baseline.

The full randomized pipeline of Section V-C: sketch ``Ahat = S A`` with
the fast SpMM kernels (``d = gamma n``, gamma = 2 in the paper's runs),
factor the small dense sketch (QR, or SVD when the problem may be
numerically rank-deficient), and run right-preconditioned LSQR to the
paper's 1e-14 backward-error tolerance.  Memory is the headline win: the
solver's workspace is essentially the ``d x n`` dense sketch plus the
``n x n`` factor — "in many cases ... lower memory requirements than a
direct sparse solver" (Tables IX-XI).

:func:`solve_lsqr_diag` is the classical baseline sharing the same LSQR
engine with the diagonal preconditioner.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.config import SketchConfig
from ..core.sketch import SketchOperator
from ..errors import ConfigError, SingularMatrixError
from ..model.machine import MachineModel
from ..sparse.csc import CSCMatrix
from ..utils.validation import check_choice, check_vector
from .diagnostics import LstsqSolution, error_metric
from .lsmr import lsmr
from .lsqr import CscOperator, PreconditionedOperator, lsqr
from .direct_qr import solve_direct_qr
from .preconditioners import (
    DiagonalPreconditioner,
    SVDPreconditioner,
    TriangularPreconditioner,
)

__all__ = ["solve_sap", "solve_lsqr_diag"]


def _direct_fallback(A: CSCMatrix, b: np.ndarray, reason: str,
                     sketch_seconds: float,
                     factor_seconds: float = 0.0) -> LstsqSolution:
    """Divergence safety net: re-solve with the direct sparse QR.

    The wasted randomized work is kept in the timing split (``seconds``
    includes it) and the trigger is recorded under ``details`` so the
    degradation is auditable, mirroring the executor's RunHealth decisions.
    """
    sol = solve_direct_qr(A, b)
    sol.method = f"{sol.method}(sap-fallback)"
    sol.seconds += sketch_seconds + factor_seconds
    sol.sketch_seconds = sketch_seconds
    sol.factor_seconds += factor_seconds
    sol.details["fallback"] = reason
    return sol


def solve_sap(
    A: CSCMatrix,
    b: np.ndarray,
    *,
    gamma: float = 2.0,
    method: str = "qr",
    config: SketchConfig | None = None,
    machine: MachineModel | None = None,
    atol: float = 1e-14,
    max_iter: int | None = None,
    svd_drop_ratio: float = 1e-12,
    iterative: str = "lsqr",
    divergence_fallback: bool = True,
) -> LstsqSolution:
    """Solve ``min_x ||A x - b||`` by sketch-and-precondition.

    Parameters
    ----------
    A, b:
        Tall sparse data matrix (CSC) and dense right-hand side.
    gamma:
        Sketch-size multiplier ``d = ceil(gamma n)`` (paper: 2 for least
        squares, giving a preconditioned condition bound
        ``(sqrt(2)+1)/(sqrt(2)-1) ~ 5.8`` and ~80 LSQR iterations).
    method:
        ``"qr"`` (full-rank path) or ``"svd"`` (rank-revealing path with
        the ``sigma_max / 1e12`` drop rule).
    config:
        Sketching options; defaults to the paper's production choice
        (xoshiro, uniform(-1,1), automatic kernel).
    atol, max_iter:
        Iterative-solver stopping controls (paper: atol = 1e-14).
    iterative:
        ``"lsqr"`` (the paper's engine) or ``"lsmr"`` (Fong-Saunders;
        monotone in the Error(x) quantity).
    divergence_fallback:
        Divergence detection (default on): when the sketch factorization
        hits rank deficiency (:class:`~repro.errors.SingularMatrixError`)
        or the preconditioned LSQR/LSMR run produces a non-finite iterate
        or error, fall back to the direct sparse QR solver instead of
        returning garbage.  The trigger is recorded under
        ``details["fallback"]``.  Pass ``False`` for strict behaviour
        (errors propagate, non-finite results are returned as-is).

    Returns
    -------
    :class:`LstsqSolution` with the timing split (sketch / factor /
    solve), LSQR iteration count, Table X error metric, and the workspace
    bytes (sketch + factor), the quantity Table XI reports.
    """
    check_choice(method, "method", ("qr", "svd"))
    m, n = A.shape
    check_vector(b, "b", size=m)
    if gamma <= 1.0:
        raise ConfigError(f"gamma must exceed 1, got {gamma}")
    cfg = config if config is not None else SketchConfig(gamma=gamma)
    d = int(np.ceil(gamma * n))
    if d > m:
        raise ConfigError(
            f"sketch size d={d} exceeds m={m}; the problem is not "
            "overdetermined enough for SAP with this gamma"
        )

    t0 = time.perf_counter()
    op = SketchOperator(d, m, config=cfg, machine=machine)
    result = op.apply(A)
    Ahat = result.sketch
    t_sketch = time.perf_counter() - t0

    t1 = time.perf_counter()
    try:
        if method == "qr":
            precond = TriangularPreconditioner.from_sketch(Ahat)
        else:
            precond = SVDPreconditioner.from_sketch(Ahat,
                                                    drop_ratio=svd_drop_ratio)
    except SingularMatrixError as exc:
        if not divergence_fallback:
            raise
        return _direct_fallback(
            A, b, f"sketch factorization failed ({exc}); fell back to "
            f"direct QR", sketch_seconds=t_sketch)
    t_factor = time.perf_counter() - t1

    check_choice(iterative, "iterative", ("lsqr", "lsmr"))
    t2 = time.perf_counter()
    B = PreconditionedOperator(CscOperator(A), precond)
    engine = lsqr if iterative == "lsqr" else lsmr
    run = engine(B, b, atol=atol, max_iter=max_iter)
    x = precond.apply(run.z)
    t_solve = time.perf_counter() - t2

    if divergence_fallback and not np.all(np.isfinite(x)):
        return _direct_fallback(
            A, b, f"{iterative} diverged to a non-finite iterate after "
            f"{run.iterations} iterations; fell back to direct QR",
            sketch_seconds=t_sketch, factor_seconds=t_factor)

    sketch_bytes = int(Ahat.nbytes)
    mem = sketch_bytes + precond.memory_bytes
    return LstsqSolution(
        method=f"sap-{method}",
        x=x,
        seconds=t_sketch + t_factor + t_solve,
        iterations=run.iterations,
        sketch_seconds=t_sketch,
        factor_seconds=t_factor,
        solve_seconds=t_solve,
        error=error_metric(A, x, b),
        memory_bytes=mem,
        converged=run.converged,
        details={
            "d": d,
            "iterative": iterative,
            "kernel": result.kernel_used,
            "stop_reason": run.stop_reason,
            "rank": getattr(precond, "rank", n),
            "sketch_stats": result.stats,
        },
    )


def solve_lsqr_diag(
    A: CSCMatrix,
    b: np.ndarray,
    *,
    atol: float = 1e-14,
    max_iter: int | None = None,
) -> LstsqSolution:
    """The LSQR-D baseline: LSQR with the column-norm diagonal preconditioner."""
    m, n = A.shape
    check_vector(b, "b", size=m)
    t0 = time.perf_counter()
    precond = DiagonalPreconditioner.from_matrix(A)
    B = PreconditionedOperator(CscOperator(A), precond)
    run = lsqr(B, b, atol=atol, max_iter=max_iter)
    x = precond.apply(run.z)
    elapsed = time.perf_counter() - t0
    return LstsqSolution(
        method="lsqr-d",
        x=x,
        seconds=elapsed,
        iterations=run.iterations,
        solve_seconds=elapsed,
        error=error_metric(A, x, b),
        memory_bytes=precond.memory_bytes,  # "essentially no extra memory"
        converged=run.converged,
        details={"stop_reason": run.stop_reason},
    )
