"""Least-squares diagnostics: the paper's error metric and result records.

Table X compares solvers on

    Error(x) = ||A^T (A x - b)||_2 / (||A||_F ||A x - b||_2)

— the backward-error-motivated metric LSQR's ``test2`` estimates for the
*preconditioned* system; Table X evaluates it on the *original* system,
which is what :func:`error_metric` computes.  :class:`LstsqSolution` is
the common record all three solvers return, carrying the timing split
(Table IX), the error (Table X), and the workspace bytes (Table XI).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ShapeError
from ..sparse.csc import CSCMatrix
from ..sparse.linalg import frobenius_norm
from .lsqr import CscOperator

__all__ = ["error_metric", "residual_norm", "LstsqSolution"]


def error_metric(A: CSCMatrix, x: np.ndarray, b: np.ndarray) -> float:
    """The paper's ``Error(x)`` on the original (unpreconditioned) system.

    Returns 0 when the residual vanishes (consistent system solved
    exactly); ``||A||_F`` is computed from stored entries.
    """
    m, n = A.shape
    if x.shape != (n,) or b.shape != (m,):
        raise ShapeError(
            f"x must have shape ({n},) and b ({m},), got {x.shape}/{b.shape}"
        )
    op = CscOperator(A)
    r = op.matvec(x) - b
    rnorm = float(np.linalg.norm(r))
    if rnorm == 0.0:
        return 0.0
    atr = float(np.linalg.norm(op.rmatvec(r)))
    fro = frobenius_norm(A)
    if fro == 0.0:
        return float("inf")
    return atr / (fro * rnorm)


def residual_norm(A: CSCMatrix, x: np.ndarray, b: np.ndarray) -> float:
    """``||A x - b||_2``."""
    m, n = A.shape
    if x.shape != (n,) or b.shape != (m,):
        raise ShapeError("dimension mismatch")
    return float(np.linalg.norm(CscOperator(A).matvec(x) - b))


@dataclass
class LstsqSolution:
    """Common result record for LSQR-D, SAP-QR/SVD, and the direct QR.

    Attributes map one-to-one onto the paper's reporting: ``seconds`` and
    ``iterations`` (Table IX; ``sketch_seconds`` is SAP's separate
    "sketch (s)" column), ``error`` (Table X), ``memory_bytes`` — the
    *extra* workspace beyond storing ``A`` (Table XI).
    """

    method: str
    x: np.ndarray
    seconds: float
    iterations: int = 0
    sketch_seconds: float = 0.0
    factor_seconds: float = 0.0
    solve_seconds: float = 0.0
    error: float = float("nan")
    memory_bytes: int = 0
    converged: bool = True
    details: dict = field(default_factory=dict)

    @property
    def memory_mbytes(self) -> float:
        """Workspace in Mbytes, Table XI's unit."""
        return self.memory_bytes / (1024.0 * 1024.0)
