"""LSMR (Fong & Saunders 2011) — the other Golub–Kahan solver.

LSQR minimizes ``||r||`` over Krylov subspaces; LSMR minimizes
``||A^T r||`` — the very quantity the paper's Error(x) metric (and LSQR's
own stopping test) is built on — and drives it down *monotonically*,
which makes its convergence behaviour easier to reason about when solving
to the paper's 1e-14 backward-error tolerance.  Providing both engines
behind the same operator protocol lets the SAP pipeline swap solvers with
one argument (``solve_sap(..., iterative="lsmr")``).

Implemented from the algorithm in Fong & Saunders, "LSMR: An iterative
algorithm for sparse least-squares problems", SIAM J. Sci. Comput. 33(5),
2011 (damping not needed here and omitted); returns the same
:class:`~repro.lsq.lsqr.LsqrResult` record as :func:`repro.lsq.lsqr`.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..utils.validation import check_positive_int, check_vector
from .lsqr import LinearOperator, LsqrResult

__all__ = ["lsmr"]


def lsmr(op: LinearOperator, b: np.ndarray, *, atol: float = 1e-14,
         btol: float = 1e-14, max_iter: int | None = None,
         keep_history: bool = False) -> LsqrResult:
    """Minimize ``||op z - b||_2`` by LSMR.

    Parameters match :func:`repro.lsq.lsqr`; ``atol`` bounds
    ``||B^T r|| / (||B||_F ||r||)`` (monotone under LSMR), ``btol`` bounds
    ``||r|| / ||b||`` for consistent systems.
    """
    m, n = op.shape
    check_vector(b, "b", size=m)
    if atol <= 0 or btol <= 0:
        raise ConfigError(f"atol and btol must be positive, got {atol}/{btol}")
    max_iter = 4 * n if max_iter is None else check_positive_int(max_iter, "max_iter")

    u = b.astype(np.float64).copy()
    normb = beta = float(np.linalg.norm(u))
    if beta == 0.0:
        return LsqrResult(np.zeros(n), 0, "residual-zero", 0.0, 0.0, 0.0)
    u /= beta
    v = op.rmatvec(u)
    alpha = float(np.linalg.norm(v))
    if alpha == 0.0:
        return LsqrResult(np.zeros(n), 0, "ground-zero", beta, 0.0, 0.0)
    v /= alpha

    # Initialization (Fong & Saunders, Algorithm LSMR).
    zetabar = alpha * beta
    alphabar = alpha
    rho = rhobar = cbar = 1.0
    sbar = 0.0
    h = v.copy()
    hbar = np.zeros(n)
    x = np.zeros(n)

    # Residual-norm estimation state.
    betadd = beta
    betad = 0.0
    rhodold = 1.0
    tautildeold = 0.0
    thetatilde = 0.0
    zeta = 0.0
    d = 0.0

    normA2 = alpha * alpha
    history: list[float] = []
    stop_reason = "max-iter"
    it = 0
    normr = beta
    normar = alpha * beta

    for it in range(1, max_iter + 1):
        # Golub-Kahan step.
        u = op.matvec(v) - alpha * u
        beta = float(np.linalg.norm(u))
        if beta > 0.0:
            u /= beta
        v = op.rmatvec(u) - beta * v
        alpha = float(np.linalg.norm(v))
        if alpha > 0.0:
            v /= alpha

        # Rotation Q_k (no damping: alphahat = alphabar).
        rhoold = rho
        rho = float(np.hypot(alphabar, beta))
        c = alphabar / rho
        s = beta / rho
        thetanew = s * alpha
        alphabar = c * alpha

        # Rotation Qbar_k.
        rhobarold = rhobar
        zetaold = zeta
        thetabar = sbar * rho
        rhotemp = cbar * rho
        rhobar = float(np.hypot(cbar * rho, thetanew))
        cbar = cbar * rho / rhobar
        sbar = thetanew / rhobar
        zeta = cbar * zetabar
        zetabar = -sbar * zetabar

        # Update h, hbar, x.
        hbar = h - (thetabar * rho / (rhoold * rhobarold)) * hbar
        x = x + (zeta / (rho * rhobar)) * hbar
        h = v - (thetanew / rho) * h

        # Residual-norm estimate (the paper's recurrences; with no damping
        # the betacheck term vanishes, so ``d`` stays zero).
        betahat = c * betadd
        betadd = -s * betadd
        thetatildeold = thetatilde
        rhotildeold = float(np.hypot(rhodold, thetabar))
        ctildeold = rhodold / rhotildeold
        stildeold = thetabar / rhotildeold
        thetatilde = stildeold * rhobar
        rhodold = ctildeold * rhobar
        betad = -stildeold * betad + ctildeold * betahat
        tautildeold = (zetaold - thetatildeold * tautildeold) / rhotildeold
        taud = (zeta - thetatilde * tautildeold) / rhodold
        normr = float(np.sqrt(d + (betad - taud) ** 2 + betadd * betadd))

        normA2 += beta * beta
        normA = float(np.sqrt(normA2))
        normA2 += alpha * alpha
        normar = abs(zetabar)

        denom = normA * normr
        test2 = normar / denom if denom > 0 else 0.0
        if keep_history:
            history.append(test2)
        if test2 <= atol or normr == 0.0:
            stop_reason = "atol"
            break
        if normr <= btol * normb:
            stop_reason = "btol"
            break

    return LsqrResult(
        z=x,
        iterations=it,
        stop_reason=stop_reason,
        rnorm=normr,
        arnorm=normar,
        anorm=float(np.sqrt(normA2)),
        test2_history=history,
    )
