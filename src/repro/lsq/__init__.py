"""Least-squares solvers (Section V-C): from-scratch LSQR, the three
preconditioner families, the sketch-and-precondition (SAP) pipeline, and
the George-Heath direct sparse QR baseline standing in for SuiteSparseQR."""

from .diagnostics import LstsqSolution, error_metric, residual_norm
from .direct_qr import (
    GivensLog,
    SparseR,
    givens_qr_factorize,
    refine_solution,
    solve_direct_qr,
)
from .lsmr import lsmr
from .lsqr import CscOperator, LsqrResult, PreconditionedOperator, lsqr
from .preconditioners import (
    DiagonalPreconditioner,
    IdentityPreconditioner,
    SVDPreconditioner,
    TriangularPreconditioner,
)
from .sap import solve_lsqr_diag, solve_sap
from .underdetermined import solve_sap_minnorm

__all__ = [
    "LstsqSolution",
    "error_metric",
    "residual_norm",
    "GivensLog",
    "SparseR",
    "givens_qr_factorize",
    "refine_solution",
    "solve_direct_qr",
    "CscOperator",
    "LsqrResult",
    "PreconditionedOperator",
    "lsqr",
    "lsmr",
    "DiagonalPreconditioner",
    "IdentityPreconditioner",
    "SVDPreconditioner",
    "TriangularPreconditioner",
    "solve_lsqr_diag",
    "solve_sap",
    "solve_sap_minnorm",
]
