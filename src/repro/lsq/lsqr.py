"""LSQR (Paige & Saunders 1982) with right preconditioning.

The iterative engine of both least-squares baselines in Section V-C: the
classical LSQR-D (diagonal preconditioner) and the randomized SAP solver
(QR/SVD-of-sketch preconditioner).  Implemented from scratch on the
Golub–Kahan bidiagonalization with the standard stopping criteria; the
paper's runs use the backward-error-motivated criterion

    ||B^T r|| / (||B||_F ||r||) <= atol        (B = preconditioned operator)

with ``atol = 1e-14`` ("we ran LSQR until its internal (preconditioned)
error metric fell below 1e-14"), which is LSQR's ``test2``.

Matrix access goes through a tiny operator protocol (``matvec`` /
``rmatvec``) so the same routine serves the raw matrix, a diagonally
scaled matrix, and the SAP operator ``A R^{-1}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from ..errors import ConfigError, ShapeError
from ..sparse.csc import CSCMatrix
from ..utils.validation import check_positive_int, check_vector

__all__ = ["LinearOperator", "CscOperator", "PreconditionedOperator",
           "LsqrResult", "lsqr"]


class LinearOperator(Protocol):
    """Minimal operator protocol LSQR consumes."""

    @property
    def shape(self) -> tuple[int, int]:  # pragma: no cover - protocol
        ...

    def matvec(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover
        ...

    def rmatvec(self, y: np.ndarray) -> np.ndarray:  # pragma: no cover
        ...


class CscOperator:
    """Vectorized matvec/rmatvec over a from-scratch CSC matrix.

    ``matvec`` expands ``x`` across column segments and scatter-adds in one
    ufunc call; ``rmatvec`` segment-reduces the products — both O(nnz) with
    no Python-level per-column loop, which keeps LSQR's per-iteration cost
    dominated by actual arithmetic.
    """

    def __init__(self, A: CSCMatrix) -> None:
        if not isinstance(A, CSCMatrix):
            raise ShapeError(
                f"CscOperator needs a CSCMatrix, got {type(A).__name__}"
            )
        self.A = A
        self._counts = A.col_nnz()
        self._nonempty = self._counts > 0
        self._starts = A.indptr[:-1][self._nonempty]

    @property
    def shape(self) -> tuple[int, int]:
        return self.A.shape

    def matvec(self, x: np.ndarray) -> np.ndarray:
        m, n = self.A.shape
        check_vector(x, "x", size=n)
        y = np.zeros(m, dtype=np.float64)
        if self.A.nnz:
            contrib = self.A.data * np.repeat(x, self._counts)
            np.add.at(y, self.A.indices, contrib)
        return y

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        m, n = self.A.shape
        check_vector(y, "y", size=m)
        out = np.zeros(n, dtype=np.float64)
        if self.A.nnz:
            prod = self.A.data * y[self.A.indices]
            out[self._nonempty] = np.add.reduceat(prod, self._starts)
        return out


class PreconditionedOperator:
    """Right-preconditioned operator ``B = A P`` for a preconditioner ``P``.

    ``P`` follows :class:`repro.lsq.preconditioners.Preconditioner`:
    ``apply`` maps the iterate space to model space (``x = P z``) and
    ``apply_transpose`` maps gradients back.  LSQR solves
    ``min ||B z - b||``; callers recover ``x = P z``.
    """

    def __init__(self, A_op: LinearOperator, precond) -> None:
        self.A_op = A_op
        self.precond = precond
        if precond.shape[0] != A_op.shape[1]:
            raise ShapeError(
                f"preconditioner maps to dim {precond.shape[0]} but the "
                f"operator has {A_op.shape[1]} columns"
            )

    @property
    def shape(self) -> tuple[int, int]:
        return (self.A_op.shape[0], self.precond.shape[1])

    def matvec(self, z: np.ndarray) -> np.ndarray:
        return self.A_op.matvec(self.precond.apply(z))

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        return self.precond.apply_transpose(self.A_op.rmatvec(y))


@dataclass
class LsqrResult:
    """Outcome of one LSQR run (in the *preconditioned* variable)."""

    z: np.ndarray
    iterations: int
    stop_reason: str
    rnorm: float                 # estimated ||r||
    arnorm: float                # estimated ||B^T r||
    anorm: float                 # estimated ||B||_F
    test2_history: list = field(default_factory=list)

    @property
    def converged(self) -> bool:
        """Did the run stop on the tolerance (not the iteration cap)?"""
        return self.stop_reason in ("atol", "btol", "residual-zero", "ground-zero")


def lsqr(op: LinearOperator, b: np.ndarray, *, atol: float = 1e-14,
         btol: float = 1e-14, max_iter: int | None = None,
         keep_history: bool = False) -> LsqrResult:
    """Minimize ``||op z - b||_2`` by LSQR.

    Parameters
    ----------
    op:
        Operator with ``matvec``/``rmatvec`` (possibly preconditioned).
    b:
        Right-hand side, length ``op.shape[0]``.
    atol:
        Tolerance on ``test2 = ||B^T r|| / (||B||_F ||r||)`` — the paper's
        stopping metric for (inconsistent) least-squares problems.
    btol:
        Tolerance on ``test1 = ||r|| / ||b||`` — Paige & Saunders'
        criterion for *consistent* systems, where the residual itself
        vanishes and ``test2`` degenerates (0/0).
    max_iter:
        Iteration cap (default ``4 * op.shape[1]``, generous for
        well-preconditioned systems that need ~80 iterations).
    keep_history:
        Record ``test2`` per iteration (diagnostics/benches).
    """
    m, n = op.shape
    check_vector(b, "b", size=m)
    if atol <= 0 or btol <= 0:
        raise ConfigError(
            f"atol and btol must be positive, got {atol} / {btol}"
        )
    max_iter = 4 * n if max_iter is None else check_positive_int(max_iter, "max_iter")

    z = np.zeros(n, dtype=np.float64)
    u = b.astype(np.float64).copy()
    beta = float(np.linalg.norm(u))
    bnorm = beta
    if beta == 0.0:
        return LsqrResult(z, 0, "residual-zero", 0.0, 0.0, 0.0)
    u /= beta
    v = op.rmatvec(u)
    alpha = float(np.linalg.norm(v))
    if alpha == 0.0:
        # b is orthogonal to range(B): z = 0 is optimal.
        return LsqrResult(z, 0, "ground-zero", beta, 0.0, 0.0)
    v /= alpha
    w = v.copy()
    phibar = beta
    rhobar = alpha
    anorm2 = alpha * alpha
    history: list[float] = []
    stop_reason = "max-iter"
    it = 0

    for it in range(1, max_iter + 1):
        # Golub-Kahan step.
        u = op.matvec(v) - alpha * u
        beta = float(np.linalg.norm(u))
        if beta > 0.0:
            u /= beta
        anorm2 += beta * beta
        v = op.rmatvec(u) - beta * v
        alpha = float(np.linalg.norm(v))
        if alpha > 0.0:
            v /= alpha
        anorm2 += alpha * alpha

        # Givens rotation eliminating the subdiagonal.
        rho = float(np.hypot(rhobar, beta))
        c = rhobar / rho
        s = beta / rho
        theta = s * alpha
        rhobar = -c * alpha
        phi = c * phibar
        phibar = s * phibar

        z += (phi / rho) * w
        w = v - (theta / rho) * w

        rnorm = phibar
        arnorm = abs(phibar * alpha * c)
        anorm = float(np.sqrt(anorm2))
        denom = anorm * rnorm
        test2 = arnorm / denom if denom > 0 else 0.0
        if keep_history:
            history.append(test2)
        if test2 <= atol or rnorm == 0.0:
            stop_reason = "atol"
            break
        if rnorm <= btol * bnorm:
            stop_reason = "btol"
            break

    return LsqrResult(
        z=z,
        iterations=it,
        stop_reason=stop_reason,
        rnorm=rnorm,
        arnorm=arnorm,
        anorm=float(np.sqrt(anorm2)),
        test2_history=history,
    )
