"""Extension: underdetermined least squares (the paper's footnote 2).

Section V-C transposes its wide test matrices and notes: "In practice,
these matrices could arise directly in underdetermined least squares
problems.  Underdetermined problems can be handled with minor
modifications relative to the overdetermined problems we consider."

This module supplies those modifications: for a wide consistent system
``A x = b`` (``A`` is ``m x n`` with ``m < n``) the minimum-norm solution
is computed by sketch-and-precondition from the *left*:

1. sketch the transpose, ``Ahat = S A^T`` (``d = gamma m`` rows), using
   the same on-the-fly kernels;
2. factor ``Ahat = Q R``; ``R^{-T}`` is then a good *row-space*
   preconditioner: ``cond(R^{-T} A)`` is bounded by the usual
   ``(sqrt(gamma)+1)/(sqrt(gamma)-1)``;
3. run LSQR on the row-equilibrated system
   ``min_x ||R^{-T} A x - R^{-T} b||``.  Row transformations change
   neither the solution set nor the minimum-norm minimizer, and LSQR
   started from zero converges to the minimum-norm solution.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.config import SketchConfig
from ..core.sketch import SketchOperator
from ..errors import ConfigError, ShapeError
from ..sparse.csc import CSCMatrix
from ..utils.validation import check_vector
from .diagnostics import LstsqSolution
from .lsqr import CscOperator, lsqr
from .preconditioners import TriangularPreconditioner

__all__ = ["solve_sap_minnorm"]


class _RowPreconditionedOperator:
    """``B = R^{-T} A`` for LSQR: row-space preconditioning of a wide system."""

    def __init__(self, A_op: CscOperator, precond: TriangularPreconditioner) -> None:
        self.A_op = A_op
        self.precond = precond
        if precond.shape[0] != A_op.shape[0]:
            raise ShapeError(
                f"preconditioner dimension {precond.shape[0]} does not match "
                f"the row count {A_op.shape[0]}"
            )

    @property
    def shape(self) -> tuple[int, int]:
        return self.A_op.shape

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self.precond.apply_transpose(self.A_op.matvec(x))

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        return self.A_op.rmatvec(self.precond.apply(y))


def solve_sap_minnorm(
    A: CSCMatrix,
    b: np.ndarray,
    *,
    gamma: float = 2.0,
    config: SketchConfig | None = None,
    atol: float = 1e-14,
    max_iter: int | None = None,
) -> LstsqSolution:
    """Minimum-norm solution of a wide consistent system ``A x = b``.

    Parameters mirror :func:`repro.lsq.solve_sap`; the sketch has
    ``d = ceil(gamma m)`` rows and is applied to ``A^T`` (via the
    transposed CSC, an O(nnz) conversion).  Residual and the Table X
    error metric are reported against the original system.

    Raises :class:`~repro.errors.ConfigError` when the system is not wide
    (use :func:`solve_sap` for overdetermined problems).
    """
    m, n = A.shape
    check_vector(b, "b", size=m)
    if m >= n:
        raise ConfigError(
            f"solve_sap_minnorm expects a wide system (m < n), got {A.shape}; "
            "use solve_sap for overdetermined problems"
        )
    if gamma <= 1.0:
        raise ConfigError(f"gamma must exceed 1, got {gamma}")
    d = int(np.ceil(gamma * m))
    if d > n:
        raise ConfigError(
            f"sketch size d={d} exceeds n={n}; the system is not wide enough "
            "for this gamma"
        )
    cfg = config if config is not None else SketchConfig(gamma=gamma)

    t0 = time.perf_counter()
    At = A.transpose()  # n x m CSC
    op = SketchOperator(d, n, config=cfg)
    Ahat = op.apply(At).sketch  # d x m
    t_sketch = time.perf_counter() - t0

    t1 = time.perf_counter()
    precond = TriangularPreconditioner.from_sketch(Ahat)
    t_factor = time.perf_counter() - t1

    t2 = time.perf_counter()
    A_op = CscOperator(A)
    B = _RowPreconditionedOperator(A_op, precond)
    run = lsqr(B, precond.apply_transpose(b), atol=atol, max_iter=max_iter)
    x = run.z
    t_solve = time.perf_counter() - t2

    residual = float(np.linalg.norm(A_op.matvec(x) - b))
    bnorm = float(np.linalg.norm(b))
    return LstsqSolution(
        method="sap-minnorm",
        x=x,
        seconds=t_sketch + t_factor + t_solve,
        iterations=run.iterations,
        sketch_seconds=t_sketch,
        factor_seconds=t_factor,
        solve_seconds=t_solve,
        error=residual / bnorm if bnorm > 0 else residual,
        memory_bytes=int(Ahat.nbytes) + precond.memory_bytes,
        converged=run.converged,
        details={"d": d, "stop_reason": run.stop_reason,
                 "residual_norm": residual},
    )
