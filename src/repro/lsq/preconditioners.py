"""Right preconditioners for LSQR: diagonal, QR-of-sketch, SVD-of-sketch.

Section V-C1's three solver configurations differ only in the
preconditioner handed to LSQR:

* **LSQR-D** — ``D_ii = 1 / ||A_i||_2`` from the input's column norms,
  "if ``||A_i||_2 <= eps sqrt(n) max_i ||A_i||_2`` then ``D_ii = 1``";
* **SAP-QR** — ``R^{-1}`` from a (dense, economy) QR of the sketch
  ``S A``;
* **SAP-SVD** — ``V_k diag(1/sigma_k)`` from an SVD of ``S A`` "drop[ping]
  singular values that are smaller than ``sigma_max(SA) / 10^12``",
  intended "when the original problem has singular values that are near
  zero" — this changes the iterate dimension from ``n`` to the numerical
  rank ``k``.

All expose the same interface: ``apply`` (iterate space -> model space,
``x = P z``) and ``apply_transpose``; :class:`PreconditionedOperator`
composes them with the matrix operator.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import qr as dense_qr
from scipy.linalg import solve_triangular

from ..errors import ConfigError, ShapeError, SingularMatrixError
from ..sparse.csc import CSCMatrix
from ..sparse.linalg import column_norms
from ..utils.validation import check_vector

__all__ = [
    "IdentityPreconditioner",
    "DiagonalPreconditioner",
    "TriangularPreconditioner",
    "SVDPreconditioner",
]


class IdentityPreconditioner:
    """No-op preconditioner (plain LSQR)."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ConfigError(f"n must be positive, got {n}")
        self._n = n

    @property
    def shape(self) -> tuple[int, int]:
        """(model dim, iterate dim)."""
        return (self._n, self._n)

    def apply(self, z: np.ndarray) -> np.ndarray:
        """``x = z``."""
        return check_vector(z, "z", size=self._n).copy()

    def apply_transpose(self, w: np.ndarray) -> np.ndarray:
        """``P^T w = w``."""
        return check_vector(w, "w", size=self._n).copy()

    @property
    def memory_bytes(self) -> int:
        """Workspace held by the preconditioner."""
        return 0


class DiagonalPreconditioner:
    """The LSQR-D column-scaling preconditioner.

    ``P = diag(1 / ||A_i||)`` with the paper's safeguard: columns whose
    norm is at most ``eps * sqrt(n) * max_i ||A_i||`` keep ``D_ii = 1``
    (they are numerically negligible and must not be blown up).
    """

    def __init__(self, diag: np.ndarray) -> None:
        if diag.ndim != 1 or diag.size < 1:
            raise ShapeError("diag must be a non-empty vector")
        if np.any(diag <= 0) or not np.all(np.isfinite(diag)):
            raise ConfigError("diagonal entries must be positive and finite")
        self.diag = diag.astype(np.float64)

    @classmethod
    def from_matrix(cls, A: CSCMatrix,
                    eps: float = np.finfo(np.float64).eps) -> "DiagonalPreconditioner":
        """Build from the column norms of ``A`` with the safeguard rule."""
        norms = column_norms(A)
        n = A.shape[1]
        cutoff = eps * np.sqrt(n) * (norms.max() if norms.size else 0.0)
        d = np.where(norms <= cutoff, 1.0, norms)
        return cls(1.0 / d)

    @property
    def shape(self) -> tuple[int, int]:
        n = self.diag.size
        return (n, n)

    def apply(self, z: np.ndarray) -> np.ndarray:
        """``x = D z``."""
        check_vector(z, "z", size=self.diag.size)
        return self.diag * z

    def apply_transpose(self, w: np.ndarray) -> np.ndarray:
        """``D^T w = D w`` (diagonal)."""
        check_vector(w, "w", size=self.diag.size)
        return self.diag * w

    @property
    def memory_bytes(self) -> int:
        return int(self.diag.nbytes)


class TriangularPreconditioner:
    """SAP-QR preconditioner: ``P = R^{-1}`` for upper-triangular ``R``.

    Applications are triangular solves (never an explicit inverse).
    Rejects numerically singular ``R`` — the paper's prescription for that
    regime is :class:`SVDPreconditioner`.
    """

    def __init__(self, R: np.ndarray, *, rcond: float = 1e-14) -> None:
        if R.ndim != 2 or R.shape[0] != R.shape[1]:
            raise ShapeError("R must be square")
        diag = np.abs(np.diag(R))
        if diag.size == 0:
            raise ShapeError("R must be non-empty")
        if diag.min() <= rcond * diag.max():
            raise SingularMatrixError(
                "sketch QR factor is numerically singular "
                f"(min|R_ii| / max|R_ii| = {diag.min() / diag.max():.2e}); "
                "use SAP-SVD for rank-deficient problems"
            )
        self.R = np.ascontiguousarray(np.triu(R), dtype=np.float64)

    @classmethod
    def from_sketch(cls, Ahat: np.ndarray, **kwargs) -> "TriangularPreconditioner":
        """Economy QR of the dense sketch; keeps only ``R``."""
        if Ahat.ndim != 2 or Ahat.shape[0] < Ahat.shape[1]:
            raise ShapeError("sketch must be tall (d >= n)")
        R = dense_qr(Ahat, mode="r")[0][: Ahat.shape[1], :]
        return cls(R, **kwargs)

    @property
    def shape(self) -> tuple[int, int]:
        n = self.R.shape[0]
        return (n, n)

    def apply(self, z: np.ndarray) -> np.ndarray:
        """``x = R^{-1} z`` (back substitution)."""
        check_vector(z, "z", size=self.R.shape[0])
        return solve_triangular(self.R, z, lower=False)

    def apply_transpose(self, w: np.ndarray) -> np.ndarray:
        """``R^{-T} w`` (forward substitution on the transpose)."""
        check_vector(w, "w", size=self.R.shape[0])
        return solve_triangular(self.R, w, trans="T", lower=False)

    @property
    def memory_bytes(self) -> int:
        return int(self.R.nbytes)


class SVDPreconditioner:
    """SAP-SVD preconditioner: ``P = V_k diag(1/sigma_k)``.

    Truncates singular values below ``sigma_max / drop_tol`` (the paper
    uses ``drop_tol = 1e12``), so the LSQR iterate lives in the rank-``k``
    subspace and near-null directions of the original problem are excluded
    — the behaviour that keeps SAP stable on specular/connectus/landmark.
    """

    def __init__(self, V: np.ndarray, sigma: np.ndarray) -> None:
        if V.ndim != 2 or sigma.ndim != 1 or V.shape[1] != sigma.size:
            raise ShapeError("V must be n x k and sigma length k")
        if sigma.size == 0:
            raise SingularMatrixError("all singular values were dropped")
        if np.any(sigma <= 0):
            raise ConfigError("retained singular values must be positive")
        self.V = np.ascontiguousarray(V, dtype=np.float64)
        self.sigma = sigma.astype(np.float64)

    @classmethod
    def from_sketch(cls, Ahat: np.ndarray,
                    drop_ratio: float = 1e-12) -> "SVDPreconditioner":
        """SVD of the dense sketch, dropping ``sigma < sigma_max * drop_ratio``."""
        if Ahat.ndim != 2 or Ahat.shape[0] < Ahat.shape[1]:
            raise ShapeError("sketch must be tall (d >= n)")
        if not (0.0 < drop_ratio < 1.0):
            raise ConfigError(f"drop_ratio must be in (0, 1), got {drop_ratio}")
        _, s, Vt = np.linalg.svd(Ahat, full_matrices=False)
        keep = s > s[0] * drop_ratio if s.size else np.zeros(0, dtype=bool)
        return cls(Vt[keep].T, s[keep])

    @property
    def rank(self) -> int:
        """Retained numerical rank ``k``."""
        return int(self.sigma.size)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.V.shape[0], self.rank)

    def apply(self, z: np.ndarray) -> np.ndarray:
        """``x = V diag(1/sigma) z`` — iterate space (k) to model space (n)."""
        check_vector(z, "z", size=self.rank)
        return self.V @ (z / self.sigma)

    def apply_transpose(self, w: np.ndarray) -> np.ndarray:
        """``diag(1/sigma) V^T w`` — model space to iterate space."""
        check_vector(w, "w", size=self.V.shape[0])
        return (self.V.T @ w) / self.sigma

    @property
    def memory_bytes(self) -> int:
        return int(self.V.nbytes + self.sigma.nbytes)
