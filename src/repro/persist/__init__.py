"""Durable checkpoints: atomic snapshots, verified resume, replay audits.

Crash recovery for long sketching runs, built on the paper's RNG
contract (every entry of ``S`` is a pure function of seed and
coordinate, so stored partial sketches can be *recomputed* and compared
bit-for-bit, not just checksummed):

* :mod:`repro.persist.checksum` — content digests for snapshot files;
* :mod:`repro.persist.snapshot` — write-temp/fsync/rename atomic
  snapshot directories with a versioned, checksummed manifest;
* :mod:`repro.persist.resume` — restore a run from the newest
  verified-good snapshot, rejecting torn writes, damage, and config
  drift;
* :mod:`repro.persist.verify` — ABFT-style audit recomputing sampled
  tiles of the stored sketch through the kernel backends, with
  quarantine-and-repair.
"""

from .checksum import available_algos, checksum_bytes, default_algo
from .resume import latest_verified_snapshot, resume_streaming, try_resume_streaming
from .snapshot import (
    FINGERPRINT_KEYS,
    MANIFEST_NAME,
    MANIFEST_VERSION,
    CheckpointManager,
    Snapshot,
    check_fingerprint,
    list_snapshots,
    load_snapshot,
    run_fingerprint,
    write_snapshot,
)
from .verify import TileAudit, VerifyReport, verify_snapshot

__all__ = [
    "available_algos",
    "checksum_bytes",
    "default_algo",
    "latest_verified_snapshot",
    "resume_streaming",
    "try_resume_streaming",
    "FINGERPRINT_KEYS",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "CheckpointManager",
    "Snapshot",
    "check_fingerprint",
    "list_snapshots",
    "load_snapshot",
    "run_fingerprint",
    "write_snapshot",
    "TileAudit",
    "VerifyReport",
    "verify_snapshot",
]
