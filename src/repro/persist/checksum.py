"""Content checksums for snapshot block files and manifests.

Snapshots carry a per-file checksum in their manifest so a resuming run
can tell a verified-good snapshot from a torn or bit-flipped one without
recomputing any sketch data.  Two algorithms are supported:

* ``crc32`` — :func:`zlib.crc32`, always available (stdlib C speed);
* ``xxh64`` — ``xxhash.xxh64``, used automatically when the optional
  ``xxhash`` package is importable (faster on large blocks and with a
  longer digest).

The manifest records which algorithm produced each digest, so snapshots
written on a host with ``xxhash`` remain loadable on a host without it
only if the algorithm is available there — an unknown algorithm raises
:class:`~repro.errors.CheckpointCorruptionError` rather than silently
skipping verification.
"""

from __future__ import annotations

import zlib

from ..errors import CheckpointCorruptionError

__all__ = ["available_algos", "default_algo", "checksum_bytes"]

try:  # optional accelerator; the stdlib path is always available
    import xxhash as _xxhash
except ImportError:  # pragma: no cover - environment dependent
    _xxhash = None


def _crc32_hex(data) -> str:
    return f"{zlib.crc32(data) & 0xFFFFFFFF:08x}"


def _xxh64_hex(data) -> str:  # pragma: no cover - requires xxhash
    return _xxhash.xxh64(data).hexdigest()


def available_algos() -> tuple[str, ...]:
    """Checksum algorithm names usable on this host."""
    if _xxhash is not None:  # pragma: no cover - requires xxhash
        return ("crc32", "xxh64")
    return ("crc32",)


def default_algo() -> str:
    """The algorithm new snapshots are written with (best available)."""
    return "xxh64" if _xxhash is not None else "crc32"


def checksum_bytes(data: bytes | bytearray | memoryview, algo: str) -> str:
    """Hex digest of *data* under *algo*.

    Raises :class:`~repro.errors.CheckpointCorruptionError` for an
    algorithm this host cannot compute — verification must never be
    silently skipped.
    """
    if algo == "crc32":
        return _crc32_hex(data)
    if algo == "xxh64":
        if _xxhash is None:
            raise CheckpointCorruptionError(
                "snapshot uses the 'xxh64' checksum but the xxhash package "
                "is not installed; cannot verify integrity"
            )
        return _xxh64_hex(data)  # pragma: no cover - requires xxhash
    raise CheckpointCorruptionError(
        f"unknown checksum algorithm {algo!r} in snapshot manifest; "
        f"available here: {available_algos()}"
    )
