"""Integrity audit of stored snapshots by RNG-replay recomputation.

Checksums (see :mod:`repro.persist.checksum`) catch damage that happened
*after* a block file was checksummed — torn flushes, bit rot at rest.
They cannot catch corruption that happened *before*: a bad DIMM or a
buggy writer producing a wrong block that was then faithfully
checksummed.  The paper's RNG contract closes that hole: because every
entry of ``S`` is a pure function of ``(seed, coordinate)``, any tile of
the stored partial ``Ahat`` can be *recomputed from scratch* through the
same kernel backend and compared bit-for-bit — an algorithm-based fault
tolerance check that needs no second copy of anything.

:func:`verify_snapshot` samples ``k`` (row-block x column-block) tiles,
replays them, and quarantines any row block whose tile disagrees; with
``repair=True`` the quarantined row blocks are recomputed whole and a
new snapshot is written through the normal atomic protocol.

Replay exactness: a streaming snapshot carries its batch log (the
``(offset, rows)`` of every absorbed batch).  For one output tile the
streaming run accumulated ``sum_t update_t[tile]`` in batch order; the
auditor rebuilds each batch as a row window of ``A``, runs the same
block kernel on the same backend, and accumulates in the same order, so
agreement is exact (bit-identical), not approximate.  Blocked-mode
snapshots replay each tile as the executor computed it (one kernel call,
pre-``post_scale``).  Entry-mode snapshots (``absorb_entries``) are not
coordinate-replayable and get checksum-only verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import CheckpointError, ShapeError
from ..sparse.csc import CSCMatrix
from .resume import latest_verified_snapshot
from .snapshot import CheckpointManager, Snapshot, load_snapshot

__all__ = ["TileAudit", "VerifyReport", "verify_snapshot"]


@dataclass(frozen=True)
class TileAudit:
    """Outcome of replaying one sampled (row-block x column-block) tile."""

    row_offset: int
    rows: int
    col_offset: int
    cols: int
    ok: bool
    max_abs_diff: float

    def as_dict(self) -> dict:
        return {
            "row_offset": self.row_offset, "rows": self.rows,
            "col_offset": self.col_offset, "cols": self.cols,
            "ok": self.ok, "max_abs_diff": self.max_abs_diff,
        }


@dataclass
class VerifyReport:
    """Result of one snapshot audit (see :func:`verify_snapshot`)."""

    snapshot: str
    seq: int
    mode: str
    method: str  #: ``"replay"`` or ``"checksum-only"``
    tiles_total: int
    audits: list[TileAudit] = field(default_factory=list)
    quarantined_row_offsets: list[int] = field(default_factory=list)
    repaired_path: str | None = None

    @property
    def tiles_audited(self) -> int:
        return len(self.audits)

    @property
    def corrupt(self) -> list[TileAudit]:
        return [a for a in self.audits if not a.ok]

    @property
    def ok(self) -> bool:
        """True when every audited tile replayed bit-identically."""
        return not self.corrupt

    def as_dict(self) -> dict:
        return {
            "snapshot": self.snapshot, "seq": self.seq, "mode": self.mode,
            "method": self.method, "ok": self.ok,
            "tiles_total": self.tiles_total,
            "tiles_audited": self.tiles_audited,
            "corrupt": [a.as_dict() for a in self.corrupt],
            "quarantined_row_offsets": list(self.quarantined_row_offsets),
            "repaired_path": self.repaired_path,
        }


# -- replay machinery -------------------------------------------------------


def _row_window(sub: CSCMatrix, r0: int, r1: int) -> CSCMatrix:
    """Rows ``[r0, r1)`` of a CSC matrix, rebased to start at row 0.

    Within each CSC column the row indices are strictly increasing, so a
    mask-and-rebase reproduces the exact entry order the original batch
    had — the property batch replay relies on.
    """
    keep = (sub.indices >= r0) & (sub.indices < r1)
    csum = np.zeros(sub.indices.size + 1, dtype=np.int64)
    np.cumsum(keep, out=csum[1:])
    return CSCMatrix(
        (r1 - r0, sub.shape[1]),
        csum[sub.indptr],
        sub.indices[keep] - r0,
        sub.data[keep],
        check=False,
    )


def _kernel_block(backend, kernel: str, view: np.ndarray, sub: CSCMatrix,
                  r: int, rng) -> None:
    """Run one block through the same kernel path the run used."""
    if kernel == "algo4":
        from ..sparse.convert import csc_to_blocked_csr

        blocked, _ = csc_to_blocked_csr(sub, sub.shape[1])
        for _j0, blk in blocked.iter_blocks():
            backend.algo4_block(view, blk, r, rng)
    else:
        backend.algo3_block(view, sub, r, rng)


class _Replayer:
    """Recomputes tiles of a stored partial sketch from ``A`` + fingerprint."""

    def __init__(self, snap: Snapshot, A: CSCMatrix) -> None:
        from ..rng.base import make_rng
        from ..kernels.backends import resolve_backend

        fp = snap.fingerprint
        if A.shape[1] != int(fp["n"]):
            raise ShapeError(
                f"A has {A.shape[1]} columns, snapshot fingerprint says "
                f"{fp['n']}"
            )
        self.fp = fp
        self.mode = fp["mode"]
        self.kernel = fp["kernel"]
        self.A = A
        self.rng = make_rng(fp["rng_kind"], fp["seed"], fp["distribution"])
        self.backend = resolve_backend(fp["backend"])
        if self.backend.name != fp["backend"]:
            raise CheckpointError(
                f"cannot replay-audit: snapshot backend {fp['backend']!r} is "
                f"unavailable (resolved to {self.backend.name!r}) and bit "
                f"patterns are backend-specific"
            )
        self.backend.warmup(self.rng)
        self.batches = [(int(o), int(c))
                        for o, c in snap.state.get("batches", [])]
        self._col_cache: dict[int, CSCMatrix] = {}

    def _col_window(self, j: int, n1: int) -> CSCMatrix:
        sub = self._col_cache.get(j)
        if sub is None:
            sub = self.A.col_block(j, j + n1)
            self._col_cache[j] = sub
        return sub

    def tile(self, r: int, d1: int, j: int, n1: int) -> np.ndarray:
        """Recompute ``Ahat[r:r+d1, j:j+n1]`` exactly as the run built it."""
        from ..core.streaming import _OffsetRNG

        sub = self._col_window(j, n1)
        acc = np.zeros((d1, n1), dtype=np.float64, order="F")
        if self.mode == "streaming":
            tmp = np.zeros_like(acc)
            for off, cnt in self.batches:
                win = _row_window(sub, off, off + cnt)
                tmp[:] = 0.0
                _kernel_block(self.backend, self.kernel, tmp, win, r,
                              _OffsetRNG(self.rng, off))
                acc += tmp
        else:
            _kernel_block(self.backend, self.kernel, acc, sub, r, self.rng)
        return acc

    def row_block(self, r: int, d1: int, b_n: int) -> np.ndarray:
        """Recompute one full stored row block (repair path)."""
        n = int(self.fp["n"])
        out = np.zeros((d1, n), dtype=np.float64, order="F")
        for j in range(0, n, b_n):
            n1 = min(b_n, n - j)
            out[:, j:j + n1] = self.tile(r, d1, j, n1)
        return out


def _sample_tiles(blocks: list[dict], col_offsets: list[int],
                  k: int | None, exhaustive: bool,
                  seed: int) -> list[tuple[dict, int]]:
    """Pick the (manifest block, column offset) pairs to audit.

    Default (``k is None``): stratified — every stored row block is
    audited at one uniformly random column tile, so corruption anywhere
    in a row block has detection probability ``1/C`` per pass (``C``
    column tiles) and corruption spanning a whole row block is caught
    with certainty.  An explicit ``k`` adds (or, when smaller than the
    row-block count, subsamples) uniform tiles; ``exhaustive`` audits
    every tile.
    """
    pairs = [(blk, j) for blk in blocks for j in col_offsets]
    if exhaustive:
        return pairs
    prng = np.random.default_rng(seed)
    chosen: list[tuple[dict, int]] = []
    strata = blocks
    if k is not None and k < len(blocks):
        idx = prng.choice(len(blocks), size=k, replace=False)
        strata = [blocks[i] for i in sorted(idx)]
    for blk in strata:
        chosen.append((blk, col_offsets[int(prng.integers(len(col_offsets)))]))
    if k is not None and k > len(chosen):
        seen = {(id(b), j) for b, j in chosen}
        extra = [p for p in pairs if (id(p[0]), p[1]) not in seen]
        take = min(k - len(chosen), len(extra))
        if take:
            idx = prng.choice(len(extra), size=take, replace=False)
            chosen.extend(extra[i] for i in sorted(idx))
    return chosen


# -- the auditor ------------------------------------------------------------


def verify_snapshot(source: str | Path | Snapshot,
                    A: CSCMatrix | None = None, *, k: int | None = None,
                    exhaustive: bool = False, seed: int = 0,
                    repair: bool = False) -> VerifyReport:
    """Audit a snapshot's stored sketch data against recomputation.

    Parameters
    ----------
    source:
        A checkpoint directory (the newest verified snapshot is audited),
        a snapshot directory, or a loaded :class:`Snapshot`.
    A:
        The sparse input the run was sketching.  Without it — or for
        entry-mode snapshots, which are not coordinate-replayable — the
        audit degrades to checksum-only verification (reported as
        ``method="checksum-only"``).
    k, exhaustive, seed:
        Tile sampling (see the sampling note below); ``k=None`` audits
        one random column tile per stored row block, ``exhaustive=True``
        audits every tile.
    repair:
        Recompute every quarantined row block whole and write a repaired
        snapshot through the atomic protocol (requires replayability);
        its path is returned in ``report.repaired_path``.

    Detection math: with ``B`` stored row blocks and ``C`` column tiles,
    the default stratified pass audits ``B`` tiles and catches a
    corruption confined to a single tile with probability ``1/C`` (and
    always lands at least one audit in the damaged row block); ``t``
    independent passes with different *seed* miss it with probability
    ``(1 - 1/C)^t``.  ``exhaustive=True`` is the certainty option at
    ``B*C`` tile recomputes.
    """
    if isinstance(source, Snapshot):
        snap = source
    else:
        path = Path(source)
        if (path / "MANIFEST.json").exists():
            snap = load_snapshot(path, verify=True)
        else:
            found = latest_verified_snapshot(path)
            if found is None:
                raise CheckpointError(f"no snapshot found in {path}")
            snap = found
    fp = snap.fingerprint
    state = snap.state
    blocks = list(snap.manifest["blocks"])
    b_n = int(fp["b_n"])
    n = int(fp["n"])
    col_offsets = list(range(0, n, b_n))
    tiles_total = len(blocks) * len(col_offsets)

    entry_mode = (fp["mode"] == "streaming"
                  and int(state.get("entry_chunks", 0)) > 0)
    if A is None or entry_mode:
        snap.verify_files()
        return VerifyReport(
            snapshot=str(snap.path), seq=snap.seq, mode=fp["mode"],
            method="checksum-only", tiles_total=tiles_total,
        )

    replayer = _Replayer(snap, A)
    report = VerifyReport(
        snapshot=str(snap.path), seq=snap.seq, mode=fp["mode"],
        method="replay", tiles_total=tiles_total,
    )
    quarantined: dict[int, dict] = {}
    for blk, j in _sample_tiles(blocks, col_offsets, k, exhaustive, seed):
        r, d1 = int(blk["row_offset"]), int(blk["rows"])
        n1 = min(b_n, n - j)
        stored = snap.load_block(blk)[:, j:j + n1]
        expected = replayer.tile(r, d1, j, n1)
        same = np.array_equal(stored, expected)
        diff = 0.0 if same else float(np.max(np.abs(stored - expected)))
        report.audits.append(TileAudit(
            row_offset=r, rows=d1, col_offset=j, cols=n1, ok=same,
            max_abs_diff=diff,
        ))
        if not same:
            quarantined[r] = blk
    report.quarantined_row_offsets = sorted(quarantined)

    if repair and quarantined:
        new_blocks = []
        for blk in blocks:
            r, d1 = int(blk["row_offset"]), int(blk["rows"])
            if r in quarantined:
                new_blocks.append((r, replayer.row_block(r, d1, b_n)))
            else:
                new_blocks.append((r, snap.load_block(blk)))
        manager = CheckpointManager(snap.path.parent)
        report.repaired_path = str(manager.save(new_blocks, fp, state))
    return report
