"""Restore interrupted sketching runs from the last verified-good snapshot.

Recovery contract:

* only a snapshot whose manifest parses, whose files all exist at their
  declared sizes, and whose content checksums match is ever restored;
* damaged snapshots (torn writes, bit rot) are skipped in favour of the
  newest older snapshot that verifies — a crash can lose at most the work
  since the last good snapshot, never corrupt the result;
* a snapshot whose config fingerprint disagrees with the resuming run
  (different blocking, kernel, backend, RNG family/seed/distribution)
  raises :class:`~repro.errors.CheckpointMismatchError` — resuming across
  configs would produce a sketch matching neither, silently.
"""

from __future__ import annotations

import logging
from pathlib import Path
from typing import TYPE_CHECKING

from ..errors import (
    CheckpointCorruptionError,
    CheckpointError,
    CheckpointMismatchError,
)
from .snapshot import (
    CheckpointManager,
    Snapshot,
    check_fingerprint,
    list_snapshots,
    load_snapshot,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..core.streaming import StreamingSketch

__all__ = [
    "latest_verified_snapshot",
    "resume_streaming",
    "try_resume_streaming",
]

_LOG = logging.getLogger("repro.persist")


def latest_verified_snapshot(directory: str | Path) -> Snapshot | None:
    """The newest snapshot that passes full checksum verification.

    Returns ``None`` when *directory* holds no snapshots at all.  When
    snapshots exist but every one is damaged, raises
    :class:`~repro.errors.CheckpointCorruptionError` naming each failure —
    a loadable-but-wrong checkpoint is never returned.
    """
    snaps = list_snapshots(directory)
    if not snaps:
        return None
    failures = []
    for seq, path in reversed(snaps):
        try:
            return load_snapshot(path, verify=True)
        except CheckpointCorruptionError as exc:
            _LOG.warning("skipping damaged snapshot %s: %s", path.name, exc)
            failures.append(f"{path.name}: {exc}")
    raise CheckpointCorruptionError(
        f"no verifiable snapshot in {directory}; all candidates damaged: "
        + " | ".join(failures)
    )


def _restore_streaming(snap: Snapshot, *, checkpoint_every: int | None,
                       keep: int, injector=None,
                       expect: dict | None = None) -> "StreamingSketch":
    from ..core.streaming import StreamingSketch
    from ..rng.base import make_rng

    fp = snap.fingerprint
    if fp.get("mode") != "streaming":
        raise CheckpointMismatchError(
            f"snapshot {snap.path.name} was written by a "
            f"{fp.get('mode')!r} run, not a streaming one"
        )
    if expect:
        check_fingerprint(fp, expect, keys=tuple(expect))
    state = snap.state
    rng = make_rng(fp["rng_kind"], fp["seed"], fp["distribution"])
    rng.samples_generated = int(state.get("samples_generated", 0))
    manager = CheckpointManager(snap.path.parent, keep=keep,
                                injector=injector)
    from ..plan.policy import PersistencePolicy

    st = StreamingSketch(
        int(fp["d"]), int(fp["n"]), rng, kernel=fp["kernel"],
        b_d=int(fp["b_d"]), b_n=int(fp["b_n"]), backend=fp["backend"],
        persistence=PersistencePolicy(manager=manager),
    )
    st.checkpoint_every = checkpoint_every
    if st.backend.name != fp["backend"]:
        # resolve_backend silently downgrades an unavailable backend; for
        # resume that would break bit-identity, so make it loud.
        raise CheckpointMismatchError(
            f"snapshot was written with backend {fp['backend']!r} which is "
            f"unavailable here (resolved to {st.backend.name!r}); the "
            f"accumulation bit patterns would not match"
        )
    check_fingerprint(fp, st.fingerprint())
    st._sketch[:, :] = snap.load_array(verify=False)  # verified at load
    st.rows_seen = int(state["rows_seen"])
    st.batches_absorbed = int(state["batches_absorbed"])
    st.batch_log = [(int(o), int(c)) for o, c in state.get("batches", [])]
    st.entry_chunks_absorbed = int(state.get("entry_chunks", 0))
    st._rows_at_last_snapshot = st.rows_seen
    st.resumed_from = snap.path
    _LOG.info("resumed streaming sketch from %s (rows_seen=%d, seq=%d)",
              snap.path, st.rows_seen, snap.seq)
    return st


def resume_streaming(directory: str | Path, *,
                     checkpoint_every: int | None = None,
                     keep: int = 2, injector=None,
                     expect: dict | None = None) -> "StreamingSketch":
    """Restore a :class:`~repro.core.StreamingSketch` from *directory*.

    The returned sketch has the partial ``Ahat``, row offset, batch log,
    and RNG accounting of the interrupted run and a reattached
    :class:`CheckpointManager` continuing the same sequence numbers, so
    absorbing the remaining batches (same chunking) finishes with a
    ``Ahat`` bit-identical to an uninterrupted run.

    *expect* pins fingerprint keys the resuming caller was explicitly
    configured with (e.g. ``{"d": 300, "kernel": "algo4"}``); a snapshot
    disagreeing on any pinned key is rejected rather than silently
    overriding the caller's config.

    Raises :class:`~repro.errors.CheckpointError` when the directory holds
    no snapshot, :class:`~repro.errors.CheckpointCorruptionError` when all
    snapshots are damaged, and
    :class:`~repro.errors.CheckpointMismatchError` on config drift.
    """
    snap = latest_verified_snapshot(directory)
    if snap is None:
        raise CheckpointError(f"no snapshot found in {directory}")
    return _restore_streaming(snap, checkpoint_every=checkpoint_every,
                              keep=keep, injector=injector, expect=expect)


def try_resume_streaming(directory: str | Path, *,
                         checkpoint_every: int | None = None,
                         keep: int = 2, injector=None,
                         expect: dict | None = None
                         ) -> "StreamingSketch | None":
    """Like :func:`resume_streaming` but ``None`` when nothing to resume.

    Damage and fingerprint drift still raise — only the benign "fresh
    directory" case is folded into ``None`` so first runs and restarted
    runs can share one code path.
    """
    if latest_verified_snapshot(directory) is None:
        return None
    return resume_streaming(directory, checkpoint_every=checkpoint_every,
                            keep=keep, injector=injector, expect=expect)
