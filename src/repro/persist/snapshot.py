"""Durable, atomic snapshots of partial sketches.

A snapshot is a directory holding the partial ``Ahat`` as one ``.npy``
file per row block plus a versioned JSON manifest (written last) that
records a content checksum for every block file, the run's config
fingerprint, and the mutable progress state (rows absorbed, batch
offsets, completed row blocks, RNG sample counters).

Write protocol (crash-safe on POSIX semantics)::

    1. create  <dir>/.snapshot-<seq>.tmp-<pid>/
    2. write + fsync every block file into the temp directory
    3. write + fsync MANIFEST.json (naming every file, size, checksum)
    4. fsync the temp directory, rename it to <dir>/snapshot-<seq>,
       fsync the parent

A reader therefore only ever sees either no ``snapshot-<seq>`` entry or a
complete one; partially written state is confined to ``.tmp`` directories
that loaders ignore and the :class:`CheckpointManager` garbage-collects.
Because the manifest also carries per-file sizes and checksums, even a
snapshot damaged *after* the rename (a torn flush on power loss, a
bit-flip at rest) is detected at load time and recovery falls back to the
previous verified-good snapshot — see :mod:`repro.persist.resume`.

The sketch payload is stored **pre** ``post_scale``/normalization, i.e.
exactly the accumulation state of the interrupted run, so a resumed run
continues bit-identically and applies the scaling once at the end like an
uninterrupted run would.
"""

from __future__ import annotations

import io
import json
import os
import shutil
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import CheckpointCorruptionError, CheckpointError, CheckpointMismatchError
from .checksum import checksum_bytes, default_algo

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.injector import FaultInjector

__all__ = [
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "run_fingerprint",
    "check_fingerprint",
    "Snapshot",
    "list_snapshots",
    "write_snapshot",
    "CheckpointManager",
]

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_VERSION = 1
_SNAP_PREFIX = "snapshot-"
_TMP_PREFIX = ".snapshot-"

#: Keys every fingerprint carries; drift in any of them makes a snapshot
#: unresumable (the realized sketch would differ).
FINGERPRINT_KEYS = ("mode", "d", "n", "b_d", "b_n", "kernel", "backend",
                    "rng_kind", "seed", "distribution", "dtype")


# -- fingerprints -----------------------------------------------------------


def run_fingerprint(*, mode: str, d: int, n: int, b_d: int, b_n: int,
                    kernel: str, backend: str, rng_kind: str, seed: int,
                    distribution: str, dtype: str = "float64") -> dict:
    """The immutable identity of a sketching run.

    Two runs with equal fingerprints produce bit-identical partial
    sketches at equal progress points, which is exactly the property
    resuming relies on; any drift is grounds for
    :class:`~repro.errors.CheckpointMismatchError`.
    """
    return {
        "mode": str(mode), "d": int(d), "n": int(n),
        "b_d": int(b_d), "b_n": int(b_n),
        "kernel": str(kernel), "backend": str(backend),
        "rng_kind": str(rng_kind), "seed": int(seed),
        "distribution": str(distribution), "dtype": str(dtype),
    }


def check_fingerprint(stored: dict, current: dict,
                      keys: Sequence[str] = FINGERPRINT_KEYS) -> None:
    """Raise :class:`CheckpointMismatchError` if *stored* != *current*.

    Every drifted key is reported, never just the first, so a user who
    changed two flags sees both at once.  *keys* restricts the comparison
    (used for partial "expected config" checks where the caller only pins
    the parameters it was explicitly given).
    """
    drifted = []
    for key in keys:
        s, c = stored.get(key), current.get(key)
        if s != c:
            drifted.append(f"{key}: snapshot has {s!r}, run has {c!r}")
    if drifted:
        raise CheckpointMismatchError(
            "snapshot fingerprint does not match the resuming run — "
            "resuming would produce silent garbage: " + "; ".join(drifted)
        )


# -- low-level atomic IO ----------------------------------------------------


def _fsync_path(path: Path) -> None:
    """fsync a file or directory (directory fsync is best-effort)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform dependent
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_file_sync(path: Path, data: bytes) -> None:
    with open(path, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())


def _array_to_npy_bytes(arr: np.ndarray) -> bytes:
    bio = io.BytesIO()
    np.save(bio, arr)
    return bio.getvalue()


def _npy_bytes_to_array(data: bytes) -> np.ndarray:
    return np.load(io.BytesIO(data))


# -- snapshot naming / discovery -------------------------------------------


def _snapshot_name(seq: int) -> str:
    return f"{_SNAP_PREFIX}{seq:08d}"


def snapshot_seq(path: Path) -> int | None:
    """Sequence number encoded in a snapshot directory name, else None."""
    name = Path(path).name
    if not name.startswith(_SNAP_PREFIX):
        return None
    try:
        return int(name[len(_SNAP_PREFIX):])
    except ValueError:
        return None


def list_snapshots(directory: str | Path) -> list[tuple[int, Path]]:
    """All finalized snapshot directories under *directory*, oldest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = []
    for entry in directory.iterdir():
        seq = snapshot_seq(entry)
        if seq is not None and entry.is_dir():
            found.append((seq, entry))
    found.sort(key=lambda t: t[0])
    return found


# -- loaded snapshot view ---------------------------------------------------


@dataclass
class Snapshot:
    """A parsed (and, by default, checksum-verified) snapshot on disk."""

    path: Path
    manifest: dict

    @property
    def seq(self) -> int:
        return int(self.manifest["seq"])

    @property
    def fingerprint(self) -> dict:
        return self.manifest["fingerprint"]

    @property
    def state(self) -> dict:
        return self.manifest["state"]

    @property
    def checksum_algo(self) -> str:
        return self.manifest["checksum_algo"]

    def block_bytes(self, block: dict, *, verify: bool = True) -> bytes:
        """Raw bytes of one manifest block entry, checksum-verified."""
        fpath = self.path / block["file"]
        try:
            data = fpath.read_bytes()
        except OSError as exc:
            raise CheckpointCorruptionError(
                f"snapshot {self.path.name}: block file {block['file']!r} "
                f"unreadable: {exc}"
            ) from exc
        if len(data) != int(block["nbytes"]):
            raise CheckpointCorruptionError(
                f"snapshot {self.path.name}: torn write detected — "
                f"{block['file']!r} holds {len(data)} bytes, manifest "
                f"declares {block['nbytes']}"
            )
        if verify:
            digest = checksum_bytes(data, self.checksum_algo)
            if digest != block["checksum"]:
                raise CheckpointCorruptionError(
                    f"snapshot {self.path.name}: checksum mismatch on "
                    f"{block['file']!r} ({self.checksum_algo} {digest} != "
                    f"manifest {block['checksum']})"
                )
        return data

    def verify_files(self) -> None:
        """Re-verify every block file's size and checksum (raises on damage)."""
        for block in self.manifest["blocks"]:
            self.block_bytes(block, verify=True)

    def load_block(self, block: dict, *, verify: bool = True) -> np.ndarray:
        """Decode one stored row block as a ``rows x n`` array."""
        arr = _npy_bytes_to_array(self.block_bytes(block, verify=verify))
        if arr.shape != (int(block["rows"]), int(block["cols"])):
            raise CheckpointCorruptionError(
                f"snapshot {self.path.name}: {block['file']!r} decodes to "
                f"shape {arr.shape}, manifest declares "
                f"({block['rows']}, {block['cols']})"
            )
        return arr

    def load_array(self, *, verify: bool = True) -> np.ndarray:
        """Assemble the stored partial ``Ahat`` (zeros where no block is
        stored, e.g. row blocks a blocked run had not completed)."""
        fp = self.fingerprint
        out = np.zeros((int(fp["d"]), int(fp["n"])), dtype=np.float64,
                       order="F")
        for block in self.manifest["blocks"]:
            r = int(block["row_offset"])
            out[r:r + int(block["rows"]), :] = self.load_block(block,
                                                               verify=verify)
        return out


def _parse_manifest(path: Path) -> dict:
    mpath = path / MANIFEST_NAME
    try:
        raw = mpath.read_text()
    except OSError as exc:
        raise CheckpointCorruptionError(
            f"snapshot {path.name}: manifest unreadable: {exc}"
        ) from exc
    try:
        manifest = json.loads(raw)
    except ValueError as exc:
        raise CheckpointCorruptionError(
            f"snapshot {path.name}: manifest is not valid JSON "
            f"(torn write?): {exc}"
        ) from exc
    if not isinstance(manifest, dict):
        raise CheckpointCorruptionError(
            f"snapshot {path.name}: manifest is not a JSON object"
        )
    version = manifest.get("version")
    if version != MANIFEST_VERSION:
        raise CheckpointCorruptionError(
            f"snapshot {path.name}: manifest version {version!r} is not "
            f"supported (expected {MANIFEST_VERSION})"
        )
    for key in ("seq", "checksum_algo", "fingerprint", "state", "blocks"):
        if key not in manifest:
            raise CheckpointCorruptionError(
                f"snapshot {path.name}: manifest missing {key!r}"
            )
    return manifest


def load_snapshot(path: str | Path, *, verify: bool = True) -> Snapshot:
    """Parse (and by default fully checksum-verify) one snapshot directory."""
    path = Path(path)
    snap = Snapshot(path=path, manifest=_parse_manifest(path))
    if verify:
        snap.verify_files()
    return snap


# -- snapshot writing -------------------------------------------------------


def write_snapshot(directory: str | Path, seq: int,
                   blocks: Sequence[tuple[int, np.ndarray]],
                   fingerprint: dict, state: dict, *,
                   algo: str | None = None,
                   injector: "FaultInjector | None" = None) -> Path:
    """Atomically write one snapshot; returns its final directory.

    *blocks* is a sequence of ``(row_offset, rows x n array)`` pairs — the
    caller decides which row blocks are worth persisting (a streaming run
    stores all of them, a blocked run only the completed ones).

    *injector* is the fault-injection hook used by the robustness tests:
    ``bitflip`` faults corrupt a finalized block file (and collude by
    patching its manifest checksum, modelling corruption that happened
    *before* checksumming — only the sampled-tile audit of
    :mod:`repro.persist.verify` can catch that); ``torn_write`` faults
    truncate a block file and then raise, modelling a crash that beat the
    data to disk while the manifest survived.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    algo = algo if algo is not None else default_algo()
    final = directory / _snapshot_name(seq)
    if final.exists():
        raise CheckpointError(f"snapshot {final} already exists")
    tmp = directory / f"{_TMP_PREFIX}{seq:08d}.tmp-{os.getpid()}"
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir()

    manifest_blocks = []
    try:
        for row_offset, arr in blocks:
            arr = np.asarray(arr, dtype=np.float64)
            if arr.ndim != 2:
                raise CheckpointError(
                    f"snapshot blocks must be 2-D, got ndim={arr.ndim}"
                )
            data = _array_to_npy_bytes(arr)
            fname = f"block-r{int(row_offset):08d}.npy"
            _write_file_sync(tmp / fname, data)
            manifest_blocks.append({
                "file": fname,
                "row_offset": int(row_offset),
                "rows": int(arr.shape[0]),
                "cols": int(arr.shape[1]),
                "nbytes": len(data),
                "checksum": checksum_bytes(data, algo),
            })
        manifest = {
            "version": MANIFEST_VERSION,
            "seq": int(seq),
            "checksum_algo": algo,
            "fingerprint": dict(fingerprint),
            "state": dict(state),
            "blocks": manifest_blocks,
        }
        _write_file_sync(tmp / MANIFEST_NAME,
                         json.dumps(manifest, indent=1).encode())
        _fsync_path(tmp)
        os.replace(tmp, final)
        _fsync_path(directory)
    except Exception:
        shutil.rmtree(tmp, ignore_errors=True)
        raise

    if injector is not None:
        _apply_snapshot_faults(injector, final, manifest)
    return final


def _apply_snapshot_faults(injector: "FaultInjector", final: Path,
                           manifest: dict) -> None:
    """Fire planned ``bitflip``/``torn_write`` faults on a finalized snapshot."""
    manifest_dirty = False
    for idx, block in enumerate(manifest["blocks"]):
        kinds = injector.snapshot_faults(int(manifest["seq"]), idx)
        if not kinds:
            continue
        fpath = final / block["file"]
        if "bitflip" in kinds:
            data = bytearray(fpath.read_bytes())
            # Flip one bit in the payload region (past the ~128-byte .npy
            # header) so the stored float changes by an undetectably small
            # or absurdly large amount depending on which bit falls here.
            pos = min(len(data) - 1, 128 + (len(data) - 128) // 2)
            data[pos] ^= 0x10
            fpath.write_bytes(bytes(data))
            block["nbytes"] = len(data)
            block["checksum"] = checksum_bytes(bytes(data),
                                               manifest["checksum_algo"])
            manifest_dirty = True
        if "torn_write" in kinds:
            data = fpath.read_bytes()
            if manifest_dirty:
                (final / MANIFEST_NAME).write_text(json.dumps(manifest,
                                                              indent=1))
            fpath.write_bytes(data[:max(1, len(data) // 2)])
            from ..faults.plan import InjectedCrashError

            raise InjectedCrashError(
                f"injected torn write on {fpath} (snapshot "
                f"{manifest['seq']}, block {idx})"
            )
    if manifest_dirty:
        (final / MANIFEST_NAME).write_text(json.dumps(manifest, indent=1))


# -- the manager ------------------------------------------------------------


class CheckpointManager:
    """Owns one checkpoint directory: sequence numbers, retention, faults.

    Thread-safe: the parallel executor checkpoints from whichever worker
    completes a row block, so :meth:`save` serializes writers internally.

    Parameters
    ----------
    directory:
        Where snapshots live; created on first use.
    keep:
        Retention — how many finalized snapshots to keep (older ones are
        deleted after each successful save; at least 1).
    algo:
        Checksum algorithm (default: best available, see
        :func:`repro.persist.checksum.default_algo`).
    injector:
        Optional :class:`repro.faults.FaultInjector` whose
        ``bitflip``/``torn_write`` faults target this manager's writes
        (testing only).
    """

    def __init__(self, directory: str | Path, *, keep: int = 2,
                 algo: str | None = None,
                 injector: "FaultInjector | None" = None) -> None:
        self.directory = Path(directory)
        if keep < 1:
            raise CheckpointError(f"keep must be >= 1, got {keep}")
        self.keep = int(keep)
        self.algo = algo if algo is not None else default_algo()
        self.injector = injector
        self._lock = threading.Lock()
        existing = list_snapshots(self.directory)
        self._seq = existing[-1][0] if existing else 0
        self.snapshots_written = 0
        self._gc_stale_tmp()

    def _gc_stale_tmp(self) -> None:
        """Remove torn temp directories left by a crashed writer."""
        if not self.directory.is_dir():
            return
        for entry in self.directory.iterdir():
            if entry.name.startswith(_TMP_PREFIX) and entry.is_dir():
                shutil.rmtree(entry, ignore_errors=True)

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest snapshot written or found (0 = none)."""
        return self._seq

    def save(self, blocks: Sequence[tuple[int, np.ndarray]],
             fingerprint: dict, state: dict) -> Path:
        """Write the next snapshot; returns its directory."""
        with self._lock:
            # Re-scan the directory so a damaged snapshot left by an
            # injected/real crash (its dir exists but never verified)
            # cannot collide with the next sequence number.
            existing = list_snapshots(self.directory)
            seq = max(self._seq, existing[-1][0] if existing else 0) + 1
            path = write_snapshot(self.directory, seq, blocks, fingerprint,
                                  state, algo=self.algo,
                                  injector=self.injector)
            self._seq = seq
            self.snapshots_written += 1
            self._prune()
            return path

    def _prune(self) -> None:
        snaps = list_snapshots(self.directory)
        for _seq, path in snaps[:-self.keep]:
            shutil.rmtree(path, ignore_errors=True)
