"""Sparse-matrix arithmetic over the from-scratch formats.

Support operations a downstream user of the sketching library needs when
preparing inputs: linear combinations, elementwise scaling, transpose
products, sparse-times-sparse multiplication, and hygiene utilities
(pruning explicit zeros, extracting diagonals, stacking).  Everything is
implemented against :class:`~repro.sparse.CSCMatrix` with vectorized
NumPy (no scipy), and tested against dense references.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .coo import COOMatrix
from .csc import CSCMatrix

__all__ = [
    "add",
    "scale",
    "elementwise_multiply",
    "matmul",
    "gram",
    "prune",
    "diagonal",
    "hstack",
    "vstack",
]


def _same_shape(A: CSCMatrix, B: CSCMatrix) -> None:
    if A.shape != B.shape:
        raise ShapeError(f"shape mismatch: {A.shape} vs {B.shape}")


def add(A: CSCMatrix, B: CSCMatrix, alpha: float = 1.0,
        beta: float = 1.0) -> CSCMatrix:
    """Linear combination ``alpha * A + beta * B`` (duplicates summed).

    Entries that cancel exactly are kept as stored zeros only if both
    operands stored them; exact numerical cancellations are pruned.
    """
    _same_shape(A, B)
    a, b = A.to_coo(), B.to_coo()
    out = COOMatrix(
        A.shape,
        np.concatenate([a.rows, b.rows]),
        np.concatenate([a.cols, b.cols]),
        np.concatenate([alpha * a.vals, beta * b.vals]),
        check=False,
    ).to_csc()
    return prune(out)


def scale(A: CSCMatrix, alpha: float) -> CSCMatrix:
    """``alpha * A`` as a new matrix (pattern shared semantics: copies)."""
    return CSCMatrix(A.shape, A.indptr.copy(), A.indices.copy(),
                     alpha * A.data, check=False)


def elementwise_multiply(A: CSCMatrix, B: CSCMatrix) -> CSCMatrix:
    """Hadamard product ``A .* B`` — nonzero only where both are stored."""
    _same_shape(A, B)
    m, n = A.shape
    # Match stored coordinates via sorted linear keys.
    a, b = A.to_coo(), B.to_coo()
    ka = a.cols * np.int64(m) + a.rows
    kb = b.cols * np.int64(m) + b.rows
    oa, ob = np.argsort(ka, kind="stable"), np.argsort(kb, kind="stable")
    ka, va = ka[oa], a.vals[oa]
    kb, vb = kb[ob], b.vals[ob]
    ia = np.searchsorted(kb, ka)
    ia_valid = (ia < kb.size)
    hit = np.zeros(ka.size, dtype=bool)
    hit[ia_valid] = kb[ia[ia_valid]] == ka[ia_valid]
    keys = ka[hit]
    vals = va[hit] * vb[ia[hit]]
    return COOMatrix((m, n), keys % m, keys // m, vals, check=False).to_csc()


def matmul(A: CSCMatrix, B: CSCMatrix) -> CSCMatrix:
    """Sparse-sparse product ``A @ B`` (classical column-wise SpGEMM).

    Column ``j`` of the result is the sparse linear combination of ``A``'s
    columns selected by column ``j`` of ``B`` — the Gustavson formulation,
    accumulated through a dense scatter workspace of length ``m``.
    """
    m, k = A.shape
    k2, n = B.shape
    if k != k2:
        raise ShapeError(f"inner dimensions differ: {A.shape} @ {B.shape}")
    out_indptr = np.zeros(n + 1, dtype=np.int64)
    out_indices: list[np.ndarray] = []
    out_data: list[np.ndarray] = []
    workspace = np.zeros(m, dtype=np.float64)
    touched = np.zeros(m, dtype=bool)
    for j in range(n):
        rows_b, vals_b = B.col(j)
        cols_touched: list[np.ndarray] = []
        for t in range(rows_b.size):
            ka_rows, ka_vals = A.col(int(rows_b[t]))
            if ka_rows.size:
                workspace[ka_rows] += vals_b[t] * ka_vals
                new = ~touched[ka_rows]
                touched[ka_rows] = True
                cols_touched.append(ka_rows[new])
        if cols_touched:
            nz_rows = np.sort(np.concatenate(cols_touched))
            vals = workspace[nz_rows]
            keep = vals != 0.0
            nz_rows, vals = nz_rows[keep], vals[keep].copy()
            out_indices.append(nz_rows)
            out_data.append(vals)
            workspace[np.concatenate(cols_touched)] = 0.0
            touched[np.concatenate(cols_touched)] = False
        else:
            out_indices.append(np.empty(0, dtype=np.int64))
            out_data.append(np.empty(0))
        out_indptr[j + 1] = out_indptr[j] + out_indices[-1].size
    return CSCMatrix(
        (m, n), out_indptr,
        np.concatenate(out_indices) if out_indices else np.empty(0, np.int64),
        np.concatenate(out_data) if out_data else np.empty(0),
        check=False,
    )


def gram(A: CSCMatrix) -> CSCMatrix:
    """The Gram matrix ``A^T A`` (symmetric ``n x n``)."""
    return matmul(A.transpose(), A)


def prune(A: CSCMatrix, tol: float = 0.0) -> CSCMatrix:
    """Drop stored entries with ``|value| <= tol`` (default: exact zeros)."""
    if tol < 0:
        raise ShapeError(f"tol must be non-negative, got {tol}")
    keep = np.abs(A.data) > tol
    if keep.all():
        return CSCMatrix(A.shape, A.indptr.copy(), A.indices.copy(),
                         A.data.copy(), check=False)
    counts = np.zeros(A.shape[1], dtype=np.int64)
    n = A.shape[1]
    for j in range(n):
        lo, hi = A.indptr[j], A.indptr[j + 1]
        counts[j] = int(keep[lo:hi].sum())
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSCMatrix(A.shape, indptr, A.indices[keep], A.data[keep],
                     check=False)


def diagonal(A: CSCMatrix) -> np.ndarray:
    """The main diagonal as a dense vector of length ``min(m, n)``."""
    m, n = A.shape
    k = min(m, n)
    out = np.zeros(k, dtype=np.float64)
    for j in range(k):
        rows, vals = A.col(j)
        pos = np.searchsorted(rows, j)
        if pos < rows.size and rows[pos] == j:
            out[j] = vals[pos]
    return out


def hstack(blocks: list[CSCMatrix]) -> CSCMatrix:
    """Concatenate matrices horizontally (shared row count)."""
    if not blocks:
        raise ShapeError("hstack needs at least one block")
    m = blocks[0].shape[0]
    for b in blocks:
        if b.shape[0] != m:
            raise ShapeError("hstack blocks must share the row count")
    indptr = [np.zeros(1, dtype=np.int64)]
    offset = 0
    for b in blocks:
        indptr.append(b.indptr[1:] + offset)
        offset += b.nnz
    return CSCMatrix(
        (m, sum(b.shape[1] for b in blocks)),
        np.concatenate(indptr),
        np.concatenate([b.indices for b in blocks]) if offset else np.empty(0, np.int64),
        np.concatenate([b.data for b in blocks]) if offset else np.empty(0),
        check=False,
    )


def vstack(blocks: list[CSCMatrix]) -> CSCMatrix:
    """Concatenate matrices vertically (shared column count)."""
    if not blocks:
        raise ShapeError("vstack needs at least one block")
    n = blocks[0].shape[1]
    for b in blocks:
        if b.shape[1] != n:
            raise ShapeError("vstack blocks must share the column count")
    rows, cols, vals = [], [], []
    offset = 0
    for b in blocks:
        coo = b.to_coo()
        rows.append(coo.rows + offset)
        cols.append(coo.cols)
        vals.append(coo.vals)
        offset += b.shape[0]
    return COOMatrix(
        (offset, n),
        np.concatenate(rows) if rows else np.empty(0, np.int64),
        np.concatenate(cols) if cols else np.empty(0, np.int64),
        np.concatenate(vals) if vals else np.empty(0),
        check=False,
    ).to_csc()
