"""Compressed Sparse Column (CSC) — the paper's default input format.

The paper takes "CSC as our default sparse matrix format" (Section I-A):
Algorithm 3 streams through columns of ``A`` and needs exactly the
``indptr``/``indices``/``data`` triple stored here.  Column blocks
(``A[:, j0:j1]``, the unit of Algorithm 1's outer loop) are O(1) views —
no data is copied — because consecutive columns are contiguous in CSC.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import FormatError, ShapeError

if TYPE_CHECKING:  # pragma: no cover
    from .coo import COOMatrix
    from .csr import CSRMatrix

__all__ = ["CSCMatrix"]


class CSCMatrix:
    """Sparse matrix in compressed-sparse-column layout.

    Attributes
    ----------
    shape:
        ``(m, n)`` logical dimensions.
    indptr:
        ``int64`` array of length ``n + 1``; column ``j`` occupies the slice
        ``indptr[j]:indptr[j+1]`` of ``indices``/``data``.
    indices:
        Row index of each stored entry, strictly increasing within a column.
    data:
        ``float64`` value of each stored entry (explicit zeros permitted).
    """

    def __init__(self, shape: tuple[int, int], indptr: np.ndarray,
                 indices: np.ndarray, data: np.ndarray, *, check: bool = True) -> None:
        m, n = shape
        if m < 0 or n < 0:
            raise ShapeError(f"shape must be non-negative, got {shape}")
        self.shape = (int(m), int(n))
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        if check:
            self.validate()

    # -- invariants ---------------------------------------------------------

    def validate(self, *, require_finite: bool = False) -> None:
        """Raise :class:`FormatError` on any CSC structural violation.

        With ``require_finite=True`` also rejects NaN/Inf values — the
        check the sketching entry points run once on their input so a
        poisoned matrix fails fast instead of silently corrupting the
        whole sketch.
        """
        m, n = self.shape
        if self.indptr.ndim != 1 or self.indptr.size != n + 1:
            raise FormatError(f"indptr must have length n+1 = {n + 1}")
        if self.indptr[0] != 0:
            raise FormatError("indptr[0] must be 0")
        if np.any(np.diff(self.indptr) < 0):
            raise FormatError("indptr must be non-decreasing")
        nnz = int(self.indptr[-1])
        if self.indices.size != nnz or self.data.size != nnz:
            raise FormatError(
                f"indices/data length must equal indptr[-1] = {nnz}, "
                f"got {self.indices.size}/{self.data.size}"
            )
        if nnz:
            if self.indices.min() < 0 or self.indices.max() >= m:
                raise FormatError(f"row indices out of range [0, {m})")
            # Vectorized within-column monotonicity: row indices must be
            # strictly increasing except exactly at column boundaries.
            nondec = np.flatnonzero(np.diff(self.indices) <= 0) + 1
            starts = self.indptr[1:-1]
            bad = np.setdiff1d(nondec, starts, assume_unique=False)
            if bad.size:
                col = int(np.searchsorted(self.indptr, bad[0], "right")) - 1
                raise FormatError(
                    f"row indices in column {col} must be strictly increasing"
                )
            if require_finite and not np.isfinite(self.data).all():
                k = int(np.flatnonzero(~np.isfinite(self.data))[0])
                col = int(np.searchsorted(self.indptr, k, "right")) - 1
                raise FormatError(
                    f"matrix data contains a non-finite value "
                    f"({self.data[k]!r}) at entry {k} (column {col})"
                )

    # -- basic properties ---------------------------------------------------

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indptr[-1])

    @property
    def density(self) -> float:
        """Stored entries divided by ``m * n``."""
        m, n = self.shape
        return self.nnz / (m * n) if m and n else 0.0

    @property
    def memory_bytes(self) -> int:
        """Bytes held by the index and value arrays (Table VIII's mem(A))."""
        return int(self.indptr.nbytes + self.indices.nbytes + self.data.nbytes)

    def col_nnz(self) -> np.ndarray:
        """Stored entries per column, length ``n``."""
        return np.diff(self.indptr)

    def col(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """(row indices, values) of column ``j`` as zero-copy views."""
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    # -- slicing ------------------------------------------------------------

    def col_block(self, j0: int, j1: int) -> "CSCMatrix":
        """The column block ``A[:, j0:j1]`` as a CSC matrix.

        The returned matrix's ``indices``/``data`` are views into this
        matrix's buffers (its ``indptr`` is rebased), so Algorithm 1's
        outer loop pays O(width) per block, not O(nnz).
        """
        m, n = self.shape
        if not (0 <= j0 <= j1 <= n):
            raise ShapeError(f"column block [{j0}, {j1}) out of range for n={n}")
        lo, hi = int(self.indptr[j0]), int(self.indptr[j1])
        return CSCMatrix(
            (m, j1 - j0),
            self.indptr[j0:j1 + 1] - self.indptr[j0],
            self.indices[lo:hi],
            self.data[lo:hi],
            check=False,
        )

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_dense(cls, dense: np.ndarray, *, check: bool = True) -> "CSCMatrix":
        """Compress the nonzero pattern of a dense array.

        ``check=True`` (default) validates the result's CSC invariants;
        pass ``check=False`` only on trusted hot paths.
        """
        from .coo import COOMatrix

        out = COOMatrix.from_dense(dense).to_csc()
        if check:
            out.validate()
        return out

    @classmethod
    def from_scipy(cls, mat, *, check: bool = True) -> "CSCMatrix":
        """Build from a ``scipy.sparse`` matrix (test interoperability).

        ``check=True`` (default) validates the imported structure —
        scipy permits states (unsorted indices before ``sort_indices``,
        out-of-range after manual mutation) this library's kernels do not.
        """
        s = mat.tocsc()
        s.sort_indices()
        s.sum_duplicates()
        return cls(s.shape, s.indptr.astype(np.int64),
                   s.indices.astype(np.int64), s.data.astype(np.float64),
                   check=check)

    # -- conversions --------------------------------------------------------

    def to_coo(self) -> "COOMatrix":
        """Expand to coordinate format."""
        from .coo import COOMatrix

        n = self.shape[1]
        cols = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.indptr))
        return COOMatrix(self.shape, self.indices.copy(), cols,
                         self.data.copy(), check=False)

    def to_csr(self) -> "CSRMatrix":
        """Convert to CSR via a stable counting transpose of the layout."""
        from .csr import CSRMatrix

        m, n = self.shape
        nnz = self.nnz
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.add.at(indptr, self.indices + 1, 1)
        np.cumsum(indptr, out=indptr)
        indices = np.empty(nnz, dtype=np.int64)
        data = np.empty(nnz, dtype=np.float64)
        cols = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.indptr))
        # Stable sort by row preserves column order within each row.
        order = np.argsort(self.indices, kind="stable")
        indices[:] = cols[order]
        data[:] = self.data[order]
        return CSRMatrix((m, n), indptr, indices, data, check=False)

    def to_dense(self) -> np.ndarray:
        """Realize as a dense float64 array."""
        out = np.zeros(self.shape, dtype=np.float64)
        n = self.shape[1]
        for j in range(n):
            rows, vals = self.col(j)
            out[rows, j] = vals
        return out

    def to_scipy(self):
        """Export to ``scipy.sparse.csc_matrix`` (test interoperability)."""
        import scipy.sparse as sp

        return sp.csc_matrix((self.data, self.indices, self.indptr), shape=self.shape)

    def transpose(self) -> "CSCMatrix":
        """The transpose as CSC (equals this matrix's CSR buffers re-labelled)."""
        csr = self.to_csr()
        return CSCMatrix((self.shape[1], self.shape[0]), csr.indptr,
                         csr.indices, csr.data, check=False)

    # -- operators ----------------------------------------------------------

    def __matmul__(self, other):
        """``A @ B``: sparse-sparse (CSC result) or sparse-dense (ndarray).

        Dense right operands accept vectors (``A @ x``) and matrices;
        sparse-sparse goes through the Gustavson SpGEMM in
        :mod:`repro.sparse.arithmetic`.
        """
        if isinstance(other, CSCMatrix):
            from .arithmetic import matmul

            return matmul(self, other)
        if isinstance(other, np.ndarray):
            if other.ndim == 1:
                from .ops import spmv_csc

                return spmv_csc(self, other)
            if other.ndim == 2:
                from .ops import csr_times_dense

                return csr_times_dense(self.to_csr(), other)
            raise ShapeError(f"cannot multiply by a {other.ndim}-D array")
        return NotImplemented

    def __add__(self, other):
        """``A + B`` for matching-shape sparse matrices."""
        if isinstance(other, CSCMatrix):
            from .arithmetic import add

            return add(self, other)
        return NotImplemented

    def __sub__(self, other):
        """``A - B`` for matching-shape sparse matrices."""
        if isinstance(other, CSCMatrix):
            from .arithmetic import add

            return add(self, other, 1.0, -1.0)
        return NotImplemented

    def __mul__(self, alpha):
        """``A * alpha`` scalar scaling (use ``elementwise_multiply`` for
        Hadamard products)."""
        if isinstance(alpha, (int, float, np.integer, np.floating)):
            from .arithmetic import scale

            return scale(self, float(alpha))
        return NotImplemented

    __rmul__ = __mul__

    def __neg__(self):
        """``-A``."""
        from .arithmetic import scale

        return scale(self, -1.0)

    @property
    def T(self) -> "CSCMatrix":
        """The transpose (alias of :meth:`transpose`)."""
        return self.transpose()

    def __repr__(self) -> str:
        return (
            f"CSCMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.3e})"
        )
