"""Compressed Sparse Row (CSR).

Algorithm 4 consumes its vertical blocks in CSR ("within each block, the
entries will be stored in CSR format", Section II-B2) because the *jki*
loop order walks rows of the sparse operand.  This class is the row-major
mirror of :class:`repro.sparse.CSCMatrix` and is also what the library
baselines use when emulating MKL's sparse-times-dense (which, per Section
V-A, stores ``A`` in CSR).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import FormatError, ShapeError

if TYPE_CHECKING:  # pragma: no cover
    from .coo import COOMatrix
    from .csc import CSCMatrix

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """Sparse matrix in compressed-sparse-row layout.

    Attributes
    ----------
    shape:
        ``(m, n)`` logical dimensions.
    indptr:
        ``int64`` array of length ``m + 1``; row ``i`` occupies the slice
        ``indptr[i]:indptr[i+1]`` of ``indices``/``data``.
    indices:
        Column index of each stored entry, strictly increasing within a row.
    data:
        ``float64`` stored values.
    """

    def __init__(self, shape: tuple[int, int], indptr: np.ndarray,
                 indices: np.ndarray, data: np.ndarray, *, check: bool = True) -> None:
        m, n = shape
        if m < 0 or n < 0:
            raise ShapeError(f"shape must be non-negative, got {shape}")
        self.shape = (int(m), int(n))
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        if check:
            self.validate()

    # -- invariants ---------------------------------------------------------

    def validate(self, *, require_finite: bool = False) -> None:
        """Raise :class:`FormatError` on any CSR structural violation.

        With ``require_finite=True`` also rejects NaN/Inf values (see
        :meth:`repro.sparse.CSCMatrix.validate`).
        """
        m, n = self.shape
        if self.indptr.ndim != 1 or self.indptr.size != m + 1:
            raise FormatError(f"indptr must have length m+1 = {m + 1}")
        if self.indptr[0] != 0:
            raise FormatError("indptr[0] must be 0")
        if np.any(np.diff(self.indptr) < 0):
            raise FormatError("indptr must be non-decreasing")
        nnz = int(self.indptr[-1])
        if self.indices.size != nnz or self.data.size != nnz:
            raise FormatError(
                f"indices/data length must equal indptr[-1] = {nnz}, "
                f"got {self.indices.size}/{self.data.size}"
            )
        if nnz:
            if self.indices.min() < 0 or self.indices.max() >= n:
                raise FormatError(f"column indices out of range [0, {n})")
            # Vectorized within-row monotonicity: column indices must be
            # strictly increasing except exactly at row boundaries.
            nondec = np.flatnonzero(np.diff(self.indices) <= 0) + 1
            starts = self.indptr[1:-1]
            bad = np.setdiff1d(nondec, starts, assume_unique=False)
            if bad.size:
                row = int(np.searchsorted(self.indptr, bad[0], "right")) - 1
                raise FormatError(
                    f"column indices in row {row} must be strictly increasing"
                )
            if require_finite and not np.isfinite(self.data).all():
                k = int(np.flatnonzero(~np.isfinite(self.data))[0])
                row = int(np.searchsorted(self.indptr, k, "right")) - 1
                raise FormatError(
                    f"matrix data contains a non-finite value "
                    f"({self.data[k]!r}) at entry {k} (row {row})"
                )

    # -- basic properties ---------------------------------------------------

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indptr[-1])

    @property
    def density(self) -> float:
        """Stored entries divided by ``m * n``."""
        m, n = self.shape
        return self.nnz / (m * n) if m and n else 0.0

    @property
    def memory_bytes(self) -> int:
        """Bytes held by the index and value arrays."""
        return int(self.indptr.nbytes + self.indices.nbytes + self.data.nbytes)

    def row_nnz(self) -> np.ndarray:
        """Stored entries per row, length ``m``."""
        return np.diff(self.indptr)

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """(column indices, values) of row ``i`` as zero-copy views."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def nonempty_rows(self) -> np.ndarray:
        """Indices of rows holding at least one stored entry.

        Algorithm 4 line 4 skips all-zero rows of the block; this is the
        vectorized form of that test.
        """
        return np.nonzero(np.diff(self.indptr) > 0)[0]

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_dense(cls, dense: np.ndarray, *, check: bool = True) -> "CSRMatrix":
        """Compress the nonzero pattern of a dense array.

        ``check=True`` (default) validates the result's CSR invariants;
        pass ``check=False`` only on trusted hot paths.
        """
        from .coo import COOMatrix

        out = COOMatrix.from_dense(dense).to_csr()
        if check:
            out.validate()
        return out

    @classmethod
    def from_scipy(cls, mat, *, check: bool = True) -> "CSRMatrix":
        """Build from a ``scipy.sparse`` matrix (test interoperability).

        ``check=True`` (default) validates the imported structure —
        scipy permits states this library's kernels do not.
        """
        s = mat.tocsr()
        s.sort_indices()
        s.sum_duplicates()
        return cls(s.shape, s.indptr.astype(np.int64),
                   s.indices.astype(np.int64), s.data.astype(np.float64),
                   check=check)

    # -- conversions --------------------------------------------------------

    def to_coo(self) -> "COOMatrix":
        """Expand to coordinate format."""
        from .coo import COOMatrix

        m = self.shape[0]
        rows = np.repeat(np.arange(m, dtype=np.int64), np.diff(self.indptr))
        return COOMatrix(self.shape, rows, self.indices.copy(),
                         self.data.copy(), check=False)

    def to_csc(self) -> "CSCMatrix":
        """Convert to CSC via a stable counting transpose of the layout."""
        from .csc import CSCMatrix

        m, n = self.shape
        nnz = self.nnz
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, self.indices + 1, 1)
        np.cumsum(indptr, out=indptr)
        rows = np.repeat(np.arange(m, dtype=np.int64), np.diff(self.indptr))
        order = np.argsort(self.indices, kind="stable")
        return CSCMatrix((m, n), indptr, rows[order], self.data[order],
                         check=False)

    def to_dense(self) -> np.ndarray:
        """Realize as a dense float64 array."""
        out = np.zeros(self.shape, dtype=np.float64)
        m = self.shape[0]
        for i in range(m):
            cols, vals = self.row(i)
            out[i, cols] = vals
        return out

    def to_scipy(self):
        """Export to ``scipy.sparse.csr_matrix`` (test interoperability)."""
        import scipy.sparse as sp

        return sp.csr_matrix((self.data, self.indices, self.indptr), shape=self.shape)

    def __repr__(self) -> str:
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.3e})"
        )
