"""Synthetic sparse-matrix generators.

The paper evaluates on SuiteSparse collection matrices (Tables I and VIII)
plus three constructed "abnormal" patterns (Table VI).  The collection is
not available offline, so this module provides deterministic generators for
each *structure class* the test matrices belong to; the surrogate suite in
:mod:`repro.workloads` instantiates them with the published dimensions.

Structure classes
-----------------
* :func:`random_sparse` — uniform iid pattern with density ``rho``; the
  model matrix of the paper's analysis (Section III-A assumes "any
  sub-matrix will also have a density of rho").
* :func:`fixed_col_nnz_sparse` — exactly ``k`` entries per column with
  values +-1, the shape of simplicial-complex boundary matrices
  (mk-12, ch7-9-b3, shar_te2-b2, cis-n4c6-b4 all have constant or
  near-constant column counts and +-1 values).
* :func:`banded_sparse` — nonzeros clustered around the diagonal band, the
  FEM profile of mesh_deform.
* :func:`abnormal_a` / :func:`abnormal_b` / :func:`abnormal_c` — Table VI's
  exotic patterns: every 1000th **row** dense; nonzeros concentrated in the
  middle-third **vertical block**; every 1000th **column** dense.
* :func:`setcover_sparse` — 0/1 entries, a few per column, heavy-tailed row
  usage: the profile of the rail* LP matrices.
* :func:`near_rank_deficient` — plants (near-)duplicate columns to drive
  the condition number to ~1e14+, mimicking specular / connectus /
  landmark, the matrices that force SAP-SVD.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..utils.validation import (
    check_choice,
    check_in_range,
    check_positive_int,
    check_probability,
)
from .coo import COOMatrix
from .csc import CSCMatrix

__all__ = [
    "random_sparse",
    "fixed_col_nnz_sparse",
    "banded_sparse",
    "abnormal_a",
    "abnormal_b",
    "abnormal_c",
    "setcover_sparse",
    "near_rank_deficient",
    "rail_like_sparse",
    "pattern_density_grid",
]

_VALUE_KINDS = ("uniform", "gaussian", "pm1", "ones")


def _values(rng: np.random.Generator, count: int, kind: str) -> np.ndarray:
    """Draw *count* nonzero values of the requested kind."""
    check_choice(kind, "values", _VALUE_KINDS)
    if kind == "uniform":
        v = rng.uniform(-1.0, 1.0, size=count)
        # Avoid exact zeros so nnz is what the pattern says it is.
        v[v == 0.0] = 0.5
        return v
    if kind == "gaussian":
        v = rng.standard_normal(count)
        v[v == 0.0] = 1.0
        return v
    if kind == "pm1":
        return rng.choice([-1.0, 1.0], size=count)
    return np.ones(count)


def _unique_linear_sample(rng: np.random.Generator, space: int, count: int) -> np.ndarray:
    """Sample *count* distinct linear indices from ``range(space)``.

    Uses exact choice-without-replacement for small spaces and iterative
    oversampling + dedup for large ones, so generation stays O(count) in
    memory even for billion-cell patterns.
    """
    if count > space:
        raise ConfigError(f"cannot place {count} nonzeros in {space} cells")
    if space <= 4 * count or space <= 1 << 22:
        return rng.choice(space, size=count, replace=False).astype(np.int64)
    picked = np.unique(rng.integers(0, space, size=int(count * 1.2), dtype=np.int64))
    while picked.size < count:
        extra = rng.integers(0, space, size=count, dtype=np.int64)
        picked = np.unique(np.concatenate([picked, extra]))
    rng.shuffle(picked)
    return picked[:count]


def random_sparse(m: int, n: int, density: float, seed: int = 0,
                  values: str = "uniform") -> CSCMatrix:
    """Uniform iid sparsity pattern with the given density.

    The number of stored entries is ``round(m * n * density)`` exactly (not
    binomial), so benchmarks comparing algorithms at equal nnz are fair.
    """
    m = check_positive_int(m, "m")
    n = check_positive_int(n, "n")
    density = check_probability(density, "density")
    rng = np.random.default_rng(seed)
    nnz = int(round(m * n * density))
    lin = _unique_linear_sample(rng, m * n, nnz)
    rows = lin % m
    cols = lin // m
    return COOMatrix((m, n), rows, cols, _values(rng, nnz, values)).to_csc()


def fixed_col_nnz_sparse(m: int, n: int, k: int, seed: int = 0,
                         values: str = "pm1") -> CSCMatrix:
    """Exactly ``k`` nonzeros in every column (boundary-matrix profile).

    Row positions are drawn uniformly without replacement per column;
    default values are +-1 as in simplicial boundary operators.
    """
    m = check_positive_int(m, "m")
    n = check_positive_int(n, "n")
    k = check_positive_int(k, "k")
    if k > m:
        raise ConfigError(f"k={k} nonzeros per column exceed m={m} rows")
    rng = np.random.default_rng(seed)
    # Vectorized sampling without replacement per column via argpartition
    # of random keys would need an (m, n) buffer; loop in manageable chunks.
    rows = np.empty(k * n, dtype=np.int64)
    for j in range(n):
        rows[j * k:(j + 1) * k] = rng.choice(m, size=k, replace=False)
    cols = np.repeat(np.arange(n, dtype=np.int64), k)
    return COOMatrix((m, n), rows, cols, _values(rng, k * n, values)).to_csc()


def banded_sparse(m: int, n: int, density: float, bandwidth_frac: float = 0.05,
                  seed: int = 0, values: str = "uniform") -> CSCMatrix:
    """Nonzeros clustered in a band around the stretched diagonal (FEM profile).

    Column ``j``'s entries are drawn near row ``j * m / n`` within a window
    of half-width ``bandwidth_frac * m``; the per-column count is set so the
    overall density matches *density*.
    """
    m = check_positive_int(m, "m")
    n = check_positive_int(n, "n")
    density = check_probability(density, "density")
    bandwidth_frac = check_in_range(bandwidth_frac, "bandwidth_frac", 0.0, 1.0,
                                    inclusive=False)
    rng = np.random.default_rng(seed)
    half = max(1, int(bandwidth_frac * m))
    k = max(1, int(round(density * m)))
    k = min(k, 2 * half + 1)
    rows_list = []
    for j in range(n):
        center = int(j * m / n)
        lo = max(0, center - half)
        hi = min(m, center + half + 1)
        rows_list.append(rng.choice(hi - lo, size=min(k, hi - lo),
                                    replace=False) + lo)
    rows = np.concatenate(rows_list)
    cols = np.repeat(np.arange(n, dtype=np.int64),
                     [r.size for r in rows_list])
    return COOMatrix((m, n), rows, cols,
                     _values(rng, rows.size, values)).to_csc()


def abnormal_a(m: int, n: int, period: int = 1000, seed: int = 0,
               values: str = "uniform") -> CSCMatrix:
    """Table VI's Abnormal_A: every ``period``-th row dense, others zero.

    Overall density is ``~1/period`` (1e-3 at the paper's period=1000).
    """
    m = check_positive_int(m, "m")
    n = check_positive_int(n, "n")
    period = check_positive_int(period, "period")
    rng = np.random.default_rng(seed)
    dense_rows = np.arange(0, m, period, dtype=np.int64)
    rows = np.repeat(dense_rows, n)
    cols = np.tile(np.arange(n, dtype=np.int64), dense_rows.size)
    return COOMatrix((m, n), rows, cols,
                     _values(rng, rows.size, values)).to_csc()


def abnormal_b(m: int, n: int, density: float = 1e-3, middle_frac: float = 2998.0 / 3000.0,
               seed: int = 0, values: str = "uniform") -> CSCMatrix:
    """Table VI's Abnormal_B: nonzeros concentrated in the middle third.

    A fraction *middle_frac* of the total nonzeros lands uniformly inside
    the middle-third vertical block ``A[:, n/3 : 2n/3]``; the remainder is
    spread uniformly over the outer two thirds.
    """
    m = check_positive_int(m, "m")
    n = check_positive_int(n, "n")
    if n < 3:
        raise ConfigError(f"abnormal_b needs n >= 3 for a middle third, got n={n}")
    density = check_probability(density, "density")
    middle_frac = check_probability(middle_frac, "middle_frac")
    rng = np.random.default_rng(seed)
    nnz = int(round(m * n * density))
    nnz_mid = int(round(nnz * middle_frac))
    nnz_out = nnz - nnz_mid
    j_lo, j_hi = n // 3, 2 * n // 3
    mid_cols = np.arange(j_lo, j_hi, dtype=np.int64)
    out_cols = np.concatenate([
        np.arange(0, j_lo, dtype=np.int64),
        np.arange(j_hi, n, dtype=np.int64),
    ])
    if mid_cols.size == 0 or out_cols.size == 0:
        raise ConfigError("n too small to form a middle-third block")
    lin_mid = _unique_linear_sample(rng, m * mid_cols.size, min(nnz_mid, m * mid_cols.size))
    lin_out = _unique_linear_sample(rng, m * out_cols.size, min(nnz_out, m * out_cols.size))
    rows = np.concatenate([lin_mid % m, lin_out % m])
    cols = np.concatenate([mid_cols[lin_mid // m], out_cols[lin_out // m]])
    return COOMatrix((m, n), rows, cols,
                     _values(rng, rows.size, values)).to_csc()


def abnormal_c(m: int, n: int, period: int = 1000, seed: int = 0,
               values: str = "uniform") -> CSCMatrix:
    """Table VI's Abnormal_C: every ``period``-th column dense, others zero."""
    m = check_positive_int(m, "m")
    n = check_positive_int(n, "n")
    period = check_positive_int(period, "period")
    rng = np.random.default_rng(seed)
    dense_cols = np.arange(0, n, period, dtype=np.int64)
    cols = np.repeat(dense_cols, m)
    rows = np.tile(np.arange(m, dtype=np.int64), dense_cols.size)
    return COOMatrix((m, n), rows, cols,
                     _values(rng, rows.size, values)).to_csc()


def setcover_sparse(m: int, n: int, nnz: int, seed: int = 0) -> CSCMatrix:
    """0/1 matrix with heavy-tailed column participation (rail* profile).

    Each of the *nnz* entries picks its column uniformly but its row from a
    Zipf-flavoured distribution over a random row permutation, producing the
    few-hot-rows/many-cold-rows look of set-covering LPs.  Every column is
    guaranteed at least one entry (so no empty columns, which the paper
    explicitly removed from its test matrices).
    """
    m = check_positive_int(m, "m")
    n = check_positive_int(n, "n")
    nnz = check_positive_int(nnz, "nnz")
    if nnz < n:
        raise ConfigError(f"need nnz >= n to cover all {n} columns, got {nnz}")
    rng = np.random.default_rng(seed)
    # Zipf-ish row weights on a shuffled identity of rows.
    weights = 1.0 / np.arange(1, m + 1) ** 0.6
    weights /= weights.sum()
    perm = rng.permutation(m)
    # One guaranteed entry per column, remainder uniform over columns.
    cols = np.concatenate([
        np.arange(n, dtype=np.int64),
        rng.integers(0, n, size=nnz - n, dtype=np.int64),
    ])
    rows = perm[rng.choice(m, size=nnz, p=weights)]
    coo = COOMatrix((m, n), rows, cols, np.ones(nnz)).to_csc()
    # Duplicate (row, col) picks were summed; clamp back to 0/1 values.
    coo.data[:] = 1.0
    return coo


def rail_like_sparse(m: int, n: int, nnz: int, seed: int = 0,
                     unique_frac: float = 0.05,
                     mix_spread: float = 2.5) -> CSCMatrix:
    """Rail-LP surrogate: hierarchically overlapping column supports.

    The rail* matrices are set-covering LPs whose columns (railway duty
    paths) share segments at multiple scales; that nested overlap is what
    makes ``cond(A D)`` stay in the hundreds even after column
    normalization (Table VIII) and drives LSQR-D to hundreds-to-thousands
    of iterations (Table IX).  This generator reproduces the mechanism
    directly: a binary hierarchy of column groups, each sharing a random
    row set, plus a small per-column unique part (*unique_frac* of the
    entries) and a smooth per-column core-vs-unique mix gradient
    (*mix_spread*) that spreads the normalized spectrum.

    Deviation from the originals (documented in DESIGN.md): shared entries
    carry positive weights rather than exact 0/1 values — at reduced scale
    this is required to reach the published conditioning; the sparsity
    structure, positivity, and column-overlap mechanism are preserved.
    Larger *mix_spread* means worse conditioning (~``exp(mix_spread)``
    times the base overlap conditioning).
    """
    m = check_positive_int(m, "m")
    n = check_positive_int(n, "n")
    nnz = check_positive_int(nnz, "nnz")
    unique_frac = check_in_range(unique_frac, "unique_frac", 0.0, 1.0)
    if mix_spread < 0:
        raise ConfigError(f"mix_spread must be non-negative, got {mix_spread}")
    rng = np.random.default_rng(seed)
    per_col = max(4, nnz // n)
    levels = max(2, int(np.ceil(np.log2(max(n, 2)))))
    k_u = max(2, int(per_col * unique_frac))
    k_each = max(1, (per_col - k_u) // levels)
    if k_each > m or k_u > m:
        raise ConfigError("nnz per column exceeds row count")
    alpha = np.exp(mix_spread * np.linspace(0.0, 1.0, n))
    rows_list: list[np.ndarray] = []
    cols_list: list[np.ndarray] = []
    vals_list: list[np.ndarray] = []
    for level in range(levels):
        groups = min(n, 2 ** level)
        for g in range(groups):
            group_rows = rng.choice(m, size=k_each, replace=False)
            j0, j1 = g * n // groups, (g + 1) * n // groups
            for j in range(j0, j1):
                rows_list.append(group_rows)
                cols_list.append(np.full(k_each, j, dtype=np.int64))
                vals_list.append(np.full(k_each, alpha[j]))
    for j in range(n):
        unique_rows = rng.choice(m, size=k_u, replace=False)
        rows_list.append(unique_rows)
        cols_list.append(np.full(k_u, j, dtype=np.int64))
        vals_list.append(np.ones(k_u))
    return COOMatrix(
        (m, n),
        np.concatenate(rows_list),
        np.concatenate(cols_list),
        np.concatenate(vals_list),
    ).to_csc()


def near_rank_deficient(m: int, n: int, density: float, seed: int = 0,
                        dup_cols: int = 2, perturb: float = 1e-14) -> CSCMatrix:
    """A sparse matrix with condition number driven to ~1/perturb.

    Builds a well-conditioned :func:`random_sparse` base, then overwrites
    the last *dup_cols* columns with near-copies of the first columns
    (relative perturbation *perturb*).  With ``perturb = 1e-14`` the
    condition number lands around 1e14-1e16, the regime of specular /
    connectus / landmark in Table VIII where plain QR preconditioning
    fails and SAP must fall back to SVD.
    """
    m = check_positive_int(m, "m")
    n = check_positive_int(n, "n")
    dup_cols = check_positive_int(dup_cols, "dup_cols")
    if dup_cols >= n:
        raise ConfigError(f"dup_cols={dup_cols} must be < n={n}")
    perturb = check_in_range(perturb, "perturb", 0.0, 1.0)
    base = random_sparse(m, n, density, seed=seed, values="uniform")
    coo = base.to_coo()
    rng = np.random.default_rng(seed + 1)
    rows_list = [coo.rows]
    cols_list = [coo.cols]
    vals_list = [coo.vals]
    for t in range(dup_cols):
        src = t % (n - dup_cols)
        dst = n - 1 - t
        # Drop any existing entries in the destination column, then copy.
        keep = cols_list[0] != dst
        rows_list[0] = rows_list[0][keep]
        cols_list[0] = cols_list[0][keep]
        vals_list[0] = vals_list[0][keep]
        src_mask = cols_list[0] == src
        src_rows = rows_list[0][src_mask]
        src_vals = vals_list[0][src_mask]
        noise = 1.0 + perturb * rng.standard_normal(src_vals.size)
        rows_list.append(src_rows)
        cols_list.append(np.full(src_rows.size, dst, dtype=np.int64))
        vals_list.append(src_vals * noise)
    return COOMatrix(
        (m, n),
        np.concatenate(rows_list),
        np.concatenate(cols_list),
        np.concatenate(vals_list),
    ).to_csc()


def pattern_density_grid(A: CSCMatrix, grid_rows: int = 40,
                         grid_cols: int = 40) -> np.ndarray:
    """Coarse nonzero-count grid for sparsity-pattern visualization (Fig. 5).

    Bins the stored entries into a ``grid_rows x grid_cols`` histogram over
    the matrix extent; benches render it as ASCII shading.
    """
    grid_rows = check_positive_int(grid_rows, "grid_rows")
    grid_cols = check_positive_int(grid_cols, "grid_cols")
    m, n = A.shape
    coo = A.to_coo()
    r_bin = np.minimum((coo.rows * grid_rows) // max(m, 1), grid_rows - 1)
    c_bin = np.minimum((coo.cols * grid_cols) // max(n, 1), grid_cols - 1)
    grid = np.zeros((grid_rows, grid_cols), dtype=np.int64)
    np.add.at(grid, (r_bin, c_bin), 1)
    return grid
