"""From-scratch sparse-matrix substrate.

Formats: :class:`COOMatrix` (construction/interchange), :class:`CSCMatrix`
(the paper's default input, Algorithm 3's format), :class:`CSRMatrix`, and
:class:`BlockedCSR` (Algorithm 4's vertical-block auxiliary structure).
Plus conversions with Section III-B cost accounting, reference SpMV/SpMM
baselines, MatrixMarket I/O, and the synthetic pattern generators behind
the surrogate test suites.
"""

from .arithmetic import (
    add,
    diagonal,
    elementwise_multiply,
    gram,
    hstack,
    matmul,
    prune,
    scale,
    vstack,
)
from .blocked_csr import BlockedCSR
from .convert import ConversionStats, blocked_csr_workspace_bytes, csc_to_blocked_csr
from .coo import COOMatrix
from .csc import CSCMatrix
from .csr import CSRMatrix
from .generators import (
    abnormal_a,
    abnormal_b,
    abnormal_c,
    banded_sparse,
    fixed_col_nnz_sparse,
    near_rank_deficient,
    pattern_density_grid,
    rail_like_sparse,
    random_sparse,
    setcover_sparse,
)
from .io_mm import iter_matrix_market_entries, read_matrix_market, write_matrix_market
from .linalg import column_norms, condition_number, frobenius_norm, scale_columns
from .reorder import (
    pattern_bandwidth,
    permute,
    rcm_ordering,
    symmetrize_pattern,
)
from .ops import (
    csr_times_dense,
    dense_times_csc,
    dense_times_csc_reference,
    rmatvec_csc,
    spmv_csc,
    spmv_csr,
)

__all__ = [
    "add",
    "diagonal",
    "elementwise_multiply",
    "gram",
    "hstack",
    "matmul",
    "prune",
    "scale",
    "vstack",
    "BlockedCSR",
    "ConversionStats",
    "blocked_csr_workspace_bytes",
    "csc_to_blocked_csr",
    "COOMatrix",
    "CSCMatrix",
    "CSRMatrix",
    "abnormal_a",
    "abnormal_b",
    "abnormal_c",
    "banded_sparse",
    "fixed_col_nnz_sparse",
    "near_rank_deficient",
    "pattern_density_grid",
    "rail_like_sparse",
    "random_sparse",
    "setcover_sparse",
    "iter_matrix_market_entries",
    "read_matrix_market",
    "write_matrix_market",
    "column_norms",
    "condition_number",
    "frobenius_norm",
    "scale_columns",
    "pattern_bandwidth",
    "permute",
    "rcm_ordering",
    "symmetrize_pattern",
    "csr_times_dense",
    "dense_times_csc",
    "dense_times_csc_reference",
    "rmatvec_csc",
    "spmv_csc",
    "spmv_csr",
]
