"""Reference sparse kernels: SpMV and dense-sparse / sparse-dense SpMM.

These are the *library baseline* operations the paper compares against
(MKL, Eigen, Julia's SparseArrays all implement the same products): a
pre-generated dense matrix multiplied with a stored sparse matrix.  They
also serve as independent correctness oracles for the on-the-fly kernels
in :mod:`repro.kernels`.

Two implementation tiers are provided for the central ``dense @ sparse``
product: a pure-loop reference (`..._reference`) that mirrors textbook
pseudocode entry by entry, and a vectorized version used by baselines and
benchmarks.  Tests assert they agree with each other and with scipy.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..utils.validation import check_dense_matrix, check_vector
from .csc import CSCMatrix
from .csr import CSRMatrix

__all__ = [
    "spmv_csc",
    "spmv_csr",
    "dense_times_csc",
    "dense_times_csc_reference",
    "csr_times_dense",
    "rmatvec_csc",
]


def spmv_csc(A: CSCMatrix, x: np.ndarray) -> np.ndarray:
    """``A @ x`` for CSC ``A`` — column-wise gather/axpy formulation."""
    m, n = A.shape
    check_vector(x, "x", size=n)
    y = np.zeros(m, dtype=np.float64)
    for j in range(n):
        rows, vals = A.col(j)
        if rows.size:
            y[rows] += vals * x[j]
    return y


def spmv_csr(A: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """``A @ x`` for CSR ``A`` — row-wise dot-product formulation."""
    m, n = A.shape
    check_vector(x, "x", size=n)
    y = np.empty(m, dtype=np.float64)
    for i in range(m):
        cols, vals = A.row(i)
        y[i] = vals @ x[cols] if cols.size else 0.0
    return y


def rmatvec_csc(A: CSCMatrix, y: np.ndarray) -> np.ndarray:
    """``A.T @ y`` for CSC ``A`` — per-column dot products (no transpose built)."""
    m, n = A.shape
    check_vector(y, "y", size=m)
    out = np.empty(n, dtype=np.float64)
    for j in range(n):
        rows, vals = A.col(j)
        out[j] = vals @ y[rows] if rows.size else 0.0
    return out


def dense_times_csc_reference(S: np.ndarray, A: CSCMatrix) -> np.ndarray:
    """``S @ A`` entry-by-entry: the textbook oracle for all fast paths.

    Triple loop with the sparse operand walked in CSC order; O(d * nnz)
    scalar operations, intended only for small test problems.
    """
    m, n = A.shape
    check_dense_matrix(S, "S")
    if S.shape[1] != m:
        raise ShapeError(f"S has {S.shape[1]} columns but A has {m} rows")
    d = S.shape[0]
    G = np.zeros((d, n), dtype=np.float64)
    for k in range(n):
        rows, vals = A.col(k)
        for t in range(rows.size):
            j = rows[t]
            v = vals[t]
            for i in range(d):
                G[i, k] += S[i, j] * v
    return G


def dense_times_csc(S: np.ndarray, A: CSCMatrix) -> np.ndarray:
    """``S @ A`` vectorized: per-column gather of ``S`` plus a matvec.

    This is the "library" formulation used as the pre-generated-sketch
    baseline: ``G[:, k] = S[:, rows_k] @ vals_k`` for each column ``k``.
    """
    m, n = A.shape
    check_dense_matrix(S, "S")
    if S.shape[1] != m:
        raise ShapeError(f"S has {S.shape[1]} columns but A has {m} rows")
    d = S.shape[0]
    G = np.zeros((d, n), dtype=np.float64)
    for k in range(n):
        rows, vals = A.col(k)
        if rows.size:
            G[:, k] = S[:, rows] @ vals
    return G


def csr_times_dense(A: CSRMatrix, B: np.ndarray) -> np.ndarray:
    """``A @ B`` for CSR ``A`` and dense ``B`` — MKL's supported orientation.

    Section V-A notes MKL only supports sparse-times-dense, so the MKL
    baseline computes the transposed operation with ``A`` in CSR; this
    kernel is that baseline's core.
    """
    m, n = A.shape
    check_dense_matrix(B, "B")
    if B.shape[0] != n:
        raise ShapeError(f"B has {B.shape[0]} rows but A has {n} columns")
    out = np.zeros((m, B.shape[1]), dtype=np.float64)
    for i in range(m):
        cols, vals = A.row(i)
        if cols.size:
            out[i, :] = vals @ B[cols, :]
    return out
