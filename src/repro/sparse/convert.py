"""Format conversions with the cost accounting of Section III-B.

The conversion that matters to the paper is CSC -> blocked CSR, the setup
step Algorithm 4 pays and Algorithm 3 does not (Tables IV and VI report it
as a separate "conversion time" column).  Section III-B gives its costs:

* sequential: ``O(ceil(n / b_n) * m + nnz(A))``;
* parallel over T threads: ``O(ceil(n / (T b_n)) * m + max_t nnz(A_t))``;
* workspace: O(m) per in-flight block for the per-row counters.

Both the sequential and the chunked ("parallel schedule") constructions
are implemented; the chunked form partitions blocks across T logical
workers and reports the critical-path cost a T-thread run would see, which
feeds the scaling model.  Results of the two constructions are identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.timing import Timer
from ..utils.validation import check_positive_int
from .blocked_csr import BlockedCSR
from .csc import CSCMatrix
from .csr import CSRMatrix

__all__ = ["ConversionStats", "csc_to_blocked_csr", "blocked_csr_workspace_bytes"]


@dataclass(frozen=True)
class ConversionStats:
    """Accounting for one CSC -> blocked CSR conversion.

    ``op_count`` follows the Section III-B cost expression (block-pointer
    passes plus entry moves); ``critical_path_ops`` is the max per-worker
    cost under the requested thread count, and ``workspace_bytes`` is the
    O(m)-per-block counter storage.
    """

    seconds: float
    op_count: int
    critical_path_ops: int
    workspace_bytes: int
    n_blocks: int
    threads: int


def _csc_block_to_csr(block: CSCMatrix) -> CSRMatrix:
    """Transpose one vertical CSC block's layout into CSR.

    This is the per-block body of the conversion: a counting pass over the
    block's rows (the O(m) term) followed by a stable scatter of the
    entries (the O(nnz) term).
    """
    m, width = block.shape
    nnz = block.nnz
    indptr = np.zeros(m + 1, dtype=np.int64)
    np.add.at(indptr, block.indices + 1, 1)
    np.cumsum(indptr, out=indptr)
    cols = np.repeat(np.arange(width, dtype=np.int64), np.diff(block.indptr))
    order = np.argsort(block.indices, kind="stable")
    return CSRMatrix((m, width), indptr, cols[order], block.data[order],
                     check=False)


def csc_to_blocked_csr(A: CSCMatrix, b_n: int, *, threads: int = 1) -> tuple[BlockedCSR, ConversionStats]:
    """Partition ``A`` into width-``b_n`` vertical blocks, each in CSR.

    Parameters
    ----------
    A:
        Input matrix in CSC (assumed "given for free", as in the paper).
    b_n:
        Vertical block width (Algorithm 1's ``b_n``); the last block may be
        narrower.
    threads:
        Logical worker count for the *accounted* parallel schedule.  The
        construction itself executes sequentially (results are schedule-
        independent); ``critical_path_ops`` reports the parallel cost.

    Returns
    -------
    (blocked, stats):
        The :class:`BlockedCSR` and its :class:`ConversionStats`.
    """
    b_n = check_positive_int(b_n, "b_n")
    threads = check_positive_int(threads, "threads")
    m, n = A.shape
    if n > 0:
        block_starts = np.asarray(
            sorted(set(range(0, n, b_n)) | {n}), dtype=np.int64
        )
    else:
        block_starts = np.asarray([0, 0], dtype=np.int64)

    blocks: list[CSRMatrix] = []
    per_block_ops: list[int] = []
    with Timer() as t:
        for b in range(block_starts.size - 1):
            j0, j1 = int(block_starts[b]), int(block_starts[b + 1])
            blk = A.col_block(j0, j1)
            blocks.append(_csc_block_to_csr(blk))
            per_block_ops.append(m + blk.nnz)

    n_blocks = len(blocks)
    op_count = sum(per_block_ops)
    # Parallel schedule: contiguous block ranges balanced across workers
    # (the paper "assign[s] blocks to each thread individually").
    critical = 0
    if n_blocks:
        chunk = -(-n_blocks // threads)
        for w in range(0, n_blocks, chunk):
            critical = max(critical, sum(per_block_ops[w:w + chunk]))
    stats = ConversionStats(
        seconds=t.elapsed,
        op_count=op_count,
        critical_path_ops=critical,
        workspace_bytes=8 * m * min(threads, max(n_blocks, 1)),
        n_blocks=n_blocks,
        threads=threads,
    )
    return BlockedCSR((m, n), block_starts, blocks, check=False), stats


def blocked_csr_workspace_bytes(m: int, threads: int = 1) -> int:
    """O(m) per-thread counter workspace the construction needs (int64)."""
    m = check_positive_int(m, "m")
    threads = check_positive_int(threads, "threads")
    return 8 * m * threads
