"""The blocked-CSR auxiliary structure required by Algorithm 4.

Section II-B2: "[Algorithm 4] demands a more sophisticated data structure.
``A`` will need to be first partitioned into vertical blocks, and within
each block, the entries will be stored in CSR format."  Section III-B
costs its construction at ``O(ceil(n / b_n) * m + nnz(A))`` sequentially,
noting the O(m) per-block workspace for row counts; those costs are
reproduced (and accounted) in :mod:`repro.sparse.convert`.

A :class:`BlockedCSR` holds, for each vertical block ``A[:, j0:j1]``, a
:class:`repro.sparse.CSRMatrix` over the block's local columns together
with the block's global column offset.  Algorithm 4's kernel walks the
non-empty rows of one block, generates the sketch column for each row
once, and scatters rank-1 updates across the row's stored columns.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..errors import FormatError, ShapeError
from .csr import CSRMatrix

__all__ = ["BlockedCSR"]


class BlockedCSR:
    """A sparse matrix partitioned into vertical blocks, each stored CSR.

    Attributes
    ----------
    shape:
        Global ``(m, n)`` dimensions.
    block_starts:
        ``int64`` array of length ``n_blocks + 1``; block ``b`` covers the
        global columns ``block_starts[b]:block_starts[b+1]``.
    blocks:
        One :class:`CSRMatrix` per vertical block, with shape
        ``(m, block_width)`` and *local* column indices.
    """

    def __init__(self, shape: tuple[int, int], block_starts: np.ndarray,
                 blocks: Sequence[CSRMatrix], *, check: bool = True) -> None:
        m, n = shape
        if m < 0 or n < 0:
            raise ShapeError(f"shape must be non-negative, got {shape}")
        self.shape = (int(m), int(n))
        self.block_starts = np.asarray(block_starts, dtype=np.int64)
        self.blocks = list(blocks)
        if check:
            self.validate()

    # -- invariants ---------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`FormatError` when blocks do not tile the columns."""
        m, n = self.shape
        bs = self.block_starts
        if bs.ndim != 1 or bs.size != len(self.blocks) + 1:
            raise FormatError("block_starts must have length n_blocks + 1")
        if bs.size < 1 or bs[0] != 0 or bs[-1] != n:
            raise FormatError(f"block_starts must run from 0 to n={n}")
        if np.any(np.diff(bs) <= 0) and n > 0:
            raise FormatError("block_starts must be strictly increasing")
        for b, blk in enumerate(self.blocks):
            width = int(bs[b + 1] - bs[b])
            if blk.shape != (m, width):
                raise FormatError(
                    f"block {b} has shape {blk.shape}, expected ({m}, {width})"
                )
            blk.validate()

    # -- basic properties ---------------------------------------------------

    @property
    def n_blocks(self) -> int:
        """Number of vertical blocks."""
        return len(self.blocks)

    @property
    def nnz(self) -> int:
        """Total stored entries across all blocks."""
        return sum(blk.nnz for blk in self.blocks)

    @property
    def memory_bytes(self) -> int:
        """Bytes held by all blocks' buffers plus the block index."""
        return int(self.block_starts.nbytes) + sum(
            blk.memory_bytes for blk in self.blocks
        )

    def block_width(self, b: int) -> int:
        """Number of global columns covered by block ``b``."""
        return int(self.block_starts[b + 1] - self.block_starts[b])

    def iter_blocks(self) -> Iterator[tuple[int, CSRMatrix]]:
        """Yield ``(global column offset, block)`` pairs in column order."""
        for b, blk in enumerate(self.blocks):
            yield int(self.block_starts[b]), blk

    def column_slice(self, j0: int, j1: int) -> "BlockedCSR":
        """The vertical sub-structure covering global columns ``[j0, j1)``.

        *j0*/*j1* must fall on block boundaries (sharded execution cuts
        stripes at multiples of ``b_n``, so this always holds there);
        the returned structure shares the underlying block CSRMatrix
        objects — no data is copied — with ``block_starts`` re-based so
        local offsets start at zero.
        """
        bs = self.block_starts
        if not (0 <= j0 < j1 <= self.shape[1]):
            raise ShapeError(
                f"column slice [{j0}, {j1}) out of range for n="
                f"{self.shape[1]}")
        b0 = int(np.searchsorted(bs, j0))
        b1 = int(np.searchsorted(bs, j1))
        if bs[b0] != j0 or bs[b1] != j1:
            raise ShapeError(
                f"column slice [{j0}, {j1}) does not fall on block "
                f"boundaries {bs.tolist()}")
        return BlockedCSR((self.shape[0], j1 - j0), bs[b0:b1 + 1] - j0,
                          self.blocks[b0:b1], check=False)

    # -- conversions --------------------------------------------------------

    def to_dense(self) -> np.ndarray:
        """Realize the full matrix as a dense array (testing aid)."""
        out = np.zeros(self.shape, dtype=np.float64)
        for j0, blk in self.iter_blocks():
            out[:, j0:j0 + blk.shape[1]] = blk.to_dense()
        return out

    def __repr__(self) -> str:
        return (
            f"BlockedCSR(shape={self.shape}, n_blocks={self.n_blocks}, "
            f"nnz={self.nnz})"
        )
