"""MatrixMarket coordinate I/O for the from-scratch sparse formats.

The paper's test matrices come from the SuiteSparse Matrix Collection,
which distributes MatrixMarket files.  This reader/writer handles the
subset those files use — ``matrix coordinate real|integer|pattern
general|symmetric`` — so users with collection access can run the benches
on the genuine matrices instead of the bundled surrogates.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

import numpy as np

from ..errors import FormatError
from .coo import COOMatrix
from .csc import CSCMatrix

__all__ = ["read_matrix_market", "write_matrix_market",
           "iter_matrix_market_entries"]

_SUPPORTED_FIELDS = {"real", "integer", "pattern"}
_SUPPORTED_SYMMETRY = {"general", "symmetric"}


def _open(source: str | Path | TextIO, mode: str):
    if hasattr(source, "read") or hasattr(source, "write"):
        return source, False
    return open(source, mode), True


def _read_preamble(fh) -> tuple[str, str, tuple[int, int, int], int]:
    """Parse the banner, comments, and size line; return
    ``(field, symmetry, (m, n, nnz), lineno_of_size_line)``."""
    header = fh.readline()
    lineno = 1
    if not header.startswith("%%MatrixMarket"):
        raise FormatError("line 1: missing %%MatrixMarket header")
    parts = header.strip().split()
    if len(parts) != 5 or parts[1].lower() != "matrix":
        raise FormatError(f"line 1: unsupported header: {header.strip()!r}")
    fmt, field, symmetry = (p.lower() for p in parts[2:5])
    if fmt != "coordinate":
        raise FormatError(
            f"line 1: only coordinate format supported, got {fmt!r}")
    if field not in _SUPPORTED_FIELDS:
        raise FormatError(f"line 1: unsupported field {field!r}")
    if symmetry not in _SUPPORTED_SYMMETRY:
        raise FormatError(f"line 1: unsupported symmetry {symmetry!r}")

    line = fh.readline()
    lineno += 1
    while line.startswith("%") or line.strip() == "":
        if line == "":
            raise FormatError(
                f"line {lineno}: file ended before the size line "
                f"(truncated file?)")
        line = fh.readline()
        lineno += 1
    toks = line.split()
    try:
        m, n, nnz = (int(tok) for tok in toks)
    except ValueError as exc:
        raise FormatError(
            f"line {lineno}: size line must be three integers "
            f"'m n nnz', got {line.strip()!r}") from exc
    if m < 0 or n < 0 or nnz < 0:
        raise FormatError(
            f"line {lineno}: size line values must be non-negative, "
            f"got {line.strip()!r}")
    return field, symmetry, (m, n, nnz), lineno


def _parse_entry(line: str, lineno: int, field: str, m: int,
                 n: int) -> tuple[int, int, float]:
    """Parse one ``row col [value]`` data line to a 0-based entry."""
    toks = line.split()
    if len(toks) < 2:
        raise FormatError(
            f"line {lineno}: entry needs 'row col"
            f"{'' if field == 'pattern' else ' value'}', got {line!r}")
    try:
        r = int(toks[0])
        c = int(toks[1])
    except ValueError as exc:
        raise FormatError(
            f"line {lineno}: non-integer index in entry {line!r}") from exc
    if not (1 <= r <= m) or not (1 <= c <= n):
        raise FormatError(
            f"line {lineno}: index ({r}, {c}) out of range for a "
            f"{m} x {n} matrix (MatrixMarket indices are 1-based)")
    if field == "pattern":
        return r - 1, c - 1, 1.0
    if len(toks) < 3:
        raise FormatError(f"line {lineno}: entry missing value: {line!r}")
    try:
        v = float(toks[2])
    except ValueError as exc:
        raise FormatError(
            f"line {lineno}: non-numeric value in entry {line!r}") from exc
    return r - 1, c - 1, v


def read_matrix_market(source: str | Path | TextIO) -> CSCMatrix:
    """Parse a MatrixMarket coordinate file into CSC.

    Symmetric files are expanded to full storage (off-diagonal entries
    mirrored), pattern files get unit values, and 1-based indices are
    rebased, per the format specification.

    Malformed input — truncated files, an entry count disagreeing with the
    size line, zero or out-of-range indices, non-numeric tokens, duplicate
    coordinates — raises :class:`~repro.errors.FormatError` naming the
    offending line, never a raw ``ValueError`` or silently wrong matrix.
    """
    fh, should_close = _open(source, "r")
    try:
        field, symmetry, (m, n, nnz), lineno = _read_preamble(fh)

        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=np.float64)
        linenos = np.empty(nnz, dtype=np.int64)
        count = 0
        for line in fh:
            lineno += 1
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            if count >= nnz:
                raise FormatError(
                    f"line {lineno}: more entries than the declared "
                    f"nnz = {nnz}")
            rows[count], cols[count], vals[count] = _parse_entry(
                line, lineno, field, m, n)
            linenos[count] = lineno
            count += 1
        if count != nnz:
            raise FormatError(
                f"declared {nnz} entries but the file ended after {count} "
                f"(line {lineno}; truncated file?)")
        if nnz:
            # Duplicate coordinates are ambiguous (sum? overwrite?) — the
            # MatrixMarket spec forbids them, so refuse rather than guess.
            keys = rows * np.int64(max(n, 1)) + cols
            order = np.argsort(keys, kind="stable")
            dup = np.flatnonzero(np.diff(keys[order]) == 0)
            if dup.size:
                first, second = order[dup[0]], order[dup[0] + 1]
                raise FormatError(
                    f"line {linenos[second]}: duplicate entry "
                    f"({rows[second] + 1}, {cols[second] + 1}) — first "
                    f"seen on line {linenos[first]}")
    finally:
        if should_close:
            fh.close()

    if symmetry == "symmetric":
        off_diag = rows != cols
        mirrored_rows = cols[off_diag]
        mirrored_cols = rows[off_diag]
        mirrored_vals = vals[off_diag]
        rows = np.concatenate([rows, mirrored_rows])
        cols = np.concatenate([cols, mirrored_cols])
        vals = np.concatenate([vals, mirrored_vals])
    return COOMatrix((m, n), rows, cols, vals).to_csc()


def iter_matrix_market_entries(source: str | Path | TextIO,
                               chunk: int = 65536):
    """Stream a ``general`` coordinate file as 0-based entry chunks.

    Yields ``((m, n, nnz), rows, cols, vals)`` with the header tuple
    repeated on every chunk, so out-of-core consumers (e.g.
    :meth:`repro.core.StreamingSketch.absorb_entries`) never hold more
    than *chunk* entries.  Symmetric files are rejected (expansion would
    need buffering); use :func:`read_matrix_market` for those.

    Per-entry validation matches :func:`read_matrix_market` (truncation,
    entry-count disagreement, out-of-range indices, and non-numeric
    tokens all raise :class:`~repro.errors.FormatError` with the line
    number) **except** the duplicate-coordinate check, which would
    require holding every seen coordinate — incompatible with the O(chunk)
    memory contract.  Consumers needing that guarantee must use
    :func:`read_matrix_market`.
    """
    if chunk < 1:
        raise FormatError(f"chunk must be positive, got {chunk}")
    fh, should_close = _open(source, "r")
    try:
        field, symmetry, (m, n, nnz), lineno = _read_preamble(fh)
        if symmetry != "general":
            raise FormatError(
                "streaming supports 'general' symmetry only; use "
                "read_matrix_market for symmetric files"
            )
        shape = (m, n, nnz)

        rows = np.empty(chunk, dtype=np.int64)
        cols = np.empty(chunk, dtype=np.int64)
        vals = np.empty(chunk, dtype=np.float64)
        fill = 0
        seen = 0
        for line in fh:
            lineno += 1
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            if seen >= nnz:
                raise FormatError(
                    f"line {lineno}: more entries than the declared "
                    f"nnz = {nnz}")
            rows[fill], cols[fill], vals[fill] = _parse_entry(
                line, lineno, field, m, n)
            fill += 1
            seen += 1
            if fill == chunk:
                yield shape, rows[:fill].copy(), cols[:fill].copy(), vals[:fill].copy()
                fill = 0
        if seen != nnz:
            raise FormatError(
                f"declared {nnz} entries but the file ended after {seen} "
                f"(line {lineno}; truncated file?)")
        if fill:
            yield shape, rows[:fill].copy(), cols[:fill].copy(), vals[:fill].copy()
    finally:
        if should_close:
            fh.close()


def write_matrix_market(A: CSCMatrix, target: str | Path | TextIO,
                        comment: str | None = None) -> None:
    """Write ``A`` as ``matrix coordinate real general`` with 1-based indices."""
    fh, should_close = _open(target, "w")
    try:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        if comment:
            for line in comment.splitlines():
                fh.write(f"% {line}\n")
        m, n = A.shape
        fh.write(f"{m} {n} {A.nnz}\n")
        buf = io.StringIO()
        for j in range(n):
            rows, vals = A.col(j)
            for r, v in zip(rows, vals):
                buf.write(f"{int(r) + 1} {j + 1} {float(v)!r}\n")
        fh.write(buf.getvalue())
    finally:
        if should_close:
            fh.close()
