"""MatrixMarket coordinate I/O for the from-scratch sparse formats.

The paper's test matrices come from the SuiteSparse Matrix Collection,
which distributes MatrixMarket files.  This reader/writer handles the
subset those files use — ``matrix coordinate real|integer|pattern
general|symmetric`` — so users with collection access can run the benches
on the genuine matrices instead of the bundled surrogates.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

import numpy as np

from ..errors import FormatError
from .coo import COOMatrix
from .csc import CSCMatrix

__all__ = ["read_matrix_market", "write_matrix_market",
           "iter_matrix_market_entries"]

_SUPPORTED_FIELDS = {"real", "integer", "pattern"}
_SUPPORTED_SYMMETRY = {"general", "symmetric"}


def _open(source: str | Path | TextIO, mode: str):
    if hasattr(source, "read") or hasattr(source, "write"):
        return source, False
    return open(source, mode), True


def read_matrix_market(source: str | Path | TextIO) -> CSCMatrix:
    """Parse a MatrixMarket coordinate file into CSC.

    Symmetric files are expanded to full storage (off-diagonal entries
    mirrored), pattern files get unit values, and 1-based indices are
    rebased, per the format specification.
    """
    fh, should_close = _open(source, "r")
    try:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise FormatError("missing %%MatrixMarket header")
        parts = header.strip().split()
        if len(parts) != 5 or parts[1].lower() != "matrix":
            raise FormatError(f"unsupported header: {header.strip()!r}")
        fmt, field, symmetry = (p.lower() for p in parts[2:5])
        if fmt != "coordinate":
            raise FormatError(f"only coordinate format supported, got {fmt!r}")
        if field not in _SUPPORTED_FIELDS:
            raise FormatError(f"unsupported field {field!r}")
        if symmetry not in _SUPPORTED_SYMMETRY:
            raise FormatError(f"unsupported symmetry {symmetry!r}")

        line = fh.readline()
        while line.startswith("%") or line.strip() == "":
            line = fh.readline()
            if line == "":
                raise FormatError("missing size line")
        try:
            m, n, nnz = (int(tok) for tok in line.split())
        except ValueError as exc:
            raise FormatError(f"bad size line: {line.strip()!r}") from exc

        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=np.float64)
        count = 0
        for line in fh:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            toks = line.split()
            if count >= nnz:
                raise FormatError("more entries than declared nnz")
            rows[count] = int(toks[0]) - 1
            cols[count] = int(toks[1]) - 1
            if field == "pattern":
                vals[count] = 1.0
            else:
                if len(toks) < 3:
                    raise FormatError(f"entry missing value: {line!r}")
                vals[count] = float(toks[2])
            count += 1
        if count != nnz:
            raise FormatError(f"declared {nnz} entries but found {count}")
    finally:
        if should_close:
            fh.close()

    if symmetry == "symmetric":
        off_diag = rows != cols
        mirrored_rows = cols[off_diag]
        mirrored_cols = rows[off_diag]
        mirrored_vals = vals[off_diag]
        rows = np.concatenate([rows, mirrored_rows])
        cols = np.concatenate([cols, mirrored_cols])
        vals = np.concatenate([vals, mirrored_vals])
    return COOMatrix((m, n), rows, cols, vals).to_csc()


def iter_matrix_market_entries(source: str | Path | TextIO,
                               chunk: int = 65536):
    """Stream a ``general`` coordinate file as 0-based entry chunks.

    Yields ``((m, n, nnz), rows, cols, vals)`` with the header tuple
    repeated on every chunk, so out-of-core consumers (e.g.
    :meth:`repro.core.StreamingSketch.absorb_entries`) never hold more
    than *chunk* entries.  Symmetric files are rejected (expansion would
    need buffering); use :func:`read_matrix_market` for those.
    """
    if chunk < 1:
        raise FormatError(f"chunk must be positive, got {chunk}")
    fh, should_close = _open(source, "r")
    try:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise FormatError("missing %%MatrixMarket header")
        parts = header.strip().split()
        if len(parts) != 5 or parts[1].lower() != "matrix":
            raise FormatError(f"unsupported header: {header.strip()!r}")
        fmt, field, symmetry = (p.lower() for p in parts[2:5])
        if fmt != "coordinate":
            raise FormatError(f"only coordinate format supported, got {fmt!r}")
        if field not in _SUPPORTED_FIELDS:
            raise FormatError(f"unsupported field {field!r}")
        if symmetry != "general":
            raise FormatError(
                "streaming supports 'general' symmetry only; use "
                "read_matrix_market for symmetric files"
            )
        line = fh.readline()
        while line.startswith("%") or line.strip() == "":
            line = fh.readline()
            if line == "":
                raise FormatError("missing size line")
        try:
            m, n, nnz = (int(tok) for tok in line.split())
        except ValueError as exc:
            raise FormatError(f"bad size line: {line.strip()!r}") from exc
        shape = (m, n, nnz)

        rows = np.empty(chunk, dtype=np.int64)
        cols = np.empty(chunk, dtype=np.int64)
        vals = np.empty(chunk, dtype=np.float64)
        fill = 0
        seen = 0
        for line in fh:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            toks = line.split()
            if seen >= nnz:
                raise FormatError("more entries than declared nnz")
            rows[fill] = int(toks[0]) - 1
            cols[fill] = int(toks[1]) - 1
            if field == "pattern":
                vals[fill] = 1.0
            else:
                if len(toks) < 3:
                    raise FormatError(f"entry missing value: {line!r}")
                vals[fill] = float(toks[2])
            fill += 1
            seen += 1
            if fill == chunk:
                yield shape, rows[:fill].copy(), cols[:fill].copy(), vals[:fill].copy()
                fill = 0
        if fill:
            yield shape, rows[:fill].copy(), cols[:fill].copy(), vals[:fill].copy()
        if seen != nnz:
            raise FormatError(f"declared {nnz} entries but found {seen}")
    finally:
        if should_close:
            fh.close()


def write_matrix_market(A: CSCMatrix, target: str | Path | TextIO,
                        comment: str | None = None) -> None:
    """Write ``A`` as ``matrix coordinate real general`` with 1-based indices."""
    fh, should_close = _open(target, "w")
    try:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        if comment:
            for line in comment.splitlines():
                fh.write(f"% {line}\n")
        m, n = A.shape
        fh.write(f"{m} {n} {A.nnz}\n")
        buf = io.StringIO()
        for j in range(n):
            rows, vals = A.col(j)
            for r, v in zip(rows, vals):
                buf.write(f"{int(r) + 1} {j + 1} {float(v)!r}\n")
        fh.write(buf.getvalue())
    finally:
        if should_close:
            fh.close()
