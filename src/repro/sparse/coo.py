"""Coordinate (COO) sparse format — the construction/interchange format.

COO is the natural target for matrix generators and the MatrixMarket
reader; the compute kernels never consume it directly.  Conversions to the
compressed formats (:class:`repro.sparse.CSCMatrix`,
:class:`repro.sparse.CSRMatrix`) sort and sum duplicates, so generators can
emit entries in any order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import FormatError, ShapeError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .csc import CSCMatrix
    from .csr import CSRMatrix

__all__ = ["COOMatrix"]


class COOMatrix:
    """A sparse matrix as parallel (row, col, value) coordinate arrays.

    Duplicate coordinates are permitted and are summed on conversion to a
    compressed format, matching the conventions of MatrixMarket and of
    scipy's COO.
    """

    def __init__(self, shape: tuple[int, int], rows: np.ndarray,
                 cols: np.ndarray, vals: np.ndarray, *, check: bool = True) -> None:
        m, n = shape
        if m < 0 or n < 0:
            raise ShapeError(f"shape must be non-negative, got {shape}")
        self.shape = (int(m), int(n))
        self.rows = np.asarray(rows, dtype=np.int64)
        self.cols = np.asarray(cols, dtype=np.int64)
        self.vals = np.asarray(vals, dtype=np.float64)
        if check:
            self.validate()

    # -- invariants ---------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`FormatError` when the triplet arrays are inconsistent."""
        if not (self.rows.ndim == self.cols.ndim == self.vals.ndim == 1):
            raise FormatError("rows, cols, vals must all be 1-D")
        if not (self.rows.size == self.cols.size == self.vals.size):
            raise FormatError(
                f"triplet arrays must have equal length, got "
                f"{self.rows.size}/{self.cols.size}/{self.vals.size}"
            )
        m, n = self.shape
        if self.rows.size:
            if self.rows.min() < 0 or self.rows.max() >= m:
                raise FormatError(f"row indices out of range [0, {m})")
            if self.cols.min() < 0 or self.cols.max() >= n:
                raise FormatError(f"column indices out of range [0, {n})")

    # -- basic properties ---------------------------------------------------

    @property
    def nnz(self) -> int:
        """Number of *stored* entries (duplicates counted separately)."""
        return int(self.vals.size)

    @property
    def density(self) -> float:
        """Stored entries divided by ``m * n`` (0 for an empty shape)."""
        m, n = self.shape
        return self.nnz / (m * n) if m and n else 0.0

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        """Extract the nonzero pattern of a dense array."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ShapeError(f"dense input must be 2-D, got ndim={dense.ndim}")
        rows, cols = np.nonzero(dense)
        return cls(dense.shape, rows, cols, dense[rows, cols])

    # -- conversions --------------------------------------------------------

    def coalesce(self) -> "COOMatrix":
        """Return an equivalent COO with duplicates summed, sorted by (col, row)."""
        m, n = self.shape
        if self.nnz == 0:
            return COOMatrix(self.shape, self.rows[:0], self.cols[:0], self.vals[:0])
        # Column-major linear keys so the result is CSC-construction ready.
        keys = self.cols * np.int64(m) + self.rows
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        vals = self.vals[order]
        uniq_keys, start = np.unique(keys, return_index=True)
        summed = np.add.reduceat(vals, start)
        return COOMatrix(
            self.shape,
            uniq_keys % m,
            uniq_keys // m,
            summed,
            check=False,
        )

    def to_csc(self) -> "CSCMatrix":
        """Convert to CSC (duplicates summed, rows sorted within columns)."""
        from .csc import CSCMatrix

        c = self.coalesce()
        m, n = self.shape
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, c.cols + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSCMatrix(self.shape, indptr, c.rows, c.vals, check=False)

    def to_csr(self) -> "CSRMatrix":
        """Convert to CSR (duplicates summed, columns sorted within rows)."""
        return self.to_csc().to_csr()

    def to_dense(self) -> np.ndarray:
        """Realize as a dense float64 array (duplicates summed)."""
        out = np.zeros(self.shape, dtype=np.float64)
        np.add.at(out, (self.rows, self.cols), self.vals)
        return out

    def transpose(self) -> "COOMatrix":
        """The transpose, still in COO."""
        m, n = self.shape
        return COOMatrix((n, m), self.cols.copy(), self.rows.copy(),
                         self.vals.copy(), check=False)

    def __repr__(self) -> str:
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"
