"""Row/column reordering: permutations and reverse Cuthill–McKee.

Orderings interact with both halves of the paper's pipeline:

* **Algorithm 4's reuse** is a function of how nonzeros cluster into rows
  within each vertical block (Section III-B: "depending on the sparsity
  pattern of A, one could tune b_n"); a bandwidth-reducing *row* ordering
  concentrates each block's entries into fewer rows, cutting the RNG
  volume — a pattern-engineering lever on top of the blocking knob.
* **Direct QR fill-in** is famously ordering-sensitive; the Table XI
  memory contest depends on it, and the RCM ordering gives the direct
  baseline its best shot.

The implementation is from scratch: BFS-based reverse Cuthill–McKee on
the symmetrized pattern (networkx is used only as a test oracle).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..errors import ShapeError
from .coo import COOMatrix
from .csc import CSCMatrix

__all__ = ["permute", "rcm_ordering", "pattern_bandwidth", "symmetrize_pattern"]


def permute(A: CSCMatrix, row_perm: np.ndarray | None = None,
            col_perm: np.ndarray | None = None) -> CSCMatrix:
    """Apply permutations: returns ``A[row_perm, :][:, col_perm]``.

    ``row_perm[k] = old row index placed at new position k`` (NumPy fancy
    indexing convention); ``None`` leaves that side unpermuted.
    """
    m, n = A.shape
    coo = A.to_coo()
    rows, cols = coo.rows, coo.cols
    if row_perm is not None:
        row_perm = np.asarray(row_perm, dtype=np.int64)
        if sorted(row_perm.tolist()) != list(range(m)):
            raise ShapeError("row_perm must be a permutation of range(m)")
        inv = np.empty(m, dtype=np.int64)
        inv[row_perm] = np.arange(m, dtype=np.int64)
        rows = inv[rows]
    if col_perm is not None:
        col_perm = np.asarray(col_perm, dtype=np.int64)
        if sorted(col_perm.tolist()) != list(range(n)):
            raise ShapeError("col_perm must be a permutation of range(n)")
        inv = np.empty(n, dtype=np.int64)
        inv[col_perm] = np.arange(n, dtype=np.int64)
        cols = inv[cols]
    return COOMatrix((m, n), rows, cols, coo.vals, check=False).to_csc()


def symmetrize_pattern(A: CSCMatrix) -> list[np.ndarray]:
    """Adjacency lists of the symmetrized square pattern graph.

    For rectangular ``A`` the graph is over ``A^T A``'s pattern
    (column-connectivity), the standard choice for ordering least-squares
    columns; for square ``A`` it is ``A + A^T``'s pattern.
    """
    m, n = A.shape
    if m == n:
        adj: list[set[int]] = [set() for _ in range(n)]
        for j in range(n):
            rows, _ = A.col(j)
            for r in rows:
                if r != j:
                    adj[j].add(int(r))
                    adj[int(r)].add(j)
        return [np.fromiter(sorted(s), dtype=np.int64, count=len(s))
                for s in adj]
    # Rectangular: connect columns sharing a row (A^T A pattern), built
    # row-by-row to avoid forming the product.
    csr = A.to_csr()
    adj = [set() for _ in range(n)]
    for i in range(m):
        cols, _ = csr.row(i)
        for a in range(cols.size):
            ca = int(cols[a])
            for b in range(a + 1, cols.size):
                cb = int(cols[b])
                adj[ca].add(cb)
                adj[cb].add(ca)
    return [np.fromiter(sorted(s), dtype=np.int64, count=len(s))
            for s in adj]


def rcm_ordering(A: CSCMatrix) -> np.ndarray:
    """Reverse Cuthill–McKee ordering of the (symmetrized) pattern graph.

    Returns a permutation of the column indices (equivalently the node
    set of :func:`symmetrize_pattern`); apply with :func:`permute`.
    Components are started from a minimum-degree node; within each BFS
    level neighbours are visited by increasing degree — the classical
    construction — then the order is reversed.
    """
    adj = symmetrize_pattern(A)
    n = len(adj)
    degree = np.array([a.size for a in adj])
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    while len(order) < n:
        start = int(np.flatnonzero(~visited)[np.argmin(degree[~visited])])
        visited[start] = True
        queue = deque([start])
        while queue:
            u = queue.popleft()
            order.append(u)
            nbrs = [int(v) for v in adj[u] if not visited[v]]
            nbrs.sort(key=lambda v: (degree[v], v))
            for v in nbrs:
                visited[v] = True
                queue.append(v)
    return np.asarray(order[::-1], dtype=np.int64)


def pattern_bandwidth(A: CSCMatrix) -> int:
    """Maximum |i - j| over stored entries of a square matrix (its band)."""
    m, n = A.shape
    if m != n:
        raise ShapeError("bandwidth is defined for square patterns")
    coo = A.to_coo()
    if coo.nnz == 0:
        return 0
    return int(np.abs(coo.rows - coo.cols).max())
