"""Small linear-algebra helpers over the from-scratch sparse formats.

These support the least-squares pipeline (column norms for the LSQR-D
diagonal preconditioner, Frobenius norms for the paper's Error(x) metric)
and the experiment harness (condition numbers of modest-size matrices via
dense SVD).
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .csc import CSCMatrix

__all__ = [
    "column_norms",
    "frobenius_norm",
    "condition_number",
    "scale_columns",
]


def column_norms(A: CSCMatrix) -> np.ndarray:
    """Euclidean norm of each column of ``A`` (length ``n``).

    This is the quantity the LSQR-D baseline builds its diagonal
    preconditioner from: ``D_ii = 1 / ||A_i||_2`` (Section V-C1).
    """
    n = A.shape[1]
    out = np.empty(n, dtype=np.float64)
    for j in range(n):
        _, vals = A.col(j)
        out[j] = np.sqrt(np.dot(vals, vals))
    return out


def frobenius_norm(A: CSCMatrix) -> float:
    """``||A||_F`` over stored entries."""
    return float(np.sqrt(np.dot(A.data, A.data)))


def condition_number(A: CSCMatrix) -> float:
    """2-norm condition number via dense SVD (harness use; small matrices).

    Defined as ``sigma_max / sigma_min`` over all ``min(m, n)`` singular
    values; returns ``inf`` when the smallest singular value underflows to
    zero, matching how Table VIII reports essentially-singular matrices
    (cond ~ 1e14-1e18).
    """
    m, n = A.shape
    if m == 0 or n == 0:
        raise ShapeError("condition number of an empty matrix is undefined")
    s = np.linalg.svd(A.to_dense(), compute_uv=False)
    smin = s.min()
    # Treat singular values at roundoff level as exact zeros (rank
    # deficiency), as rank-revealing factorizations do.
    tol = s.max() * max(m, n) * np.finfo(np.float64).eps
    if smin <= tol:
        return float("inf")
    return float(s.max() / smin)


def scale_columns(A: CSCMatrix, scale: np.ndarray) -> CSCMatrix:
    """Return ``A @ diag(scale)`` as a new CSC matrix.

    Used to form the diagonally-preconditioned operator ``A D`` whose
    condition number Table VIII reports as ``cond(AD)``.
    """
    n = A.shape[1]
    scale = np.asarray(scale, dtype=np.float64)
    if scale.shape != (n,):
        raise ShapeError(f"scale must have shape ({n},), got {scale.shape}")
    data = A.data.copy()
    for j in range(n):
        lo, hi = A.indptr[j], A.indptr[j + 1]
        data[lo:hi] *= scale[j]
    return CSCMatrix(A.shape, A.indptr.copy(), A.indices.copy(), data,
                     check=False)
