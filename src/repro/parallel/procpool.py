"""Crash-tolerant multi-process execution: the ``process`` Runtime driver.

The thread-pool engine (:mod:`repro.parallel.executor`) is GIL-bound:
with the numpy backend, worker threads only overlap inside individual
NumPy calls, so a multi-core machine is mostly idle and a single wedged
worker can stall a whole sketch.  This module runs the same Algorithm 1
block tasks across N long-lived **worker processes** supervised by the
driver process:

* the frozen, JSON-round-trippable :class:`~repro.plan.SketchPlan` is
  exactly the unit that ships to a worker — each worker rebuilds the
  input matrix from :mod:`multiprocessing.shared_memory` segments and
  derives its generators from the plan's RNG spec, so any worker can
  compute any tile bit-identically;
* output tiles are collected through a **claimed-before-commit**
  protocol: the worker writes the tile into the shared output buffer,
  checksums the *correct* bytes (:mod:`repro.persist.checksum`), and
  commits a claim record over its pipe; the supervisor re-reads the
  shared bytes and only accepts the commit when the digest matches —
  a torn or corrupted write is requeued, never trusted;
* **liveness** is supervised per worker: every task message doubles as
  a heartbeat, so a SIGKILLed worker surfaces as a dead pipe and a hung
  worker as a stale heartbeat past its deadline; either way the
  supervisor requeues the worker's uncommitted tasks (bit-identical
  RNG re-derivation makes the replay exact), kills what is left of the
  worker, and warm-respawns a replacement within a bounded budget;
* replays use **deterministic exponential backoff**
  (:func:`~repro.parallel.resilience.backoff_seconds`, jitter keyed on
  the task's RNG coordinates) and a task that keeps killing its worker
  is **quarantined** after ``max_requeues`` replays instead of being
  retried forever;
* when the pool cannot finish — every worker lost with the respawn
  budget spent, or quarantined poison tasks remain — the supervisor
  walks the **degradation ladder** process → thread → serial in the
  driver process, emitting ``degraded`` events so
  :class:`~repro.parallel.resilience.RunHealth`, metrics, and traces
  all observe the decision.

Supervision events (``worker_spawned`` / ``worker_lost`` /
``task_requeued``) fire on the runtime's
:class:`~repro.plan.EventBus` from the supervisor process only; worker
processes never touch the bus, the injector, or the checkpoint stack.
Process-level fault injection (``kill_worker`` / ``hang_worker`` /
``corrupt_tile``) is claimed supervisor-side at dispatch time — so
``max_hits`` budgets are exact across requeues and respawns — and
shipped to the worker as plain instructions it applies mechanically.
"""

from __future__ import annotations

import heapq
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import ConfigError, TaskTimeoutError
from ..utils.validation import check_choice, check_positive_int

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.injector import FaultInjector
    from ..plan.events import EventBus
    from ..plan.spec import SketchPlan
    from ..sparse.blocked_csr import BlockedCSR
    from ..sparse.csc import CSCMatrix

__all__ = ["WorkerPoolConfig", "ProcessPoolSupervisor", "pool_start_method"]

Task = tuple[int, int, int, int]  # (i, d1, j, n1)

_START_METHODS = ("auto", "fork", "spawn")


def pool_start_method(requested: str = "auto") -> str:
    """Resolve the multiprocessing start method for the worker fleet.

    ``fork`` is preferred when the platform offers it (fast spawn, no
    module re-import); ``spawn`` is the portable fallback.
    """
    check_choice(requested, "start_method", _START_METHODS)
    if requested != "auto":
        return requested
    import multiprocessing

    return ("fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")


@dataclass(frozen=True)
class WorkerPoolConfig:
    """Supervision policy for the ``process`` driver's worker fleet.

    Attributes
    ----------
    workers:
        Number of long-lived worker processes.
    heartbeat_timeout:
        Seconds of heartbeat silence after which a worker *with claimed
        tasks* is declared hung, killed, and its tasks requeued.  Idle
        workers never time out.  Every pipe message doubles as a
        heartbeat, and workers send one immediately before each task.
    batch_size:
        Tasks shipped per dispatch message (0 = auto-sized from the
        task count and worker count).  Smaller batches narrow the blast
        radius of a lost worker; larger ones cut pipe round trips.
    max_requeues:
        Replay budget per task.  A task that exceeds it (it keeps
        killing, hanging, or corrupting) is quarantined and finished on
        the in-process degradation ladder instead of poisoning the pool
        forever.
    max_respawns:
        Total warm worker respawns the supervisor may perform before it
        declares the pool collapsed and degrades.
    backoff_base, backoff_factor, backoff_max:
        Deterministic exponential backoff applied before a requeued
        task becomes dispatchable again (see
        :func:`~repro.parallel.resilience.backoff_seconds`; the jitter
        is keyed on the task's RNG coordinates, never wall-clock
        entropy).
    start_method:
        ``"auto"`` (fork when available), ``"fork"``, or ``"spawn"``.
    """

    workers: int = 2
    heartbeat_timeout: float = 30.0
    batch_size: int = 0
    max_requeues: int = 3
    max_respawns: int = 8
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 1.0
    start_method: str = "auto"

    def __post_init__(self) -> None:
        check_positive_int(self.workers, "workers")
        if not self.heartbeat_timeout > 0:
            raise ConfigError(
                f"heartbeat_timeout must be positive, got "
                f"{self.heartbeat_timeout}"
            )
        if self.batch_size < 0:
            raise ConfigError(
                f"batch_size must be >= 0 (0 = auto), got {self.batch_size}"
            )
        if self.max_requeues < 0:
            raise ConfigError(
                f"max_requeues must be >= 0, got {self.max_requeues}"
            )
        if self.max_respawns < 0:
            raise ConfigError(
                f"max_respawns must be >= 0, got {self.max_respawns}"
            )
        if not self.backoff_base >= 0:
            raise ConfigError(
                f"backoff_base must be non-negative, got {self.backoff_base}"
            )
        if not self.backoff_factor >= 1.0:
            raise ConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not self.backoff_max >= 0:
            raise ConfigError(
                f"backoff_max must be non-negative, got {self.backoff_max}"
            )
        check_choice(self.start_method, "start_method", _START_METHODS)

    def to_dict(self) -> dict:
        return {
            "workers": int(self.workers),
            "heartbeat_timeout": float(self.heartbeat_timeout),
            "batch_size": int(self.batch_size),
            "max_requeues": int(self.max_requeues),
            "max_respawns": int(self.max_respawns),
            "backoff_base": float(self.backoff_base),
            "backoff_factor": float(self.backoff_factor),
            "backoff_max": float(self.backoff_max),
            "start_method": self.start_method,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkerPoolConfig":
        return cls(
            workers=int(data.get("workers", 2)),
            heartbeat_timeout=float(data.get("heartbeat_timeout", 30.0)),
            batch_size=int(data.get("batch_size", 0)),
            max_requeues=int(data.get("max_requeues", 3)),
            max_respawns=int(data.get("max_respawns", 8)),
            backoff_base=float(data.get("backoff_base", 0.05)),
            backoff_factor=float(data.get("backoff_factor", 2.0)),
            backoff_max=float(data.get("backoff_max", 1.0)),
            start_method=data.get("start_method", "auto"),
        )


# -- worker process ---------------------------------------------------------


def _open_shared_matrix(shm_seg, spec):
    """Rebuild a :class:`CSCMatrix` over shared-memory-backed arrays."""
    import numpy as np

    from ..sparse.csc import CSCMatrix

    def arr(name, dtype, shape):
        return np.ndarray(shape, dtype=dtype, buffer=shm_seg[name].buf)

    indptr = arr("indptr", np.int64, (spec["n"] + 1,))
    indices = arr("indices", np.int64, (spec["nnz"],))
    data = arr("data", np.float64, (spec["nnz"],))
    return CSCMatrix((spec["m"], spec["n"]), indptr, indices, data,
                     check=False)


def _open_shared_blocked(shm_seg, spec):
    """Rebuild the supervisor's blocked CSR over shared-memory arrays.

    The supervisor converts (or loads from the artifact cache) exactly
    once and ships the four flat arrays; every worker maps them as
    zero-copy views instead of re-running the O(nnz) conversion
    per process.
    """
    import numpy as np

    from ..cache.artifacts import blocked_csr_from_arrays

    def arr(name, dtype, shape):
        return np.ndarray(shape, dtype=dtype, buffer=shm_seg[name].buf)

    n_blocks = spec["n_blocks"]
    block_starts = arr("blk_starts", np.int64, (n_blocks + 1,))
    indptr = arr("blk_indptr", np.int64, (n_blocks, spec["m"] + 1))
    indices = arr("blk_indices", np.int64, (spec["blk_nnz"],))
    data = arr("blk_data", np.float64, (spec["blk_nnz"],))
    return blocked_csr_from_arrays((spec["m"], spec["n"]), block_starts,
                                   indptr, indices, data)


def _worker_main(wid: int, conn, plan_data: dict, shm_names: dict,
                 problem: dict) -> None:
    """Entry point of one worker process.

    Rebuilds the input matrix from shared memory, derives its own
    generators from the shipped plan, then serves task batches until a
    ``shutdown`` message or pipe closure.  A ``reload`` message rebinds
    the worker to a *new plan over the same input matrix* (remapping any
    replaced segments — typically the output buffer), which is how the
    serving daemon keeps a warm fleet across requests.  Injected process
    faults arrive as plain dicts attached to each task and are applied
    mechanically — the worker holds no injector state.
    """
    import numpy as np
    from multiprocessing import shared_memory

    from ..kernels.backends import KernelWorkspace, resolve_backend
    from ..persist.checksum import checksum_bytes, default_algo
    from ..plan.spec import SketchPlan
    from ..utils.timing import Stopwatch

    segs = {}

    def remap(names: dict) -> None:
        for name, shm_name in names.items():
            old = segs.pop(name, None)
            if old is not None:
                try:
                    old.close()
                except OSError:  # pragma: no cover - best effort
                    pass
            segs[name] = shared_memory.SharedMemory(name=shm_name)

    try:
        remap(shm_names)
        plan = SketchPlan.from_dict(plan_data)
        A = _open_shared_matrix(segs, problem)
        backend = resolve_backend(plan.backend)
        watch = Stopwatch()
        workspace = KernelWorkspace()
        algo = default_algo()

        def bind(plan: "SketchPlan", problem: dict):
            """(Re)derive the per-plan state: output view, generator,
            and the zero-copy blocked-CSR views for Algorithm 4."""
            d, n = plan.problem.d, plan.problem.n
            batch = plan.problem.batch
            shape = (batch, d, n) if batch > 1 else (d, n)
            Ahat = np.ndarray(shape, dtype=np.float64,
                              buffer=segs["ahat"].buf)
            rng = plan.rng_factory()(wid)
            block_by_offset = {}
            if plan.kernel == "algo4":
                # Zero-copy views over the supervisor's one shared
                # conversion — workers never re-run csc_to_blocked_csr.
                blocked = _open_shared_blocked(segs, problem)
                for j0, blk in blocked.iter_blocks():
                    block_by_offset[j0] = blk
            return Ahat, rng, block_by_offset

        Ahat, rng, block_by_offset = bind(plan, problem)
        warm_rng = rng.members[0] if hasattr(rng, "members") else rng
        backend.warmup(warm_rng, np.float64)
        conn.send(("ready", wid, os.getpid(), 0.0))

        while True:
            msg = conn.recv()
            if msg[0] == "shutdown":
                break
            if msg[0] == "reload":
                # A new plan over the same input matrix.  Pipe order
                # guarantees the reload is applied before any task batch
                # the supervisor sends afterwards, so no ack round trip
                # is required for correctness; the "reloaded" message
                # doubles as a heartbeat.
                _tag, plan_data, shm_updates, problem = msg
                remap(shm_updates)
                plan = SketchPlan.from_dict(plan_data)
                Ahat, rng, block_by_offset = bind(plan, problem)
                # The new plan's blocking/batch may differ: drop every
                # scratch buffer so a stale-shaped one can never be
                # silently reused by the next tile.
                workspace.reset()
                conn.send(("reloaded", wid, os.getpid(), 0.0))
                continue
            if msg[0] != "tasks":  # pragma: no cover - protocol guard
                continue
            for idx, task, faults in msg[1]:
                conn.send(("hb", wid, idx))
                i, d1, j, n1 = task
                kinds = {f["kind"] for f in faults}
                try:
                    if "kill_worker" in kinds:
                        # A real process death: no cleanup, no goodbye.
                        os.kill(os.getpid(), signal.SIGKILL)
                    if "hang_worker" in kinds:
                        # Wedge without heartbeating; the supervisor's
                        # deadline, not this sleep, decides our fate.
                        time.sleep(max(f["sleep_seconds"] for f in faults
                                       if f["kind"] == "hang_worker"))
                    samples0 = rng.samples_generated
                    s0 = watch.total("sample")
                    c0 = watch.total("compute")
                    batch = plan.problem.batch
                    if batch > 1:
                        tile = np.zeros((batch, d1, n1), dtype=np.float64)
                        if plan.kernel == "algo3":
                            backend.algo3_block_batched(
                                tile, A.col_block(j, j + n1), i, rng,
                                watch=watch, workspace=workspace)
                        else:
                            blk = block_by_offset.get(j)
                            if blk is None or blk.shape[1] != n1:
                                raise ConfigError(
                                    "blocked CSR partition does not match "
                                    "the b_n task grid")
                            backend.algo4_block_batched(
                                tile, blk, i, rng, watch=watch,
                                workspace=workspace)
                    else:
                        tile = np.zeros((d1, n1), dtype=np.float64)
                        if plan.kernel == "algo3":
                            backend.algo3_block(tile,
                                                A.col_block(j, j + n1), i,
                                                rng, watch=watch,
                                                workspace=workspace)
                        else:
                            blk = block_by_offset.get(j)
                            if blk is None or blk.shape[1] != n1:
                                raise ConfigError(
                                    "blocked CSR partition does not match "
                                    "the b_n task grid")
                            backend.algo4_block(tile, blk, i, rng,
                                                watch=watch,
                                                workspace=workspace)
                    Ahat[..., i:i + d1, j:j + n1] = tile
                    # Claimed-before-commit: digest the *correct* bytes;
                    # the supervisor re-reads shared memory and verifies.
                    digest = checksum_bytes(tile.tobytes(), algo)
                    if "corrupt_tile" in kinds and tile.size:
                        # Corrupt the shared tile after checksumming — the
                        # supervisor must reject this commit.
                        Ahat[..., i + d1 // 2, j + n1 // 2] = np.nan
                    conn.send(("commit", wid, idx, task, algo, digest, {
                        "sample": watch.total("sample") - s0,
                        "compute": watch.total("compute") - c0,
                        "samples": rng.samples_generated - samples0,
                    }))
                except Exception as exc:  # noqa: BLE001 - fault boundary
                    conn.send(("error", wid, idx, task,
                               type(exc).__name__, str(exc)))
    except (EOFError, OSError, KeyboardInterrupt):  # pragma: no cover
        pass  # supervisor went away; nothing to report to
    finally:
        for seg in segs.values():
            try:
                seg.close()
            except OSError:  # pragma: no cover - teardown best effort
                pass


# -- supervisor -------------------------------------------------------------


class _WorkerHandle:
    """Supervisor-side record of one live worker process."""

    __slots__ = ("wid", "proc", "conn", "last_seen", "assigned", "pid")

    def __init__(self, wid, proc, conn) -> None:
        self.wid = wid
        self.proc = proc
        self.conn = conn
        self.last_seen = time.monotonic()
        self.assigned: set[int] = set()
        self.pid = proc.pid


class ProcessPoolSupervisor:
    """Supervises N worker processes executing one plan's block tasks.

    The ``process`` driver of :class:`repro.plan.Runtime`: constructed
    per run, returns ``(Ahat, stats)`` from :meth:`run`.  All lifecycle
    and supervision events fire on *bus* from the supervisor process.

    Parameters
    ----------
    plan:
        The compiled :class:`~repro.plan.SketchPlan`; ``plan.pool``
        (or a default :class:`WorkerPoolConfig`) sets the supervision
        policy.  The kernel must be ``algo3`` or ``algo4``.
    A, rng_factory:
        The input matrix and the generator factory.  Worker processes
        derive their generators from ``plan.rng`` — a custom factory
        only affects the in-process degradation ladder and the final
        ``post_scale`` — so factories that do not match the plan's RNG
        spec are unsupported on this driver.
    bus, injector:
        Event bus for lifecycle/supervision events, and the optional
        fault injector whose process-level faults
        (``kill_worker``/``hang_worker``/``corrupt_tile``) are claimed
        at dispatch time.
    blocked:
        Pre-built blocked CSR for Algorithm 4 plans (e.g. served from
        the artifact cache by the runtime).  With or without it the
        supervisor materializes the conversion exactly **once** and
        ships it to workers through shared memory; workers map the
        blocks as zero-copy views and never reconvert.
    """

    def __init__(self, plan: "SketchPlan", A: "CSCMatrix", rng_factory, *,
                 bus: "EventBus | None" = None,
                 injector: "FaultInjector | None" = None,
                 blocked: "BlockedCSR | None" = None) -> None:
        from ..kernels.backends import resolve_backend
        from ..plan.events import EventBus
        from .resilience import RunHealth

        if plan.kernel not in ("algo3", "algo4"):
            raise ConfigError(
                f"the process driver requires kernel 'algo3' or 'algo4', "
                f"got {plan.kernel!r}")
        if plan.persistence.enabled:
            raise ConfigError(
                "the process driver cannot honour a persistence policy yet; "
                "use driver='engine' for checkpointed runs")
        if blocked is not None and blocked.shape != A.shape:
            raise ConfigError(
                f"blocked CSR shape {blocked.shape} does not match A "
                f"{A.shape}")
        self.plan = plan
        self.A = A
        self.blocked = blocked
        self.rng_factory = rng_factory
        self.bus = bus if bus is not None else EventBus()
        self.injector = injector
        self.pool = plan.pool if plan.pool is not None else WorkerPoolConfig()
        self.backend = resolve_backend(plan.backend)
        self.health = RunHealth()
        self.Ahat = None

        self._segs: dict[str, object] = {}
        self._workers: dict[int, _WorkerHandle] = {}
        self._next_wid = 0
        self._respawns_used = 0
        self._started = False
        self._tainted = False
        self._ctx = None
        self._shm_names: dict[str, str] = {}
        self._worker_digest: str | None = None
        self._ahat_shape: tuple[int, int] | None = None
        self._fleet_target = 0
        self._committed: set[int] = set()
        self._replays: dict[int, int] = {}
        self._dispatches: dict[int, int] = {}
        self._quarantined: list[int] = []
        self._ready: deque[int] = deque()
        self._backoff_heap: list[tuple[float, int]] = []
        self._tasks: list[Task] = []
        self._worker_stats = {"sample": 0.0, "compute": 0.0, "samples": 0}
        self._conversion_seconds = 0.0
        self._track_blocks = False
        self._fallback_blocks: dict[int, object] = {}
        self._stats_lock = threading.Lock()

    # -- shared-memory plumbing --------------------------------------------

    def _ensure_blocked(self) -> None:
        """Materialize the Algorithm 4 conversion once, supervisor-side.

        A pre-built structure (from the caller or the artifact cache)
        is used as-is with zero conversion cost; otherwise the
        supervisor converts here — once per run, not once per worker —
        and records the time in the run's ``conversion_seconds``.
        """
        if self.plan.kernel != "algo4" or self.blocked is not None:
            return
        from ..sparse.convert import csc_to_blocked_csr

        self.blocked, conv = csc_to_blocked_csr(self.A, self.plan.b_n,
                                                threads=1)
        self._conversion_seconds = conv.seconds

    def _create_segments(self) -> dict[str, str]:
        """Allocate shared segments for A's arrays and the output buffer."""
        import numpy as np
        from multiprocessing import shared_memory

        d, n = self.plan.problem.d, self.plan.problem.n
        batch = self.plan.problem.batch
        out_shape = (batch, d, n) if batch > 1 else (d, n)

        def create(name, src_dtype, shape):
            count = 1
            for s in shape:
                count *= s
            nbytes = max(1, count * np.dtype(src_dtype).itemsize)
            seg = shared_memory.SharedMemory(create=True, size=nbytes)
            self._segs[name] = seg
            return np.ndarray(shape, dtype=src_dtype, buffer=seg.buf)

        create("indptr", np.int64, self.A.indptr.shape)[:] = self.A.indptr
        create("indices", np.int64, self.A.indices.shape)[:] = self.A.indices
        create("data", np.float64, self.A.data.shape)[:] = self.A.data
        if self.blocked is not None:
            m = self.A.shape[0]
            blocked = self.blocked
            n_blocks = blocked.n_blocks
            create("blk_starts", np.int64, (n_blocks + 1,))[:] = \
                blocked.block_starts
            blk_indptr = create("blk_indptr", np.int64, (n_blocks, m + 1))
            offset = 0
            blk_indices = create("blk_indices", np.int64, (blocked.nnz,))
            blk_data = create("blk_data", np.float64, (blocked.nnz,))
            for b, blk in enumerate(blocked.blocks):
                blk_indptr[b, :] = blk.indptr
                nnz_b = blk.indices.size
                blk_indices[offset:offset + nnz_b] = blk.indices
                blk_data[offset:offset + nnz_b] = blk.data
                offset += nnz_b
        ahat = create("ahat", np.float64, out_shape)
        ahat[:] = 0.0
        self.Ahat = ahat
        self._ahat_shape = out_shape
        return {name: seg.name for name, seg in self._segs.items()}

    def _release_segments(self) -> None:
        for seg in self._segs.values():
            try:
                seg.close()
                seg.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass
        self._segs.clear()

    # -- worker lifecycle --------------------------------------------------

    def _spawn_worker(self, ctx, shm_names: dict, *,
                      respawn: bool = False) -> _WorkerHandle:
        from ..plan.events import WORKER_SPAWNED

        wid = self._next_wid
        self._next_wid += 1
        parent_conn, child_conn = ctx.Pipe()
        problem = {"m": self.A.shape[0], "n": self.A.shape[1],
                   "nnz": int(self.A.nnz)}
        if self.blocked is not None:
            problem["n_blocks"] = int(self.blocked.n_blocks)
            problem["blk_nnz"] = int(self.blocked.nnz)
        proc = ctx.Process(
            target=_worker_main,
            args=(wid, child_conn, self.plan.to_dict(), shm_names, problem),
            daemon=True, name=f"repro-worker-{wid}")
        proc.start()
        child_conn.close()
        handle = _WorkerHandle(wid, proc, parent_conn)
        self._workers[wid] = handle
        self.health.workers_spawned += 1
        if respawn:
            self.health.worker_respawns += 1
            self.health.record(
                f"worker {wid}: warm respawn "
                f"({self._respawns_used}/{self.pool.max_respawns} used)")
        self.bus.emit(WORKER_SPAWNED, worker=wid, pid=handle.pid,
                      respawn=respawn)
        return handle

    def _lose_worker(self, handle: _WorkerHandle, reason: str) -> None:
        """Declare *handle* dead: kill, requeue its tasks, maybe respawn."""
        from ..plan.events import WORKER_LOST

        self._workers.pop(handle.wid, None)
        if handle.proc.is_alive():
            try:
                os.kill(handle.pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):  # pragma: no cover
                pass
        handle.proc.join(timeout=5)
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - teardown best effort
            pass
        self.health.workers_lost += 1
        self.health.record(f"worker {handle.wid} (pid {handle.pid}) lost: "
                           f"{reason}; {len(handle.assigned)} task(s) "
                           f"requeued")
        self.bus.emit(WORKER_LOST, worker=handle.wid, pid=handle.pid,
                      reason=reason)
        for idx in sorted(handle.assigned):
            self._requeue(idx, f"worker_{reason}")
        handle.assigned.clear()

    def _maybe_respawn(self, ctx, shm_names: dict) -> None:
        remaining = (len(self._tasks) - len(self._committed)
                     - len(self._quarantined))
        # Top up only to the fleet size actually spawned at startup
        # (capped by the task count), so a small problem never triggers
        # phantom "respawns" of workers that were never wanted.
        target = min(self.pool.workers, max(1, remaining))
        while (remaining > 0 and len(self._workers) < target
                and self._respawns_used < self.pool.max_respawns):
            self._respawns_used += 1
            self._spawn_worker(ctx, shm_names, respawn=True)

    # -- task bookkeeping --------------------------------------------------

    def _key(self, idx: int) -> tuple[int, int]:
        t = self._tasks[idx]
        return (t[0], t[2])

    def _requeue(self, idx: int, reason: str) -> None:
        from ..plan.events import TASK_REQUEUED
        from .resilience import backoff_seconds

        if idx in self._committed:
            return
        key = self._key(idx)
        replays = self._replays.get(idx, 0) + 1
        self._replays[idx] = replays
        if replays > self.pool.max_requeues:
            self._quarantined.append(idx)
            self.health.quarantined_tasks += 1
            self.health.record(
                f"task {key}: poison — {replays - 1} replays failed "
                f"({reason}); quarantined for the degradation ladder")
            return
        pool = self.pool
        delay = backoff_seconds(pool.backoff_base, pool.backoff_factor,
                                pool.backoff_max, seed=self.plan.rng.seed,
                                task=key, attempt=replays)
        self.health.tasks_requeued += 1
        self.health.record(
            f"task {key}: requeued ({reason}), replay {replays}"
            f"/{pool.max_requeues}, backoff {delay * 1e3:.1f} ms")
        self.bus.emit(TASK_REQUEUED, task=key, reason=reason,
                      replays=replays, backoff=delay)
        if delay > 0:
            heapq.heappush(self._backoff_heap,
                           (time.monotonic() + delay, idx))
        else:
            self._ready.append(idx)

    def _drain_backoff(self) -> None:
        now = time.monotonic()
        while self._backoff_heap and self._backoff_heap[0][0] <= now:
            _due, idx = heapq.heappop(self._backoff_heap)
            self._ready.append(idx)

    def _dispatch(self, handle: _WorkerHandle, batch: int) -> None:
        from ..plan.events import BLOCK_START

        items = []
        while self._ready and len(items) < batch:
            idx = self._ready.popleft()
            if idx in self._committed:
                continue
            task = self._tasks[idx]
            key = (task[0], task[2])
            attempt = self._dispatches.get(idx, 0) + 1
            self._dispatches[idx] = attempt
            faults = (self.injector.process_faults(key, self.plan.kernel,
                                                   attempt)
                      if self.injector is not None else [])
            self.health.attempts += 1
            if self._track_blocks:
                self.bus.emit(BLOCK_START, task=key, i=task[0], d1=task[1],
                              j=task[2], n1=task[3], kernel=self.plan.kernel)
            items.append((idx, task, faults))
            handle.assigned.add(idx)
        if items:
            try:
                handle.conn.send(("tasks", items))
            except (OSError, BrokenPipeError):
                # The worker died between wait() and dispatch; undo the
                # claim and let the liveness pass requeue cleanly.
                for idx, _task, _faults in items:
                    handle.assigned.discard(idx)
                    self._dispatches[idx] -= 1
                    self.health.attempts -= 1
                    self._ready.appendleft(idx)
                self._lose_worker(handle, "crashed")

    # -- message handling --------------------------------------------------

    def _verify_commit(self, idx: int, task: Task, algo: str,
                       digest: str) -> bool:
        import numpy as np

        from ..persist.checksum import checksum_bytes

        i, d1, j, n1 = task
        view = np.ascontiguousarray(self.Ahat[..., i:i + d1, j:j + n1])
        return checksum_bytes(view.tobytes(), algo) == digest

    def _on_commit(self, handle: _WorkerHandle, msg) -> None:
        from ..plan.events import BLOCK_DONE
        from .resilience import TaskFailure

        _tag, _wid, idx, task, algo, digest, stats = msg
        handle.assigned.discard(idx)
        if idx in self._committed:
            return  # duplicate from a worker we already replaced
        if not self._verify_commit(idx, tuple(task), algo, digest):
            i, d1, j, n1 = task
            self.Ahat[..., i:i + d1, j:j + n1] = 0.0
            self.health.failures.append(TaskFailure(
                task=(task[0], task[2]),
                attempt=self._dispatches.get(idx, 1),
                kind="checksum_mismatch",
                message="shared-memory tile bytes do not match the "
                        "committed digest",
                context="process"))
            self._requeue(idx, "checksum_mismatch")
            return
        self._committed.add(idx)
        self.health.completed += 1
        for k in ("sample", "compute"):
            self._worker_stats[k] += float(stats.get(k, 0.0))
        self._worker_stats["samples"] += int(stats.get("samples", 0))
        if self._track_blocks:
            i, d1, j, n1 = task
            self.bus.emit(BLOCK_DONE, task=(i, j), i=i, d1=d1, j=j, n1=n1,
                          kernel=self.plan.kernel)

    def _on_error(self, handle: _WorkerHandle, msg) -> None:
        from .resilience import TaskFailure

        _tag, _wid, idx, task, kind, message = msg
        handle.assigned.discard(idx)
        self.health.failures.append(TaskFailure(
            task=(task[0], task[2]), attempt=self._dispatches.get(idx, 1),
            kind=kind, message=message, context="process"))
        self._requeue(idx, kind)

    def _pump_worker(self, handle: _WorkerHandle) -> None:
        """Drain every buffered message from one worker's pipe."""
        try:
            while handle.conn.poll():
                msg = handle.conn.recv()
                handle.last_seen = time.monotonic()
                tag = msg[0]
                if tag == "commit":
                    self._on_commit(handle, msg)
                elif tag == "error":
                    self._on_error(handle, msg)
                elif tag == "ready":
                    self._conversion_seconds = max(self._conversion_seconds,
                                                   float(msg[3]))
                # "hb" needs no body: last_seen is already refreshed.
        except (EOFError, OSError):
            self._lose_worker(handle, "crashed")

    def _check_liveness(self) -> None:
        now = time.monotonic()
        for handle in list(self._workers.values()):
            if not handle.proc.is_alive():
                self._pump_worker(handle)  # salvage buffered commits
                if handle.wid in self._workers:
                    self._lose_worker(handle, "crashed")
            elif (handle.assigned
                    and now - handle.last_seen > self.pool.heartbeat_timeout):
                self._lose_worker(handle, "hung")

    # -- degradation ladder ------------------------------------------------

    def _compute_local(self, task: Task, out) -> None:
        """One in-process kernel invocation (thread/serial rungs).

        Each call uses a fresh coordinate-keyed generator and a private
        stopwatch, so concurrent thread-rung calls never share mutable
        state; the accounting is folded in under a lock afterwards.
        """
        from ..kernels.backends import KernelWorkspace
        from ..utils.timing import Stopwatch

        i, d1, j, n1 = task
        rng = self.rng_factory(0)
        watch = Stopwatch()
        out[:] = 0.0
        batched = self.plan.problem.batch > 1
        if self.plan.kernel == "algo3":
            A_sub = self.A.col_block(j, j + n1)
            if batched:
                self.backend.algo3_block_batched(
                    out, A_sub, i, rng, watch=watch,
                    workspace=KernelWorkspace())
            else:
                self.backend.algo3_block(out, A_sub, i, rng, watch=watch,
                                         workspace=KernelWorkspace())
        else:
            blk = self._fallback_blocks.get(j)
            if blk is None or blk.shape[1] != n1:
                raise ConfigError(
                    "blocked CSR partition does not match the b_n task grid")
            if batched:
                self.backend.algo4_block_batched(
                    out, blk, i, rng, watch=watch,
                    workspace=KernelWorkspace())
            else:
                self.backend.algo4_block(out, blk, i, rng, watch=watch,
                                         workspace=KernelWorkspace())
        with self._stats_lock:
            self._worker_stats["sample"] += watch.total("sample")
            self._worker_stats["compute"] += watch.total("compute")
            self._worker_stats["samples"] += rng.samples_generated

    def _run_fallback(self, leftover: list[int],
                      deadline: float | None = None) -> None:
        """Finish *leftover* tasks in-process: thread rung, then serial.

        The pool could not complete these (collapse or quarantine).
        Tiles recompute bit-identically in the driver process because
        generators are coordinate-keyed; each rung's decision is
        emitted as a ``degraded`` event.  Deadlines still bind down
        here: the plan's per-task ``task_timeout`` is enforced post-hoc
        on every rung (strict when ``reexecute_stragglers`` is off),
        and an absolute run *deadline* aborts between tasks.
        """
        from concurrent.futures import ThreadPoolExecutor

        from ..plan.events import DEGRADED

        self._fallback_blocks = {}
        if self.plan.kernel == "algo4":
            # The supervisor's one conversion (built or cache-served at
            # start) serves the degradation rungs too — no reconversion.
            self._ensure_blocked()
            for j0, blk in self.blocked.iter_blocks():
                self._fallback_blocks[j0] = blk

        self.health.degraded_to_thread = True
        self.health.record(
            f"{len(leftover)} task(s) unfinishable in the process pool; "
            f"degrading process -> thread")
        self.bus.emit(DEGRADED, kind="pool_fallback", tasks=len(leftover))

        cfg = self.plan.resilience
        timeout = cfg.task_timeout if cfg is not None else None
        strict = cfg is not None and not cfg.reexecute_stragglers

        def check_task_deadline(task: Task, elapsed: float) -> None:
            # Post-hoc: an in-process rung cannot preempt a running
            # kernel, but an overrun must still surface (and, under the
            # strict contract, fail) rather than pass silently.
            if timeout is None or elapsed <= timeout:
                return
            key = (task[0], task[2])
            with self._stats_lock:
                self.health.timeouts += 1
                self.health.record(
                    f"task {key}: fallback rung overran the {timeout}s "
                    f"per-task deadline ({elapsed:.3f}s)")
            if strict:
                raise TaskTimeoutError(
                    f"task {key} missed its {timeout}s deadline "
                    f"({elapsed:.3f}s elapsed) on the degradation ladder")

        def run_one(idx: int) -> None:
            task = self._tasks[idx]
            i, d1, j, n1 = task
            self.health.attempts += 1
            started = time.monotonic()
            self._compute_local(task, self.Ahat[..., i:i + d1, j:j + n1])
            check_task_deadline(task, time.monotonic() - started)

        threads = max(1, min(4, self.plan.threads))
        failed: list[int] = []
        with ThreadPoolExecutor(max_workers=threads) as pool:
            futures = {idx: pool.submit(run_one, idx) for idx in leftover}
            for idx, fut in futures.items():
                try:
                    fut.result()
                    self._committed.add(idx)
                    self.health.completed += 1
                except TaskTimeoutError:
                    raise  # the deadline contract outranks the last rung
                except Exception:  # noqa: BLE001 - last rung handles it
                    failed.append(idx)
        if not failed:
            return
        self.health.degraded_to_serial = True
        self.health.record(
            f"{len(failed)} task(s) failed on the thread rung; "
            f"degrading thread -> serial")
        self.bus.emit(DEGRADED, kind="serial_fallback", tasks=len(failed))
        for idx in failed:
            if deadline is not None and time.monotonic() >= deadline:
                self._cancel_run(deadline)
            self.health.attempts += 1
            run = self._tasks[idx]
            i, d1, j, n1 = run
            started = time.monotonic()
            self._compute_local(run, self.Ahat[..., i:i + d1, j:j + n1])
            check_task_deadline(run, time.monotonic() - started)
            self._committed.add(idx)
            self.health.completed += 1

    # -- stats -------------------------------------------------------------

    def _finish_stats(self, total_seconds: float):
        from ..kernels.stats import KernelStats
        from ..utils.flops import spmm_flops

        sample = self._worker_stats["sample"]
        compute = self._worker_stats["compute"]
        samples = self._worker_stats["samples"]
        stats = KernelStats(
            kernel=f"{self.plan.kernel}-procpool",
            sample_seconds=sample,
            compute_seconds=compute,
            conversion_seconds=self._conversion_seconds,
            total_seconds=total_seconds,
            cpu_seconds=sample + compute,
            wall_seconds=total_seconds,
            samples_generated=samples,
            flops=(self.plan.problem.batch
                   * spmm_flops(self.plan.problem.d, self.A.nnz)),
            blocks_processed=len(self._tasks),
            d=self.plan.problem.d, b_d=self.plan.b_d, b_n=self.plan.b_n,
            extra={"driver": "process", "workers": self.pool.workers,
                   "start_method": pool_start_method(self.pool.start_method),
                   "backend": self.backend.name,
                   "respawns_used": self._respawns_used,
                   **({"batch": self.plan.problem.batch}
                      if self.plan.problem.batch > 1 else {})},
            health=self.health,
        )
        # Conversion happens once per pool (at start); attribute it to
        # the run that paid for it so warm runs report pure kernel time.
        self._conversion_seconds = 0.0
        return stats

    # -- warm-pool lifecycle -----------------------------------------------

    @property
    def tainted(self) -> bool:
        """True once a run was cancelled mid-flight (deadline abort).

        A tainted pool may still hold workers with claimed tasks that
        would write into a reused output segment; callers must
        :meth:`close` it rather than reuse it.
        """
        return self._tainted

    def worker_pids(self) -> tuple[int, ...]:
        """PIDs of the currently live workers (chaos hooks, tests)."""
        return tuple(h.pid for h in self._workers.values())

    def compatible(self, plan: "SketchPlan") -> bool:
        """True if *plan* can execute on this warm pool (same input
        matrix shape, kernel, backend, and — for Algorithm 4 — the same
        ``b_n`` partition, so the one shared conversion stays valid).
        The caller is responsible for matrix *identity*: a warm pool is
        bound to the matrix content it was started with."""
        try:
            self._check_compatible(plan)
        except ConfigError:
            return False
        return True

    def _check_compatible(self, plan: "SketchPlan") -> None:
        base = self.plan
        if (plan.problem.m, plan.problem.n) != (base.problem.m,
                                                base.problem.n):
            raise ConfigError(
                f"warm pool is bound to a {base.problem.m}x{base.problem.n} "
                f"input; plan expects {plan.problem.m}x{plan.problem.n}")
        if plan.kernel != base.kernel:
            raise ConfigError(
                f"warm pool workers are bound to kernel {base.kernel!r}; "
                f"plan wants {plan.kernel!r}")
        if plan.backend != base.backend:
            raise ConfigError(
                f"warm pool workers are bound to backend {base.backend!r}; "
                f"plan wants {plan.backend!r}")
        if base.kernel == "algo4" and plan.b_n != base.b_n:
            raise ConfigError(
                f"warm pool's shared blocked-CSR uses b_n={base.b_n}; "
                f"plan wants b_n={plan.b_n} (would force reconversion)")
        if plan.persistence.enabled:
            raise ConfigError(
                "the process driver cannot honour a persistence policy yet; "
                "use driver='engine' for checkpointed runs")

    def start(self) -> "ProcessPoolSupervisor":
        """Publish the shared input segments and spawn the worker fleet.

        Idempotent.  After ``start()`` the pool is *warm*: repeated
        :meth:`execute` calls reuse the fleet and the one-time CSC (and
        blocked-CSR) shared-memory publication, so a request on a warm
        pool pays pure kernel time.  Pair with :meth:`close`.
        """
        import multiprocessing

        if self._started:
            return self
        self._ctx = multiprocessing.get_context(
            pool_start_method(self.pool.start_method))
        self._ensure_blocked()
        self._shm_names = self._create_segments()
        d, n = self.plan.problem.d, self.plan.problem.n
        n_tasks = (((d + self.plan.b_d - 1) // self.plan.b_d)
                   * ((n + self.plan.b_n - 1) // self.plan.b_n))
        self._fleet_target = min(self.pool.workers, max(1, n_tasks))
        for _ in range(self._fleet_target):
            self._spawn_worker(self._ctx, self._shm_names)
        self._worker_digest = self.plan.digest()
        self._started = True
        return self

    def close(self) -> None:
        """Shut down the fleet and release shared memory (idempotent)."""
        self._shutdown_workers()
        self._release_segments()
        self._started = False
        self._ctx = None
        self._shm_names = {}

    def _refresh_output_segment(self) -> dict[str, str]:
        """Make the shared output buffer match the current plan's shape.

        Returns the segment remappings workers must apply (empty when
        the existing buffer is reused — it is zeroed in place)."""
        import numpy as np
        from multiprocessing import shared_memory

        d, n = self.plan.problem.d, self.plan.problem.n
        batch = self.plan.problem.batch
        shape = (batch, d, n) if batch > 1 else (d, n)
        if self._ahat_shape == shape:
            self.Ahat[:] = 0.0
            return {}
        old = self._segs.pop("ahat", None)
        if old is not None:
            try:
                old.close()
                old.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass
        seg = shared_memory.SharedMemory(create=True,
                                         size=max(1, batch * d * n * 8))
        self._segs["ahat"] = seg
        self.Ahat = np.ndarray(shape, dtype=np.float64, buffer=seg.buf)
        self.Ahat[:] = 0.0
        self._ahat_shape = shape
        self._shm_names["ahat"] = seg.name
        return {"ahat": seg.name}

    def _reload_workers(self, shm_updates: dict[str, str]) -> None:
        """Rebind live workers to the current plan (new output segment,
        generator recipe, block views).  Pipe ordering guarantees the
        reload lands before any task batch sent afterwards."""
        problem = {"m": self.A.shape[0], "n": self.A.shape[1],
                   "nnz": int(self.A.nnz)}
        if self.blocked is not None:
            problem["n_blocks"] = int(self.blocked.n_blocks)
            problem["blk_nnz"] = int(self.blocked.nnz)
        plan_data = self.plan.to_dict()
        for handle in list(self._workers.values()):
            try:
                handle.conn.send(("reload", plan_data, shm_updates, problem))
            except (OSError, BrokenPipeError):
                self._lose_worker(handle, "crashed")

    # -- entry points ------------------------------------------------------

    def run(self):
        """One-shot execution: start, execute, tear down.

        The classic ``process``-driver path; returns ``(Ahat, stats)``.
        """
        try:
            self.start()
            result, stats = self.execute()
        finally:
            self.close()
        # Keep the historical contract: after run() the attribute holds
        # the detached result, never a view of released shared memory.
        self.Ahat = result
        return result, stats

    def execute(self, plan: "SketchPlan | None" = None, rng_factory=None, *,
                injector=None, deadline: float | None = None):
        """Run one plan on the warm fleet; returns ``(Ahat, stats)``.

        Parameters
        ----------
        plan:
            Optional replacement plan for this run.  Must satisfy
            :meth:`compatible`; workers are rebound via a ``reload``
            message and the shared output buffer is recreated only when
            ``d`` changes.  ``None`` reuses the current plan.  The
            supervision policy (``pool``) stays the one the pool was
            started with — it sized the fleet.
        rng_factory, injector:
            Per-run overrides; ``None`` keeps the constructor's.
        deadline:
            Absolute ``time.monotonic()`` instant.  When it passes
            mid-run the dispatch loop aborts: queued tasks are dropped,
            claimed-but-uncommitted tiles are abandoned (never served),
            the pool is marked :attr:`tainted`, and
            :class:`~repro.errors.TaskTimeoutError` is raised.  A
            tainted pool must be :meth:`close`\\ d, not reused.

        Returns a *private copy* of the sketch — the shared segment is
        reused by the next run.
        """
        import multiprocessing
        import numpy as np

        from ..kernels.blocking import iter_block_tasks
        from ..plan.events import BLOCK_DONE, BLOCK_START
        from ..utils.timing import Timer
        from .resilience import RunHealth

        if not self._started:
            raise ConfigError("pool is not started; call start() or run()")
        if self._tainted:
            raise ConfigError(
                "pool is tainted by a cancelled run; close() and rebuild")
        if plan is not None and plan is not self.plan:
            self._check_compatible(plan)
            self.plan = plan
        if rng_factory is not None:
            self.rng_factory = rng_factory
        if injector is not None:
            self.injector = injector

        plan_ = self.plan
        d, n = plan_.problem.d, plan_.problem.n

        # Fresh per-run state: each execute() reports its own health.
        self.health = RunHealth()
        self._committed = set()
        self._replays = {}
        self._dispatches = {}
        self._quarantined = []
        self._backoff_heap = []
        self._worker_stats = {"sample": 0.0, "compute": 0.0, "samples": 0}
        self._tasks = list(iter_block_tasks(d, n, plan_.b_d, plan_.b_n))
        self._ready = deque(range(len(self._tasks)))
        self.health.tasks = len(self._tasks)
        self.health.backend = self.backend.name
        # The warm fleet serving this run was spawned at start(); count
        # it here so each run's health stands alone.
        self.health.workers_spawned = len(self._workers)
        self._track_blocks = self.bus.has_subscribers(BLOCK_START, BLOCK_DONE)

        shm_updates = self._refresh_output_segment()
        digest = plan_.digest()
        if shm_updates or digest != self._worker_digest:
            self._reload_workers(shm_updates)
            self._worker_digest = digest
        # Grow the fleet for a bigger plan (fresh members, not respawns)
        # — but never resurrect a collapsed pool: that is the caller's
        # signal to recycle it.
        if self._workers:
            want = min(self.pool.workers, max(1, len(self._tasks)))
            self._fleet_target = max(self._fleet_target, want)
            while len(self._workers) < want:
                self._spawn_worker(self._ctx, self._shm_names)

        batch = self.pool.batch_size
        if batch <= 0:
            batch = max(1, min(
                8, (len(self._tasks) + 4 * self.pool.workers - 1)
                // (4 * self.pool.workers)))
        tick = min(0.05, self.pool.heartbeat_timeout / 5.0)

        with Timer() as total:
            while (self._workers
                    and (self._ready or self._backoff_heap
                         or any(h.assigned
                                for h in self._workers.values()))):
                if deadline is not None and time.monotonic() >= deadline:
                    self._cancel_run(deadline)
                self._drain_backoff()
                for handle in list(self._workers.values()):
                    if not handle.assigned and self._ready:
                        self._dispatch(handle, batch)
                conns = {h.conn: h for h in self._workers.values()}
                if conns:
                    readable = multiprocessing.connection.wait(
                        list(conns), timeout=tick)
                    for conn in readable:
                        handle = conns.get(conn)
                        if handle is not None \
                                and handle.wid in self._workers:
                            self._pump_worker(handle)
                self._check_liveness()
                self._maybe_respawn(self._ctx, self._shm_names)

            leftover = sorted(
                set(range(len(self._tasks))) - self._committed)
            if leftover:
                if deadline is not None and time.monotonic() >= deadline:
                    self._cancel_run(deadline)
                self._run_fallback(leftover, deadline=deadline)
            # Detach the result: the shared segment is reused next run.
            result = np.array(self.Ahat, copy=True)
            post = self.rng_factory(0).post_scale
            if post != 1.0:
                result *= post
        return result, self._finish_stats(total.elapsed)

    def _cancel_run(self, deadline: float) -> None:
        """Abort the in-flight run at its deadline.

        Queued work is dropped and claimed-but-uncommitted tiles are
        abandoned; whatever those workers later write lands in a buffer
        nobody will serve, but the pool is tainted so it cannot be
        reused either.  Raises :class:`TaskTimeoutError`.
        """
        claimed = sum(len(h.assigned) for h in self._workers.values())
        pending = len(self._tasks) - len(self._committed)
        self._ready.clear()
        self._backoff_heap = []
        self._tainted = True
        self.health.timeouts += 1
        self.health.record(
            f"run deadline expired: {pending} task(s) unfinished, "
            f"{claimed} claimed-but-uncommitted cancelled; pool tainted")
        raise TaskTimeoutError(
            f"run deadline expired with {pending}/{len(self._tasks)} "
            f"task(s) unfinished ({claimed} claimed-but-uncommitted "
            f"cancelled)")

    def _shutdown_workers(self) -> None:
        from ..plan.events import WORKER_LOST

        for handle in list(self._workers.values()):
            self._workers.pop(handle.wid, None)
            try:
                handle.conn.send(("shutdown",))
            except (OSError, BrokenPipeError):
                pass
            handle.proc.join(timeout=2)
            if handle.proc.is_alive():  # pragma: no cover - stuck worker
                try:
                    os.kill(handle.pid, signal.SIGKILL)
                except (OSError, ProcessLookupError):
                    pass
                handle.proc.join(timeout=5)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - teardown best effort
                pass
            self.bus.emit(WORKER_LOST, worker=handle.wid, pid=handle.pid,
                          reason="shutdown")
