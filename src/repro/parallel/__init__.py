"""Shared-memory parallelism: task scheduling, resilient thread-pool
execution with fault recovery and numerical guardrails, the supervised
multi-process pool behind the ``process`` driver, and the
bandwidth-saturation scaling model behind the Table VII reproduction."""

from .bandwidth import (
    PredictedRun,
    ShardedPrediction,
    bandwidth_at,
    predict_sharded_time,
    predict_time,
    rng_rate_per_core,
)
from .executor import ResilientExecutor, parallel_sketch_spmm
from .procpool import ProcessPoolSupervisor, WorkerPoolConfig, pool_start_method
from .resilience import (
    DegradationPolicy,
    ResilienceConfig,
    RunHealth,
    TaskFailure,
    backoff_seconds,
    column_abs_sums,
    entry_abs_bound,
    validate_block,
)
from .scaling import (
    ScalingPoint,
    measure_strong_scaling,
    parallel_efficiency,
    simulate_strong_scaling,
)
from .scheduler import estimate_task_costs, partition_tasks

__all__ = [
    "PredictedRun",
    "ShardedPrediction",
    "bandwidth_at",
    "predict_sharded_time",
    "predict_time",
    "rng_rate_per_core",
    "ResilientExecutor",
    "parallel_sketch_spmm",
    "ProcessPoolSupervisor",
    "WorkerPoolConfig",
    "pool_start_method",
    "DegradationPolicy",
    "ResilienceConfig",
    "RunHealth",
    "TaskFailure",
    "backoff_seconds",
    "column_abs_sums",
    "entry_abs_bound",
    "validate_block",
    "ScalingPoint",
    "measure_strong_scaling",
    "parallel_efficiency",
    "simulate_strong_scaling",
    "estimate_task_costs",
    "partition_tasks",
]
