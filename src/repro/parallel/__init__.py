"""Shared-memory parallelism: task scheduling, thread-pool execution, and
the bandwidth-saturation scaling model behind the Table VII reproduction."""

from .bandwidth import PredictedRun, bandwidth_at, predict_time, rng_rate_per_core
from .executor import parallel_sketch_spmm
from .scaling import (
    ScalingPoint,
    measure_strong_scaling,
    parallel_efficiency,
    simulate_strong_scaling,
)
from .scheduler import estimate_task_costs, partition_tasks

__all__ = [
    "PredictedRun",
    "bandwidth_at",
    "predict_time",
    "rng_rate_per_core",
    "parallel_sketch_spmm",
    "ScalingPoint",
    "measure_strong_scaling",
    "parallel_efficiency",
    "simulate_strong_scaling",
    "estimate_task_costs",
    "partition_tasks",
]
