"""Strong-scaling harnesses: simulated (machine model) and measured (real).

Table VII sweeps 1..32 threads over two blocking configurations for both
algorithms on shar_te2-b2 and reports time and GFlops.  On this
reproduction's host, real threads demonstrate *correctness* under
parallel execution, while the machine model demonstrates the *scaling
shape* (see DESIGN.md's substitution table): the paper's own explanation
of its scaling data is the bandwidth-saturation story this model encodes.

:func:`simulate_strong_scaling` runs the model; :func:`measure_strong_scaling`
runs real threads through :func:`repro.parallel.parallel_sketch_spmm`.
Both return :class:`ScalingPoint` rows directly comparable to Table VII.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..errors import ConfigError
from ..model.machine import MachineModel
from ..model.traffic import algo3_traffic, algo4_traffic
from ..rng.base import SketchingRNG
from ..sparse.csc import CSCMatrix
from .bandwidth import predict_sharded_time, predict_time
from .executor import parallel_sketch_spmm

__all__ = ["ScalingPoint", "simulate_strong_scaling", "measure_strong_scaling",
           "parallel_efficiency"]


@dataclass(frozen=True)
class ScalingPoint:
    """One row of a Table VII-style scaling sweep."""

    algorithm: str
    threads: int
    seconds: float
    gflops: float
    bound: str  # "compute", "memory", or "measured"


def simulate_strong_scaling(
    A: CSCMatrix,
    d: int,
    machine: MachineModel,
    *,
    kernel: str,
    b_d: int,
    b_n: int,
    threads_list: Sequence[int],
    dist: str = "uniform",
    include_conversion: bool = False,
    shards: int = 1,
    nodes: int = 1,
    shard_weights: Sequence[float] | None = None,
    node_bandwidth_gbs: float | None = None,
) -> list[ScalingPoint]:
    """Predict time/GFlops across thread counts under the machine model.

    ``include_conversion`` charges Algorithm 4's blocked-CSR build as a
    bandwidth-bound serial pass over the matrix (its cost is O(m) pointer
    work per block plus an nnz shuffle — memory-intensive, per Section
    III-B).

    ``shards > 1`` predicts the column-sharded execution instead: shard
    sub-runs placed on ``nodes`` nodes (``shard_weights`` carries an
    uneven partition; cross-node stripes merge at ``node_bandwidth_gbs``)
    **plus the stripe-merge reduction** — a cost the unsharded estimator
    rightly omits but that an earlier sharded estimate silently dropped,
    making multi-shard speedups look free.
    """
    if kernel not in ("algo3", "algo4"):
        raise ConfigError(f"kernel must be 'algo3' or 'algo4', got {kernel!r}")
    h = machine.h(dist)
    if kernel == "algo3":
        traffic = algo3_traffic(A, d, b_d, b_n)
    else:
        traffic = algo4_traffic(A, d, b_d, b_n)
    serial = 0.0
    if include_conversion and kernel == "algo4":
        m, n = A.shape
        conv_words = 2.0 * A.nnz + (-(-n // b_n)) * (m + 1.0)
        serial = conv_words * 8.0 / (machine.bandwidth_gbs * 1e9)
    points = []
    for p in threads_list:
        if shards > 1:
            run = predict_sharded_time(
                traffic, machine, p, h, shards=shards, nodes=nodes,
                weights=shard_weights, node_bandwidth_gbs=node_bandwidth_gbs,
                serial_seconds=serial)
        else:
            run = predict_time(traffic, machine, p, h, serial_seconds=serial)
        points.append(ScalingPoint(kernel, p, run.seconds, run.gflops, run.bound))
    return points


def measure_strong_scaling(
    A: CSCMatrix,
    d: int,
    rng_factory: Callable[[int], SketchingRNG],
    *,
    kernel: str,
    b_d: int,
    b_n: int,
    threads_list: Sequence[int],
) -> list[ScalingPoint]:
    """Run the real thread-pool executor across thread counts and time it."""
    points = []
    for p in threads_list:
        _, stats = parallel_sketch_spmm(
            A, d, rng_factory, threads=p, kernel=kernel, b_d=b_d, b_n=b_n
        )
        points.append(
            ScalingPoint(kernel, p, stats.total_seconds, stats.gflops_rate,
                         "measured")
        )
    return points


def parallel_efficiency(points: Sequence[ScalingPoint]) -> dict[int, float]:
    """Efficiency ``t_1 / (p * t_p)`` relative to the 1-thread entry.

    The paper's headline "parallel efficiency of up to 45%" at 32 threads
    is this quantity.
    """
    base = next((pt.seconds for pt in points if pt.threads == 1), None)
    if base is None:
        raise ConfigError("efficiency needs a 1-thread baseline point")
    return {pt.threads: base / (pt.threads * pt.seconds) for pt in points}
