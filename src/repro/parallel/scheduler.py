"""Partitioning Algorithm 1's block tasks across threads.

Section II-C: "A simple and effective approach is to parallelize either of
the two loops in Algorithm 1."  Every block task writes a disjoint
``(b_d x b_n)`` block of ``Ahat``, so any partition of the task list is
race-free; what matters for scalability is *balance*, which for sparse
inputs is driven by each column block's nonzero count (a dense column
block costs proportionally more — cf. Table VI's Abnormal_B pattern).

Strategies:

* ``static`` — contiguous ranges of tasks, equal counts (the behaviour of
  Julia's ``Threads.@threads`` the paper uses);
* ``cyclic`` — round-robin, which breaks up hot contiguous regions;
* ``guided`` — greedy longest-processing-time assignment using nnz-based
  cost estimates, for adversarial distributions.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigError
from ..sparse.csc import CSCMatrix
from ..utils.validation import check_choice, check_positive_int

__all__ = ["estimate_task_costs", "partition_tasks"]

Task = tuple[int, int, int, int]  # (i, d1, j, n1) from iter_block_tasks


def estimate_task_costs(A: CSCMatrix, tasks: Sequence[Task]) -> np.ndarray:
    """Estimated cost of each block task: ``2 * d1 * nnz(column block)``.

    This is the task's useful flop count, the right proxy when the RNG and
    arithmetic both scale with nonzeros (Algorithm 3) and a good one for
    Algorithm 4.
    """
    costs = np.empty(len(tasks), dtype=np.float64)
    indptr = A.indptr
    for t, (i, d1, j, n1) in enumerate(tasks):
        nnz_block = int(indptr[j + n1] - indptr[j])
        costs[t] = 2.0 * d1 * nnz_block
    return costs


def partition_tasks(tasks: Sequence[Task], threads: int,
                    strategy: str = "static",
                    costs: np.ndarray | None = None) -> list[list[Task]]:
    """Split *tasks* into per-thread work lists.

    Returns exactly *threads* lists (possibly empty).  ``guided`` requires
    *costs* (see :func:`estimate_task_costs`) and assigns each task,
    heaviest first, to the currently lightest thread.
    """
    threads = check_positive_int(threads, "threads")
    check_choice(strategy, "strategy", ("static", "cyclic", "guided"))
    buckets: list[list[Task]] = [[] for _ in range(threads)]
    if not tasks:
        return buckets
    if strategy == "static":
        chunk = -(-len(tasks) // threads)
        for w in range(threads):
            buckets[w] = list(tasks[w * chunk:(w + 1) * chunk])
    elif strategy == "cyclic":
        for t, task in enumerate(tasks):
            buckets[t % threads].append(task)
    else:
        if costs is None:
            raise ConfigError("guided partitioning requires task costs")
        if len(costs) != len(tasks):
            raise ConfigError(
                f"costs length {len(costs)} != tasks length {len(tasks)}"
            )
        loads = np.zeros(threads)
        for t in np.argsort(costs)[::-1]:
            w = int(np.argmin(loads))
            buckets[w].append(tasks[t])
            loads[w] += costs[t]
    return buckets
