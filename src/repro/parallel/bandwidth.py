"""Saturating-bandwidth performance model for multithreaded runs.

Section V-B: "One of the main obstacles to parallel sparse algorithms is
the increasing cost of memory traffic that scales up with the number of
threads.  Eventually when the memory bandwidth is saturated, the parallel
algorithm becomes memory-bound and performance will degrade."  The model
here captures exactly that: compute resources (flops *and* RNG, since
generated numbers cost arithmetic, not bus traffic) scale linearly with
threads, while bandwidth follows a STREAM-like curve that grows linearly
until the socket saturates and then plateaus.

The predicted time of a kernel with traffic estimate ``T`` on machine
``M`` with ``p`` threads is::

    time(p) = max( flop_time(p) + rng_time(p),  memory_time(p) )

with ``memory_time`` using the *penalty-weighted but h-free* word count
(RNG entries never touch the bus — the whole point of regeneration).  This
is the engine behind the Table VII reproduction: blocking choices change
the traffic estimate, which changes where each configuration saturates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..model.machine import MachineModel
from ..model.traffic import TrafficEstimate
from ..utils.validation import check_positive_int

__all__ = ["bandwidth_at", "rng_rate_per_core", "PredictedRun", "predict_time",
           "ShardedPrediction", "predict_sharded_time"]


def bandwidth_at(machine: MachineModel, threads: int) -> float:
    """Deliverable bandwidth (bytes/s) at a thread count.

    Linear ramp to the saturation knee, flat afterwards — the shape a
    STREAM sweep produces on both of the paper's machines.
    """
    threads = check_positive_int(threads, "threads")
    peak = machine.bandwidth_gbs * 1e9
    knee = machine.bandwidth_saturation_threads
    return peak * min(1.0, threads / knee)


def rng_rate_per_core(machine: MachineModel, h: float) -> float:
    """Entries/second one core can generate, derived from ``h``.

    By the paper's definition, generating one entry costs ``h`` times
    moving one word; a single core moves ``BW_1 / 8`` words/s where
    ``BW_1`` is the single-thread bandwidth, so it generates
    ``BW_1 / (8 h)`` entries/s.
    """
    if h <= 0:
        raise ConfigError(f"h must be positive, got {h}")
    bw1 = bandwidth_at(machine, 1)
    return bw1 / (8.0 * h)


@dataclass(frozen=True)
class PredictedRun:
    """Model-predicted execution profile of one kernel configuration."""

    threads: int
    seconds: float
    compute_seconds: float
    rng_seconds: float
    memory_seconds: float
    gflops: float
    bound: str  # "compute" or "memory"

    @property
    def parallel_efficiency_base(self) -> float:
        """Seconds x threads (for efficiency ratios against the 1-thread run)."""
        return self.seconds * self.threads


def predict_time(traffic: TrafficEstimate, machine: MachineModel,
                 threads: int, h: float,
                 serial_seconds: float = 0.0) -> PredictedRun:
    """Predict wall time of a kernel run under the saturating-BW model.

    Parameters
    ----------
    traffic:
        Per-algorithm traffic decomposition (:mod:`repro.model.traffic`).
    h:
        Effective RNG cost for the distribution in use
        (``machine.h(dist)``).
    serial_seconds:
        Unparallelized overhead added on top (e.g. Algorithm 4's format
        conversion when not amortized).
    """
    threads = check_positive_int(threads, "threads")
    if h < 0:
        raise ConfigError(f"h must be non-negative, got {h}")
    # Threads beyond the physical cores add no compute throughput (the
    # paper's 32-thread Frontera runs oversubscribe a 28-core socket).
    workers = min(threads, machine.cores)
    peak_flops = machine.peak_gflops * 1e9 * (workers / machine.cores)
    flop_time = traffic.flops / peak_flops
    rng_time = (
        traffic.rng_entries / (rng_rate_per_core(machine, max(h, 1e-12)) * workers)
        if traffic.rng_entries
        else 0.0
    )
    # Scattered accesses stall the issuing core even when the bus is idle
    # (missed prefetches, pointer chasing) — this is the Section II-B
    # "architectures that are sensitive to random access" effect that makes
    # Frontera prefer Algorithm 3 *sequentially*.  Charge the excess over a
    # streamed access as per-core latency, parallelizable across threads.
    word_time_1 = 8.0 / bandwidth_at(machine, 1)
    scatter_time = (
        (machine.random_access_penalty - 1.0)
        * traffic.words_output_scattered * word_time_1 / workers
    )
    # Memory side: raw streamed words (the penalty is a core stall, not
    # extra bus traffic) and no h term (generation is compute, not traffic).
    words = traffic.effective_words(0.0, 1.0)
    memory_time = words * 8.0 / bandwidth_at(machine, threads)
    compute_side = flop_time + rng_time + scatter_time
    seconds = max(compute_side, memory_time) + serial_seconds
    return PredictedRun(
        threads=threads,
        seconds=seconds,
        compute_seconds=flop_time + scatter_time,
        rng_seconds=rng_time,
        memory_seconds=memory_time,
        gflops=traffic.flops / seconds / 1e9,
        bound="compute" if compute_side >= memory_time else "memory",
    )


@dataclass(frozen=True)
class ShardedPrediction:
    """Model-predicted profile of a column-sharded, possibly multi-node run.

    ``execute_seconds`` is the shard-execution wall time (nodes run their
    shards concurrently; shards co-located on a node run serially, which
    is exactly what ``Runtime._run_sharded`` does on one host), and
    ``merge_seconds`` is the propagation-blocking stripe-merge sweep that
    reassembles ``Ahat`` on the root.
    """

    shards: int
    nodes: int
    threads: int
    seconds: float
    execute_seconds: float
    merge_seconds: float
    merge_words: float
    gflops: float
    bound: str  # "compute", "memory", or "merge"


def predict_sharded_time(traffic: TrafficEstimate, machine: MachineModel,
                         threads: int, h: float, *, shards: int,
                         nodes: int = 1, weights=None,
                         node_bandwidth_gbs: float | None = None,
                         serial_seconds: float = 0.0) -> ShardedPrediction:
    """Predict wall time of a run partitioned into column shards.

    Every traffic component of one full sketch scales linearly with a
    shard's share of columns/nnz, so a shard with weight ``w`` costs
    ``w * time(full)``; ``weights`` carries the partition strategy's
    (possibly uneven) shard sizes and defaults to an even split.

    Shards are placed on ``nodes`` nodes by longest-processing-time
    first; nodes execute concurrently, shards within a node serially.
    The merge stage then streams every stripe into the root's output —
    ``traffic.words_output`` words total (one write-allocate read plus
    one write per element): stripes produced on the root move at local
    memory bandwidth, stripes produced elsewhere cross the interconnect
    at ``node_bandwidth_gbs`` (default: local bandwidth, i.e. the
    single-host process pool whose workers share memory).  This merge
    term is the reduction cost a naive strong-scaling estimate omits.

    ``serial_seconds`` (e.g. Algorithm 4's format conversion) is charged
    per shard pro rata: each shard converts only its own stripe.
    """
    shards = check_positive_int(shards, "shards")
    nodes = check_positive_int(nodes, "nodes")
    nodes = min(nodes, shards)
    if weights is None:
        weights = [1.0] * shards
    weights = [float(w) for w in weights]
    if len(weights) != shards:
        raise ConfigError(
            f"weights must have one entry per shard: got {len(weights)} "
            f"for {shards} shard(s)")
    if any(w < 0 for w in weights) or sum(weights) <= 0:
        raise ConfigError("shard weights must be non-negative with a "
                          "positive sum")
    total_w = float(sum(weights))
    base = predict_time(traffic, machine, threads, h)
    costs = [(w / total_w) * (base.seconds + serial_seconds)
             for w in weights]
    # Longest-processing-time-first placement: heaviest shard onto the
    # least-loaded node.  Node 0 is the root that owns the merged output.
    loads = [0.0] * nodes
    root_weight = 0.0
    for i in sorted(range(shards), key=lambda i: -costs[i]):
        j = min(range(nodes), key=loads.__getitem__)
        loads[j] += costs[i]
        if j == 0:
            root_weight += weights[i] / total_w
    execute_seconds = max(loads)
    merge_words = traffic.words_output
    local_bw = bandwidth_at(machine, 1)  # the merge sweep is one stream
    link_bw = (node_bandwidth_gbs * 1e9 if node_bandwidth_gbs is not None
               else local_bw)
    if link_bw <= 0:
        raise ConfigError(
            f"node_bandwidth_gbs must be positive, got {node_bandwidth_gbs}")
    local_words = merge_words * root_weight
    remote_words = merge_words - local_words
    merge_seconds = (local_words * 8.0 / local_bw
                     + remote_words * 8.0 / min(local_bw, link_bw))
    seconds = execute_seconds + merge_seconds
    return ShardedPrediction(
        shards=shards,
        nodes=nodes,
        threads=threads,
        seconds=seconds,
        execute_seconds=execute_seconds,
        merge_seconds=merge_seconds,
        merge_words=merge_words,
        gflops=traffic.flops / seconds / 1e9,
        bound="merge" if merge_seconds > execute_seconds else base.bound,
    )
