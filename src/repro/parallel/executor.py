"""Thread-pool execution of the blocked sketching SpMM, with resilience.

Real shared-memory parallelism over Algorithm 1's block tasks.  Every task
writes a disjoint block of ``Ahat`` and reads only immutable inputs, so the
execution is race-free by construction; each worker gets its *own*
:class:`~repro.rng.SketchingRNG` instance (from a factory), so RNG state
and instrumentation counters are thread-private.

Reproducibility across thread counts: both generator families key their
output on ``(seed, block row offset, sparse row)``, never on which thread
runs the block, so the computed ``Ahat`` is bit-identical for any thread
count and any partition strategy — the property tested in
``tests/parallel``.  (This mirrors the paper's Section IV-C discussion:
counter-based RNGs give thread-independent sketches; our checkpointed
xoshiro is also thread-independent *given fixed blocking* because
checkpoints are keyed by coordinates.)

The same coordinate-keying makes the executor *resilient*: a failed block
task can be recomputed from a fresh generator and the result is
bit-identical to a fault-free run.  :class:`ResilientExecutor` exploits
this with per-task bounded retries, per-task deadlines with straggler
re-execution, numerical guardrails (NaN/Inf/magnitude checks with
``raise``/``recompute``/``mask`` policies), and a
:class:`~repro.parallel.resilience.DegradationPolicy` that falls back
algo4→algo3 and parallel→serial after repeated failures — every decision
recorded in a :class:`~repro.parallel.resilience.RunHealth` report
attached to the returned :class:`~repro.kernels.KernelStats`.  When no
resilience options and no fault injector are supplied, the executor takes
the original zero-overhead path.

On the Python runtime, NumPy releases the GIL inside large array
operations, so genuine overlap occurs for the vectorized kernels when the
host has multiple cores; on a single-core host this executor still
validates correctness while :mod:`repro.parallel.scaling` models the
performance (see DESIGN.md's substitution table).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..errors import (
    ConfigError,
    RetryExhaustedError,
    ShapeError,
    SketchQualityError,
    TaskFailedError,
    TaskTimeoutError,
)
from ..kernels.backends import (
    KernelBackend,
    KernelWorkspace,
    resolve_backend,
)
from ..faults.plan import InjectedCrashError
from ..kernels.blocking import default_block_sizes, iter_block_tasks
from ..kernels.stats import KernelStats
from ..rng.base import SketchingRNG
from ..sparse.blocked_csr import BlockedCSR
from ..sparse.convert import csc_to_blocked_csr
from ..sparse.csc import CSCMatrix
from ..utils.flops import spmm_flops
from ..utils.timing import Stopwatch, Timer
from ..utils.validation import check_positive_int
from .resilience import (
    ResilienceConfig,
    RunHealth,
    TaskFailure,
    column_abs_sums,
    entry_abs_bound,
    validate_block,
)
from .scheduler import estimate_task_costs, partition_tasks

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.injector import FaultInjector

__all__ = ["ResilientExecutor", "parallel_sketch_spmm"]

RngFactory = Callable[[int], SketchingRNG]

Task = tuple[int, int, int, int]  # (i, d1, j, n1)


class ResilientExecutor:
    """Executes Algorithm 1's block tasks with optional fault handling.

    Parameters mirror :func:`parallel_sketch_spmm` plus:

    resilience:
        A :class:`~repro.parallel.resilience.ResilienceConfig`; ``None``
        (with no *injector*) selects the original fast path — direct
        in-place block writes, no per-task bookkeeping, overhead within
        noise of the pre-resilience implementation.
    injector:
        A :class:`repro.faults.FaultInjector` whose hooks fire around each
        task attempt (testing only; ``None`` in production).  Supplying an
        injector without a config enables the guarded path with default
        :class:`ResilienceConfig` settings.
    """

    def __init__(
        self,
        A: CSCMatrix,
        d: int,
        rng_factory: RngFactory,
        *,
        threads: int,
        kernel: str = "algo3",
        b_d: int | None = None,
        b_n: int | None = None,
        strategy: str = "static",
        blocked: BlockedCSR | None = None,
        resilience: ResilienceConfig | None = None,
        injector: "FaultInjector | None" = None,
        backend: str | KernelBackend | None = None,
        checkpoint: "object | None" = None,
        checkpoint_dir=None,
        checkpoint_every: int = 1,
        checkpoint_keep: int = 2,
        resume: bool = False,
    ) -> None:
        self.d = check_positive_int(d, "d")
        self.threads = check_positive_int(threads, "threads")
        if kernel not in ("algo3", "algo4"):
            raise ConfigError(f"kernel must be 'algo3' or 'algo4', got {kernel!r}")
        self.A = A
        self.kernel = kernel
        self.backend = resolve_backend(backend)
        self.jit_compile_seconds = 0.0
        self.rng_factory = rng_factory
        self.strategy = strategy
        self.blocked = blocked
        self.injector = injector
        if checkpoint is not None and checkpoint_dir is not None:
            raise ConfigError("pass at most one of checkpoint / checkpoint_dir")
        if checkpoint is None and checkpoint_dir is not None:
            from ..persist.snapshot import CheckpointManager

            checkpoint = CheckpointManager(checkpoint_dir,
                                           keep=checkpoint_keep,
                                           injector=injector)
        self.checkpoint = checkpoint
        self.checkpoint_every = check_positive_int(checkpoint_every,
                                                   "checkpoint_every")
        if resume and checkpoint is None:
            raise ConfigError("resume=True requires a checkpoint directory")
        self._resume_requested = resume
        self.resumed_from = None
        # Durable checkpoints need the per-task commit hooks, so their
        # presence selects the guarded path even without a resilience
        # policy or injector.
        self.guarded = (resilience is not None or injector is not None
                        or checkpoint is not None)
        self.resilience = (resilience if resilience is not None
                           else ResilienceConfig()) if self.guarded else None

        m, n = A.shape
        bd_default, bn_default = default_block_sizes(d, n, parallel=threads > 1)
        self.b_d = bd_default if b_d is None else check_positive_int(b_d, "b_d")
        self.b_n = bn_default if b_n is None else check_positive_int(b_n, "b_n")

        self.health = RunHealth()

        # Thread-private RNG / stopwatch contexts, registered for the
        # final stats aggregation.
        self._tls = threading.local()
        self._ctx_lock = threading.Lock()
        self._worker_counter = 0
        self._all_rngs: list[SketchingRNG] = []
        self._all_watches: list[Stopwatch] = []

        # Commit bookkeeping for the guarded path (speculative duplicates
        # from straggler re-execution race to claim each block).
        self._claim_lock = threading.Lock()
        self._claimed: set[int] = set()

        self._colabs: np.ndarray | None = None
        self._entry_bound = 0.0
        self.Ahat: np.ndarray | None = None
        self._block_by_offset: dict[int, object] = {}

        # Row-block completion tracking for checkpoint barriers: a row
        # block is complete when all its column tiles have committed, at
        # which point its rows of Ahat are final (pre-post_scale) and safe
        # to persist while other row blocks are still being computed.
        self._row_pending: dict[int, int] = {}
        self._completed_rows: set[int] = set()
        self._rows_since_snapshot = 0

    # -- durable checkpoints ------------------------------------------------

    def fingerprint(self) -> dict:
        """Immutable run identity for checkpoint compatibility checks."""
        from ..persist.snapshot import run_fingerprint

        rng = self.rng_factory(0)
        return run_fingerprint(
            mode="blocked", d=self.d, n=self.A.shape[1], b_d=self.b_d,
            b_n=self.b_n, kernel=self.kernel, backend=self.backend.name,
            rng_kind=rng.family, seed=rng.seed,
            distribution=rng.dist.name,
        )

    def _maybe_checkpoint(self, *, force: bool = False) -> None:
        """Snapshot the completed row blocks if a checkpoint is due.

        Called by whichever worker completes a row block; the manager
        serializes concurrent writers.  Row blocks still in flight are
        excluded, so every persisted byte is final.
        """
        if self.checkpoint is None:
            return
        with self._claim_lock:
            if self._rows_since_snapshot == 0:
                return
            if not force and self._rows_since_snapshot < self.checkpoint_every:
                return
            rows = sorted(self._completed_rows)
            self._rows_since_snapshot = 0
        blocks = [(r, self.Ahat[r:r + min(self.b_d, self.d - r), :])
                  for r in rows]
        self.checkpoint.save(blocks, self.fingerprint(),
                             {"completed_rows": rows})

    def _resume_from_snapshot(self, tasks: list[Task]) -> list[Task]:
        """Restore completed row blocks; return the tasks still to run."""
        from ..persist.resume import latest_verified_snapshot
        from ..persist.snapshot import check_fingerprint

        snap = latest_verified_snapshot(self.checkpoint.directory)
        if snap is None:
            return tasks
        check_fingerprint(snap.fingerprint, self.fingerprint())
        completed = {int(r) for r in snap.state.get("completed_rows", [])}
        if not completed:
            return tasks
        arr = snap.load_array(verify=False)  # verified at load
        for r in sorted(completed):
            d1 = min(self.b_d, self.d - r)
            self.Ahat[r:r + d1, :] = arr[r:r + d1, :]
        self._completed_rows = set(completed)
        self.resumed_from = snap.path
        return [t for t in tasks if t[0] not in completed]

    # -- shared setup -----------------------------------------------------

    def _prepare(self) -> tuple[list[Task], float]:
        """Build the blocked structure (if needed) and the task list."""
        m, n = self.A.shape
        conversion_seconds = 0.0
        if self.kernel == "algo4" and self.blocked is None:
            self.blocked, conv = csc_to_blocked_csr(self.A, self.b_n,
                                                    threads=self.threads)
            conversion_seconds = conv.seconds
        if self.kernel == "algo4":
            assert self.blocked is not None
            for j0, blk in self.blocked.iter_blocks():
                self._block_by_offset[j0] = blk
        tasks = list(iter_block_tasks(self.d, n, self.b_d, self.b_n))
        self.Ahat = np.zeros((self.d, n), dtype=np.float64)
        if self._resume_requested:
            tasks = self._resume_from_snapshot(tasks)
        for i, _d1, _j, _n1 in tasks:
            self._row_pending[i] = self._row_pending.get(i, 0) + 1
        return tasks, conversion_seconds

    def _thread_ctx(self) -> tuple[SketchingRNG, Stopwatch, KernelWorkspace]:
        tls = self._tls
        if not hasattr(tls, "rng"):
            with self._ctx_lock:
                tls.worker = self._worker_counter
                self._worker_counter += 1
            tls.rng = self.rng_factory(tls.worker)
            tls.watch = Stopwatch()
            tls.workspace = KernelWorkspace()
            with self._ctx_lock:
                self._all_rngs.append(tls.rng)
                self._all_watches.append(tls.watch)
        return tls.rng, tls.watch, tls.workspace

    def _fresh_rng(self) -> SketchingRNG:
        """Fresh RNG re-derivation for a retry (discards any corrupted
        checkpoint state; safe because generators are coordinate-keyed)."""
        tls = self._tls
        rng = self.rng_factory(getattr(tls, "worker", 0))
        tls.rng = rng
        with self._ctx_lock:
            self._all_rngs.append(rng)
        return rng

    def _compute(self, task: Task, kernel: str, rng: SketchingRNG,
                 watch: Stopwatch, out: np.ndarray,
                 workspace: KernelWorkspace | None = None) -> None:
        """Run one kernel invocation for *task* into *out* (pre-zeroed)."""
        i, d1, j, n1 = task
        if kernel == "algo3":
            self.backend.algo3_block(out, self.A.col_block(j, j + n1), i,
                                     rng, watch=watch, workspace=workspace)
        else:
            blk = self._block_by_offset.get(j)
            if blk is None or blk.shape[1] != n1:
                raise ConfigError(
                    "blocked CSR partition does not match b_n task grid"
                )
            self.backend.algo4_block(out, blk, i, rng, watch=watch,
                                     workspace=workspace)

    def _finish_stats(self, tasks: list[Task], conversion_seconds: float,
                      total_seconds: float) -> KernelStats:
        stats = KernelStats(
            kernel=f"{self.kernel}-parallel",
            sample_seconds=sum(w.total("sample") for w in self._all_watches),
            compute_seconds=sum(w.total("compute") for w in self._all_watches),
            conversion_seconds=conversion_seconds,
            total_seconds=total_seconds,
            samples_generated=sum(r.samples_generated for r in self._all_rngs),
            flops=spmm_flops(self.d, self.A.nnz),
            blocks_processed=len(tasks),
            d=self.d, b_d=self.b_d, b_n=self.b_n,
            extra={"threads": self.threads, "strategy": self.strategy,
                   "resilient": self.guarded, "backend": self.backend.name,
                   "jit_compile_seconds": self.jit_compile_seconds},
            health=self.health if self.guarded else None,
        )
        if self.checkpoint is not None:
            stats.extra["snapshots_written"] = self.checkpoint.snapshots_written
            stats.extra["resumed_from"] = (str(self.resumed_from)
                                           if self.resumed_from else None)
        return stats

    def _post_scale(self) -> float:
        if self._all_rngs:
            return self._all_rngs[0].post_scale
        return self.rng_factory(0).post_scale

    # -- fast path (seed behaviour, zero resilience overhead) --------------

    def _run_fast(self, tasks: list[Task]) -> None:
        costs = (estimate_task_costs(self.A, tasks)
                 if self.strategy == "guided" else None)
        buckets = partition_tasks(tasks, self.threads, self.strategy, costs)

        def run_worker(w: int) -> None:
            rng, watch = self.rng_factory(w), Stopwatch()
            workspace = KernelWorkspace()
            with self._ctx_lock:
                self._all_rngs.append(rng)
                self._all_watches.append(watch)
            for task in buckets[w]:
                i, d1, j, n1 = task
                view = self.Ahat[i:i + d1, j:j + n1]
                self._compute(task, self.kernel, rng, watch, view, workspace)

        if self.threads == 1:
            run_worker(0)
        else:
            with ThreadPoolExecutor(max_workers=self.threads) as pool:
                futures = [pool.submit(run_worker, w)
                           for w in range(self.threads)]
                for f in futures:
                    f.result()  # propagate worker exceptions

    # -- guarded path ------------------------------------------------------

    def _bound_for(self, task: Task) -> float | None:
        if self._colabs is None:
            return None
        i, d1, j, n1 = task
        seg = self._colabs[j:j + n1]
        mx = float(seg.max()) if seg.size else 0.0
        return self.resilience.guardrail_bound_factor * self._entry_bound * mx

    def _note_failure(self, key: tuple[int, int], attempt: int, kind: str,
                      message: str, context: str) -> None:
        with self._ctx_lock:
            self.health.failures.append(TaskFailure(
                task=key, attempt=attempt, kind=kind,
                message=message, context=context))

    def _commit(self, idx: int, task: Task, target: np.ndarray,
                use_scratch: bool) -> None:
        i, d1, j, n1 = task
        row_done = False
        with self._claim_lock:
            if idx in self._claimed:
                return  # a speculative duplicate won the race; discard
            self._claimed.add(idx)
            if use_scratch:
                self.Ahat[i:i + d1, j:j + n1] = target
            if self._row_pending:
                left = self._row_pending[i] = self._row_pending[i] - 1
                if left == 0:
                    self._completed_rows.add(i)
                    self._rows_since_snapshot += 1
                    row_done = True
        with self._ctx_lock:
            self.health.completed += 1
        if row_done:
            self._maybe_checkpoint()

    def _run_task(self, idx: int, task: Task, context: str) -> None:
        """Retry / guardrail / kernel-fallback state machine for one task.

        Raises :class:`SketchQualityError` (guardrail policy ``raise``) or
        :class:`RetryExhaustedError` when every recovery avenue within the
        task is spent; the driver may still degrade parallel→serial.
        """
        cfg = self.resilience
        i, d1, j, n1 = task
        key = (i, j)
        with self._claim_lock:
            if idx in self._claimed:
                return  # already committed by a speculative duplicate
        view = self.Ahat[i:i + d1, j:j + n1]
        # Scratch buffers are only needed when speculative duplicates can
        # race on the same block (deadline-triggered re-execution).
        use_scratch = (cfg.task_timeout is not None and self.threads > 1)
        rng, watch, workspace = self._thread_ctx()

        kernels = [self.kernel]
        if cfg.degradation.kernel_fallback and self.kernel == "algo4":
            kernels.append("algo3")
        budget = 1 + cfg.max_retries
        attempt_no = 0
        had_violation = False

        for ki, kname in enumerate(kernels):
            if ki > 0:
                with self._ctx_lock:
                    self.health.kernel_fallbacks += 1
                    self.health.record(
                        f"task {key}: {kernels[ki - 1]} exhausted its "
                        f"retries; degrading to pattern-oblivious {kname}")
            for local in range(budget):
                attempt_no += 1
                with self._ctx_lock:
                    self.health.attempts += 1
                # Per-thread workspace scratch: speculative duplicates of
                # the same block run in different threads, so the scratch
                # targets never alias.
                target = (workspace.get("executor.scratch", (d1, n1))
                          if use_scratch else view)
                target[:] = 0.0
                failure: tuple[str, str] | None = None
                try:
                    use_rng = rng
                    if self.injector is not None:
                        self.injector.on_task_start(key, kname, context,
                                                    attempt_no)
                        use_rng = self.injector.rng_for(key, kname, context,
                                                       attempt_no, rng)
                    self._compute(task, kname, use_rng, watch, target,
                                  workspace)
                    if self.injector is not None:
                        self.injector.on_block_computed(key, kname, context,
                                                        attempt_no, target)
                    violation = (validate_block(target, self._bound_for(task))
                                 if cfg.guardrail is not None else None)
                    if violation is None:
                        self._commit(idx, task, target, use_scratch)
                        if had_violation and cfg.guardrail == "recompute":
                            with self._ctx_lock:
                                self.health.corrupted_blocks_repaired += 1
                                self.health.record(
                                    f"task {key}: corrupted block repaired "
                                    f"by recompute (attempt {attempt_no})")
                        return
                    with self._ctx_lock:
                        self.health.guardrail_violations += 1
                    if cfg.guardrail == "raise":
                        raise SketchQualityError(
                            f"task {key}: {violation} values in computed "
                            f"block (guardrail policy 'raise')")
                    if cfg.guardrail == "mask":
                        target[:] = 0.0
                        self._commit(idx, task, target, use_scratch)
                        with self._ctx_lock:
                            self.health.masked_blocks += 1
                            self.health.record(
                                f"task {key}: {violation} block masked to "
                                f"zero (guardrail policy 'mask')")
                        return
                    # policy 'recompute': count as a failed attempt.
                    had_violation = True
                    failure = (f"guardrail-{violation}",
                               f"{violation} values in computed block")
                except SketchQualityError:
                    raise
                except (ConfigError, ShapeError):
                    raise  # configuration bugs are not transient: no retry
                except InjectedCrashError:
                    # A torn_write fault fired while _commit checkpointed:
                    # it simulates process death, so retrying it as a
                    # transient task failure would defeat the test.
                    raise
                except Exception as exc:  # noqa: BLE001 - fault boundary
                    failure = (type(exc).__name__, str(exc))
                self._note_failure(key, attempt_no, failure[0], failure[1],
                                   context)
                if local + 1 < budget:
                    with self._ctx_lock:
                        self.health.retries += 1
                        self.health.record(
                            f"task {key}: attempt {attempt_no} failed "
                            f"({failure[0]}); retrying with fresh RNG")
                    rng = self._fresh_rng()
        raise RetryExhaustedError(
            f"task {key} failed after {attempt_no} attempts "
            f"({', '.join(k for k in kernels)}); see RunHealth.failures")

    def _run_guarded(self, tasks: list[Task]) -> None:
        cfg = self.resilience
        self.health.tasks = len(tasks)
        if cfg.guardrail is not None:
            self._colabs = column_abs_sums(self.A)
            self._entry_bound = entry_abs_bound(self.rng_factory(0).dist)

        if self.threads == 1:
            for idx, task in enumerate(tasks):
                self._run_task(idx, task, "serial")
            return

        failed: list[tuple[int, Task, TaskFailedError]] = []
        with ThreadPoolExecutor(max_workers=self.threads) as pool:
            futures = [pool.submit(self._run_task, idx, task, "parallel")
                       for idx, task in enumerate(tasks)]
            for idx, (fut, task) in enumerate(zip(futures, tasks)):
                key = (task[0], task[2])
                try:
                    fut.result(timeout=cfg.task_timeout)
                except FuturesTimeoutError:
                    with self._ctx_lock:
                        self.health.timeouts += 1
                    if not cfg.reexecute_stragglers:
                        raise TaskTimeoutError(
                            f"task {key} missed its {cfg.task_timeout}s "
                            f"deadline and straggler re-execution is "
                            f"disabled") from None
                    with self._ctx_lock:
                        self.health.stragglers_reexecuted += 1
                        self.health.record(
                            f"task {key}: straggler past the "
                            f"{cfg.task_timeout}s deadline; speculatively "
                            f"re-executing in the driver thread")
                    self._run_task(idx, task, "serial")
                except TaskFailedError as exc:
                    failed.append((idx, task, exc))
        if failed:
            if not cfg.degradation.serial_fallback:
                raise failed[0][2]
            with self._ctx_lock:
                self.health.degraded_to_serial = True
                self.health.record(
                    f"{len(failed)} task(s) unrecoverable in the pool; "
                    f"degrading parallel -> serial re-execution")
            for idx, task, _exc in failed:
                self._run_task(idx, task, "serial")

    # -- entry point -------------------------------------------------------

    def run(self) -> tuple[np.ndarray, KernelStats]:
        """Execute the sketch; returns ``(Ahat, stats)``.

        ``stats.health`` carries the :class:`RunHealth` report on guarded
        runs (``None`` on the fast path).
        """
        tasks, conversion_seconds = self._prepare()
        # JIT backends compile outside the timed region (and nogil fused
        # kernels then overlap end-to-end across the worker threads).
        self.jit_compile_seconds = self.backend.warmup(
            self.rng_factory(0), self.Ahat.dtype)
        if self.guarded:
            self.health.backend = self.backend.name
        with Timer() as total:
            if self.guarded:
                self._run_guarded(tasks)
            else:
                self._run_fast(tasks)
            # Final snapshot (if one is pending) captures the completed
            # accumulation *before* post-scaling — the stored payload is
            # always the raw accumulator state, like an interrupted run's.
            self._maybe_checkpoint(force=True)
            post = self._post_scale()
            if post != 1.0:
                self.Ahat *= post
        return self.Ahat, self._finish_stats(tasks, conversion_seconds,
                                             total.elapsed)


def parallel_sketch_spmm(
    A: CSCMatrix,
    d: int,
    rng_factory: RngFactory,
    *,
    threads: int,
    kernel: str = "algo3",
    b_d: int | None = None,
    b_n: int | None = None,
    strategy: str = "static",
    blocked: BlockedCSR | None = None,
    resilience: ResilienceConfig | None = None,
    injector: "FaultInjector | None" = None,
    backend: "str | KernelBackend | None" = None,
    checkpoint: "object | None" = None,
    checkpoint_dir=None,
    checkpoint_every: int = 1,
    checkpoint_keep: int = 2,
    resume: bool = False,
) -> tuple[np.ndarray, KernelStats]:
    """Compute ``Ahat = S @ A`` using *threads* workers over block tasks.

    Parameters
    ----------
    rng_factory:
        Called once per worker with the worker index; must return
        independent :class:`SketchingRNG` objects configured with the
        *same* seed/distribution (worker index is provided only for
        callers that want private instrumentation).
    strategy:
        Task partitioning (see :func:`repro.parallel.partition_tasks`).
        On the guarded (resilient) path tasks are submitted individually
        in Algorithm 1 order and *strategy* only affects accounting.
    blocked:
        Pre-built blocked CSR (Algorithm 4); built here (and timed) when
        absent.
    resilience, injector:
        Fault handling and fault injection — see
        :class:`ResilientExecutor`.  Both ``None`` (the default) selects
        the original zero-overhead path.
    backend:
        Kernel backend (name, instance, or ``None``/``"auto"``; see
        :func:`repro.kernels.backends.resolve_backend`).  With the
        ``numba`` backend the fused ``nogil`` kernels release the GIL for
        entire block tasks, so worker threads overlap fully instead of
        only inside NumPy calls.
    checkpoint, checkpoint_dir, checkpoint_every, checkpoint_keep, resume:
        Durable crash recovery (see :mod:`repro.persist`).  A snapshot of
        all *completed* row blocks is written atomically every
        *checkpoint_every* row-block completions (and once at the end,
        pre-``post_scale``).  ``resume=True`` restores the newest
        verified-good snapshot from the directory — its fingerprint must
        match this run exactly (same ``d``/blocking/kernel/backend/RNG)
        or :class:`~repro.errors.CheckpointMismatchError` is raised — and
        skips the tasks of already-completed row blocks.  Checkpointing
        selects the guarded execution path.

    Returns
    -------
    (Ahat, stats):
        stats buckets aggregate across workers (sample/compute seconds are
        summed CPU-seconds, not wall time; ``total_seconds`` is wall time);
        ``stats.health`` reports fault recovery on guarded runs.
    """
    executor = ResilientExecutor(
        A, d, rng_factory, threads=threads, kernel=kernel, b_d=b_d, b_n=b_n,
        strategy=strategy, blocked=blocked, resilience=resilience,
        injector=injector, backend=backend, checkpoint=checkpoint,
        checkpoint_dir=checkpoint_dir, checkpoint_every=checkpoint_every,
        checkpoint_keep=checkpoint_keep, resume=resume,
    )
    return executor.run()
