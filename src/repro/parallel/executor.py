"""Plan-driven execution engine for the blocked sketching SpMM.

:class:`PlanExecutionEngine` is the ``"engine"`` driver of
:class:`repro.plan.Runtime`: it executes a compiled
:class:`~repro.plan.SketchPlan` over Algorithm 1's block tasks with real
shared-memory parallelism, optional fault handling, and durable
checkpoints.  Every task writes a disjoint block of ``Ahat`` and reads
only immutable inputs, so the execution is race-free by construction;
each worker gets its *own* :class:`~repro.rng.SketchingRNG` instance
(from a factory), so RNG state and instrumentation counters are
thread-private.

Reproducibility across thread counts: both generator families key their
output on ``(seed, block row offset, sparse row)``, never on which thread
runs the block, so the computed ``Ahat`` is bit-identical for any thread
count and any partition strategy — the property tested in
``tests/parallel``.  (This mirrors the paper's Section IV-C discussion:
counter-based RNGs give thread-independent sketches; our checkpointed
xoshiro is also thread-independent *given fixed blocking* because
checkpoints are keyed by coordinates.)

The same coordinate-keying makes the engine *resilient*: a failed block
task can be recomputed from a fresh generator and the result is
bit-identical to a fault-free run.  The guarded path exploits this with
per-task bounded retries, per-task deadlines with straggler
re-execution, numerical guardrails (NaN/Inf/magnitude checks with
``raise``/``recompute``/``mask`` policies), and a
:class:`~repro.parallel.resilience.DegradationPolicy` that falls back
algo4→algo3 and parallel→serial after repeated failures — every decision
recorded in a :class:`~repro.parallel.resilience.RunHealth` report
attached to the returned :class:`~repro.kernels.KernelStats`.  When no
resilience options, no checkpoints, and no fault-hook subscribers are
present, the engine takes the original zero-overhead path.

Observation happens through the plan layer's event bus rather than
callbacks threaded through the internals: the engine emits
``block_start``/``block_done``, ``retry``, ``degraded``, and
``checkpoint_written`` lifecycle events, and fires the
``task_start``/``rng_request``/``block_computed`` hook events that fault
injection subscribes to (see :meth:`repro.faults.FaultInjector.register`).

:class:`ResilientExecutor` and :func:`parallel_sketch_spmm` remain the
public entry points, now as thin shims that compile a plan from their
keyword arguments and delegate to ``Runtime.run(plan)``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..errors import (
    ConfigError,
    RetryExhaustedError,
    ShapeError,
    SketchQualityError,
    TaskFailedError,
    TaskTimeoutError,
)
from ..faults.plan import InjectedCrashError
from ..kernels.backends import (
    KernelBackend,
    KernelWorkspace,
    resolve_backend,
)
from ..kernels.blocking import default_block_sizes, iter_block_tasks
from ..kernels.stats import KernelStats
from ..plan.events import (
    BLOCK_COMPUTED,
    BLOCK_DONE,
    BLOCK_START,
    CHECKPOINT_WRITTEN,
    DEGRADED,
    FAULT_HOOK_EVENTS,
    RETRY,
    RNG_REQUEST,
    TASK_START,
    EventBus,
)
from ..plan.policy import PersistencePolicy, warn_deprecated_kwargs
from ..plan.spec import ProblemSpec, RngSpec, SketchPlan
from ..rng.base import SketchingRNG
from ..sparse.blocked_csr import BlockedCSR
from ..sparse.convert import csc_to_blocked_csr
from ..sparse.csc import CSCMatrix
from ..utils.flops import spmm_flops
from ..utils.timing import Stopwatch, Timer
from ..utils.validation import check_positive_int
from .resilience import (
    ResilienceConfig,
    RunHealth,
    TaskFailure,
    backoff_seconds,
    column_abs_sums,
    entry_abs_bound,
    validate_block,
)
from .scheduler import estimate_task_costs, partition_tasks

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.injector import FaultInjector

__all__ = ["PlanExecutionEngine", "ResilientExecutor", "parallel_sketch_spmm"]

RngFactory = Callable[[int], SketchingRNG]

Task = tuple[int, int, int, int]  # (i, d1, j, n1)


class PlanExecutionEngine:
    """Executes a compiled :class:`~repro.plan.SketchPlan` over block tasks.

    Parameters
    ----------
    plan:
        The decision record: ``d``, kernel, blocking, backend, threads,
        strategy, resilience policy, persistence policy.  The kernel
        must be ``algo3`` or ``algo4`` (``pregen`` has no block tasks
        and runs on the runtime's pregen driver).
    A, rng_factory:
        The input matrix and the per-worker generator factory.
    bus:
        The :class:`~repro.plan.EventBus` lifecycle and fault-hook
        events fire on.  Hook subscriptions are snapshotted at
        construction: their presence selects the guarded path, exactly
        as passing ``injector=`` used to.
    blocked:
        Pre-built blocked CSR (Algorithm 4); built here (and timed) when
        absent.
    injector:
        Passed through to the checkpoint manager's storage-fault hooks
        only; task-level injection reaches the engine via bus
        subscriptions (:meth:`repro.faults.FaultInjector.register`).
    """

    def __init__(
        self,
        plan: SketchPlan,
        A: CSCMatrix,
        rng_factory: RngFactory,
        *,
        bus: EventBus | None = None,
        blocked: BlockedCSR | None = None,
        injector: "FaultInjector | None" = None,
    ) -> None:
        if plan.kernel not in ("algo3", "algo4"):
            raise ConfigError(
                f"kernel must be 'algo3' or 'algo4', got {plan.kernel!r}")
        self.plan = plan
        self.A = A
        self.d = plan.problem.d
        # Batched plans accumulate a (batch, d, n) stack; every block
        # task then covers the same (i, j) tile of *all* sketches at
        # once (the batch axis is never split across tasks — that is
        # what amortizes the RNG pipeline).
        self.batch = plan.problem.batch
        self.threads = plan.threads
        self.kernel = plan.kernel
        self.b_d = plan.b_d
        self.b_n = plan.b_n
        self.strategy = plan.strategy
        self.backend = resolve_backend(plan.backend)
        self.jit_compile_seconds = 0.0
        self.rng_factory = rng_factory
        self.blocked = blocked
        self.bus = bus if bus is not None else EventBus()
        # Hook subscriptions are sampled once: the injector registers
        # before the run starts, and per-attempt has_subscribers calls
        # would put a lock acquisition on the hot path.
        self._hooked = self.bus.has_subscribers(*FAULT_HOOK_EVENTS)
        self._track_blocks = self.bus.has_subscribers(BLOCK_START, BLOCK_DONE)

        self.checkpoint = plan.persistence.build_manager(injector)
        self.checkpoint_every = plan.persistence.every
        self._resume_requested = plan.persistence.resume
        self.resumed_from = None
        # Durable checkpoints need the per-task commit hooks, so their
        # presence selects the guarded path even without a resilience
        # policy or fault-hook subscribers.
        self.guarded = (plan.resilience is not None or self._hooked
                        or self.checkpoint is not None)
        self.resilience = (plan.resilience if plan.resilience is not None
                           else ResilienceConfig()) if self.guarded else None

        self.health = RunHealth()

        # Thread-private RNG / stopwatch contexts, registered for the
        # final stats aggregation.
        self._tls = threading.local()
        self._ctx_lock = threading.Lock()
        self._worker_counter = 0
        self._all_rngs: list[SketchingRNG] = []
        self._all_watches: list[Stopwatch] = []

        # Commit bookkeeping for the guarded path (speculative duplicates
        # from straggler re-execution race to claim each block).
        self._claim_lock = threading.Lock()
        self._claimed: set[int] = set()

        self._colabs: np.ndarray | None = None
        self._entry_bound = 0.0
        self.Ahat: np.ndarray | None = None
        self._block_by_offset: dict[int, object] = {}

        # Row-block completion tracking for checkpoint barriers: a row
        # block is complete when all its column tiles have committed, at
        # which point its rows of Ahat are final (pre-post_scale) and safe
        # to persist while other row blocks are still being computed.
        self._row_pending: dict[int, int] = {}
        self._completed_rows: set[int] = set()
        self._rows_since_snapshot = 0

    # -- durable checkpoints ------------------------------------------------

    def fingerprint(self) -> dict:
        """Immutable run identity for checkpoint compatibility checks.

        Derived from the *live* generator factory rather than the plan's
        declarative RNG spec, so executor callers with custom factories
        fingerprint what actually ran.  Per-shard sub-plans additionally
        stamp their global column range so two equal-width shards can
        never adopt each other's snapshots.
        """
        from ..persist.snapshot import run_fingerprint

        rng = self.rng_factory(0)
        fp = run_fingerprint(
            mode="blocked", d=self.d, n=self.A.shape[1], b_d=self.b_d,
            b_n=self.b_n, kernel=self.kernel, backend=self.backend.name,
            rng_kind=rng.family, seed=rng.seed,
            distribution=rng.dist.name,
        )
        if self.plan.shard is not None:
            fp["shard_col_start"] = int(self.plan.shard.col_start)
            fp["shard_col_stop"] = int(self.plan.shard.col_stop)
        return fp

    def _maybe_checkpoint(self, *, force: bool = False) -> None:
        """Snapshot the completed row blocks if a checkpoint is due.

        Called by whichever worker completes a row block; the manager
        serializes concurrent writers.  Row blocks still in flight are
        excluded, so every persisted byte is final.
        """
        if self.checkpoint is None:
            return
        with self._claim_lock:
            if self._rows_since_snapshot == 0:
                return
            if not force and self._rows_since_snapshot < self.checkpoint_every:
                return
            rows = sorted(self._completed_rows)
            self._rows_since_snapshot = 0
        blocks = [(r, self.Ahat[r:r + min(self.b_d, self.d - r), :])
                  for r in rows]
        with Timer() as write:
            path = self.checkpoint.save(blocks, self.fingerprint(),
                                        {"completed_rows": rows})
        self.bus.emit(CHECKPOINT_WRITTEN, path=path, rows=rows,
                      snapshots_written=self.checkpoint.snapshots_written,
                      seconds=write.elapsed)

    def _resume_from_snapshot(self, tasks: list[Task]) -> list[Task]:
        """Restore completed row blocks; return the tasks still to run."""
        from ..persist.resume import latest_verified_snapshot
        from ..persist.snapshot import FINGERPRINT_KEYS, check_fingerprint

        snap = latest_verified_snapshot(self.checkpoint.directory)
        if snap is None:
            return tasks
        keys = FINGERPRINT_KEYS
        if self.plan.shard is not None:
            keys = tuple(keys) + ("shard_col_start", "shard_col_stop")
        check_fingerprint(snap.fingerprint, self.fingerprint(), keys=keys)
        completed = {int(r) for r in snap.state.get("completed_rows", [])}
        if not completed:
            return tasks
        arr = snap.load_array(verify=False)  # verified at load
        for r in sorted(completed):
            d1 = min(self.b_d, self.d - r)
            self.Ahat[r:r + d1, :] = arr[r:r + d1, :]
        self._completed_rows = set(completed)
        self.resumed_from = snap.path
        return [t for t in tasks if t[0] not in completed]

    # -- shared setup -----------------------------------------------------

    def _prepare(self) -> tuple[list[Task], float]:
        """Build the blocked structure (if needed) and the task list."""
        m, n = self.A.shape
        conversion_seconds = 0.0
        if self.kernel == "algo4" and self.blocked is None:
            self.blocked, conv = csc_to_blocked_csr(self.A, self.b_n,
                                                    threads=self.threads)
            conversion_seconds = conv.seconds
        if self.kernel == "algo4":
            assert self.blocked is not None
            for j0, blk in self.blocked.iter_blocks():
                self._block_by_offset[j0] = blk
        tasks = list(iter_block_tasks(self.d, n, self.b_d, self.b_n))
        shape = ((self.batch, self.d, n) if self.batch > 1
                 else (self.d, n))
        self.Ahat = np.zeros(shape, dtype=np.float64)
        if self._resume_requested:
            tasks = self._resume_from_snapshot(tasks)
        for i, _d1, _j, _n1 in tasks:
            self._row_pending[i] = self._row_pending.get(i, 0) + 1
        return tasks, conversion_seconds

    def _thread_ctx(self) -> tuple[SketchingRNG, Stopwatch, KernelWorkspace]:
        tls = self._tls
        if not hasattr(tls, "rng"):
            with self._ctx_lock:
                tls.worker = self._worker_counter
                self._worker_counter += 1
            tls.rng = self.rng_factory(tls.worker)
            tls.watch = Stopwatch()
            tls.workspace = KernelWorkspace()
            with self._ctx_lock:
                self._all_rngs.append(tls.rng)
                self._all_watches.append(tls.watch)
        return tls.rng, tls.watch, tls.workspace

    def _fresh_rng(self) -> SketchingRNG:
        """Fresh RNG re-derivation for a retry (discards any corrupted
        checkpoint state; safe because generators are coordinate-keyed)."""
        tls = self._tls
        rng = self.rng_factory(getattr(tls, "worker", 0))
        tls.rng = rng
        with self._ctx_lock:
            self._all_rngs.append(rng)
        return rng

    def _view(self, task: Task) -> np.ndarray:
        """The output tile for *task*: every sketch's (i, j) block."""
        i, d1, j, n1 = task
        if self.batch > 1:
            return self.Ahat[:, i:i + d1, j:j + n1]
        return self.Ahat[i:i + d1, j:j + n1]

    def _compute(self, task: Task, kernel: str, rng: SketchingRNG,
                 watch: Stopwatch, out: np.ndarray,
                 workspace: KernelWorkspace | None = None) -> None:
        """Run one kernel invocation for *task* into *out* (pre-zeroed)."""
        i, d1, j, n1 = task
        if self.batch > 1:
            rng = self._as_batched(rng)
            if kernel == "algo3":
                self.backend.algo3_block_batched(
                    out, self.A.col_block(j, j + n1), i, rng, watch=watch,
                    workspace=workspace)
            else:
                blk = self._block_by_offset.get(j)
                if blk is None or blk.shape[1] != n1:
                    raise ConfigError(
                        "blocked CSR partition does not match b_n task grid"
                    )
                self.backend.algo4_block_batched(out, blk, i, rng,
                                                 watch=watch,
                                                 workspace=workspace)
            return
        if kernel == "algo3":
            self.backend.algo3_block(out, self.A.col_block(j, j + n1), i,
                                     rng, watch=watch, workspace=workspace)
        else:
            blk = self._block_by_offset.get(j)
            if blk is None or blk.shape[1] != n1:
                raise ConfigError(
                    "blocked CSR partition does not match b_n task grid"
                )
            self.backend.algo4_block(out, blk, i, rng, watch=watch,
                                     workspace=workspace)

    def _as_batched(self, rng):
        """Coerce *rng* to the batched contract.

        The plan's own factory already returns a
        :class:`~repro.rng.batched.BatchedSketchRNG`; a fault hook may
        swap in a plain single-sketch generator (e.g. the junk probe),
        which is replicated across the batch — the fault then corrupts
        every slice of the tile, the batched analogue of corrupting the
        single-sketch block.
        """
        if hasattr(rng, "column_block_stack"):
            return rng
        from ..rng.batched import BatchedSketchRNG

        return BatchedSketchRNG([rng] * self.batch)

    def _finish_stats(self, tasks: list[Task], conversion_seconds: float,
                      total_seconds: float) -> KernelStats:
        # Two time axes: per-worker busy seconds sum (cpu_seconds) vs.
        # the driver's wall clock — with threads > 1 the former exceeds
        # the latter, and derived rates must not mix them up.
        cpu_seconds = sum(w.total() for w in self._all_watches)
        stats = KernelStats(
            kernel=f"{self.kernel}-parallel",
            sample_seconds=sum(w.total("sample") for w in self._all_watches),
            compute_seconds=sum(w.total("compute") for w in self._all_watches),
            conversion_seconds=conversion_seconds,
            total_seconds=total_seconds,
            cpu_seconds=cpu_seconds,
            wall_seconds=total_seconds,
            samples_generated=sum(r.samples_generated for r in self._all_rngs),
            flops=self.batch * spmm_flops(self.d, self.A.nnz),
            blocks_processed=len(tasks),
            d=self.d, b_d=self.b_d, b_n=self.b_n,
            extra={"threads": self.threads, "strategy": self.strategy,
                   "resilient": self.guarded, "backend": self.backend.name,
                   "jit_compile_seconds": self.jit_compile_seconds,
                   **({"batch": self.batch} if self.batch > 1 else {})},
            health=self.health if self.guarded else None,
        )
        if self.checkpoint is not None:
            stats.extra["snapshots_written"] = self.checkpoint.snapshots_written
            stats.extra["resumed_from"] = (str(self.resumed_from)
                                           if self.resumed_from else None)
        return stats

    def _post_scale(self) -> float:
        if self._all_rngs:
            return self._all_rngs[0].post_scale
        return self.rng_factory(0).post_scale

    # -- fast path (seed behaviour, zero resilience overhead) --------------

    def _run_fast(self, tasks: list[Task]) -> None:
        costs = (estimate_task_costs(self.A, tasks)
                 if self.strategy == "guided" else None)
        buckets = partition_tasks(tasks, self.threads, self.strategy, costs)
        track = self._track_blocks

        def run_worker(w: int) -> None:
            rng, watch = self.rng_factory(w), Stopwatch()
            workspace = KernelWorkspace()
            with self._ctx_lock:
                self._all_rngs.append(rng)
                self._all_watches.append(watch)
            for task in buckets[w]:
                i, d1, j, n1 = task
                if track:
                    self.bus.emit(BLOCK_START, task=(i, j), i=i, d1=d1,
                                  j=j, n1=n1, kernel=self.kernel)
                view = self._view(task)
                self._compute(task, self.kernel, rng, watch, view, workspace)
                if track:
                    self.bus.emit(BLOCK_DONE, task=(i, j), i=i, d1=d1,
                                  j=j, n1=n1, kernel=self.kernel)

        if self.threads == 1:
            run_worker(0)
        else:
            with ThreadPoolExecutor(max_workers=self.threads) as pool:
                futures = [pool.submit(run_worker, w)
                           for w in range(self.threads)]
                for f in futures:
                    f.result()  # propagate worker exceptions

    # -- guarded path ------------------------------------------------------

    def _bound_for(self, task: Task) -> float | None:
        if self._colabs is None:
            return None
        i, d1, j, n1 = task
        seg = self._colabs[j:j + n1]
        mx = float(seg.max()) if seg.size else 0.0
        return self.resilience.guardrail_bound_factor * self._entry_bound * mx

    def _note_failure(self, key: tuple[int, int], attempt: int, kind: str,
                      message: str, context: str) -> None:
        with self._ctx_lock:
            self.health.failures.append(TaskFailure(
                task=key, attempt=attempt, kind=kind,
                message=message, context=context))

    def _commit(self, idx: int, task: Task, target: np.ndarray,
                use_scratch: bool) -> None:
        i, d1, j, n1 = task
        row_done = False
        with self._claim_lock:
            if idx in self._claimed:
                return  # a speculative duplicate won the race; discard
            self._claimed.add(idx)
            if use_scratch:
                self._view(task)[...] = target
            if self._row_pending:
                left = self._row_pending[i] = self._row_pending[i] - 1
                if left == 0:
                    self._completed_rows.add(i)
                    self._rows_since_snapshot += 1
                    row_done = True
        with self._ctx_lock:
            self.health.completed += 1
        if self._track_blocks:
            self.bus.emit(BLOCK_DONE, task=(i, j), i=i, d1=d1, j=j, n1=n1,
                          kernel=self.kernel)
        if row_done:
            self._maybe_checkpoint()

    def _run_task(self, idx: int, task: Task, context: str) -> None:
        """Retry / guardrail / kernel-fallback state machine for one task.

        Raises :class:`SketchQualityError` (guardrail policy ``raise``) or
        :class:`RetryExhaustedError` when every recovery avenue within the
        task is spent; the driver may still degrade parallel→serial.
        """
        cfg = self.resilience
        i, d1, j, n1 = task
        key = (i, j)
        with self._claim_lock:
            if idx in self._claimed:
                return  # already committed by a speculative duplicate
        if self._track_blocks:
            self.bus.emit(BLOCK_START, task=key, i=i, d1=d1, j=j, n1=n1,
                          kernel=self.kernel)
        view = self._view(task)
        # Scratch buffers are only needed when speculative duplicates can
        # race on the same block (deadline-triggered re-execution).
        use_scratch = (cfg.task_timeout is not None and self.threads > 1)
        rng, watch, workspace = self._thread_ctx()

        kernels = [self.kernel]
        if cfg.degradation.kernel_fallback and self.kernel == "algo4":
            kernels.append("algo3")
        budget = 1 + cfg.max_retries
        attempt_no = 0
        had_violation = False

        for ki, kname in enumerate(kernels):
            if ki > 0:
                with self._ctx_lock:
                    self.health.kernel_fallbacks += 1
                    self.health.record(
                        f"task {key}: {kernels[ki - 1]} exhausted its "
                        f"retries; degrading to pattern-oblivious {kname}")
                self.bus.emit(DEGRADED, kind="kernel_fallback", task=key,
                              from_kernel=kernels[ki - 1], to_kernel=kname)
            for local in range(budget):
                attempt_no += 1
                with self._ctx_lock:
                    self.health.attempts += 1
                # Per-thread workspace scratch: speculative duplicates of
                # the same block run in different threads, so the scratch
                # targets never alias.
                scratch_shape = ((self.batch, d1, n1) if self.batch > 1
                                 else (d1, n1))
                target = (workspace.get("executor.scratch", scratch_shape)
                          if use_scratch else view)
                target[:] = 0.0
                failure: tuple[str, str] | None = None
                try:
                    use_rng = rng
                    if self._hooked:
                        self.bus.emit(TASK_START, task=key, kernel=kname,
                                      context=context, attempt=attempt_no)
                        use_rng = self.bus.emit(
                            RNG_REQUEST, task=key, kernel=kname,
                            context=context, attempt=attempt_no, rng=rng,
                        )["rng"]
                    self._compute(task, kname, use_rng, watch, target,
                                  workspace)
                    if self._hooked:
                        self.bus.emit(BLOCK_COMPUTED, task=key, kernel=kname,
                                      context=context, attempt=attempt_no,
                                      block=target)
                    violation = (validate_block(target, self._bound_for(task))
                                 if cfg.guardrail is not None else None)
                    if violation is None:
                        self._commit(idx, task, target, use_scratch)
                        if had_violation and cfg.guardrail == "recompute":
                            with self._ctx_lock:
                                self.health.corrupted_blocks_repaired += 1
                                self.health.record(
                                    f"task {key}: corrupted block repaired "
                                    f"by recompute (attempt {attempt_no})")
                        return
                    with self._ctx_lock:
                        self.health.guardrail_violations += 1
                    if cfg.guardrail == "raise":
                        raise SketchQualityError(
                            f"task {key}: {violation} values in computed "
                            f"block (guardrail policy 'raise')")
                    if cfg.guardrail == "mask":
                        target[:] = 0.0
                        self._commit(idx, task, target, use_scratch)
                        with self._ctx_lock:
                            self.health.masked_blocks += 1
                            self.health.record(
                                f"task {key}: {violation} block masked to "
                                f"zero (guardrail policy 'mask')")
                        return
                    # policy 'recompute': count as a failed attempt.
                    had_violation = True
                    failure = (f"guardrail-{violation}",
                               f"{violation} values in computed block")
                except SketchQualityError:
                    raise
                except (ConfigError, ShapeError):
                    raise  # configuration bugs are not transient: no retry
                except InjectedCrashError:
                    # A torn_write fault fired while _commit checkpointed:
                    # it simulates process death, so retrying it as a
                    # transient task failure would defeat the test.
                    raise
                except Exception as exc:  # noqa: BLE001 - fault boundary
                    failure = (type(exc).__name__, str(exc))
                self._note_failure(key, attempt_no, failure[0], failure[1],
                                   context)
                if local + 1 < budget:
                    with self._ctx_lock:
                        self.health.retries += 1
                        self.health.record(
                            f"task {key}: attempt {attempt_no} failed "
                            f"({failure[0]}); retrying with fresh RNG")
                    self.bus.emit(RETRY, task=key, attempt=attempt_no,
                                  kind=failure[0], context=context)
                    if cfg.retry_backoff > 0.0:
                        # Deterministic jitter keyed on the task's RNG
                        # coordinates: two runs of the same plan sleep the
                        # same amount, so retry timing never introduces
                        # wall-clock entropy into recorded traces.
                        time.sleep(backoff_seconds(
                            cfg.retry_backoff, cfg.retry_backoff_factor,
                            cfg.retry_backoff_max, seed=self.plan.rng.seed,
                            task=key, attempt=attempt_no))
                    rng = self._fresh_rng()
        raise RetryExhaustedError(
            f"task {key} failed after {attempt_no} attempts "
            f"({', '.join(k for k in kernels)}); see RunHealth.failures")

    def _run_guarded(self, tasks: list[Task]) -> None:
        cfg = self.resilience
        self.health.tasks = len(tasks)
        if cfg.guardrail is not None:
            self._colabs = column_abs_sums(self.A)
            self._entry_bound = entry_abs_bound(self.rng_factory(0).dist)

        if self.threads == 1:
            for idx, task in enumerate(tasks):
                started = time.monotonic()
                self._run_task(idx, task, "serial")
                self._check_serial_deadline(task,
                                            time.monotonic() - started)
            return

        failed: list[tuple[int, Task, TaskFailedError]] = []
        with ThreadPoolExecutor(max_workers=self.threads) as pool:
            futures = [pool.submit(self._run_task, idx, task, "parallel")
                       for idx, task in enumerate(tasks)]
            for idx, (fut, task) in enumerate(zip(futures, tasks)):
                key = (task[0], task[2])
                try:
                    fut.result(timeout=cfg.task_timeout)
                except FuturesTimeoutError:
                    with self._ctx_lock:
                        self.health.timeouts += 1
                    if not cfg.reexecute_stragglers:
                        raise TaskTimeoutError(
                            f"task {key} missed its {cfg.task_timeout}s "
                            f"deadline and straggler re-execution is "
                            f"disabled") from None
                    with self._ctx_lock:
                        self.health.stragglers_reexecuted += 1
                        self.health.record(
                            f"task {key}: straggler past the "
                            f"{cfg.task_timeout}s deadline; speculatively "
                            f"re-executing in the driver thread")
                    self.bus.emit(RETRY, task=key, attempt=0,
                                  kind="straggler", context="serial")
                    self._run_task(idx, task, "serial")
                except TaskFailedError as exc:
                    failed.append((idx, task, exc))
        if failed:
            if not cfg.degradation.serial_fallback:
                raise failed[0][2]
            with self._ctx_lock:
                self.health.degraded_to_serial = True
                self.health.record(
                    f"{len(failed)} task(s) unrecoverable in the pool; "
                    f"degrading parallel -> serial re-execution")
            self.bus.emit(DEGRADED, kind="serial_fallback",
                          tasks=len(failed))
            for idx, task, _exc in failed:
                started = time.monotonic()
                self._run_task(idx, task, "serial")
                self._check_serial_deadline(task,
                                            time.monotonic() - started)

    def _check_serial_deadline(self, task: Task, elapsed: float) -> None:
        """Post-hoc per-task deadline for single-thread execution.

        A serial path cannot preempt a running kernel the way the
        parallel path's ``future.result(timeout=...)`` does, so the
        deadline is enforced after the fact: an overrun either fails
        the run (``reexecute_stragglers=False`` — the strict contract a
        request deadline needs even after the degradation ladder
        bottoms out at serial) or is recorded in the health report and
        the already-committed result kept — re-executing serially would
        only reproduce the same bytes slower, since generators are
        coordinate-keyed.
        """
        cfg = self.resilience
        if cfg.task_timeout is None or elapsed <= cfg.task_timeout:
            return
        key = (task[0], task[2])
        with self._ctx_lock:
            self.health.timeouts += 1
        if not cfg.reexecute_stragglers:
            raise TaskTimeoutError(
                f"task {key} missed its {cfg.task_timeout}s deadline "
                f"({elapsed:.3f}s elapsed) on the serial path")
        with self._ctx_lock:
            self.health.record(
                f"task {key}: serial execution overran the "
                f"{cfg.task_timeout}s deadline ({elapsed:.3f}s); committed "
                f"result kept (serial re-execution is bit-identical)")

    # -- entry point -------------------------------------------------------

    def execute(self) -> tuple[np.ndarray, KernelStats]:
        """Execute the plan; returns ``(Ahat, stats)``.

        ``stats.health`` carries the :class:`RunHealth` report on guarded
        runs (``None`` on the fast path).
        """
        tasks, conversion_seconds = self._prepare()
        # JIT backends compile outside the timed region (and nogil fused
        # kernels then overlap end-to-end across the worker threads).
        warm_rng = self.rng_factory(0)
        if hasattr(warm_rng, "members"):  # batched: members share a family
            warm_rng = warm_rng.members[0]
        self.jit_compile_seconds = self.backend.warmup(
            warm_rng, self.Ahat.dtype)
        if self.guarded:
            self.health.backend = self.backend.name
        with Timer() as total:
            if self.guarded:
                self._run_guarded(tasks)
            else:
                self._run_fast(tasks)
            # Final snapshot (if one is pending) captures the completed
            # accumulation *before* post-scaling — the stored payload is
            # always the raw accumulator state, like an interrupted run's.
            self._maybe_checkpoint(force=True)
            post = self._post_scale()
            if post != 1.0:
                self.Ahat *= post
        return self.Ahat, self._finish_stats(tasks, conversion_seconds,
                                             total.elapsed)


# -- public shims -----------------------------------------------------------


def _plan_from_executor_args(
    A: CSCMatrix,
    d: int,
    rng_factory: RngFactory,
    *,
    threads: int,
    kernel: str,
    b_d: int | None,
    b_n: int | None,
    strategy: str,
    resilience: ResilienceConfig | None,
    persistence: PersistencePolicy | None,
) -> SketchPlan:
    """Compile a plan from the legacy executor keyword surface."""
    d = check_positive_int(d, "d")
    threads = check_positive_int(threads, "threads")
    if kernel not in ("algo3", "algo4"):
        raise ConfigError(f"kernel must be 'algo3' or 'algo4', got {kernel!r}")
    m, n = A.shape
    bd_default, bn_default = default_block_sizes(d, n, parallel=threads > 1)
    b_d = bd_default if b_d is None else check_positive_int(b_d, "b_d")
    b_n = bn_default if b_n is None else check_positive_int(b_n, "b_n")
    probe = rng_factory(0)
    return SketchPlan(
        problem=ProblemSpec(m=m, n=n, d=d, nnz=A.nnz),
        kernel=kernel, b_d=b_d, b_n=b_n,
        backend=resolve_backend(None).name,  # overridden below when given
        rng=RngSpec(kind=probe.family, seed=probe.seed,
                    distribution=probe.dist.name),
        threads=threads, strategy=strategy, driver="engine",
        resilience=resilience,
        persistence=(persistence if persistence is not None
                     else PersistencePolicy()),
    )


class ResilientExecutor:
    """Legacy keyword surface over the plan/compile/execute stack.

    Compiles a :class:`~repro.plan.SketchPlan` from the pre-refactor
    keyword arguments and delegates execution to
    ``Runtime.run(plan)`` — behaviour and outputs are bit-identical to
    the pre-plan executor.  New code should compile a plan (see
    :class:`repro.plan.Planner`) and call the runtime directly.

    Parameters mirror :func:`parallel_sketch_spmm` plus:

    resilience:
        A :class:`~repro.parallel.resilience.ResilienceConfig`; ``None``
        (with no *injector* and no persistence) selects the original
        fast path — direct in-place block writes, no per-task
        bookkeeping.
    injector:
        A :class:`repro.faults.FaultInjector` wired into the run
        (testing only; ``None`` in production): registered on the event
        bus for the task hooks and handed to the checkpoint manager for
        storage faults.
    persistence:
        A :class:`~repro.plan.PersistencePolicy`; the preferred spelling
        of the deprecated ``checkpoint``/``checkpoint_dir``/
        ``checkpoint_every``/``checkpoint_keep``/``resume`` kwargs.
    bus:
        The :class:`~repro.plan.EventBus` lifecycle events fire on; a
        private bus is created when omitted.
    """

    def __init__(
        self,
        A: CSCMatrix,
        d: int,
        rng_factory: RngFactory,
        *,
        threads: int,
        kernel: str = "algo3",
        b_d: int | None = None,
        b_n: int | None = None,
        strategy: str = "static",
        blocked: BlockedCSR | None = None,
        resilience: ResilienceConfig | None = None,
        injector: "FaultInjector | None" = None,
        backend: str | KernelBackend | None = None,
        checkpoint: "object | None" = None,
        checkpoint_dir=None,
        checkpoint_every: int = 1,
        checkpoint_keep: int = 2,
        resume: bool = False,
        persistence: PersistencePolicy | None = None,
        bus: EventBus | None = None,
    ) -> None:
        legacy_ck = (checkpoint is not None or checkpoint_dir is not None
                     or checkpoint_every != 1 or checkpoint_keep != 2
                     or resume)
        if persistence is not None:
            if legacy_ck:
                raise ConfigError(
                    "pass either persistence= or the legacy checkpoint "
                    "kwargs, not both"
                )
        elif legacy_ck:
            warn_deprecated_kwargs(
                "ResilientExecutor",
                "checkpoint/checkpoint_dir/checkpoint_every/"
                "checkpoint_keep/resume",
                "persistence=PersistencePolicy(...)")
            persistence = PersistencePolicy.from_legacy(
                checkpoint=checkpoint, checkpoint_dir=checkpoint_dir,
                checkpoint_every=checkpoint_every,
                checkpoint_keep=checkpoint_keep, resume=resume)
        plan = _plan_from_executor_args(
            A, d, rng_factory, threads=threads, kernel=kernel, b_d=b_d,
            b_n=b_n, strategy=strategy, resilience=resilience,
            persistence=persistence)
        backend_name = resolve_backend(backend).name
        if backend_name != plan.backend:
            import dataclasses

            plan = dataclasses.replace(plan, backend=backend_name)
        self.plan = plan
        self.A = A
        self.rng_factory = rng_factory
        self.blocked = blocked
        self.injector = injector
        self.bus = bus if bus is not None else EventBus()

    @property
    def b_d(self) -> int:
        return self.plan.b_d

    @property
    def b_n(self) -> int:
        return self.plan.b_n

    def fingerprint(self) -> dict:
        """Immutable run identity for checkpoint compatibility checks."""
        rng = self.rng_factory(0)
        from ..persist.snapshot import run_fingerprint

        return run_fingerprint(
            mode="blocked", d=self.plan.problem.d, n=self.A.shape[1],
            b_d=self.plan.b_d, b_n=self.plan.b_n, kernel=self.plan.kernel,
            backend=self.plan.backend, rng_kind=rng.family, seed=rng.seed,
            distribution=rng.dist.name,
        )

    def run(self) -> tuple[np.ndarray, KernelStats]:
        """Execute the sketch; returns ``(Ahat, stats)``.

        ``stats.health`` carries the :class:`RunHealth` report on guarded
        runs (``None`` on the fast path).
        """
        from ..plan.runtime import Runtime

        result = Runtime(bus=self.bus).run(
            self.plan, self.A, rng_factory=self.rng_factory,
            blocked=self.blocked, injector=self.injector)
        return result.sketch, result.stats


def parallel_sketch_spmm(
    A: CSCMatrix,
    d: int,
    rng_factory: RngFactory,
    *,
    threads: int,
    kernel: str = "algo3",
    b_d: int | None = None,
    b_n: int | None = None,
    strategy: str = "static",
    blocked: BlockedCSR | None = None,
    resilience: ResilienceConfig | None = None,
    injector: "FaultInjector | None" = None,
    backend: "str | KernelBackend | None" = None,
    checkpoint: "object | None" = None,
    checkpoint_dir=None,
    checkpoint_every: int = 1,
    checkpoint_keep: int = 2,
    resume: bool = False,
    persistence: PersistencePolicy | None = None,
    bus: EventBus | None = None,
) -> tuple[np.ndarray, KernelStats]:
    """Compute ``Ahat = S @ A`` using *threads* workers over block tasks.

    A thin shim over the plan/compile/execute stack: compiles a
    :class:`~repro.plan.SketchPlan` from these keyword arguments and runs
    it through ``Runtime.run(plan)``.

    Parameters
    ----------
    rng_factory:
        Called once per worker with the worker index; must return
        independent :class:`SketchingRNG` objects configured with the
        *same* seed/distribution (worker index is provided only for
        callers that want private instrumentation).
    strategy:
        Task partitioning (see :func:`repro.parallel.partition_tasks`).
        On the guarded (resilient) path tasks are submitted individually
        in Algorithm 1 order and *strategy* only affects accounting.
    blocked:
        Pre-built blocked CSR (Algorithm 4); built here (and timed) when
        absent.
    resilience, injector:
        Fault handling and fault injection — see
        :class:`ResilientExecutor`.  Both ``None`` (the default) selects
        the original zero-overhead path.
    backend:
        Kernel backend (name, instance, or ``None``/``"auto"``; see
        :func:`repro.kernels.backends.resolve_backend`).  With the
        ``numba`` backend the fused ``nogil`` kernels release the GIL for
        entire block tasks, so worker threads overlap fully instead of
        only inside NumPy calls.
    persistence:
        Durable crash recovery as a
        :class:`~repro.plan.PersistencePolicy` — the preferred spelling
        of the deprecated ``checkpoint``/``checkpoint_dir``/
        ``checkpoint_every``/``checkpoint_keep``/``resume`` kwargs (see
        :mod:`repro.persist`).  A snapshot of all *completed* row blocks
        is written atomically every ``every`` row-block completions (and
        once at the end, pre-``post_scale``).  ``resume=True`` restores
        the newest verified-good snapshot from the directory — its
        fingerprint must match this run exactly (same
        ``d``/blocking/kernel/backend/RNG) or
        :class:`~repro.errors.CheckpointMismatchError` is raised — and
        skips the tasks of already-completed row blocks.  Checkpointing
        selects the guarded execution path.
    bus:
        Event bus for lifecycle events (``block_start``/``block_done``,
        ``retry``, ``degraded``, ``checkpoint_written``).

    Returns
    -------
    (Ahat, stats):
        stats buckets aggregate across workers (sample/compute seconds are
        summed CPU-seconds, not wall time; ``total_seconds`` is wall time);
        ``stats.health`` reports fault recovery on guarded runs.
    """
    executor = ResilientExecutor(
        A, d, rng_factory, threads=threads, kernel=kernel, b_d=b_d, b_n=b_n,
        strategy=strategy, blocked=blocked, resilience=resilience,
        injector=injector, backend=backend, checkpoint=checkpoint,
        checkpoint_dir=checkpoint_dir, checkpoint_every=checkpoint_every,
        checkpoint_keep=checkpoint_keep, resume=resume,
        persistence=persistence, bus=bus,
    )
    return executor.run()
