"""Thread-pool execution of the blocked sketching SpMM.

Real shared-memory parallelism over Algorithm 1's block tasks.  Every task
writes a disjoint block of ``Ahat`` and reads only immutable inputs, so the
execution is race-free by construction; each worker gets its *own*
:class:`~repro.rng.SketchingRNG` instance (from a factory), so RNG state
and instrumentation counters are thread-private.

Reproducibility across thread counts: both generator families key their
output on ``(seed, block row offset, sparse row)``, never on which thread
runs the block, so the computed ``Ahat`` is bit-identical for any thread
count and any partition strategy — the property tested in
``tests/parallel``.  (This mirrors the paper's Section IV-C discussion:
counter-based RNGs give thread-independent sketches; our checkpointed
xoshiro is also thread-independent *given fixed blocking* because
checkpoints are keyed by coordinates.)

On the Python runtime, NumPy releases the GIL inside large array
operations, so genuine overlap occurs for the vectorized kernels when the
host has multiple cores; on a single-core host this executor still
validates correctness while :mod:`repro.parallel.scaling` models the
performance (see DESIGN.md's substitution table).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable

import numpy as np

from ..errors import ConfigError
from ..kernels.algo3 import algo3_block
from ..kernels.algo4 import algo4_block
from ..kernels.blocking import default_block_sizes, iter_block_tasks
from ..kernels.stats import KernelStats
from ..rng.base import SketchingRNG
from ..sparse.blocked_csr import BlockedCSR
from ..sparse.convert import csc_to_blocked_csr
from ..sparse.csc import CSCMatrix
from ..utils.flops import spmm_flops
from ..utils.timing import Stopwatch, Timer
from ..utils.validation import check_positive_int
from .scheduler import estimate_task_costs, partition_tasks

__all__ = ["parallel_sketch_spmm"]

RngFactory = Callable[[int], SketchingRNG]


def parallel_sketch_spmm(
    A: CSCMatrix,
    d: int,
    rng_factory: RngFactory,
    *,
    threads: int,
    kernel: str = "algo3",
    b_d: int | None = None,
    b_n: int | None = None,
    strategy: str = "static",
    blocked: BlockedCSR | None = None,
) -> tuple[np.ndarray, KernelStats]:
    """Compute ``Ahat = S @ A`` using *threads* workers over block tasks.

    Parameters
    ----------
    rng_factory:
        Called once per worker with the worker index; must return
        independent :class:`SketchingRNG` objects configured with the
        *same* seed/distribution (worker index is provided only for
        callers that want private instrumentation).
    strategy:
        Task partitioning (see :func:`repro.parallel.partition_tasks`).
    blocked:
        Pre-built blocked CSR (Algorithm 4); built here (and timed) when
        absent.

    Returns
    -------
    (Ahat, stats):
        stats buckets aggregate across workers (sample/compute seconds are
        summed CPU-seconds, not wall time; ``total_seconds`` is wall time).
    """
    d = check_positive_int(d, "d")
    threads = check_positive_int(threads, "threads")
    if kernel not in ("algo3", "algo4"):
        raise ConfigError(f"kernel must be 'algo3' or 'algo4', got {kernel!r}")
    m, n = A.shape
    bd_default, bn_default = default_block_sizes(d, n, parallel=threads > 1)
    b_d = bd_default if b_d is None else check_positive_int(b_d, "b_d")
    b_n = bn_default if b_n is None else check_positive_int(b_n, "b_n")

    conversion_seconds = 0.0
    if kernel == "algo4" and blocked is None:
        blocked, conv = csc_to_blocked_csr(A, b_n, threads=threads)
        conversion_seconds = conv.seconds

    tasks = list(iter_block_tasks(d, n, b_d, b_n))
    costs = estimate_task_costs(A, tasks) if strategy == "guided" else None
    buckets = partition_tasks(tasks, threads, strategy, costs)

    Ahat = np.zeros((d, n), dtype=np.float64)
    rngs = [rng_factory(w) for w in range(threads)]
    watches = [Stopwatch() for _ in range(threads)]

    # Pre-index Algorithm 4's vertical blocks by column offset for O(1)
    # lookup inside workers.
    block_by_offset: dict[int, object] = {}
    if kernel == "algo4":
        assert blocked is not None
        for j0, blk in blocked.iter_blocks():
            block_by_offset[j0] = blk

    def run_worker(w: int) -> None:
        rng = rngs[w]
        watch = watches[w]
        for (i, d1, j, n1) in buckets[w]:
            view = Ahat[i:i + d1, j:j + n1]
            if kernel == "algo3":
                algo3_block(view, A.col_block(j, j + n1), i, rng, watch=watch)
            else:
                blk = block_by_offset.get(j)
                if blk is None or blk.shape[1] != n1:
                    raise ConfigError(
                        "blocked CSR partition does not match b_n task grid"
                    )
                algo4_block(view, blk, i, rng, watch=watch)

    with Timer() as total:
        if threads == 1:
            run_worker(0)
        else:
            with ThreadPoolExecutor(max_workers=threads) as pool:
                futures = [pool.submit(run_worker, w) for w in range(threads)]
                for f in futures:
                    f.result()  # propagate worker exceptions
        post = rngs[0].post_scale
        if post != 1.0:
            Ahat *= post

    stats = KernelStats(
        kernel=f"{kernel}-parallel",
        sample_seconds=sum(w.total("sample") for w in watches),
        compute_seconds=sum(w.total("compute") for w in watches),
        conversion_seconds=conversion_seconds,
        total_seconds=total.elapsed,
        samples_generated=sum(r.samples_generated for r in rngs),
        flops=spmm_flops(d, A.nnz),
        blocks_processed=len(tasks),
        d=d, b_d=b_d, b_n=b_n,
        extra={"threads": threads, "strategy": strategy},
    )
    return Ahat, stats
