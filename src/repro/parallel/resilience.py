"""Resilience policies and health reporting for the parallel executor.

Distributed SpGEMM systems treat per-task scheduling and failure
accounting as first-class citizens; this module is the shared-memory
analogue for the blocked sketching SpMM.  It defines

* :class:`ResilienceConfig` — per-task retry budget, deadlines, and the
  numerical-guardrail policy (``raise`` / ``recompute`` / ``mask``);
* :class:`DegradationPolicy` — what to do after repeated failures: fall
  back algo4→algo3 (the pattern-oblivious kernel) and parallel→serial;
* :class:`RunHealth` — the structured report of everything that happened
  (attempts, retries, timeouts, repaired blocks, every degradation
  decision) that rides on :class:`repro.kernels.KernelStats` and surfaces
  in the CLI;
* the block guardrail helpers: finiteness plus a magnitude bound derived
  from the entry distribution's moments
  (``|Ahat[i,k]| <= max|S| * ||A[:,k]||_1`` for bounded distributions).

Retries are *safe* for this workload because both generator families key
their output on ``(seed, block offsets, sparse row)`` — recomputing a
block from a fresh generator reproduces it bit-identically, so a repaired
run equals a fault-free run exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError
from ..rng.distributions import Distribution
from ..sparse.csc import CSCMatrix

__all__ = [
    "DegradationPolicy",
    "ResilienceConfig",
    "RunHealth",
    "TaskFailure",
    "GUARDRAIL_POLICIES",
    "backoff_seconds",
    "column_abs_sums",
    "entry_abs_bound",
    "validate_block",
]

GUARDRAIL_POLICIES = ("raise", "recompute", "mask")

#: Gaussian entries are unbounded; bound them at this many standard
#: deviations (P(|N(0,1)| > 16) ~ 1e-57 — astronomically safe per entry).
_GAUSSIAN_SIGMAS = 16.0


@dataclass(frozen=True)
class DegradationPolicy:
    """What the executor may sacrifice to finish a run.

    Fallback ordering (each step recorded in :class:`RunHealth`):

    1. ``kernel_fallback`` — a task that exhausts its retries under
       Algorithm 4 gets one fresh retry budget under Algorithm 3, the
       pattern-oblivious kernel (Table VI shows algo4 is the fragile one
       on adversarial patterns; algo3's strided CSC path has no blocked
       structure to corrupt).
    2. ``serial_fallback`` — tasks that still fail inside the thread pool
       are re-run once in the driver thread after the pool drains
       (isolates failures caused by parallel execution itself).

    Only after both steps fail does
    :class:`repro.errors.RetryExhaustedError` reach the caller.
    """

    kernel_fallback: bool = True
    serial_fallback: bool = True


@dataclass(frozen=True)
class ResilienceConfig:
    """Per-task fault-handling configuration for the resilient executor.

    Attributes
    ----------
    max_retries:
        Extra attempts per task after the first (0 disables retrying).
        Recomputation is exact — generators are keyed on ``(seed, block
        offsets)``, never on thread — so a retry reproduces the fault-free
        block bit-identically.
    task_timeout:
        Per-task deadline in seconds (``None`` = no deadline).  With
        ``threads >= 2`` the driver thread detects overdue tasks while
        workers run and can act mid-flight; on single-thread paths (and
        the degradation ladder's serial rung) the deadline is enforced
        post-hoc after each task returns, so a request deadline still
        binds when the ladder bottoms out at serial.
    reexecute_stragglers:
        On deadline expiry, speculatively re-execute the task in the
        driver thread (first finisher wins; losers are discarded).  When
        ``False``, a deadline miss raises
        :class:`repro.errors.TaskTimeoutError` instead.  Serial paths
        cannot preempt a running kernel: there an overrun is recorded
        in the health report (re-execution would be pointless — the
        committed result is already bit-identical), or raises when this
        is ``False``.
    guardrail:
        Post-block validation policy: ``None`` (off — the seed
        behaviour), ``"raise"`` (fail fast with
        :class:`repro.errors.SketchQualityError`), ``"recompute"``
        (treat the violation as a transient fault and retry), or
        ``"mask"`` (zero the block, record it, continue — the sketch
        stays finite but loses those rows' contribution).
    guardrail_bound_factor:
        Safety factor on the moment-derived magnitude bound
        ``factor * max|entry| * max_k ||A[:, k]||_1``.
    degradation:
        See :class:`DegradationPolicy`.
    retry_backoff:
        Base delay in seconds slept before each retry (0.0 — the seed
        behaviour — disables backoff entirely).  The delay grows by
        ``retry_backoff_factor`` per failed attempt, is capped at
        ``retry_backoff_max``, and is jittered *deterministically*: the
        jitter fraction is derived from the task's RNG key via
        :func:`repro.faults.plan.task_hash`, never from wall-clock
        entropy, so fault-injection runs replay bit-identically (see
        :func:`backoff_seconds`).
    retry_backoff_factor:
        Exponential growth factor per additional failure (>= 1).
    retry_backoff_max:
        Ceiling on any single backoff sleep, pre-jitter.
    """

    max_retries: int = 2
    task_timeout: float | None = None
    reexecute_stragglers: bool = True
    guardrail: str | None = None
    guardrail_bound_factor: float = 4.0
    degradation: DegradationPolicy = DegradationPolicy()
    retry_backoff: float = 0.0
    retry_backoff_factor: float = 2.0
    retry_backoff_max: float = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.max_retries, (int, np.integer)) or \
                isinstance(self.max_retries, bool) or self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be a non-negative integer, got "
                f"{self.max_retries!r}"
            )
        if self.task_timeout is not None and not self.task_timeout > 0:
            raise ConfigError(
                f"task_timeout must be positive or None, got {self.task_timeout}"
            )
        if self.guardrail is not None and self.guardrail not in GUARDRAIL_POLICIES:
            raise ConfigError(
                f"guardrail must be None or one of {GUARDRAIL_POLICIES}, "
                f"got {self.guardrail!r}"
            )
        if not self.guardrail_bound_factor >= 1.0:
            raise ConfigError(
                f"guardrail_bound_factor must be >= 1, got "
                f"{self.guardrail_bound_factor}"
            )
        if not self.retry_backoff >= 0.0:
            raise ConfigError(
                f"retry_backoff must be non-negative, got {self.retry_backoff}"
            )
        if not self.retry_backoff_factor >= 1.0:
            raise ConfigError(
                f"retry_backoff_factor must be >= 1, got "
                f"{self.retry_backoff_factor}"
            )
        if not self.retry_backoff_max >= 0.0:
            raise ConfigError(
                f"retry_backoff_max must be non-negative, got "
                f"{self.retry_backoff_max}"
            )


def backoff_seconds(base: float, factor: float, cap: float, *,
                    seed: int, task: tuple[int, int], attempt: int) -> float:
    """Deterministic exponential backoff with task-keyed jitter.

    ``min(cap, base * factor**(attempt - 1))`` scaled into
    ``[0.5, 1.0)`` by a jitter fraction derived from
    :func:`repro.faults.plan.task_hash` of ``(seed, i, j)`` salted with
    the attempt number — the same key the generators use, never
    wall-clock entropy.  Two runs of the same plan with the same fault
    schedule therefore sleep the *exact* same durations, which keeps
    fault-injection replays bit-identical in their scheduling too.
    *attempt* counts from 1 (the first retry).
    """
    if base <= 0.0 or attempt < 1:
        return 0.0
    from ..faults.plan import task_hash

    raw = min(cap, base * factor ** (attempt - 1))
    i, j = int(task[0]), int(task[1])
    frac = task_hash(seed, i, j, salt=0x42AC0FF ^ attempt) / float(1 << 64)
    return raw * (0.5 + 0.5 * frac)


@dataclass(frozen=True)
class TaskFailure:
    """One failed attempt at a block task."""

    task: tuple[int, int]     # (row offset i, column offset j)
    attempt: int
    kind: str                 # exception class name or guardrail violation
    message: str
    context: str              # 'parallel' or 'serial'


@dataclass
class RunHealth:
    """Structured account of one resilient run.

    ``decisions`` is the human-readable audit trail: every retry, straggler
    re-execution, guardrail action, and degradation step appends one line,
    so a surprising sketch can always be explained after the fact.
    """

    tasks: int = 0
    completed: int = 0
    attempts: int = 0
    retries: int = 0
    failures: list = field(default_factory=list)        # list[TaskFailure]
    timeouts: int = 0
    stragglers_reexecuted: int = 0
    guardrail_violations: int = 0
    corrupted_blocks_repaired: int = 0
    masked_blocks: int = 0
    kernel_fallbacks: int = 0
    degraded_to_serial: bool = False
    decisions: list = field(default_factory=list)       # list[str]
    backend: str = ""                                   # kernel backend used
    # Process-pool supervision (zero outside the "process" driver).
    workers_spawned: int = 0
    workers_lost: int = 0
    worker_respawns: int = 0
    tasks_requeued: int = 0
    quarantined_tasks: int = 0
    degraded_to_thread: bool = False
    # Observer exceptions the EventBus swallowed during the run —
    # surfaced here so silent metrics/tracing failures reach run reports.
    dropped_events: int = 0
    # Artifact-cache traffic during the run (zero when no cache is
    # attached); a warm "fixed A, many sketches" run shows hits with no
    # misses — the property tests and the cache-smoke CI leg assert on
    # exactly these fields.
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def ok(self) -> bool:
        """Did every task commit a block (possibly after recovery)?"""
        return self.completed == self.tasks

    @property
    def clean(self) -> bool:
        """Did the run complete with no faults, retries, or degradation?

        Dropped observer events deliberately do *not* taint cleanliness:
        observers cannot perturb a sketch, only fail to watch it.
        """
        return (self.ok and self.attempts == self.tasks
                and not self.failures and self.guardrail_violations == 0
                and self.timeouts == 0 and self.workers_lost == 0
                and self.quarantined_tasks == 0)

    def record(self, decision: str) -> None:
        """Append one line to the audit trail."""
        self.decisions.append(decision)

    def as_dict(self) -> dict:
        """JSON-ready representation (CLI ``--json`` / logging)."""
        return {
            "ok": self.ok,
            "clean": self.clean,
            "tasks": self.tasks,
            "completed": self.completed,
            "attempts": self.attempts,
            "retries": self.retries,
            "failures": [
                {"task": list(f.task), "attempt": f.attempt, "kind": f.kind,
                 "message": f.message, "context": f.context}
                for f in self.failures
            ],
            "timeouts": self.timeouts,
            "stragglers_reexecuted": self.stragglers_reexecuted,
            "guardrail_violations": self.guardrail_violations,
            "corrupted_blocks_repaired": self.corrupted_blocks_repaired,
            "masked_blocks": self.masked_blocks,
            "kernel_fallbacks": self.kernel_fallbacks,
            "degraded_to_serial": self.degraded_to_serial,
            "decisions": list(self.decisions),
            "backend": self.backend,
            "workers_spawned": self.workers_spawned,
            "workers_lost": self.workers_lost,
            "worker_respawns": self.worker_respawns,
            "tasks_requeued": self.tasks_requeued,
            "quarantined_tasks": self.quarantined_tasks,
            "degraded_to_thread": self.degraded_to_thread,
            "dropped_events": self.dropped_events,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

    def merge(self, other: "RunHealth") -> None:
        """Fold another run's health report into this one.

        Counters add, lists extend, ``degraded_to_serial`` ORs, and the
        backend attribution is adopted when unset here (used by
        :meth:`repro.kernels.KernelStats.merge` so aggregating parallel
        shards never drops recovery history).
        """
        self.tasks += other.tasks
        self.completed += other.completed
        self.attempts += other.attempts
        self.retries += other.retries
        self.failures.extend(other.failures)
        self.timeouts += other.timeouts
        self.stragglers_reexecuted += other.stragglers_reexecuted
        self.guardrail_violations += other.guardrail_violations
        self.corrupted_blocks_repaired += other.corrupted_blocks_repaired
        self.masked_blocks += other.masked_blocks
        self.kernel_fallbacks += other.kernel_fallbacks
        self.degraded_to_serial = (self.degraded_to_serial
                                   or other.degraded_to_serial)
        self.workers_spawned += other.workers_spawned
        self.workers_lost += other.workers_lost
        self.worker_respawns += other.worker_respawns
        self.tasks_requeued += other.tasks_requeued
        self.quarantined_tasks += other.quarantined_tasks
        self.degraded_to_thread = (self.degraded_to_thread
                                   or other.degraded_to_thread)
        self.dropped_events += other.dropped_events
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.decisions.extend(other.decisions)
        if not self.backend:
            self.backend = other.backend

    def summary(self) -> str:
        """One-line digest for plain-text CLI output."""
        parts = [f"tasks={self.completed}/{self.tasks}",
                 f"attempts={self.attempts}", f"retries={self.retries}"]
        if self.backend:
            parts.insert(0, f"backend={self.backend}")
        if self.timeouts:
            parts.append(f"stragglers={self.stragglers_reexecuted}/{self.timeouts}")
        if self.guardrail_violations:
            parts.append(f"guardrail={self.guardrail_violations}"
                         f"(repaired={self.corrupted_blocks_repaired},"
                         f"masked={self.masked_blocks})")
        if self.kernel_fallbacks:
            parts.append(f"kernel_fallbacks={self.kernel_fallbacks}")
        if self.workers_spawned or self.workers_lost:
            parts.append(f"workers={self.workers_spawned}"
                         f"(lost={self.workers_lost},"
                         f"respawned={self.worker_respawns})")
        if self.tasks_requeued:
            parts.append(f"requeued={self.tasks_requeued}")
        if self.quarantined_tasks:
            parts.append(f"quarantined={self.quarantined_tasks}")
        if self.degraded_to_thread:
            parts.append("degraded=thread")
        if self.degraded_to_serial:
            parts.append("degraded=serial")
        if self.dropped_events:
            parts.append(f"dropped_events={self.dropped_events}")
        if self.cache_hits or self.cache_misses:
            parts.append(f"cache={self.cache_hits}h/{self.cache_misses}m")
        parts.append("clean" if self.clean else "recovered" if self.ok else "FAILED")
        return " ".join(parts)


# -- numerical guardrails --------------------------------------------------


def column_abs_sums(A: CSCMatrix) -> np.ndarray:
    """Per-column ``||A[:, k]||_1`` — the data half of the magnitude bound.

    One O(nnz) pass, computed once per guarded run and shared by every
    task's validation.
    """
    out = np.zeros(A.shape[1], dtype=np.float64)
    if A.nnz:
        counts = A.col_nnz()
        nonempty = counts > 0
        starts = A.indptr[:-1][nonempty]
        out[nonempty] = np.add.reduceat(np.abs(A.data), starts)
    return out


def entry_abs_bound(dist: Distribution) -> float:
    """Largest |entry| the distribution can emit (pre ``post_scale``).

    Uniform variants and Rademacher are hard-bounded by construction;
    Gaussian entries are cut off at ``16 sigma`` (violation probability
    ~1e-57 per entry — any finite sample exceeding it is corruption, not
    luck).
    """
    if dist.name == "uniform":
        return 1.0
    if dist.name == "uniform_scaled":
        return 2.0 ** 31
    if dist.name == "rademacher":
        return 1.0
    # Generic / Gaussian: moment-based cutoff (variance is post-post_scale,
    # so undo the scale to bound the raw kernel accumulation).
    sigma = float(np.sqrt(dist.variance)) / dist.post_scale
    return _GAUSSIAN_SIGMAS * sigma


def validate_block(block: np.ndarray, bound: float | None) -> str | None:
    """Check one computed ``Ahat`` block; return a violation label or ``None``.

    ``bound`` is the precomputed magnitude ceiling for this block
    (``None`` skips the magnitude check).  The finiteness check runs
    first: NaN/Inf also fail any comparison, but deserve the more precise
    label.
    """
    if not np.isfinite(block).all():
        return "non-finite"
    if bound is not None and block.size and float(np.abs(block).max()) > bound:
        return "magnitude"
    return None
