"""Transforms from raw random bits to sketching-matrix entries.

Section III-C of the paper compares five ways of producing the entries of
the random matrix ``S`` (Figure 4):

* ``gaussian`` — standard normals via Box–Muller; statistically the gold
  standard but by far the most expensive transform ("generating Gaussians
  on the fly is not practical");
* ``uniform`` — uniform over ``(-1, 1)``: "generate a random signed 32-bit
  integer and divide it by 2^31";
* ``uniform_scaled`` — the "(-1,1) and scaling trick": keep the *raw
  integers* as the entries of ``S`` and fold the ``1/2^31`` factor into the
  other operand, i.e. compute ``(S f)(A / f)`` with ``f = 2^31`` — here
  realised as a single ``post_scale`` applied to the output, which is
  algebraically identical;
* ``rademacher`` — uniform over ``{+1, -1}``, representable in 8 bits; the
  cheapest transform (a sign bit);
* pre-generated variants of any of the above, which are the job of
  :mod:`repro.kernels.pregen`, not of this module.

Each :class:`Distribution` carries a relative generation-cost parameter
``h_factor`` used by the performance model (the paper's ``h``: cost of one
random number relative to one memory access), and its variance, which the
high-level sketch API uses to normalize sketches to unit expected column
norms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from ..errors import ConfigError
from .detmath import det_cos_2pi, det_log

__all__ = [
    "Distribution",
    "UNIFORM",
    "UNIFORM_SCALED",
    "RADEMACHER",
    "GAUSSIAN",
    "DISTRIBUTIONS",
    "get_distribution",
]

_TWO31 = float(2**31)
_TWO32 = float(2**32)


def _bits_to_uniform(bits: np.ndarray) -> np.ndarray:
    """Map uint64 bits to uniform(-1, 1): signed low 32 bits divided by 2^31."""
    i32 = (bits & np.uint64(0xFFFFFFFF)).astype(np.uint32).view(np.int32)
    return i32.astype(np.float64) / _TWO31


def _bits_to_uniform_scaled(bits: np.ndarray) -> np.ndarray:
    """The scaling trick: the raw signed 32-bit integers as float64.

    Callers must multiply the final product by ``post_scale = 2**-31``
    (equivalently, pre-scale ``A``); the integer-valued entries make the
    transform a plain dtype conversion.
    """
    i32 = (bits & np.uint64(0xFFFFFFFF)).astype(np.uint32).view(np.int32)
    return i32.astype(np.float64)


def _bits_to_rademacher(bits: np.ndarray) -> np.ndarray:
    """Map uint64 bits to {-1.0, +1.0} from a single bit.

    Bit 33 is used rather than bit 0 because the low bits of some
    multiplicative generators are the weakest; for Philox/xoshiro** any bit
    is fine, so the choice is just a fixed convention.
    """
    sign_bit = ((bits >> np.uint64(33)) & np.uint64(1)).astype(np.float64)
    return 2.0 * sign_bit - 1.0


def _bits_to_gaussian(bits: np.ndarray) -> np.ndarray:
    """Map uint64 bits to N(0, 1) via Box–Muller on the two 32-bit halves.

    ``u1`` is offset by half an ulp so it is strictly positive (the log is
    finite); each 64-bit word yields exactly one normal deviate, keeping the
    sample-count bookkeeping identical across distributions.

    The transcendentals go through :mod:`repro.rng.detmath` rather than
    libm so the bits→sample map is a platform-independent pure function:
    NumPy's SIMD float64 ``log`` differs from scalar libm by 1 ulp on some
    hosts, which would break the kernel backends' bit-identity contract
    (JIT-compiled kernels evaluate the transform one scalar at a time).
    """
    hi = (bits >> np.uint64(32)).astype(np.float64)
    lo = (bits & np.uint64(0xFFFFFFFF)).astype(np.float64)
    u1 = (hi + 0.5) / _TWO32
    u2 = (lo + 0.5) / _TWO32
    return np.sqrt(-2.0 * det_log(u1)) * det_cos_2pi(u2)


@dataclass(frozen=True)
class Distribution:
    """A named transform from raw ``uint64`` bits to sketch entries.

    Attributes
    ----------
    name:
        Registry key (``"uniform"``, ``"rademacher"``, …).
    transform:
        Elementwise map ``uint64 ndarray -> float64 ndarray``.
    variance:
        Variance of one entry *after* ``post_scale`` is applied; used to
        normalize sketches (``S / sqrt(d * variance)`` has unit expected
        column norms).
    h_factor:
        Relative cost of generating one entry, with the plain uniform
        transform as 1.0.  Feeds the paper's ``h`` parameter in the
        roofline model (Section III-A); calibrated defaults reflect the
        transform arithmetic (Gaussian pays log/sqrt/cos, the scaling trick
        and +-1 are cheaper than the divide).
    post_scale:
        Scalar the *product* must be multiplied by; 1.0 except for the
        scaling trick.
    bits_per_entry:
        Storage width the paper attributes to the entry type (Figure 4
        notes +-1 can use 8-bit integers); used by memory accounting for
        pre-generated sketches.
    """

    name: str
    transform: Callable[[np.ndarray], np.ndarray]
    variance: float
    h_factor: float
    post_scale: float = 1.0
    bits_per_entry: int = 32

    def sample_from_bits(self, bits: np.ndarray) -> np.ndarray:
        """Apply the transform to an array of raw bits."""
        return self.transform(bits)

    def normalization(self, d: int) -> float:
        """Factor making a ``d``-row sketch an (approximate) isometry.

        Scaling ``S`` by ``1 / sqrt(d * variance)`` gives
        ``E[||S x||^2] = ||x||^2``.
        """
        if d <= 0:
            raise ConfigError(f"sketch size d must be positive, got {d}")
        return 1.0 / float(np.sqrt(d * self.variance))


UNIFORM = Distribution(
    name="uniform",
    transform=_bits_to_uniform,
    variance=1.0 / 3.0,
    h_factor=1.0,
    bits_per_entry=32,
)

UNIFORM_SCALED = Distribution(
    name="uniform_scaled",
    transform=_bits_to_uniform_scaled,
    variance=1.0 / 3.0,  # after post_scale
    h_factor=0.75,
    post_scale=2.0**-31,
    bits_per_entry=32,
)

RADEMACHER = Distribution(
    name="rademacher",
    transform=_bits_to_rademacher,
    variance=1.0,
    h_factor=0.6,
    bits_per_entry=8,
)

GAUSSIAN = Distribution(
    name="gaussian",
    transform=_bits_to_gaussian,
    variance=1.0,
    h_factor=8.0,
    bits_per_entry=32,
)

DISTRIBUTIONS: Dict[str, Distribution] = {
    d.name: d for d in (UNIFORM, UNIFORM_SCALED, RADEMACHER, GAUSSIAN)
}


def get_distribution(name: str | Distribution) -> Distribution:
    """Look up a distribution by name (pass-through for instances)."""
    if isinstance(name, Distribution):
        return name
    try:
        return DISTRIBUTIONS[name]
    except KeyError:
        raise ConfigError(
            f"unknown distribution {name!r}; available: {sorted(DISTRIBUTIONS)}"
        ) from None
