"""Scalar, JIT-compatible twins of the vectorized RNG primitives.

The Numba kernel backend (:mod:`repro.kernels.backends.numba_backend`)
fuses random number generation into the innermost SpMM loops, so it needs
the counter→bits→sample pipeline as *scalar* ``uint64`` functions that
``@njit(nogil=True)`` can inline — not as NumPy array expressions.  This
module ports every primitive the kernels consume:

* SplitMix64 (:func:`splitmix64`, :func:`mix_key3`) — seeding/mixing;
* Philox4x32 (:func:`philox_u64`) and Threefry2x64 (:func:`threefry_u64`)
  — one counter-addressed ``uint64`` per ``(row, column)`` coordinate;
* the checkpointed, lane-interleaved xoshiro256** column stream
  (:func:`xoshiro_fill`);
* the four bit→entry transforms (:func:`u64_to_value`), including the
  deterministic Box–Muller (:func:`log_det`, :func:`cos_2pi_det` — scalar
  twins of :mod:`repro.rng.detmath`).

Bit-identity contract: for every coordinate and seed, each function here
returns exactly the bits/value its vectorized counterpart in
:mod:`repro.rng` produces.  ``tests/rng/test_jit.py`` asserts this
exhaustively, and — because the functions degrade to plain Python when
Numba is absent — the contract is verified even on hosts without Numba
(under ``np.errstate(over="ignore")``: NumPy warns on scalar ``uint64``
wraparound where Numba wraps silently).

When Numba is importable every function is compiled with
``@njit(cache=True, nogil=True)`` at import time (compilation itself is
lazy, per call signature), and the kernel backend composes them inside
its fused loops.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "NUMBA_AVAILABLE",
    "DIST_CODES",
    "RNG_CODES",
    "jit",
    "splitmix64",
    "mix_key3",
    "philox_u64",
    "threefry_u64",
    "xoshiro_fill",
    "log_det",
    "cos_2pi_det",
    "u64_to_uniform",
    "u64_to_uniform_scaled",
    "u64_to_rademacher",
    "u64_to_gaussian",
    "u64_to_value",
]

try:  # feature-detect, never require: the numpy backend needs nothing here
    from numba import njit as _njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised on numba-less CI legs
    _njit = None
    NUMBA_AVAILABLE = False


def jit(func):
    """``@njit(cache=True, nogil=True)`` when Numba exists, else identity.

    The pure-Python fallback keeps every helper importable and testable
    without Numba; only the Numba *backend* (which needs the speed) is
    gated on availability.
    """
    if NUMBA_AVAILABLE:
        return _njit(cache=True, nogil=True)(func)
    return func


#: Distribution name → integer code compiled into the fused kernels.
DIST_CODES = {"uniform": 0, "uniform_scaled": 1, "rademacher": 2,
              "gaussian": 3}
#: Generator family → integer code compiled into the fused kernels.
RNG_CODES = {"philox": 0, "threefry": 1, "xoshiro": 2}

# -- SplitMix64 -------------------------------------------------------------

_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM_M1 = np.uint64(0xBF58476D1CE4E5B9)
_SM_M2 = np.uint64(0x94D049BB133111EB)
_MIX_INIT = np.uint64(0x243F6A8885A308D3)
_MASK32 = np.uint64(0xFFFFFFFF)
_ONE64 = np.uint64(1)


@jit
def splitmix64(x):
    """Scalar twin of :func:`repro.rng.splitmix.splitmix64` (uint64→uint64)."""
    z = x + _GAMMA
    z = (z ^ (z >> np.uint64(30))) * _SM_M1
    z = (z ^ (z >> np.uint64(27))) * _SM_M2
    return z ^ (z >> np.uint64(31))


@jit
def mix_key3(a, b, c):
    """Scalar twin of ``mix_key(a, b, c)`` for three uint64 parts.

    Callers pass values already reinterpreted to ``uint64`` (two's
    complement for negatives), matching the vectorized
    ``astype(int64).view(uint64)`` convention.
    """
    acc = splitmix64(_MIX_INIT ^ a)
    acc = splitmix64(acc ^ b)
    return splitmix64(acc ^ c)


# -- Philox4x32 -------------------------------------------------------------

_PH_MUL_A = np.uint64(0xD2511F53)
_PH_MUL_B = np.uint64(0xCD9E8D57)
_PH_WEYL_A = np.uint64(0x9E3779B9)
_PH_WEYL_B = np.uint64(0xBB67AE85)


@jit
def philox_u64(row, col, k0, k1, rounds):
    """Scalar twin of :func:`repro.rng.philox.philox_uint64` for one coordinate.

    ``row``/``col`` are the uint64 counter halves; ``k0``/``k1`` the
    32-bit key words held in uint64.  All lane values stay 32-bit-valued
    inside uint64 registers (masking replaces the vectorized uint32 casts).
    """
    x0 = row & _MASK32
    x1 = (row >> np.uint64(32)) & _MASK32
    x2 = col & _MASK32
    x3 = (col >> np.uint64(32)) & _MASK32
    for _ in range(rounds):
        p0 = _PH_MUL_A * x0
        p1 = _PH_MUL_B * x2
        hi0 = p0 >> np.uint64(32)
        lo0 = p0 & _MASK32
        hi1 = p1 >> np.uint64(32)
        lo1 = p1 & _MASK32
        nx0 = hi1 ^ x1 ^ k0
        nx2 = hi0 ^ x3 ^ k1
        x0 = nx0
        x1 = lo1
        x2 = nx2
        x3 = lo0
        k0 = (k0 + _PH_WEYL_A) & _MASK32
        k1 = (k1 + _PH_WEYL_B) & _MASK32
    return x0 | (x1 << np.uint64(32))


# -- Threefry2x64 -----------------------------------------------------------

_TF_PARITY = np.uint64(0x1BD11BDAA9FC1A22)
_TF_ROT = np.array([16, 42, 12, 31, 16, 32, 24, 21], dtype=np.uint64)


@jit
def threefry_u64(c0, c1, k0, k1, rounds):
    """Scalar twin of :func:`repro.rng.threefry.threefry_uint64` (word 0)."""
    k2 = _TF_PARITY ^ k0 ^ k1
    x0 = c0 + k0
    x1 = c1 + k1
    for r in range(rounds):
        x0 = x0 + x1
        rot = _TF_ROT[r % 8]
        x1 = (x1 << rot) | (x1 >> (np.uint64(64) - rot))
        x1 = x1 ^ x0
        if (r + 1) % 4 == 0:
            inject = (r + 1) // 4
            ia = inject % 3
            ib = (inject + 1) % 3
            ka = k0 if ia == 0 else (k1 if ia == 1 else k2)
            kb = k0 if ib == 0 else (k1 if ib == 1 else k2)
            x0 = x0 + ka
            x1 = x1 + kb + np.uint64(inject)
    return x0


# -- Checkpointed xoshiro256** ----------------------------------------------


@jit
def xoshiro_fill(seed_u, r_u, j_u, n_lanes, state, out):
    """Fill ``out`` with the checkpoint-``(r, j)`` bit stream.

    Scalar twin of :func:`repro.rng.xoshiro.checkpoint_bits` for one
    column: seeds ``n_lanes`` lane states from ``(seed, r, j, lane)``
    (into the caller-provided ``(4, n_lanes)`` uint64 scratch ``state``)
    and emits the interleaved lane outputs — position ``t*n_lanes + l``
    holds lane ``l``'s step-``t`` output — until ``out`` (uint64,
    length = sample count) is full.
    """
    base = mix_key3(seed_u, r_u, j_u)
    for lane in range(n_lanes):
        key = splitmix64(base ^ (np.uint64(lane) * _GAMMA + _ONE64))
        for w in range(4):
            state[w, lane] = splitmix64(key + _GAMMA * np.uint64(w))
    count = out.shape[0]
    steps = (count + n_lanes - 1) // n_lanes
    for t in range(steps):
        for lane in range(n_lanes):
            pos = t * n_lanes + lane
            if pos >= count:
                break
            s0 = state[0, lane]
            s1 = state[1, lane]
            s2 = state[2, lane]
            s3 = state[3, lane]
            result = s1 * np.uint64(5)
            result = ((result << np.uint64(7)) |
                      (result >> np.uint64(57))) * np.uint64(9)
            tt = s1 << np.uint64(17)
            s2 = s2 ^ s0
            s3 = s3 ^ s1
            s1 = s1 ^ s2
            s0 = s0 ^ s3
            s2 = s2 ^ tt
            s3 = (s3 << np.uint64(45)) | (s3 >> np.uint64(19))
            state[0, lane] = s0
            state[1, lane] = s1
            state[2, lane] = s2
            state[3, lane] = s3
            out[pos] = result


# -- Deterministic Box–Muller transcendentals -------------------------------
# Scalar twins of repro.rng.detmath — same fdlibm constants, same
# operation order, so vectorized and scalar evaluation agree bit-for-bit.

_LN2_HI = 6.93147180369123816490e-01
_LN2_LO = 1.90821492927058770002e-10
_LG1 = 6.666666666666735130e-01
_LG2 = 3.999999999940941908e-01
_LG3 = 2.857142874366239149e-01
_LG4 = 2.222219843214978396e-01
_LG5 = 1.818357216161805012e-01
_LG6 = 1.531383769920937332e-01
_LG7 = 1.479819860511658591e-01
_SQRT_HALF = 0.70710678118654752440
_S1 = -1.66666666666666324348e-01
_S2 = 8.33333333332248946124e-03
_S3 = -1.98412698298579493134e-04
_S4 = 2.75573137070700676789e-06
_S5 = -2.50507602534068634195e-08
_S6 = 1.58969099521155010221e-10
_C1 = 4.16666666666666019037e-02
_C2 = -1.38888888888741095749e-03
_C3 = 2.48015872894767294178e-05
_C4 = -2.75573143513906633035e-07
_C5 = 2.08757232129817482790e-09
_C6 = -1.13596475577881948265e-11
_PI_OVER_2 = 1.5707963267948966


@jit
def log_det(x):
    """Scalar twin of :func:`repro.rng.detmath.det_log` (positive normal x)."""
    m, e = math.frexp(x)
    dk = float(e)
    if m < _SQRT_HALF:
        m = m + m
        dk = dk - 1.0
    f = m - 1.0
    hfsq = 0.5 * f * f
    s = f / (2.0 + f)
    z = s * s
    w = z * z
    t1 = w * (_LG2 + w * (_LG4 + w * _LG6))
    t2 = z * (_LG1 + w * (_LG3 + w * (_LG5 + w * _LG7)))
    r = t2 + t1
    return dk * _LN2_HI - ((hfsq - (s * (hfsq + r) + dk * _LN2_LO)) - f)


@jit
def cos_2pi_det(u):
    """Scalar twin of :func:`repro.rng.detmath.det_cos_2pi` (u in [0, 1))."""
    t = 4.0 * u
    n = math.floor(t + 0.5)
    g = t - n
    theta = g * _PI_OVER_2
    z = theta * theta

    r_s = _S2 + z * (_S3 + z * (_S4 + z * (_S5 + z * _S6)))
    sin_k = theta + (z * theta) * (_S1 + z * r_s)

    r_c = z * (_C1 + z * (_C2 + z * (_C3 + z * (_C4 + z * (_C5 + z * _C6)))))
    ax = abs(theta)
    if ax < 0.3:
        qx = 0.0
    elif ax > 0.78125:
        qx = 0.28125
    else:
        qx = 0.25 * ax
    hz = 0.5 * z - qx
    a = 1.0 - qx
    cos_k = a - (hz - z * r_c)

    q = int(n) & 3
    if q == 0:
        return cos_k
    elif q == 1:
        return -sin_k
    elif q == 2:
        return -cos_k
    return sin_k


# -- bits → entry transforms ------------------------------------------------

_HALF_BIT = np.uint64(0x80000000)
_TWO31 = 2147483648.0
_TWO32F = 4294967296.0


@jit
def u64_to_uniform(bits):
    """Scalar twin of the ``uniform`` transform: signed low 32 bits / 2^31."""
    lo = bits & _MASK32
    x = np.float64(lo)
    if lo >= _HALF_BIT:
        x = x - _TWO32F
    return x / _TWO31


@jit
def u64_to_uniform_scaled(bits):
    """Scalar twin of ``uniform_scaled``: the raw signed 32-bit integer."""
    lo = bits & _MASK32
    x = np.float64(lo)
    if lo >= _HALF_BIT:
        x = x - _TWO32F
    return x


@jit
def u64_to_rademacher(bits):
    """Scalar twin of ``rademacher``: +-1 from bit 33."""
    if (bits >> np.uint64(33)) & _ONE64:
        return 1.0
    return -1.0


@jit
def u64_to_gaussian(bits):
    """Scalar twin of ``gaussian``: deterministic Box–Muller on the halves."""
    hi = np.float64(bits >> np.uint64(32))
    lo = np.float64(bits & _MASK32)
    u1 = (hi + 0.5) / _TWO32F
    u2 = (lo + 0.5) / _TWO32F
    return math.sqrt(-2.0 * log_det(u1)) * cos_2pi_det(u2)


@jit
def u64_to_value(bits, dist_code):
    """Dispatch on a :data:`DIST_CODES` code inside a fused kernel."""
    if dist_code == 0:
        return u64_to_uniform(bits)
    elif dist_code == 1:
        return u64_to_uniform_scaled(bits)
    elif dist_code == 2:
        return u64_to_rademacher(bits)
    return u64_to_gaussian(bits)
