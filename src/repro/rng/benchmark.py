"""Microbenchmarks for RNG throughput and memory bandwidth.

Section V-A of the paper uses STREAMBenchmark.jl to measure each machine's
copy bandwidth and compares it against the rate of generating *short*
random vectors ("length of 10000"), because the blocked algorithms only
ever generate short vectors.  The ratio of these two rates is the paper's
``h`` parameter (cost of one random number relative to one memory access,
Section III-A): Frontera has fast short-vector RNG (small ``h``, favouring
Algorithm 3), Perlmutter has higher bandwidth (larger effective ``h``,
favouring Algorithm 4).

This module provides the same probes for the host running the
reproduction: a STREAM-style copy benchmark and per-(generator,
distribution) sample-rate measurements, combined into an empirical
estimate of ``h`` that can parameterize :class:`repro.model.MachineModel`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .base import SketchingRNG, make_rng

__all__ = ["stream_copy_bandwidth", "rng_sample_rate", "estimate_h", "RngProbe"]


def stream_copy_bandwidth(n_elements: int = 2_000_000, repeats: int = 5) -> float:
    """STREAM "copy" bandwidth in bytes/second (counting read + write).

    Copies a float64 vector with ``dst[:] = src`` *repeats* times and
    reports the best rate, as STREAM does, to approximate the machine's
    sustainable bandwidth.
    """
    if n_elements < 1 or repeats < 1:
        raise ValueError("n_elements and repeats must be positive")
    src = np.random.default_rng(0).random(n_elements)
    dst = np.empty_like(src)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        dst[:] = src
        best = min(best, time.perf_counter() - t0)
    return 2.0 * src.nbytes / best


def rng_sample_rate(rng: SketchingRNG, vector_length: int = 10_000,
                    batch_columns: int = 64, repeats: int = 5) -> float:
    """Samples/second for short-vector generation (the paper's regime).

    Generates ``(vector_length, batch_columns)`` blocks — short columns, as
    the blocked kernels do — and reports the best rate over *repeats*.
    """
    if vector_length < 1 or batch_columns < 1 or repeats < 1:
        raise ValueError("all probe sizes must be positive")
    js = np.arange(batch_columns, dtype=np.int64)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        rng.column_block_batch(0, vector_length, js)
        best = min(best, time.perf_counter() - t0)
    return vector_length * batch_columns / best


@dataclass(frozen=True)
class RngProbe:
    """Result of probing one (generator kind, distribution) combination."""

    kind: str
    dist: str
    samples_per_second: float
    copy_bandwidth_bytes: float
    h: float

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.kind}/{self.dist}: {self.samples_per_second:.3e} samples/s, "
            f"copy {self.copy_bandwidth_bytes:.3e} B/s, h = {self.h:.3f}"
        )


def estimate_h(kind: str = "xoshiro", dist: str = "uniform", seed: int = 0,
               vector_length: int = 10_000, element_bytes: int = 8) -> RngProbe:
    """Estimate the paper's ``h`` on the current host.

    ``h`` = (time to generate one entry) / (time to move one entry through
    memory) = (bytes/s of copy) / (element_bytes * samples/s).  ``h < 1``
    is the regime where on-the-fly regeneration beats reading a stored
    sketch (Section III-A's standing assumption).
    """
    rng = make_rng(kind, seed, dist)
    rate = rng_sample_rate(rng, vector_length=vector_length)
    bw = stream_copy_bandwidth()
    h = bw / (element_bytes * rate)
    return RngProbe(kind=kind, dist=dist, samples_per_second=rate,
                    copy_bandwidth_bytes=bw, h=h)
