"""Vectorized SplitMix64 — the library's seeding and mixing primitive.

SplitMix64 (Steele, Lea & Flood, 2014) is the generator Vigna recommends
for seeding the xoshiro family.  We use it in three roles:

1. expanding a user seed into xoshiro256** initial states,
2. hashing ``(seed, block-row offset r, sparse row j)`` tuples into the
   per-checkpoint states of the blocked xoshiro generator (Section IV-B of
   the paper: "we can set the state to be the row and column coordinate of
   the entry ... utilizing blocks as checkpoints"), and
3. deriving Philox keys from user seeds.

All functions operate elementwise on ``uint64`` arrays with NumPy's
wrap-around arithmetic, so the whole seeding path is vectorized.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GOLDEN_GAMMA", "splitmix64", "splitmix64_stream", "mix_key"]

#: The odd 64-bit constant 2^64 / phi used as the SplitMix64 increment.
GOLDEN_GAMMA = np.uint64(0x9E3779B97F4A7C15)

_M1 = np.uint64(0xBF58476D1CE4E5B9)
_M2 = np.uint64(0x94D049BB133111EB)


def splitmix64(x: np.ndarray | int) -> np.ndarray:
    """Apply the SplitMix64 finalizer to *x* (elementwise).

    This is the output ("mix") function of SplitMix64: a bijective avalanche
    permutation of ``uint64``.  Passing consecutive integers through it
    yields the canonical SplitMix64 stream when offset by
    :data:`GOLDEN_GAMMA` multiples, which is exactly what
    :func:`splitmix64_stream` does.
    """
    z = np.asarray(x, dtype=np.uint64)
    with np.errstate(over="ignore"):
        z = (z + GOLDEN_GAMMA) if z.ndim == 0 else z + GOLDEN_GAMMA
        z = (z ^ (z >> np.uint64(30))) * _M1
        z = (z ^ (z >> np.uint64(27))) * _M2
        z = z ^ (z >> np.uint64(31))
    return z


def splitmix64_stream(seed: int, count: int) -> np.ndarray:
    """First *count* outputs of SplitMix64 seeded with *seed* (vectorized).

    Equivalent to repeatedly advancing the scalar generator, because the
    SplitMix64 state after ``k`` steps is ``seed + k * GOLDEN_GAMMA``.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    base = np.uint64(seed & 0xFFFFFFFFFFFFFFFF)
    with np.errstate(over="ignore"):
        # The scalar generator increments its state by GOLDEN_GAMMA and
        # then mixes, so output k mixes state ``seed + (k+1) * GAMMA``.
        states = base + GOLDEN_GAMMA * np.arange(1, count + 1, dtype=np.uint64)
        z = (states ^ (states >> np.uint64(30))) * _M1
        z = (z ^ (z >> np.uint64(27))) * _M2
        z = z ^ (z >> np.uint64(31))
    return z


def mix_key(*parts: int | np.ndarray) -> np.ndarray:
    """Hash a tuple of integers (or integer arrays) into one ``uint64``.

    Broadcasting applies: ``mix_key(seed, r, js)`` with a vector ``js``
    returns a vector of per-``j`` keys.  Each part is folded in through a
    SplitMix64 round, so distinct tuples map to well-separated states; this
    is the checkpoint-key function for the blocked xoshiro generator.
    """
    if not parts:
        raise ValueError("mix_key needs at least one part")
    acc = np.uint64(0x243F6A8885A308D3)  # pi fractional bits: arbitrary non-zero
    with np.errstate(over="ignore"):
        for p in parts:
            arr = np.asarray(p)
            if arr.dtype.kind not in "iu":
                raise TypeError(f"mix_key parts must be integers, got {arr.dtype}")
            u = arr.astype(np.int64).view(np.uint64) if arr.dtype.kind == "i" else arr.astype(np.uint64)
            acc = splitmix64(acc ^ u)
    return acc
