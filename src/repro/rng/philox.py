"""Vectorized Philox4x32 counter-based RNG (Random123 family).

The paper (Section IV-B1) discusses counter-based RNGs as the "in theory
ideal approach" for on-the-fly sketch generation because the value at any
matrix coordinate can be produced directly from a counter, with no
sequential state.  RandBLAS adopts CBRNGs for exactly this reason (Section
IV-C).  This module implements Philox4x32 from the Salmon et al. SC'11
paper, vectorized over NumPy arrays of counters: one call produces the
random words for an arbitrary set of ``(row, column)`` coordinates of the
sketching matrix ``S``, independent of any blocking or thread schedule.

The implementation follows the reference constants:

* multipliers ``0xD2511F53`` and ``0xCD9E8D57``;
* Weyl key increments ``0x9E3779B9`` (golden ratio) and ``0xBB67AE85``
  (sqrt(3) - 1);
* 10 rounds by default (Philox4x32-10).

Only ``uint32``/``uint64`` NumPy arithmetic is used, so the generator is
reproducible across platforms.
"""

from __future__ import annotations

import numpy as np

from .splitmix import splitmix64

__all__ = ["PHILOX_DEFAULT_ROUNDS", "philox4x32", "philox_uint64", "key_from_seed"]

PHILOX_DEFAULT_ROUNDS = 10

_MUL_A = np.uint64(0xD2511F53)
_MUL_B = np.uint64(0xCD9E8D57)
_WEYL_A = np.uint32(0x9E3779B9)
_WEYL_B = np.uint32(0xBB67AE85)
_LO32 = np.uint64(0xFFFFFFFF)


def key_from_seed(seed: int) -> tuple[np.uint32, np.uint32]:
    """Derive the 2x32-bit Philox key from a 64-bit user seed.

    The seed is avalanche-mixed first so that low-entropy seeds (0, 1, 2…)
    still produce well-separated key pairs.
    """
    mixed = int(splitmix64(np.uint64(seed & 0xFFFFFFFFFFFFFFFF)))
    return np.uint32(mixed & 0xFFFFFFFF), np.uint32((mixed >> 32) & 0xFFFFFFFF)


def _mulhilo32(a: np.uint64, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """32x32 -> 64 bit multiply returning (hi, lo) 32-bit words.

    *b* is a ``uint32`` array; the product is formed in ``uint64`` (exact,
    since both operands fit in 32 bits).
    """
    prod = a * b.astype(np.uint64)
    hi = (prod >> np.uint64(32)).astype(np.uint32)
    lo = (prod & _LO32).astype(np.uint32)
    return hi, lo


def philox4x32(
    c0: np.ndarray,
    c1: np.ndarray,
    c2: np.ndarray,
    c3: np.ndarray,
    key: tuple[np.uint32, np.uint32],
    rounds: int = PHILOX_DEFAULT_ROUNDS,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Run Philox4x32 on an array of counters.

    Parameters
    ----------
    c0, c1, c2, c3:
        ``uint32`` arrays (broadcastable to a common shape) holding the four
        counter words of each lane.
    key:
        ``(k0, k1)`` pair of ``uint32`` key words (see :func:`key_from_seed`).
        Each word may also be a ``uint32`` *array* (e.g. shape ``(k, 1, 1)``
        holding one key per sketch of a batch); the round function is
        purely elementwise, so every slice of the broadcast output is
        bit-identical to a scalar-key call with that slice's key.
    rounds:
        Number of S-P rounds; 10 is the standard "crush-resistant" choice,
        7 is the commonly used faster variant.

    Returns
    -------
    Four ``uint32`` arrays of the common broadcast shape: the random output
    words ``x0..x3`` for each lane.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    x0, x1, x2, x3 = (
        np.broadcast_arrays(
            np.asarray(c0, dtype=np.uint32),
            np.asarray(c1, dtype=np.uint32),
            np.asarray(c2, dtype=np.uint32),
            np.asarray(c3, dtype=np.uint32),
        )
    )
    x0 = x0.copy(); x1 = x1.copy(); x2 = x2.copy(); x3 = x3.copy()
    k0 = np.asarray(key[0], dtype=np.uint32)
    k1 = np.asarray(key[1], dtype=np.uint32)
    with np.errstate(over="ignore"):
        for _ in range(rounds):
            hi0, lo0 = _mulhilo32(_MUL_A, x0)
            hi1, lo1 = _mulhilo32(_MUL_B, x2)
            # Philox round permutation (Salmon et al., Table 2):
            new_x0 = hi1 ^ x1 ^ k0
            new_x1 = lo1
            new_x2 = hi0 ^ x3 ^ k1
            new_x3 = lo0
            x0, x1, x2, x3 = new_x0, new_x1, new_x2, new_x3
            k0 = k0 + _WEYL_A
            k1 = k1 + _WEYL_B
    return x0, x1, x2, x3


def philox_uint64(
    rows: np.ndarray,
    cols: np.ndarray,
    key: tuple[np.uint32, np.uint32],
    rounds: int = PHILOX_DEFAULT_ROUNDS,
) -> np.ndarray:
    """One ``uint64`` of random bits per ``(row, col)`` coordinate.

    This is the coordinate-addressed access that makes the sketching matrix
    ``S`` a *function* rather than stored data: ``S[i, j]`` is derived from
    the bits returned for counter ``(i, j)``.  The counter layout packs the
    64-bit row index into words (c0, c1) and the column index into (c2, c3),
    so any coordinates up to 2^63 are collision-free.

    Returns the low two output words packed as ``x0 | (x1 << 32)``.
    """
    r = np.asarray(rows, dtype=np.uint64)
    c = np.asarray(cols, dtype=np.uint64)
    c0 = (r & _LO32).astype(np.uint32)
    c1 = (r >> np.uint64(32)).astype(np.uint32)
    c2 = (c & _LO32).astype(np.uint32)
    c3 = (c >> np.uint64(32)).astype(np.uint32)
    x0, x1, _, _ = philox4x32(c0, c1, c2, c3, key, rounds=rounds)
    return x0.astype(np.uint64) | (x1.astype(np.uint64) << np.uint64(32))
