"""Vectorized xoshiro256** with block "checkpoints".

Section IV-B2 of the paper selects the xoshiro (XOR-shift/rotate) family
for production use: it is markedly faster than counter-based generators,
and although it is *sequential* (each draw mutates the state), the blocked
structure of the sketching algorithms means the state only needs to be
re-seeded once per block — "utilizing blocks as checkpoints".  The paper's
Julia implementation uses a SIMD xoshiro with several interleaved lanes;
we mirror that with NumPy arrays of lane states, so one :func:`xoshiro_next`
call advances every lane at once.

Checkpoint semantics
--------------------
The value stream for a checkpoint ``(r, j)`` (``r`` = row offset of the
current block of ``S``, ``j`` = sparse-matrix row, i.e. column of ``S``) is
defined by:

1. hashing ``(seed, r, j, lane)`` through SplitMix64 into per-lane
   4-word states (:func:`seed_states`), and
2. emitting, at step ``t``, the lane-``l`` output into position
   ``t * n_lanes + l`` — the interleaved order a SIMD register naturally
   produces.

Consequently the generated sketch depends on the blocking parameters
(``r`` changes with ``b_d``) — exactly the reproducibility caveat the paper
accepts for xoshiro, and the reason the Philox generator in
:mod:`repro.rng.philox` exists as the blocking-independent alternative.
"""

from __future__ import annotations

import numpy as np

from .splitmix import GOLDEN_GAMMA, mix_key, splitmix64

__all__ = ["DEFAULT_LANES", "seed_states", "xoshiro_next", "checkpoint_bits",
           "checkpoint_bits_stacked"]

#: Number of interleaved lanes.  The paper's SIMD kernels interleave 8
#: 64-bit lanes (one 512-bit register); the NumPy realization amortizes
#: interpreter overhead across a wider virtual register, so the default is
#: 64 lanes (the stream layout is the same interleaving, just wider).
DEFAULT_LANES = 64

_R7 = np.uint64(7)
_R45 = np.uint64(45)
_R17 = np.uint64(17)
_FIVE = np.uint64(5)
_NINE = np.uint64(9)


def _rotl(x: np.ndarray, k: np.uint64) -> np.ndarray:
    """Rotate-left each ``uint64`` element of *x* by *k* bits."""
    return (x << k) | (x >> (np.uint64(64) - k))


def seed_states(keys: np.ndarray) -> np.ndarray:
    """Expand an array of ``uint64`` keys into xoshiro256** states.

    Returns an array of shape ``(4,) + keys.shape``.  Each key is expanded
    through four SplitMix64 steps, Vigna's recommended seeding procedure;
    SplitMix64's avalanche guarantees no state is all-zero in practice (an
    all-zero state would be a fixed point of the generator).
    """
    keys = np.asarray(keys, dtype=np.uint64)
    state = np.empty((4,) + keys.shape, dtype=np.uint64)
    with np.errstate(over="ignore"):
        for w in range(4):
            state[w] = splitmix64(keys + GOLDEN_GAMMA * np.uint64(w))
    return state


def xoshiro_next(state: np.ndarray) -> np.ndarray:
    """Advance every lane of *state* one step; return the lane outputs.

    *state* has shape ``(4,) + lane_shape`` and is updated in place.  The
    output is the xoshiro256** scrambler ``rotl(s1 * 5, 7) * 9`` of shape
    ``lane_shape``.
    """
    s0, s1, s2, s3 = state[0], state[1], state[2], state[3]
    with np.errstate(over="ignore"):
        result = _rotl(s1 * _FIVE, _R7) * _NINE
        t = s1 << _R17
        s2 ^= s0
        s3 ^= s1
        s1 ^= s2
        s0 ^= s3
        s2 ^= t
        state[3] = _rotl(s3, _R45)
    state[0], state[1], state[2] = s0, s1, s2
    return result


def checkpoint_bits(
    seed: int,
    r: int,
    js: np.ndarray,
    count: int,
    n_lanes: int = DEFAULT_LANES,
) -> np.ndarray:
    """Random bits for the checkpoints ``(r, j)`` for every ``j`` in *js*.

    Returns a ``uint64`` array of shape ``(count, len(js))`` whose column
    ``t`` is the first *count* outputs of the checkpoint stream for
    ``(r, js[t])``.  This is the batched form of the paper's
    ``g.set_state(r, j); g.get_samples(v)`` pair (Algorithm 3 lines 7-8 /
    Algorithm 4 lines 6-7), vectorized across both the sample index and the
    sparse rows so a whole block's worth of sketch columns is produced with
    a handful of wide NumPy operations.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if n_lanes < 1:
        raise ValueError(f"n_lanes must be >= 1, got {n_lanes}")
    js = np.asarray(js, dtype=np.int64)
    ncols = js.shape[0]
    if count == 0 or ncols == 0:
        return np.zeros((count, ncols), dtype=np.uint64)
    # Per-(j, lane) keys: shape (n_lanes, ncols).
    lanes = np.arange(n_lanes, dtype=np.uint64)[:, None]
    base = mix_key(np.int64(seed), np.int64(r), js)[None, :]  # (1, ncols)
    with np.errstate(over="ignore"):
        keys = splitmix64(base ^ (lanes * GOLDEN_GAMMA + np.uint64(1)))
    state = seed_states(keys)  # (4, n_lanes, ncols)
    steps = -(-count // n_lanes)
    out = np.empty((steps, n_lanes, ncols), dtype=np.uint64)
    for t in range(steps):
        out[t] = xoshiro_next(state)
    return out.reshape(steps * n_lanes, ncols)[:count]


def checkpoint_bits_stacked(
    seeds,
    r: int,
    js: np.ndarray,
    count: int,
    n_lanes: int = DEFAULT_LANES,
) -> np.ndarray:
    """:func:`checkpoint_bits` for several seeds through one pipeline.

    Returns a ``uint64`` array of shape ``(len(seeds), count, len(js))``
    whose slice ``[t]`` is **bit-identical** to
    ``checkpoint_bits(seeds[t], r, js, count, n_lanes)``: the seeds are
    stacked along a leading axis of the lane-state arrays and every
    seeding/advance operation is elementwise, so the per-seed streams are
    unchanged — only the NumPy dispatch cost of the step loop is shared
    across the batch.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if n_lanes < 1:
        raise ValueError(f"n_lanes must be >= 1, got {n_lanes}")
    js = np.asarray(js, dtype=np.int64)
    ncols = js.shape[0]
    k = len(seeds)
    if count == 0 or ncols == 0:
        return np.zeros((k, count, ncols), dtype=np.uint64)
    lanes = np.arange(n_lanes, dtype=np.uint64)[None, :, None]
    base = np.stack([mix_key(np.int64(int(s)), np.int64(r), js)
                     for s in seeds])[:, None, :]  # (k, 1, ncols)
    with np.errstate(over="ignore"):
        keys = splitmix64(base ^ (lanes * GOLDEN_GAMMA + np.uint64(1)))
    state = seed_states(keys)  # (4, k, n_lanes, ncols)
    steps = -(-count // n_lanes)
    out = np.empty((steps, k, n_lanes, ncols), dtype=np.uint64)
    for t in range(steps):
        out[t] = xoshiro_next(state)
    return (out.transpose(1, 0, 2, 3)
               .reshape(k, steps * n_lanes, ncols)[:, :count])
