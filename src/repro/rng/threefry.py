"""Vectorized Threefry2x64 counter-based RNG (Random123 family).

Random123 (Salmon et al., SC'11) ships two crush-resistant CBRNG
families: the multiplication-based Philox (see
:mod:`repro.rng.philox`) and the Threefish-derived, add-rotate-xor
Threefry implemented here.  The paper evaluated "the generators in
Random123" as a class; providing both lets the RNG ablation compare the
families' cost structure on this substrate (Threefry trades Philox's
32x32 multiplies for rotations, which lands differently on different
hardware — and differently again under NumPy).

Threefry2x64-20 follows the reference constants: the Threefish-256 key
parity constant, the 8-round rotation schedule for the 2x64 variant, and
a key injection every 4 rounds.
"""

from __future__ import annotations

import numpy as np

from .splitmix import splitmix64

__all__ = ["THREEFRY_DEFAULT_ROUNDS", "threefry2x64", "threefry_uint64",
           "key_pair_from_seed"]

THREEFRY_DEFAULT_ROUNDS = 20

#: Threefish key-schedule parity constant (SKEIN_KS_PARITY64).
_PARITY = np.uint64(0x1BD11BDAA9FC1A22)

#: Rotation schedule for Threefry2x64 (reference implementation).
_ROTATIONS = (16, 42, 12, 31, 16, 32, 24, 21)


def key_pair_from_seed(seed: int) -> tuple[np.uint64, np.uint64]:
    """Expand a user seed into the two 64-bit Threefry key words."""
    k0 = splitmix64(np.uint64(seed & 0xFFFFFFFFFFFFFFFF))
    k1 = splitmix64(k0)
    return np.uint64(k0), np.uint64(k1)


def _rotl64(x: np.ndarray, k: int) -> np.ndarray:
    kk = np.uint64(k)
    return (x << kk) | (x >> (np.uint64(64) - kk))


def threefry2x64(
    c0: np.ndarray,
    c1: np.ndarray,
    key: tuple[np.uint64, np.uint64],
    rounds: int = THREEFRY_DEFAULT_ROUNDS,
) -> tuple[np.ndarray, np.ndarray]:
    """Run Threefry2x64 on arrays of counter words.

    Parameters
    ----------
    c0, c1:
        ``uint64`` arrays (broadcastable) holding each lane's counter.
    key:
        ``(k0, k1)`` key words (see :func:`key_pair_from_seed`).  Each word
        may also be a ``uint64`` *array* (e.g. shape ``(k, 1, 1)`` holding
        one key per sketch of a batch); the mix rounds are purely
        elementwise, so every slice of the broadcast output is
        bit-identical to a scalar-key call with that slice's key.
    rounds:
        Number of mix rounds; 20 is the crush-resistant standard, 13 the
        common fast variant.

    Returns
    -------
    ``(x0, x1)`` — two ``uint64`` output arrays of the broadcast shape.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    k0 = np.asarray(key[0], dtype=np.uint64)
    k1 = np.asarray(key[1], dtype=np.uint64)
    k2 = _PARITY ^ k0 ^ k1
    ks = (k0, k1, k2)
    x0, x1 = np.broadcast_arrays(np.asarray(c0, dtype=np.uint64),
                                 np.asarray(c1, dtype=np.uint64))
    with np.errstate(over="ignore"):
        x0 = x0 + ks[0]
        x1 = x1 + ks[1]
        for r in range(rounds):
            x0 = x0 + x1
            x1 = _rotl64(x1, _ROTATIONS[r % 8])
            x1 = x1 ^ x0
            if (r + 1) % 4 == 0:
                inject = (r + 1) // 4
                x0 = x0 + ks[inject % 3]
                x1 = x1 + ks[(inject + 1) % 3] + np.uint64(inject)
    return x0, x1


def threefry_uint64(
    rows: np.ndarray,
    cols: np.ndarray,
    key: tuple[np.uint64, np.uint64],
    rounds: int = THREEFRY_DEFAULT_ROUNDS,
) -> np.ndarray:
    """One ``uint64`` of random bits per ``(row, col)`` coordinate.

    The coordinate-addressed access mirroring
    :func:`repro.rng.philox_uint64`: the row index is counter word 0, the
    column index word 1, and the first output word is returned.
    """
    x0, _ = threefry2x64(np.asarray(rows, dtype=np.uint64),
                         np.asarray(cols, dtype=np.uint64),
                         key, rounds=rounds)
    return x0
