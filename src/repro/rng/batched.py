"""Batched sketch generation: the entries of *k* sketches in one pass.

The fixed-sparse-matrix serving pattern (arXiv 2310.15419) re-sketches
the same ``A`` many times with different seeds.  Once conversion and
planning are cached, what dominates a request is regenerating ``S`` —
and the counter-based generators let that cost amortize across a batch:
Philox and Threefry key their output on ``(seed-derived key, row,
column)``, and their round functions are purely elementwise, so stacking
the *keys* along a leading axis produces the bits of all ``k`` sketches
from **one** counter construction and one vectorized round pipeline.

:class:`BatchedSketchRNG` wraps ``k`` same-family, same-distribution
member generators and exposes the batched form of the
:meth:`~repro.rng.base.SketchingRNG.column_block_batch` contract:

``column_block_stack(r, d1, js)`` returns a C-contiguous ``(k, d1,
len(js))`` array whose slice ``[t]`` is **bit-identical** to
``members[t].column_block_batch(r, d1, js)``.  Counter-based families
take the stacked-key fast path; checkpointed families (xoshiro) and the
junk probe fall back to a per-member loop (still amortizing the Python
bookkeeping above them).  Per-member ``samples_generated`` accounting is
maintained exactly as if the members had been called independently.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigError
from ..utils.validation import check_nonnegative_int, check_positive_int
from .base import (PhiloxSketchRNG, SketchingRNG, ThreefrySketchRNG,
                   XoshiroSketchRNG, make_rng)
from .philox import philox_uint64
from .threefry import threefry_uint64
from .xoshiro import checkpoint_bits_stacked

__all__ = ["BatchedSketchRNG", "make_batched_rng"]

#: Target number of stacked lanes (``batch * d1 * column-chunk``) per RNG
#: call.  The round pipelines allocate a dozen same-sized intermediates,
#: so the chunk is sized to keep that working set inside the last-level
#: cache — the micro-tile that makes the batched tier *faster* per
#: element than huge single-sketch panels (which spill to DRAM) while
#: still amortizing the fixed NumPy dispatch cost of each pipeline pass
#: across the whole batch.  Chunking is bitwise-invisible: every family
#: keys its output on coordinates, never on call boundaries.
BATCH_CHUNK_LANES = 32768


class BatchedSketchRNG:
    """``k`` sketching generators evaluated as one stacked pipeline.

    Parameters
    ----------
    members:
        The per-sketch generators.  All must share the same family,
        distribution, and family parameters (rounds/lanes); each keeps
        its own seed.  Their ``samples_generated`` counters are advanced
        exactly as if each had been called independently.
    """

    def __init__(self, members: Sequence[SketchingRNG]) -> None:
        members = tuple(members)
        if not members:
            raise ConfigError("a batched RNG needs at least one member")
        family = members[0].family
        dist = members[0].dist
        for m in members[1:]:
            if m.family != family:
                raise ConfigError(
                    f"batched RNG members must share one family; got "
                    f"{family!r} and {m.family!r}")
            if m.dist.name != dist.name:
                raise ConfigError(
                    f"batched RNG members must share one distribution; got "
                    f"{dist.name!r} and {m.dist.name!r}")
        self.members = members
        self.family = family
        self.dist = dist
        self._stacked = self._stack_keys()

    # -- construction helpers ---------------------------------------------

    def _stack_keys(self):
        """Precompute the stacked-key arrays for counter-based members.

        Returns ``None`` when the family has no stacked fast path (the
        per-member loop is used instead).  Rounds must agree across
        members for the stacked pipeline to be a single call.
        """
        k = len(self.members)
        first = self.members[0]
        if type(first) is PhiloxSketchRNG and all(
                type(m) is PhiloxSketchRNG and m.rounds == first.rounds
                for m in self.members):
            k0 = np.array([m._key[0] for m in self.members],
                          dtype=np.uint32).reshape(k, 1, 1)
            k1 = np.array([m._key[1] for m in self.members],
                          dtype=np.uint32).reshape(k, 1, 1)
            return ("philox", (k0, k1), first.rounds)
        if type(first) is ThreefrySketchRNG and all(
                type(m) is ThreefrySketchRNG and m.rounds == first.rounds
                for m in self.members):
            k0 = np.array([m._key[0] for m in self.members],
                          dtype=np.uint64).reshape(k, 1, 1)
            k1 = np.array([m._key[1] for m in self.members],
                          dtype=np.uint64).reshape(k, 1, 1)
            return ("threefry", (k0, k1), first.rounds)
        if type(first) is XoshiroSketchRNG and all(
                type(m) is XoshiroSketchRNG and m.n_lanes == first.n_lanes
                for m in self.members):
            seeds = tuple(m.seed for m in self.members)
            return ("xoshiro", seeds, first.n_lanes)
        return None

    # -- properties ---------------------------------------------------------

    @property
    def batch(self) -> int:
        """Number of sketches generated per call."""
        return len(self.members)

    @property
    def blocking_independent(self) -> bool:
        return all(m.blocking_independent for m in self.members)

    @property
    def post_scale(self) -> float:
        return self.dist.post_scale

    @property
    def samples_generated(self) -> int:
        """Total entries generated across all members."""
        return sum(m.samples_generated for m in self.members)

    def reset_counters(self) -> None:
        for m in self.members:
            m.reset_counters()

    # -- core access ---------------------------------------------------------

    def _bits_chunk(self, r: int, d1: int, js_chunk: np.ndarray) -> np.ndarray:
        """Raw ``uint64`` bits of shape ``(k, d1, len(js_chunk))``."""
        kind, key, param = self._stacked
        if kind == "xoshiro":
            return checkpoint_bits_stacked(key, r, js_chunk, d1,
                                           n_lanes=param)
        rows = np.arange(r, r + d1, dtype=np.uint64)[:, None]
        cols = js_chunk.astype(np.uint64)[None, :]
        if kind == "philox":
            bits = philox_uint64(rows, cols, key, rounds=param)
        else:
            bits = threefry_uint64(rows, cols, key, rounds=param)
        # Scalar-key calls return (d1, g); the stacked key broadcasts the
        # leading batch axis in.  A batch of one stays 2-D — lift it.
        if bits.ndim == 2:
            bits = bits[None, :, :]
        return bits

    def column_block_stack(self, r: int, d1: int, js: np.ndarray) -> np.ndarray:
        """Entries ``S_t[r:r+d1, js]`` for every member ``t`` as ``(k, d1, g)``.

        Slice ``[t]`` is bit-identical to
        ``members[t].column_block_batch(r, d1, js)`` — the stacked
        pipeline is elementwise over the batch axis, the distribution
        transform is elementwise too, and the cache-sized column
        chunking (see :data:`BATCH_CHUNK_LANES`) only changes where call
        boundaries fall, never which coordinate produces which bits.
        """
        r = check_nonnegative_int(r, "r")
        d1 = check_positive_int(d1, "d1")
        js = np.asarray(js, dtype=np.int64)
        if js.ndim != 1:
            raise ConfigError(f"js must be 1-D, got ndim={js.ndim}")
        k = len(self.members)
        g = int(js.size)
        if self._stacked is None:
            # Fallback: per-member loop (mixed parameters, or families
            # without a stacked pipeline such as the junk probe).
            out = np.empty((k, d1, g), dtype=np.float64)
            for t, m in enumerate(self.members):
                out[t] = m.column_block_batch(r, d1, js)
            return out
        out = np.empty((k, d1, g), dtype=np.float64)
        chunk = max(1, BATCH_CHUNK_LANES // max(1, k * d1))
        for lo in range(0, g, chunk):
            hi = min(g, lo + chunk)
            bits = self._bits_chunk(r, d1, js[lo:hi])
            out[:, :, lo:hi] = self.dist.sample_from_bits(bits)
        for m in self.members:
            m.samples_generated += d1 * g
        return out


def make_batched_rng(kind: str, seeds: Sequence[int],
                     dist: str = "uniform", **kwargs) -> BatchedSketchRNG:
    """Build a :class:`BatchedSketchRNG` with one member per seed."""
    seeds = tuple(int(s) for s in seeds)
    if not seeds:
        raise ConfigError("make_batched_rng needs at least one seed")
    return BatchedSketchRNG([make_rng(kind, s, dist, **kwargs)
                             for s in seeds])
