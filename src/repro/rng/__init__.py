"""Random-number-generation substrate for on-the-fly sketching.

Implements the paper's two generator families — counter-based (Philox,
Section IV-B1) and checkpointed XOR-shift (xoshiro256**, Section IV-B2) —
behind the block-addressed :class:`SketchingRNG` interface that Algorithms
3 and 4 consume, together with the entry distributions of Section III-C
and the RNG-vs-bandwidth probes of Section V-A.
"""

from .base import (
    JunkRNG,
    PhiloxSketchRNG,
    SketchingRNG,
    ThreefrySketchRNG,
    XoshiroSketchRNG,
    make_rng,
)
from .batched import BatchedSketchRNG, make_batched_rng
from .benchmark import RngProbe, estimate_h, rng_sample_rate, stream_copy_bandwidth
from .detmath import det_cos_2pi, det_log
from .jit import NUMBA_AVAILABLE
from .distributions import (
    DISTRIBUTIONS,
    GAUSSIAN,
    RADEMACHER,
    UNIFORM,
    UNIFORM_SCALED,
    Distribution,
    get_distribution,
)
from .philox import philox4x32, philox_uint64
from .splitmix import mix_key, splitmix64, splitmix64_stream
from .threefry import key_pair_from_seed, threefry2x64, threefry_uint64
from .xoshiro import checkpoint_bits, seed_states, xoshiro_next

__all__ = [
    "JunkRNG",
    "PhiloxSketchRNG",
    "ThreefrySketchRNG",
    "SketchingRNG",
    "XoshiroSketchRNG",
    "make_rng",
    "BatchedSketchRNG",
    "make_batched_rng",
    "RngProbe",
    "estimate_h",
    "rng_sample_rate",
    "stream_copy_bandwidth",
    "det_cos_2pi",
    "det_log",
    "NUMBA_AVAILABLE",
    "DISTRIBUTIONS",
    "GAUSSIAN",
    "RADEMACHER",
    "UNIFORM",
    "UNIFORM_SCALED",
    "Distribution",
    "get_distribution",
    "philox4x32",
    "philox_uint64",
    "key_pair_from_seed",
    "threefry2x64",
    "threefry_uint64",
    "mix_key",
    "splitmix64",
    "splitmix64_stream",
    "checkpoint_bits",
    "seed_states",
    "xoshiro_next",
]
