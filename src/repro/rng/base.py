"""The sketching-RNG interface and its three implementations.

Algorithms 3 and 4 in the paper access the random matrix ``S`` exclusively
through the pair ``g.set_state(r, j); g.get_samples(v)`` — "give me the
``d1`` entries of column ``j`` of ``S`` that belong to the current row
block starting at offset ``r``".  This module defines that contract as
:class:`SketchingRNG` with a vectorized batch form (many ``j`` at once,
which is how the NumPy kernels call it), plus:

* :class:`PhiloxSketchRNG` — counter-based; ``S[i, j]`` is a pure function
  of the coordinate, so the sketch is reproducible independent of blocking
  and thread count (the RandBLAS-compatible option, Section IV-C);
* :class:`XoshiroSketchRNG` — checkpointed xoshiro256**; faster, but the
  sketch depends on the row-block offsets used (Section IV-B2);
* :class:`JunkRNG` — the paper's Section V-A upper-bound probe, replacing
  random generation with trivially cheap arithmetic to measure how much a
  hardware RNG could help.

Every implementation counts the entries it produced in
:attr:`SketchingRNG.samples_generated`, which the instrumented kernels
report alongside time (the "sample time" columns of Tables III and V).
"""

from __future__ import annotations

import abc

import numpy as np

from ..errors import ConfigError
from ..utils.validation import check_nonnegative_int, check_positive_int
from .distributions import Distribution, get_distribution
from .philox import PHILOX_DEFAULT_ROUNDS, key_from_seed, philox_uint64
from .threefry import THREEFRY_DEFAULT_ROUNDS, key_pair_from_seed, threefry_uint64
from .xoshiro import DEFAULT_LANES, checkpoint_bits

__all__ = [
    "SketchingRNG",
    "PhiloxSketchRNG",
    "ThreefrySketchRNG",
    "XoshiroSketchRNG",
    "JunkRNG",
    "make_rng",
]


class SketchingRNG(abc.ABC):
    """Coordinate-addressable generator for entries of the sketch ``S``.

    Subclasses define :meth:`column_block_batch`; the scalar
    :meth:`column_block` (the paper's ``set_state``/``get_samples`` pair) is
    derived from it, so batched and one-at-a-time access are bit-identical
    by construction.
    """

    #: Registry name of the generator family (``"philox"`` etc.); used by
    #: checkpoint fingerprints to rebuild an equivalent generator on resume.
    family: str = "abstract"

    def __init__(self, seed: int, dist: str | Distribution) -> None:
        self.seed = int(seed)
        self.dist = get_distribution(dist)
        #: Total number of sketch entries generated through this object.
        self.samples_generated = 0

    # -- core access ------------------------------------------------------

    @abc.abstractmethod
    def _bits_block(self, r: int, d1: int, js: np.ndarray) -> np.ndarray:
        """Raw ``uint64`` bits of shape ``(d1, len(js))`` for block ``(r, js)``."""

    def column_block_batch(self, r: int, d1: int, js: np.ndarray) -> np.ndarray:
        """Entries ``S[r:r+d1, js]`` as a dense ``(d1, len(js))`` array.

        ``js`` holds sparse-matrix row indices (columns of ``S``); they need
        not be sorted or unique.  This is the batched form of Algorithm 3
        lines 7-8 — the workhorse call of the vectorized kernels.
        """
        r = check_nonnegative_int(r, "r")
        d1 = check_positive_int(d1, "d1")
        js = np.asarray(js, dtype=np.int64)
        if js.ndim != 1:
            raise ConfigError(f"js must be 1-D, got ndim={js.ndim}")
        bits = self._bits_block(r, d1, js)
        self.samples_generated += int(bits.size)
        return self.dist.sample_from_bits(bits)

    def column_block(self, r: int, d1: int, j: int) -> np.ndarray:
        """Entries ``S[r:r+d1, j]`` — the scalar ``set_state`` / ``get_samples``."""
        return self.column_block_batch(r, d1, np.array([j]))[:, 0]

    # -- properties ---------------------------------------------------------

    @property
    @abc.abstractmethod
    def blocking_independent(self) -> bool:
        """True when the realized sketch does not depend on block offsets."""

    @property
    def post_scale(self) -> float:
        """Scalar to apply to the finished product (scaling trick support)."""
        return self.dist.post_scale

    # -- whole-matrix realization (tests, pre-generation baseline) ---------

    def materialize(self, d: int, m: int, b_d: int | None = None) -> np.ndarray:
        """Realize the full ``d x m`` sketch ``S`` as a dense array.

        For checkpointed generators the realized matrix depends on the
        row-block size ``b_d`` used during multiplication; pass the same
        value the kernel will use (default: one block of height ``d``).
        The returned matrix does **not** include :attr:`post_scale` — it
        matches what the kernels accumulate before their final scaling,
        so ``post_scale * (S @ A_dense)`` is the reference product.
        """
        d = check_positive_int(d, "d")
        m = check_positive_int(m, "m")
        b_d = d if b_d is None else check_positive_int(b_d, "b_d")
        S = np.empty((d, m), dtype=np.float64)
        js = np.arange(m, dtype=np.int64)
        for r in range(0, d, b_d):
            d1 = min(b_d, d - r)
            S[r:r + d1, :] = self.column_block_batch(r, d1, js)
        return S

    def reset_counters(self) -> None:
        """Zero the :attr:`samples_generated` counter."""
        self.samples_generated = 0


class PhiloxSketchRNG(SketchingRNG):
    """Counter-based sketch generator (Philox4x32).

    ``S[i, j]`` depends only on ``(seed, i, j)``: realized sketches are
    invariant to blocking, loop order, and thread count, at roughly the
    RNG cost penalty the paper measured for Random123-style generators.
    """

    family = "philox"

    def __init__(self, seed: int, dist: str | Distribution = "uniform",
                 rounds: int = PHILOX_DEFAULT_ROUNDS) -> None:
        super().__init__(seed, dist)
        self.rounds = check_positive_int(rounds, "rounds")
        self._key = key_from_seed(self.seed)

    def _bits_block(self, r: int, d1: int, js: np.ndarray) -> np.ndarray:
        rows = np.arange(r, r + d1, dtype=np.uint64)[:, None]
        cols = js.astype(np.uint64)[None, :]
        return philox_uint64(rows, cols, self._key, rounds=self.rounds)

    @property
    def blocking_independent(self) -> bool:
        return True


class ThreefrySketchRNG(SketchingRNG):
    """Counter-based sketch generator (Threefry2x64).

    The second Random123 family: identical contract to
    :class:`PhiloxSketchRNG` (coordinate-addressed, blocking- and
    thread-independent sketches) with an add-rotate-xor round function in
    place of Philox's wide multiplies.
    """

    family = "threefry"

    def __init__(self, seed: int, dist: str | Distribution = "uniform",
                 rounds: int = THREEFRY_DEFAULT_ROUNDS) -> None:
        super().__init__(seed, dist)
        self.rounds = check_positive_int(rounds, "rounds")
        self._key = key_pair_from_seed(self.seed)

    def _bits_block(self, r: int, d1: int, js: np.ndarray) -> np.ndarray:
        rows = np.arange(r, r + d1, dtype=np.uint64)[:, None]
        cols = js.astype(np.uint64)[None, :]
        return threefry_uint64(rows, cols, self._key, rounds=self.rounds)

    @property
    def blocking_independent(self) -> bool:
        return True


class XoshiroSketchRNG(SketchingRNG):
    """Checkpointed xoshiro256** sketch generator.

    The state is re-seeded from ``(seed, r, j)`` once per (block, column)
    checkpoint and then streamed across interleaved SIMD-style lanes, so
    the realized sketch depends on the row-block offsets (``b_d``) used —
    the reproducibility trade-off of Section IV-B2.
    """

    family = "xoshiro"

    def __init__(self, seed: int, dist: str | Distribution = "uniform",
                 n_lanes: int = DEFAULT_LANES) -> None:
        super().__init__(seed, dist)
        self.n_lanes = check_positive_int(n_lanes, "n_lanes")

    def _bits_block(self, r: int, d1: int, js: np.ndarray) -> np.ndarray:
        return checkpoint_bits(self.seed, r, js, d1, n_lanes=self.n_lanes)

    @property
    def blocking_independent(self) -> bool:
        return False


class JunkRNG(SketchingRNG):
    """Deterministic pseudo-entries from trivial arithmetic (Section V-A).

    The paper notes that replacing the RNG with "a number computed from
    simple addition" gives an upper bound on achievable kernel speed (about
    2x on shar_te2-b2), motivating hardware RNGs.  Entries are
    ``(((i + 3 j) mod 7) - 3) / 3`` — mean-zero, bounded, and cheap —
    computed directly in float to skip the bit-transform path.
    """

    family = "junk"

    def __init__(self, seed: int = 0, dist: str | Distribution = "uniform") -> None:
        super().__init__(seed, dist)

    def _bits_block(self, r: int, d1: int, js: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError("JunkRNG bypasses the bits path")

    def column_block_batch(self, r: int, d1: int, js: np.ndarray) -> np.ndarray:
        r = check_nonnegative_int(r, "r")
        d1 = check_positive_int(d1, "d1")
        js = np.asarray(js, dtype=np.int64)
        rows = np.arange(r, r + d1, dtype=np.int64)[:, None]
        vals = ((rows + 3 * js[None, :]) % 7 - 3) / 3.0
        self.samples_generated += int(vals.size)
        return vals

    @property
    def blocking_independent(self) -> bool:
        return True


_RNG_KINDS = {
    "philox": PhiloxSketchRNG,
    "threefry": ThreefrySketchRNG,
    "xoshiro": XoshiroSketchRNG,
    "junk": JunkRNG,
}


def make_rng(kind: str, seed: int, dist: str | Distribution = "uniform",
             **kwargs) -> SketchingRNG:
    """Factory: build a sketching RNG by name (``philox``/``threefry``/``xoshiro``/``junk``)."""
    try:
        cls = _RNG_KINDS[kind]
    except KeyError:
        raise ConfigError(
            f"unknown RNG kind {kind!r}; available: {sorted(_RNG_KINDS)}"
        ) from None
    return cls(seed, dist, **kwargs)
