"""The single instrumented runtime: ``Runtime.run(plan, A)``.

One engine behind every public entry point.  ``sketch()`` /
:class:`~repro.core.SketchOperator`, :class:`~repro.core.StreamingSketch`
(per absorbed batch), and :class:`~repro.parallel.ResilientExecutor` all
compile a :class:`~repro.plan.SketchPlan` and delegate here; the runtime
resolves the plan to one of three *drivers* and brackets the execution
with lifecycle events on its :class:`~repro.plan.EventBus`:

``serial``
    The single-pass blocked loop (:func:`repro.kernels.sketch_spmm`) —
    the zero-overhead path for sequential, non-resilient,
    non-checkpointed runs.
``engine``
    The resilient block executor (any thread count): per-task retries,
    deadlines, guardrails, degradation, durable checkpoints.
``pregen``
    The materialize-``S``-then-GEMM baseline (no row-block structure,
    so no checkpointing).
``process``
    The crash-tolerant multi-process pool
    (:mod:`repro.parallel.procpool`): N supervised worker processes,
    shared-memory tiles with claimed-before-commit verification,
    heartbeat liveness, deterministic requeue, and the
    process → thread → serial degradation ladder.

Lifecycle events: ``plan_compiled`` at entry, ``block_start`` /
``block_done`` around kernel invocations, ``checkpoint_written`` after
each durable snapshot, ``retry`` / ``degraded`` when the resilience
machinery intervenes, and ``done`` with the final stats.  Fault
injection subscribes to the ``task_start`` / ``rng_request`` /
``block_computed`` hook events (see
:meth:`repro.faults.FaultInjector.register`) instead of being threaded
through executor internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..errors import ConfigError, ShapeError
from ..kernels.stats import KernelStats
from .events import (
    BLOCK_DONE,
    BLOCK_START,
    DONE,
    FAULT_HOOK_EVENTS,
    PLAN_COMPILED,
    EventBus,
)
from .spec import SketchPlan

if TYPE_CHECKING:  # pragma: no cover
    from ..cache.policy import CachePolicy
    from ..cache.store import ArtifactCache
    from ..faults.injector import FaultInjector
    from ..rng.base import SketchingRNG
    from ..sparse.blocked_csr import BlockedCSR
    from ..sparse.csc import CSCMatrix

__all__ = ["SketchResult", "Runtime", "register_driver", "available_drivers"]


@dataclass
class SketchResult:
    """Outcome of one sketch application."""

    sketch: np.ndarray          # the d x n dense product (scaled if normalize)
    stats: KernelStats
    kernel_used: str
    scale: float                # normalization factor applied (1.0 if none)
    plan: "SketchPlan | None" = None  # the compiled plan, when one was built


RngFactory = Callable[[int], "SketchingRNG"]

#: Driver registry: name -> callable(runtime, plan, A, factory, blocked,
#: injector) -> (Ahat, stats).  ``register_driver`` adds entries, so a
#: future distributed/async driver plugs in without touching the runtime.
_DRIVERS: dict[str, Callable] = {}


def register_driver(name: str, fn: Callable) -> None:
    """Register an execution driver under *name* (replaces any previous)."""
    _DRIVERS[name] = fn


def available_drivers() -> tuple[str, ...]:
    """Names of the registered execution drivers."""
    return tuple(sorted(_DRIVERS))


def _serial_driver(runtime: "Runtime", plan: SketchPlan, A, factory,
                   blocked, injector):
    """Single-pass blocked loop — the pre-refactor sequential path."""
    from ..kernels.blocking import sketch_spmm

    bus = runtime.bus
    on_block = None
    if bus.has_subscribers(BLOCK_START, BLOCK_DONE):
        def on_block(phase: str, i: int, d1: int, j: int, n1: int) -> None:
            bus.emit(phase, task=(i, j), i=i, d1=d1, j=j, n1=n1,
                     kernel=plan.kernel)
    return sketch_spmm(
        A, plan.problem.d, factory(0), kernel=plan.kernel,
        b_d=plan.b_d, b_n=plan.b_n, backend=plan.backend,
        blocked=blocked, on_block=on_block,
    )


def _engine_driver(runtime: "Runtime", plan: SketchPlan, A, factory,
                   blocked, injector):
    """The resilient block executor (guarded or fast, any thread count)."""
    from ..parallel.executor import PlanExecutionEngine

    engine = PlanExecutionEngine(plan, A, factory, bus=runtime.bus,
                                 blocked=blocked, injector=injector)
    return engine.execute()


def _pregen_driver(runtime: "Runtime", plan: SketchPlan, A, factory,
                   blocked, injector):
    """Materialize ``S`` densely, then one GEMM (baseline kernel)."""
    from ..kernels.pregen import pregen_full

    return pregen_full(A, plan.problem.d, factory(0))


def _process_driver(runtime: "Runtime", plan: SketchPlan, A, factory,
                    blocked, injector):
    """The supervised multi-process worker pool (crash-tolerant)."""
    from ..parallel.procpool import ProcessPoolSupervisor

    supervisor = ProcessPoolSupervisor(plan, A, factory, bus=runtime.bus,
                                       injector=injector, blocked=blocked)
    return supervisor.run()


register_driver("serial", _serial_driver)
register_driver("engine", _engine_driver)
register_driver("pregen", _pregen_driver)
register_driver("process", _process_driver)


class Runtime:
    """Executes compiled :class:`SketchPlan` objects.

    Parameters
    ----------
    bus:
        The :class:`~repro.plan.EventBus` lifecycle events are emitted
        on; a private bus is created when omitted.  Subscribe before
        calling :meth:`run` — the engine snapshots hook subscriptions at
        entry.
    """

    def __init__(self, bus: EventBus | None = None) -> None:
        self.bus = bus if bus is not None else EventBus()
        # Instance-local driver overrides: consulted before the global
        # registry, so a long-lived caller (the serving daemon's warm
        # process pool) can re-route e.g. "process" plans onto a reused
        # supervisor without mutating global dispatch for everyone.
        self._local_drivers: dict[str, Callable] = {}

    def register_local_driver(self, name: str, fn: Callable) -> None:
        """Override driver *name* for this runtime instance only.

        The callable has the global driver signature
        ``fn(runtime, plan, A, factory, blocked, injector)`` and shadows
        the registry entry of the same name; other :class:`Runtime`
        instances are unaffected.
        """
        self._local_drivers[name] = fn

    # -- driver resolution ---------------------------------------------------

    def resolve_driver(self, plan: SketchPlan,
                       injector: "FaultInjector | None" = None) -> str:
        """Which driver this plan executes on.

        ``pregen`` plans always use the pregen driver; an explicit
        ``plan.driver`` wins otherwise; ``"auto"`` selects the engine
        when anything needs per-task machinery (threads, resilience,
        persistence, fault hooks) and the serial fast path otherwise —
        exactly the pre-refactor dispatch in ``SketchOperator.apply``.
        """
        if plan.kernel == "pregen":
            return "pregen"
        if plan.driver != "auto":
            return plan.driver
        if (plan.threads > 1 or plan.resilience is not None
                or plan.persistence.enabled or injector is not None
                or self.bus.has_subscribers(*FAULT_HOOK_EVENTS)):
            return "engine"
        return "serial"

    # -- execution -----------------------------------------------------------

    def run(self, plan: SketchPlan, A: "CSCMatrix", *,
            rng_factory: RngFactory | None = None,
            blocked: "BlockedCSR | None" = None,
            injector: "FaultInjector | None" = None,
            cache: "ArtifactCache | CachePolicy | None" = None
            ) -> SketchResult:
        """Execute *plan* against *A*; returns the sketch and its stats.

        Parameters
        ----------
        rng_factory:
            Override the plan's generator recipe with live generator
            instances (used by the streaming layer's offset views and by
            executor callers with custom factories); ``None`` builds
            generators from ``plan.rng``.
        blocked:
            Pre-built blocked CSR for Algorithm 4 (skips conversion).
        injector:
            A :class:`~repro.faults.FaultInjector` to wire into this
            run: registered on the bus for the task hooks and handed to
            the checkpoint manager for storage faults.  Testing only.
        cache:
            An :class:`~repro.cache.ArtifactCache` (or
            :class:`~repro.cache.CachePolicy`) for the "fixed A, many
            sketches" hot path: the Algorithm 4 blocked-CSR conversion
            of *A* is fetched from (or stored into) the cache keyed by
            the matrix content and ``b_n``, and a per-(kernel, backend)
            JIT warm-up marker records ``jit_compile_seconds`` so it is
            paid once per machine.  Cached and cold runs produce
            bit-identical sketches; a corrupt cache entry is quarantined
            and recomputed, never trusted.
        """
        if not isinstance(plan, SketchPlan):
            raise ConfigError(
                f"plan must be a SketchPlan, got {type(plan).__name__}"
            )
        if A.shape != (plan.problem.m, plan.problem.n):
            raise ShapeError(
                f"plan was compiled for a {plan.problem.m} x "
                f"{plan.problem.n} input, matrix has shape {A.shape}"
            )
        if injector is not None:
            injector.register(self.bus)
        factory = rng_factory if rng_factory is not None \
            else plan.rng_factory()
        driver_name = self.resolve_driver(plan, injector)
        if cache is not None:
            from ..cache.store import ArtifactCache

            cache = ArtifactCache.ensure(cache, bus=self.bus)
        hits_before = 0 if cache is None else cache.hit_total()
        misses_before = 0 if cache is None else cache.miss_total()
        blocked_source = None
        cached_conversion_seconds = 0.0
        if cache is not None and driver_name != "pregen":
            blocked, cached_conversion_seconds, blocked_source = \
                self._cached_blocked(plan, A, blocked, cache)
            self._jit_marker(plan, cache)
        if driver_name == "serial" and plan.persistence.enabled:
            raise ConfigError(
                "the serial driver cannot honour a persistence policy; "
                "use driver='engine' (or 'auto') for checkpointed runs"
            )
        if driver_name == "process" and plan.persistence.enabled:
            raise ConfigError(
                "the process driver cannot honour a persistence policy yet; "
                "use driver='engine' for checkpointed runs"
            )
        driver = self._local_drivers.get(driver_name)
        if driver is None:
            try:
                driver = _DRIVERS[driver_name]
            except KeyError:
                raise ConfigError(
                    f"unknown execution driver {driver_name!r}; registered: "
                    f"{', '.join(available_drivers())}"
                ) from None
        self.bus.emit(PLAN_COMPILED, plan=plan, driver=driver_name)
        Ahat, stats = driver(self, plan, A, factory, blocked, injector)
        s = plan.scale()
        if s != 1.0:
            Ahat *= s
        if stats.health is not None:
            # Surface silent observer failures in the run report: any
            # exception the bus swallowed during this run is now visible
            # wherever RunHealth is (CLI reports, tests, logs).
            stats.health.dropped_events = self.bus.dropped_total()
        if cache is not None:
            hits = cache.hit_total() - hits_before
            misses = cache.miss_total() - misses_before
            stats.extra["cache_hits"] = hits
            stats.extra["cache_misses"] = misses
            if blocked_source is not None:
                stats.extra["blocked_csr_source"] = blocked_source
                if blocked_source == "converted":
                    # The driver saw a pre-built structure and reported
                    # zero conversion time; attribute the real cost.
                    stats.conversion_seconds += cached_conversion_seconds
            if stats.health is not None:
                stats.health.cache_hits += hits
                stats.health.cache_misses += misses
        self.bus.emit(DONE, plan=plan, stats=stats, driver=driver_name)
        return SketchResult(sketch=Ahat, stats=stats,
                            kernel_used=plan.kernel, scale=s, plan=plan)

    # -- artifact-cache plumbing --------------------------------------------

    def _cached_blocked(self, plan: SketchPlan, A: "CSCMatrix",
                        blocked: "BlockedCSR | None", cache: "ArtifactCache"
                        ) -> tuple["BlockedCSR | None", float, str | None]:
        """Resolve the Algorithm 4 blocked-CSR input through the cache.

        Returns ``(blocked, conversion_seconds, source)`` where *source*
        is ``"caller"`` (pre-built structure passed in), ``"cache"``
        (verified disk/memory entry), ``"converted"`` (cache miss —
        converted here, then stored), or ``None`` (not an Algorithm 4
        plan, nothing to do).  On the ``"converted"`` path the measured
        conversion time is returned so the run's stats stay truthful
        even though the driver sees a pre-built structure.
        """
        if plan.kernel != "algo4":
            return blocked, 0.0, None
        if blocked is not None:
            return blocked, 0.0, "caller"
        from ..cache.artifacts import (
            blocked_csr_key,
            fetch_blocked_csr,
            store_blocked_csr,
        )
        from ..sparse.convert import csc_to_blocked_csr

        key = blocked_csr_key(A, plan.b_n)
        cached = fetch_blocked_csr(cache, key, A.shape)
        if cached is not None:
            return cached, 0.0, "cache"
        built, conv = csc_to_blocked_csr(A, plan.b_n)
        store_blocked_csr(cache, key, built, b_n=plan.b_n)
        return built, conv.seconds, "converted"

    def _jit_marker(self, plan: SketchPlan, cache: "ArtifactCache") -> None:
        """Warm the kernel backend once per (kernel, backend, machine).

        On a cache miss the backend's JIT compilation is triggered here
        — outside any timed kernel region — and its cost recorded in a
        durable marker entry; on a hit the warm-up is skipped entirely,
        trusting the backend's own on-disk compilation cache (numba's
        ``cache=True``) to make the first real call cheap.  Either way
        ``jit_compile_seconds`` is paid at most once per machine.
        """
        if plan.kernel not in ("algo3", "algo4"):
            return
        from ..cache.artifacts import (
            fetch_jit_marker,
            jit_warmup_key,
            store_jit_marker,
        )
        from ..kernels.backends import resolve_backend

        be = resolve_backend(plan.backend)
        key = jit_warmup_key(kernel=plan.kernel, backend=be.name,
                             rng_kind=plan.rng.kind)
        if fetch_jit_marker(cache, key) is not None:
            return
        rng = plan.rng_factory()(0)
        seconds = be.warmup(rng, np.float64)
        store_jit_marker(cache, key, kernel=plan.kernel, backend=be.name,
                         jit_compile_seconds=seconds)
